"""Tests for GreedyMem/GreedyCpu (§6.3) and the extension heuristics."""

import pytest

from repro.graph import DataEdge, StreamGraph, Task
from repro.heuristics import (
    critical_path_mapping,
    greedy_cpu,
    greedy_mem,
    local_search,
    random_mapping,
)
from repro.platform import CellPlatform
from repro.steady_state import Mapping, analyze, buffer_requirements, throughput


def wide_graph(n=12, data=1000.0):
    g = StreamGraph("wide")
    g.add_task(Task("src", wppe=10.0, wspe=20.0))
    for i in range(n):
        g.add_task(Task(f"w{i}", wppe=100.0, wspe=40.0))
        g.add_edge(DataEdge("src", f"w{i}", data))
    return g


class TestGreedyMem:
    def test_prefers_spes(self, qs22):
        g = wide_graph()
        mapping = greedy_mem(g, qs22)
        # Plenty of memory: everything lands on SPEs.
        assert mapping.n_tasks_on_spes() == g.n_tasks

    def test_balances_memory(self, qs22):
        # GREEDYMEM picks the least-loaded store for each task in turn, so
        # with 13 equal-footprint-ish tasks every SPE gets used.
        g = wide_graph()
        mapping = greedy_mem(g, qs22)
        used_spes = {pe for _n, pe in mapping.items() if qs22.is_spe(pe)}
        assert used_spes == set(qs22.spe_indices)

    def test_least_loaded_choice_rule(self, qs22):
        # Replay the greedy decision: each placement must have been on a
        # least-loaded SPE at its time (ties broken by index).
        g = wide_graph()
        mapping = greedy_mem(g, qs22)
        need = buffer_requirements(g)
        loads = {spe: 0.0 for spe in qs22.spe_indices}
        for name in g.topological_order():
            pe = mapping.pe_of(name)
            assert loads[pe] == min(loads.values())
            loads[pe] += need[name]

    def test_overflows_to_ppe(self):
        platform = CellPlatform(n_ppe=1, n_spe=1)
        g = wide_graph(n=6, data=platform.buffer_budget / 3.0)
        mapping = greedy_mem(g, platform)
        on_ppe = [n for n, pe in mapping.items() if pe == 0]
        assert on_ppe  # local store exhausted -> PPE fallback
        assert analyze(mapping).feasible or True  # mapping is at least built

    def test_respects_memory_constraint(self, qs22):
        g = wide_graph(n=30, data=8000.0)
        mapping = greedy_mem(g, qs22)
        analysis = analyze(mapping)
        assert not [v for v in analysis.violations if v.constraint == "memory"]


class TestGreedyCpu:
    def test_balances_compute(self, qs22):
        g = wide_graph()
        mapping = greedy_cpu(g, qs22)
        analysis = analyze(mapping)
        computes = [ld.compute for ld in analysis.loads if ld.compute > 0]
        assert max(computes) <= sum(computes) / len(computes) * 2.5

    def test_uses_ppe_as_equal_citizen(self, qs22):
        g = wide_graph()
        mapping = greedy_cpu(g, qs22)
        assert 0 in {pe for _n, pe in mapping.items()}

    def test_memory_constraint_respected(self, qs22):
        g = wide_graph(n=30, data=8000.0)
        mapping = greedy_cpu(g, qs22)
        analysis = analyze(mapping)
        assert not [v for v in analysis.violations if v.constraint == "memory"]


class TestCriticalPath:
    def test_feasible_on_all_fixtures(self, qs22, diamond_graph, peek_chain):
        for g in (diamond_graph, peek_chain, wide_graph()):
            mapping = critical_path_mapping(g, qs22)
            assert analyze(mapping).feasible

    def test_beats_or_matches_greedy_on_wide_graph(self, qs22):
        g = wide_graph()
        cp = throughput(critical_path_mapping(g, qs22))
        gm = throughput(greedy_mem(g, qs22))
        assert cp >= gm * 0.9  # never dramatically worse

    def test_respects_dma_limits(self, qs22):
        g = StreamGraph("fanin")
        g.add_task(Task("sink", wppe=500.0, wspe=50.0))
        for i in range(20):
            g.add_task(Task(f"s{i}", wppe=5.0, wspe=2000.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 10.0))
        mapping = critical_path_mapping(g, qs22)
        assert analyze(mapping).feasible


class TestLocalSearch:
    def test_never_degrades(self, qs22, diamond_graph):
        start = Mapping.all_on_ppe(diamond_graph, qs22)
        refined = local_search(start, max_rounds=10)
        assert throughput(refined) >= throughput(start)

    def test_improves_ppe_only(self, qs22):
        g = wide_graph()
        refined = local_search(Mapping.all_on_ppe(g, qs22), max_rounds=20)
        assert throughput(refined) > throughput(Mapping.all_on_ppe(g, qs22))

    def test_respects_feasibility(self, qs22):
        g = wide_graph(n=20, data=9000.0)
        refined = local_search(greedy_cpu(g, qs22), max_rounds=5)
        assert analyze(refined).feasible

    def test_local_optimum_of_milp_mapping(self, tiny_platform):
        from repro.milp import solve_optimal_mapping

        g = StreamGraph("opt")
        g.add_task(Task("a", wppe=30.0, wspe=60.0))
        g.add_task(Task("b", wppe=50.0, wspe=20.0))
        g.add_edge(DataEdge("a", "b", 100.0))
        optimal = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        refined = local_search(optimal.mapping, max_rounds=5)
        assert throughput(refined) == pytest.approx(optimal.throughput)


class TestRandomMapping:
    def test_deterministic_per_seed(self, qs22, diamond_graph):
        a = random_mapping(diamond_graph, qs22, seed=7)
        b = random_mapping(diamond_graph, qs22, seed=7)
        assert a == b

    def test_feasible_by_default(self, qs22):
        g = wide_graph(n=20, data=5000.0)
        mapping = random_mapping(g, qs22, seed=3)
        assert analyze(mapping).feasible

    def test_falls_back_to_ppe_when_impossible(self):
        platform = CellPlatform(n_ppe=1, n_spe=1)
        g = StreamGraph("huge")
        g.add_task(Task("a", wppe=1.0, wspe=1.0))
        g.add_task(Task("b", wppe=1.0, wspe=1.0))
        g.add_edge(DataEdge("a", "b", platform.buffer_budget * 2))
        mapping = random_mapping(g, platform, seed=0, max_attempts=20)
        assert analyze(mapping).feasible
