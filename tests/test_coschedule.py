"""The co-scheduling experiment driver and its CLI subcommand."""

import pytest

from repro.cli import main_experiment
from repro.errors import ExperimentError, UsageError
from repro.experiments import coschedule, fig7_speedup, fig8_ccr
from repro.experiments.common import validate_strategies


class TestBuildWorkload:
    def test_default_mix(self):
        workload = coschedule.build_workload(coschedule.DEFAULT_APPS)
        assert workload.app_names() == list(coschedule.DEFAULT_APPS)

    def test_weight_syntax(self):
        workload = coschedule.build_workload(
            ["audio_encoder=2.5", "crypto_pipeline"]
        )
        assert workload.app("audio_encoder").weight == 2.5
        assert workload.app("crypto_pipeline").weight == 1.0

    def test_unknown_app_fails_fast(self):
        with pytest.raises(ExperimentError, match="unknown app 'nope'"):
            coschedule.build_workload(["nope"])

    def test_duplicate_app_rejected(self):
        with pytest.raises(ExperimentError, match="twice"):
            coschedule.build_workload(["crypto_pipeline", "crypto_pipeline"])

    def test_duplicate_app_is_usage_error(self):
        """Duplicates are a *usage* mistake, reported as such up front."""
        with pytest.raises(UsageError, match="given twice"):
            coschedule.build_workload(["audio_encoder=2", "audio_encoder=3"])

    def test_bad_weight_rejected(self):
        with pytest.raises(ExperimentError, match="bad weight"):
            coschedule.build_workload(["audio_encoder=heavy"])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError, match="no apps"):
            coschedule.build_workload([])


class TestRun:
    def test_deterministic_across_worker_counts(self):
        kwargs = dict(
            apps=("audio_encoder", "crypto_pipeline"),
            spe_counts=(2, 4),
            strategies=("tabu_search",),
            objective="weighted",
        )
        serial = coschedule.run(jobs=None, **kwargs)
        parallel = coschedule.run(jobs=2, **kwargs)
        assert serial == parallel  # order-preserving, seed-stable
        assert serial.app_names == ("audio_encoder", "crypto_pipeline")
        assert len(serial.points) == 2
        for point in serial.points:
            assert point.feasible
            assert set(point.app_periods) == set(serial.app_names)
            assert point.value == pytest.approx(
                sum(point.app_periods.values())  # weights all 1.0
            )

    def test_objective_blind_strategy_still_evaluated(self):
        result = coschedule.run(
            apps=("crypto_pipeline", "audio_encoder"),
            spe_counts=(2,),
            strategies=("greedy_cpu",),
            objective="max_stretch",
        )
        (point,) = result.points
        assert point.strategy == "greedy_cpu"
        assert point.value > 0

    def test_unknown_strategy_fails_fast(self):
        with pytest.raises(ExperimentError, match="unknown strategies 'warp'"):
            coschedule.run(strategies=("warp",))

    def test_unknown_objective_fails_fast(self):
        with pytest.raises(ExperimentError, match="unknown objective"):
            coschedule.run(
                strategies=("greedy_cpu",), objective="throughput"
            )

    def test_table_lists_every_app_column(self):
        result = coschedule.run(
            apps=("video_pipeline", "crypto_pipeline"),
            spe_counts=(1,),
            strategies=("greedy_mem",),
        )
        table = result.table()
        assert "video_pipeline" in table
        assert "crypto_pipeline" in table
        assert "greedy_mem" in table


class TestFailFastValidation:
    """Satellite: sweep drivers reject unknown strategies up front."""

    def test_validate_strategies_lists_registry(self):
        with pytest.raises(ExperimentError, match="pick from.*milp"):
            validate_strategies(("definitely_not_a_strategy",))
        with pytest.raises(ExperimentError, match="no strategies"):
            validate_strategies(())
        assert validate_strategies(("milp", "greedy_cpu")) == (
            "milp", "greedy_cpu",
        )

    def test_validate_strategies_rejects_duplicates(self):
        with pytest.raises(ExperimentError, match="duplicate strategies"):
            validate_strategies(("greedy_cpu", "greedy_cpu"))

    def test_fig7_fails_before_sweeping(self, two_task_chain):
        with pytest.raises(ExperimentError, match="unknown strategies"):
            fig7_speedup.run_one(
                two_task_chain, spe_counts=(1,), strategies=("typo",)
            )

    def test_fig8_fails_before_sweeping(self):
        with pytest.raises(ExperimentError, match="unknown strategies"):
            fig8_ccr.run(ccrs=(0.775,), graph_ids=(1,), strategy="typo")


class TestCli:
    def test_coschedule_subcommand(self, capsys):
        rc = main_experiment(
            [
                "coschedule",
                "--apps", "audio_encoder,crypto_pipeline",
                "--objective", "weighted",
                "--strategies", "greedy_cpu",
                "--spe-counts", "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "audio_encoder" in out
        assert "weighted" in out

    def test_coschedule_rejects_unknown_app(self, capsys):
        rc = main_experiment(
            ["coschedule", "--apps", "nope", "--strategies", "greedy_cpu"]
        )
        assert rc == 1
        assert "unknown app" in capsys.readouterr().err

    def test_coschedule_rejects_duplicate_apps_fast(self, capsys):
        """Duplicates in --apps fail before any sweep work, weighted or
        not, through build_workload's UsageError."""
        rc = main_experiment(
            ["coschedule", "--apps", "audio_encoder,audio_encoder",
             "--strategies", "greedy_cpu", "--spe-counts", "2"]
        )
        assert rc == 1
        assert "given twice" in capsys.readouterr().err
        rc = main_experiment(
            ["coschedule", "--apps", "crypto_pipeline=2,crypto_pipeline=3",
             "--strategies", "greedy_cpu", "--spe-counts", "2"]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "given twice" in err and "crypto_pipeline" in err

    def test_coschedule_rejects_bad_spe_counts(self, capsys):
        rc = main_experiment(["coschedule", "--spe-counts", "two"])
        assert rc == 1
        assert "--spe-counts" in capsys.readouterr().err

    def test_coschedule_rejects_unknown_strategy(self, capsys):
        rc = main_experiment(
            ["coschedule", "--strategies", "warp", "--spe-counts", "2"]
        )
        assert rc == 1
        assert "unknown strategies" in capsys.readouterr().err

    def test_coschedule_rejects_explicitly_empty_lists(self, capsys):
        """`--spe-counts ,` must not silently run the full default sweep."""
        rc = main_experiment(["coschedule", "--spe-counts", ","])
        assert rc == 1
        assert "--spe-counts is empty" in capsys.readouterr().err
        rc = main_experiment(["coschedule", "--apps", ","])
        assert rc == 1
        assert "--apps is empty" in capsys.readouterr().err

    def test_objective_flag_noted_outside_coschedule(self, capsys):
        """--objective on fig7 must at least warn, and --instances on
        coschedule is analytic-only.  Use error paths to stay fast."""
        rc = main_experiment(
            ["fig7", "--objective", "weighted", "--strategies", "warp"]
        )
        err = capsys.readouterr().err
        assert rc == 1  # unknown strategy still aborts
        assert "--objective only applies to coschedule" in err
        rc = main_experiment(
            ["coschedule", "--instances", "500", "--strategies", "warp"]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "--instances ignored" in err
