"""Audit: every StreamGraph mutation must bump ``version``.

``StreamGraph.version`` is the invalidation key of the memoized
``buffer_requirements`` (and any future derived cache); a mutator that
forgets to bump it silently serves stale buffer footprints to every
scheduler.  The harness here fingerprints the graph's internal structure
around each mutator call and demands a version bump whenever the
structure changed — and proves it *catches* a forgetful mutator by
running a deliberately broken one through the same check.
"""

import pytest

from repro.graph import DataEdge, StreamGraph, Task, Workload
from repro.steady_state import buffer_requirements


def structural_fingerprint(graph: StreamGraph):
    """Hashable snapshot of every internal structure a mutator may touch."""
    return (
        tuple(graph._tasks.items()),
        tuple(graph._edges.items()),
        tuple((k, tuple(v)) for k, v in graph._succ.items()),
        tuple((k, tuple(v)) for k, v in graph._pred.items()),
    )


def assert_mutation_bumps_version(graph: StreamGraph, mutate) -> None:
    """Run ``mutate()``; if the structure changed, the version must too."""
    before = structural_fingerprint(graph)
    version_before = graph.version
    mutate()
    after = structural_fingerprint(graph)
    if after != before:
        assert graph.version > version_before, (
            "graph structure changed without a version bump — derived "
            "caches (memoized buffer_requirements) would go stale"
        )


def build() -> StreamGraph:
    g = StreamGraph("audit")
    g.add_task(Task("a", wppe=10.0, wspe=5.0))
    g.add_task(Task("b", wppe=10.0, wspe=5.0, peek=1))
    g.add_edge(DataEdge("a", "b", 100.0))
    return g


class TestMutatorAudit:
    def test_every_public_mutator_bumps(self):
        """One entry per public mutator of StreamGraph — extend this table
        when adding a mutator, and the harness enforces the bump."""
        g = build()
        mutators = [
            lambda: g.add_task(Task("c", wppe=1.0, wspe=1.0)),
            lambda: g.add_edge(DataEdge("b", "c", 50.0)),
            lambda: g.replace_task(Task("a", wppe=20.0, wspe=5.0)),
            lambda: g.replace_edge(DataEdge("a", "b", 300.0)),
        ]
        for mutate in mutators:
            assert_mutation_bumps_version(g, mutate)

    def test_audit_table_is_complete(self):
        """Fail when StreamGraph grows a public mutator the table above
        does not exercise (crude but effective tripwire)."""
        known_mutators = {"add_task", "add_edge", "replace_task", "replace_edge"}
        # Public methods that return structure or derived values are
        # explicitly read-only; everything else must be in the table.
        read_only = {
            "task", "edge", "has_edge", "tasks", "task_names", "edges",
            "successors", "predecessors", "out_edges", "in_edges",
            "out_degree", "in_degree", "sources", "sinks",
            "topological_order", "is_acyclic", "validate", "depth",
            "levels", "width", "copy", "scaled", "to_networkx",
            "from_parts", "chain_of",
        }
        public = {
            name
            for name in dir(StreamGraph)
            if not name.startswith("_")
            and callable(getattr(StreamGraph, name))
        }
        unaccounted = public - known_mutators - read_only
        assert not unaccounted, (
            f"new public StreamGraph methods {sorted(unaccounted)}: classify "
            "them read-only or add them to the mutator audit table"
        )

    def test_forgetful_mutator_is_caught(self):
        """The harness must flag a mutator that skips the bump."""

        class LeakyGraph(StreamGraph):
            def sneaky_retag(self, task: Task) -> None:
                # BUG on purpose: mutates without bumping _version.
                self._tasks[task.name] = task

        g = LeakyGraph("leaky")
        g.add_task(Task("a", wppe=1.0, wspe=1.0))
        with pytest.raises(AssertionError, match="version bump"):
            assert_mutation_bumps_version(
                g, lambda: g.sneaky_retag(Task("a", wppe=9.0, wspe=9.0))
            )

    def test_stale_cache_consequence(self):
        """The functional reason for the audit: the memo must refresh."""
        g = build()
        before = buffer_requirements(g)
        # peek drives the §4.2 window: bumping it must change the needs.
        g.replace_task(Task("b", wppe=10.0, wspe=5.0, peek=3))
        after = buffer_requirements(g)
        assert after["a"] > before["a"]


class TestCompiledGraphAudit:
    """`compile_graph` memoizes on ``StreamGraph.version`` exactly like
    the memoized ``buffer_requirements``: every mutator that bumps the
    version must force a recompilation, and the fresh compilation must
    reflect the mutation (a stale hit would feed every DeltaAnalyzer
    wrong cost/adjacency arrays)."""

    def test_every_public_mutator_recompiles(self):
        from repro.steady_state import compile_graph

        g = build()
        mutators = [
            lambda: g.add_task(Task("c", wppe=1.0, wspe=1.0)),
            lambda: g.add_edge(DataEdge("b", "c", 50.0)),
            lambda: g.replace_task(Task("a", wppe=20.0, wspe=5.0)),
            lambda: g.replace_edge(DataEdge("a", "b", 300.0)),
        ]
        for mutate in mutators:
            before = compile_graph(g)
            assert before is compile_graph(g)  # memo hit while unchanged
            mutate()
            after = compile_graph(g)
            assert after is not before, (
                "graph version bumped without a recompilation — the "
                "compiled arrays would go stale"
            )
            assert after.version == g.version

    def test_recompilation_reflects_the_mutation(self):
        from repro.steady_state import compile_graph

        g = build()
        compile_graph(g)
        g.replace_task(Task("a", wppe=77.0, wspe=5.0))
        cg = compile_graph(g)
        assert cg.wppe[cg.index["a"]] == 77.0
        g.add_task(Task("c", wppe=1.0, wspe=1.0))
        g.add_edge(DataEdge("b", "c", 64.0))
        cg = compile_graph(g)
        assert cg.n == 3 and cg.n_edges == 2
        assert cg.names[cg.edge_dst[1]] == "c"


class TestWorkloadVersionAudit:
    """`Workload.version` is the invalidation key of the memoized
    composite: it must change whenever the workload *or any member
    graph* mutates, through every mutator of either."""

    def build_workload(self):
        w = Workload("audit")
        w.add_app("one", build())
        w.add_app("two", build())
        return w

    def test_every_member_mutator_bumps_workload_version(self):
        w = self.build_workload()
        for app_name in ("one", "two"):
            g = w.app(app_name).graph
            mutators = [
                lambda g=g: g.add_task(Task("z", wppe=1.0, wspe=1.0)),
                lambda g=g: g.add_edge(DataEdge("b", "z", 10.0)),
                lambda g=g: g.replace_task(Task("a", wppe=3.0, wspe=3.0)),
                lambda g=g: g.replace_edge(DataEdge("a", "b", 99.0)),
            ]
            for mutate in mutators:
                before = w.version
                mutate()
                assert w.version > before, (
                    "member graph mutated without a workload version "
                    "change — the memoized composite would go stale"
                )

    def test_workload_mutator_bumps(self):
        w = self.build_workload()
        before = w.version
        w.add_app("three", build())
        assert w.version > before

    def test_remove_app_bumps_despite_shrinking_member_sum(self):
        """remove_app drops a member graph's counter from the version sum;
        the workload must compensate so the version still increases."""
        w = self.build_workload()
        # Inflate the doomed member's counter so a naive sum would *drop*.
        g = w.app("one").graph
        for _ in range(5):
            g.replace_task(Task("a", wppe=2.0, wspe=2.0))
        before = w.version
        removed = w.remove_app("one")
        assert removed.name == "one"
        assert "one" not in w
        assert w.version > before

    def test_replace_graph_bumps_despite_shrinking_member_sum(self):
        """replace_graph swaps a member graph (the runtime's
        cost-perturbation windows): the outgoing graph's counter leaves
        the version sum, so the workload must compensate — and the fresh
        composite must carry the new costs while keeping order/metadata."""
        w = Workload("audit")
        w.add_app("one", build(), weight=2.0, target_period=99.0)
        w.add_app("two", build())
        # Inflate the outgoing member's counter so a naive sum would drop.
        g = w.app("one").graph
        for _ in range(5):
            g.replace_task(Task("a", wppe=2.0, wspe=2.0))
        first = w.compile()
        before = w.version
        w.replace_graph("one", g.scaled(3.0))
        assert w.version > before
        second = w.compile()
        assert second is not first
        assert second.task("one:a").wppe == 6.0
        assert second.app_names == ("one", "two")  # order preserved
        assert w.app("one").weight == 2.0
        assert w.app("one").target_period == 99.0

    def test_replace_graph_unknown_rejected(self):
        from repro.errors import WorkloadError

        w = self.build_workload()
        with pytest.raises(WorkloadError, match="unknown application"):
            w.replace_graph("ghost", build())

    def test_remove_app_unknown_rejected(self):
        from repro.errors import WorkloadError

        w = self.build_workload()
        with pytest.raises(WorkloadError, match="unknown application"):
            w.remove_app("ghost")

    def test_remove_app_invalidates_composite(self):
        w = self.build_workload()
        first = w.compile()
        assert "one:a" in first
        w.remove_app("one")
        second = w.compile()
        assert second is not first
        assert "one:a" not in second
        assert second.app_names == ("two",)

    def test_readd_after_remove_is_fresh(self):
        """Remove + re-add under the same name never repeats a version."""
        w = self.build_workload()
        seen = {w.version}
        w.remove_app("one")
        assert w.version not in seen
        seen.add(w.version)
        w.add_app("one", build())
        assert w.version not in seen
        assert w.compile().app_names == ("two", "one")  # appended at end

    def test_rename_guard_bumps_and_validates(self):
        from repro.errors import WorkloadError

        w = self.build_workload()
        first = w.compile()
        before = w.version
        w.rename("renamed")
        assert w.version > before
        second = w.compile()
        assert second is not first
        assert second.name == "renamed"
        # Attribute assignment goes through the same guard.
        before = w.version
        w.name = "again"
        assert w.version > before
        assert w.compile().name == "again"
        # No-op rename: no gratuitous invalidation.
        cached = w.compile()
        w.rename("again")
        assert w.compile() is cached
        with pytest.raises(WorkloadError, match="non-empty"):
            w.rename("")

    def test_stale_composite_consequence(self):
        """The functional reason: compile() must recompile after any
        member mutation, and the fresh composite reflects it."""
        w = self.build_workload()
        first = w.compile()
        assert w.compile() is first  # memoized while clean
        w.app("one").graph.replace_edge(DataEdge("a", "b", 7777.0))
        second = w.compile()
        assert second is not first
        assert second.edge("one:a", "one:b").data == 7777.0

    def test_version_monotone_under_interleaving(self):
        """Interleaved member/workload mutations never repeat a version
        (sum-of-counters stays strictly increasing)."""
        w = self.build_workload()
        seen = {w.version}
        w.app("one").graph.add_task(Task("m1", wppe=1.0, wspe=1.0))
        assert w.version not in seen
        seen.add(w.version)
        w.app("two").graph.add_task(Task("m2", wppe=2.0, wspe=2.0))
        assert w.version not in seen
        seen.add(w.version)
        w.add_app("late", build())
        assert w.version not in seen
