"""Tests for the periodic schedule construction (§3.1, Fig. 3)."""

import pytest

from repro.steady_state import Mapping, build_schedule


@pytest.fixture
def fig3_schedule(fig3_graph, qs22):
    # T1 on the PPE, T2 and T3 on SPE0 — the Fig. 3 arrangement.
    mapping = Mapping(fig3_graph, qs22, {"T1": 0, "T2": 1, "T3": 1})
    return build_schedule(mapping)


class TestPeriodicSchedule:
    def test_first_instance_periods(self, fig3_schedule):
        s = fig3_schedule
        assert s.instance_of("T1", 0) == 0
        assert s.instance_of("T2", 1) is None  # not started yet
        assert s.instance_of("T2", 2) == 0
        assert s.instance_of("T3", 3) == 0

    def test_steady_state_one_instance_per_period(self, fig3_schedule):
        s = fig3_schedule
        for p in range(5, 10):
            for task in ("T1", "T2", "T3"):
                assert s.instance_of(task, p) == p - s.first_period[task]

    def test_period_of_roundtrip(self, fig3_schedule):
        s = fig3_schedule
        for task in ("T1", "T2", "T3"):
            for i in range(5):
                assert s.instance_of(task, s.period_of(task, i)) == i
        with pytest.raises(ValueError):
            s.period_of("T1", -1)

    def test_warmup(self, fig3_schedule):
        assert fig3_schedule.warmup_periods == max(
            fig3_schedule.first_period.values()
        )

    def test_compute_events_topological(self, fig3_schedule):
        events = fig3_schedule.compute_events(5)
        names = [e.task for e in events]
        assert names.index("T1") < names.index("T2")
        assert names.index("T1") < names.index("T3")
        assert all(e.period == 5 for e in events)

    def test_transfer_events_follow_production(self, fig3_schedule):
        # Instance i of D(T1, .) is produced in period i, shipped in i+1.
        events = fig3_schedule.transfer_events(1)
        assert {(e.src, e.dst, e.instance) for e in events} == {
            ("T1", "T2", 0),
            ("T1", "T3", 0),
        }
        assert fig3_schedule.transfer_events(0) == []

    def test_no_transfers_for_local_edges(self, fig3_graph, qs22):
        mapping = Mapping.all_on_ppe(fig3_graph, qs22)
        schedule = build_schedule(mapping)
        assert schedule.transfer_events(3) == []

    def test_live_instances_bounded_by_window(self, fig3_schedule):
        s = fig3_schedule
        fp = s.first_period
        for p in range(0, 20):
            for src, dst in (("T1", "T2"), ("T1", "T3")):
                live = s.live_instances(src, dst, p)
                assert 0 <= live <= fp[dst] - fp[src]
        # In steady state the buffer holds exactly the window.
        assert s.live_instances("T1", "T3", 15) == fp["T3"] - fp["T1"]

    def test_completion_and_latency(self, fig3_schedule):
        s = fig3_schedule
        assert s.completion_time("T3", 0) == pytest.approx(
            (s.first_period["T3"] + 1) * s.period_length
        )
        assert s.stream_latency() >= s.period_length

    def test_gantt_text(self, fig3_schedule):
        text = fig3_schedule.gantt_text(n_periods=6)
        assert "PPE0" in text and "SPE0" in text
        assert "T1#0" in text

    def test_elide_local_comm_shortens_warmup(self, fig3_graph, qs22):
        mapping = Mapping.all_on_ppe(fig3_graph, qs22)
        default = build_schedule(mapping)
        tight = build_schedule(mapping, elide_local_comm=True)
        assert tight.warmup_periods < default.warmup_periods
