"""The online scheduling runtime: events, scenarios, scheduler, sweep.

The acceptance bar of the runtime PR: a seeded end-to-end scenario of
≥20 events (including at least one SPE failure) must be deterministic
per seed, keep every intermediate (post-event) mapping feasible, and
keep the scheduler's ``DeltaAnalyzer.snapshot()`` bit-identical to a
fresh ``analyze()`` of the surviving workload in **all** buffer-model
modes; the experiment sweep must give identical results serially and in
parallel.
"""

import math

import pytest

from repro.cli import main_experiment
from repro.errors import (
    ExperimentError,
    GeneratorError,
    ObjectiveError,
    OnlineSchedulingError,
)
from repro.experiments import online
from repro.graph import StreamGraph, Task
from repro.platform import CellPlatform
from repro.runtime import (
    AppArrival,
    AppDeparture,
    CostPerturbation,
    CostRestore,
    EventRecord,
    FaultInjector,
    OnlineScheduler,
    RuntimeReport,
    ScenarioGenerator,
    SpeFailure,
    SpeRecovery,
    load_timeline,
    save_timeline,
    timeline_dumps,
    timeline_loads,
    validate_timeline,
)
from repro.runtime.scenario import solo_period_bound
from repro.steady_state import Mapping, analyze

#: The four buffer-model configurations the evaluation engine supports.
ALL_MODES = (
    {},
    {"elide_local_comm": True},
    {"merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)
MODE_IDS = ("default", "elide", "merge", "elide+merge")


def single_task_app(name: str, wppe: float, wspe: float) -> StreamGraph:
    g = StreamGraph(name)
    g.add_task(Task("work", wppe=wppe, wspe=wspe))
    return g


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


# ---------------------------------------------------------------------- #
# Events and timeline validation


class TestTimeline:
    def test_validate_accepts_sorted(self, platform):
        events = ScenarioGenerator(platform, seed=1).generate(10)
        assert validate_timeline(events) == list(events)
        assert [e.time for e in events] == sorted(e.time for e in events)

    def test_validate_rejects_unsorted(self):
        g = single_task_app("a", 10.0, 5.0)
        events = [
            AppArrival(time=5.0, name="a", graph=g),
            AppDeparture(time=1.0, name="a"),
        ]
        with pytest.raises(OnlineSchedulingError, match="back in time"):
            validate_timeline(events)

    def test_validate_rejects_negative_time_and_junk(self):
        with pytest.raises(OnlineSchedulingError, match="negative time"):
            validate_timeline([AppDeparture(time=-1.0, name="x")])
        with pytest.raises(OnlineSchedulingError, match="not a runtime event"):
            validate_timeline(["not-an-event"])

    def test_scheduler_rejects_time_regression(self, platform):
        sched = OnlineScheduler(platform)
        sched.process(AppDeparture(time=10.0, name="ghost"))
        with pytest.raises(OnlineSchedulingError, match="time order"):
            sched.process(AppDeparture(time=5.0, name="ghost"))


# ---------------------------------------------------------------------- #
# Scenario generation


class TestScenarioGenerator:
    def test_deterministic_per_seed(self, platform):
        a = ScenarioGenerator(platform, seed=4, load=2.0).generate(20)
        b = ScenarioGenerator(platform, seed=4, load=2.0).generate(20)
        assert len(a) == len(b) == 20
        for x, y in zip(a, b):
            assert type(x) is type(y)
            assert x.time == y.time
            assert x.subject == y.subject
        c = ScenarioGenerator(platform, seed=5, load=2.0).generate(20)
        assert [e.time for e in a] != [e.time for e in c]

    def test_exact_event_count_and_failures(self, platform):
        for n in (2, 3, 20, 25):
            events = ScenarioGenerator(platform, seed=0, n_failures=2).generate(n)
            assert len(events) == n
        events = ScenarioGenerator(platform, seed=0, n_failures=2).generate(24)
        failures = [e for e in events if isinstance(e, SpeFailure)]
        recoveries = [e for e in events if isinstance(e, SpeRecovery)]
        assert len(failures) == len(recoveries) == 2
        # Distinct SPEs: overlapping windows can never double-fail one SPE.
        assert len({e.spe for e in failures}) == 2

    def test_no_failures_without_spes(self):
        ppe_only = CellPlatform(n_ppe=1, n_spe=0)
        events = ScenarioGenerator(ppe_only, seed=0, n_failures=3).generate(12)
        assert not any(isinstance(e, (SpeFailure, SpeRecovery)) for e in events)
        assert len(events) == 12

    def test_targets_use_slack_over_bound(self, platform):
        lo, hi = 3.0, 4.0
        gen = ScenarioGenerator(
            platform, seed=2, target_probability=1.0, target_slack=(lo, hi)
        )
        arrivals = [e for e in gen.generate(16) if isinstance(e, AppArrival)]
        assert arrivals
        for arrival in arrivals:
            bound = solo_period_bound(arrival.graph)
            assert lo * bound <= arrival.target_period <= hi * bound

    def test_zero_bound_builder_gets_positive_targets(self, platform):
        """A graph that is free on one PE kind must not produce a
        target_period of 0 (WorkloadError at arrival); the bound is
        clamped like objective.reference_periods."""
        def free_app():
            g = StreamGraph("free")
            g.add_task(Task("noop", wppe=1.0, wspe=0.0))
            return g

        gen = ScenarioGenerator(
            platform,
            seed=1,
            builders={"free": free_app},
            target_probability=1.0,
        )
        events = gen.generate(10)
        for event in events:
            if isinstance(event, AppArrival):
                assert event.target_period > 0
        report = OnlineScheduler(platform).run(events)
        assert report.all_feasible

    def test_parameter_validation(self, platform):
        with pytest.raises(GeneratorError, match="load"):
            ScenarioGenerator(platform, load=0.0)
        with pytest.raises(GeneratorError, match="mean_service"):
            ScenarioGenerator(platform, mean_service=-1.0)
        with pytest.raises(GeneratorError, match="target_slack"):
            ScenarioGenerator(platform, target_slack=(2.0, 1.0))
        with pytest.raises(GeneratorError, match="n_events"):
            ScenarioGenerator(platform).generate(1)


# ---------------------------------------------------------------------- #
# The end-to-end acceptance bar


class TestEndToEndAcceptance:
    """≥20 events incl. ≥1 SPE failure: deterministic, always feasible,
    snapshot bit-identical to a fresh analyze() in every buffer mode."""

    @pytest.mark.parametrize("mode", ALL_MODES, ids=MODE_IDS)
    def test_snapshot_bit_identical_every_event(self, platform, mode):
        events = ScenarioGenerator(platform, seed=5, load=2.5).generate(22)
        assert len(events) >= 20
        assert any(isinstance(e, SpeFailure) for e in events)
        sched = OnlineScheduler(platform, migration_budget=3, **mode)
        for event in events:
            record = sched.process(event)
            # Every intermediate (post-event) mapping is feasible.
            assert record.feasible
            if sched.state is None:
                continue
            snap = sched.state.snapshot()
            composite = sched.workload.compile()
            full = analyze(
                Mapping(composite, platform, sched.assignment()), **mode
            )
            assert snap.period == full.period
            assert snap.app_periods == full.app_periods
            assert snap.loads == full.loads
            assert snap.buffer_bytes == full.buffer_bytes
            assert snap.dma_in == full.dma_in
            assert snap.dma_proxy == full.dma_proxy
            assert snap.violations == full.violations
            assert snap.link_loads == full.link_loads
            assert snap.mapping == full.mapping

    def test_deterministic_per_seed(self, platform):
        def play(seed):
            events = ScenarioGenerator(platform, seed=seed, load=2.0).generate(24)
            return OnlineScheduler(platform, migration_budget=2).run(events)

        assert play(11) == play(11)
        assert play(11) != play(12)

    def test_delta_matches_reference_path(self, platform):
        """use_delta=False (full analyze per candidate) must take the
        exact same decisions on integer-cost graphs."""
        def play(use_delta):
            events = ScenarioGenerator(platform, seed=5, load=2.5).generate(20)
            sched = OnlineScheduler(
                platform, migration_budget=2, use_delta=use_delta
            )
            report = sched.run(events)
            return report, sched.assignment()

        fast_report, fast_assign = play(True)
        slow_report, slow_assign = play(False)
        # The engine label differs by design; the timeline must not.
        assert fast_report.kernel_backend != "reference"
        assert slow_report.kernel_backend == "reference"
        assert fast_report.records == slow_report.records
        assert fast_assign == slow_assign

    def test_multi_cell_platform(self):
        """The runtime works unchanged on the dual-Cell platform (BIF
        link loads included in the bit-identity check)."""
        platform = CellPlatform.qs22_dual()
        events = ScenarioGenerator(platform, seed=9, load=3.0).generate(20)
        sched = OnlineScheduler(platform, migration_budget=2)
        for event in events:
            record = sched.process(event)
            assert record.feasible
            if sched.state is not None:
                snap = sched.state.snapshot()
                full = analyze(sched.state.mapping())
                assert snap.period == full.period
                assert snap.link_loads == full.link_loads

    @pytest.mark.parametrize("objective", ("weighted", "max_stretch"))
    def test_app_aware_objectives(self, platform, objective):
        events = ScenarioGenerator(platform, seed=3, load=2.0).generate(20)
        sched = OnlineScheduler(
            platform, objective=objective, migration_budget=2
        )
        report = sched.run(events)
        assert report.all_feasible
        assert report.objective == objective


# ---------------------------------------------------------------------- #
# Admission control


class TestAdmission:
    def test_unreachable_target_rejected_cleanly(self, platform):
        g = single_task_app("greedy", 50.0, 50.0)
        sched = OnlineScheduler(platform)
        record = sched.process(
            AppArrival(time=0.0, name="greedy", graph=g, target_period=10.0)
        )
        assert record.accepted is False
        assert "target-missed:greedy" in record.reason
        # No trace: workload empty, no state, nothing mapped.
        assert len(sched.workload) == 0
        assert sched.state is None
        assert sched.assignment() == {}

    def test_admission_protects_resident_targets(self):
        """An arrival that would push the shared period past a resident
        app's target is rejected even if it has no target itself."""
        platform = CellPlatform(n_ppe=1, n_spe=0, name="ppe-only")
        sched = OnlineScheduler(platform)
        first = sched.process(
            AppArrival(
                time=0.0,
                name="resident",
                graph=single_task_app("resident", 50.0, 50.0),
                target_period=60.0,
            )
        )
        assert first.accepted is True
        second = sched.process(
            AppArrival(
                time=1.0,
                name="intruder",
                graph=single_task_app("intruder", 30.0, 30.0),
            )
        )
        assert second.accepted is False
        assert "target-missed:resident" in second.reason
        assert sched.workload.app_names() == ["resident"]

    def test_duplicate_resident_name_rejected(self, platform):
        g = single_task_app("dup", 10.0, 5.0)
        sched = OnlineScheduler(platform)
        assert sched.process(
            AppArrival(time=0.0, name="dup", graph=g)
        ).accepted is True
        record = sched.process(
            AppArrival(time=1.0, name="dup", graph=single_task_app("dup2", 8.0, 4.0))
        )
        assert record.accepted is False
        assert record.reason == "duplicate-name"
        assert len(sched.workload) == 1

    def test_budget_can_rescue_an_arrival(self):
        """A tight target only reachable by remapping a resident task:
        budget 0 rejects, budget ≥ 1 admits — the admission side of the
        period-vs-reconfiguration trade."""
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")

        def play(budget):
            sched = OnlineScheduler(platform, migration_budget=budget)
            # Resident prefers the PPE (cheaper there), then the arrival
            # needs the PPE to itself: only a resident migration to the
            # SPE makes the target reachable.
            sched.process(
                AppArrival(
                    time=0.0,
                    name="resident",
                    graph=single_task_app("resident", 20.0, 25.0),
                )
            )
            # Without migrations: newcomer on PPE → 50, on SPE → 100,
            # both past the 35 µs target.  Moving the resident to the
            # SPE first gives max(25, 30) = 30 ≤ 35.
            return sched.process(
                AppArrival(
                    time=1.0,
                    name="newcomer",
                    graph=single_task_app("newcomer", 30.0, 100.0),
                    target_period=35.0,
                )
            )

        rejected = play(0)
        assert rejected.accepted is False
        admitted = play(1)
        assert admitted.accepted is True
        assert admitted.migrations == 1


# ---------------------------------------------------------------------- #
# Departures and the migration budget


class TestDeparture:
    def test_departure_of_unadmitted_app_is_noop(self, platform):
        sched = OnlineScheduler(platform)
        record = sched.process(AppDeparture(time=0.0, name="never-arrived"))
        assert record.accepted is None
        assert record.reason == "not-resident"
        assert sched.state is None

    def test_departure_frees_and_reoptimizes_within_budget(self, platform):
        events = ScenarioGenerator(platform, seed=7, load=3.0).generate(24)
        budget = 2
        sched = OnlineScheduler(platform, migration_budget=budget)
        report = sched.run(events)
        for record in report.records:
            if record.event in ("departure", "recovery", "arrival"):
                assert record.migrations <= budget
        # Last departure of each admitted app eventually empties the mix.
        assert report.records[-1].n_apps == len(sched.workload)

    def test_zero_budget_never_migrates_outside_failures(self, platform):
        events = ScenarioGenerator(platform, seed=7, load=3.0).generate(24)
        report = OnlineScheduler(platform, migration_budget=0).run(events)
        for record in report.records:
            if record.event != "failure":
                assert record.migrations == 0

    def test_negative_budget_rejected(self, platform):
        with pytest.raises(OnlineSchedulingError, match="migration_budget"):
            OnlineScheduler(platform, migration_budget=-1)
        with pytest.raises(ObjectiveError, match="unknown objective"):
            OnlineScheduler(platform, objective="fastest")


# ---------------------------------------------------------------------- #
# SPE failure and recovery


class TestFailure:
    def test_failed_spe_is_fully_evacuated(self, platform):
        events = ScenarioGenerator(
            platform, seed=5, load=3.0, n_failures=1
        ).generate(22)
        sched = OnlineScheduler(platform, migration_budget=2)
        saw_failure = False
        for event in events:
            sched.process(event)
            if isinstance(event, SpeFailure):
                saw_failure = True
                assert event.spe in sched.failed_spes
                assert all(
                    pe != event.spe for pe in sched.assignment().values()
                )
            if isinstance(event, SpeRecovery):
                assert event.spe not in sched.failed_spes
        assert saw_failure

    def test_failure_drops_lowest_weight_app(self):
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")
        sched = OnlineScheduler(platform, migration_budget=2)
        heavy = sched.process(
            AppArrival(
                time=0.0,
                name="heavy",
                graph=single_task_app("heavy", 50.0, 50.0),
                weight=2.0,
                target_period=60.0,
            )
        )
        light = sched.process(
            AppArrival(
                time=1.0,
                name="light",
                graph=single_task_app("light", 30.0, 30.0),
                weight=0.5,
                target_period=55.0,
            )
        )
        assert heavy.accepted and light.accepted
        # Both fit: one of them runs on the sole SPE (shared period 50).
        assert sched.state.period() == 50.0
        record = sched.process(SpeFailure(time=2.0, spe=1))
        # PPE-only cannot hold both under their targets: the lightest
        # goes, the survivor meets its target again.
        assert record.dropped == ("light",)
        assert record.feasible
        assert sched.workload.app_names() == ["heavy"]
        assert sched.state.period() == 50.0 <= 60.0

    def test_failure_validation(self, platform):
        sched = OnlineScheduler(platform)
        with pytest.raises(OnlineSchedulingError, match="not an SPE"):
            sched.process(SpeFailure(time=0.0, spe=0))  # PE 0 is the PPE
        with pytest.raises(OnlineSchedulingError, match="not an SPE"):
            sched.process(SpeFailure(time=0.0, spe=99))
        sched.process(SpeFailure(time=1.0, spe=3))
        with pytest.raises(OnlineSchedulingError, match="already failed"):
            sched.process(SpeFailure(time=2.0, spe=3))
        with pytest.raises(OnlineSchedulingError, match="not failed"):
            sched.process(SpeRecovery(time=3.0, spe=4))

    def test_arrival_during_outage_avoids_failed_spe(self, platform):
        sched = OnlineScheduler(platform, migration_budget=2)
        for spe in platform.spe_indices:
            if spe != platform.spe_indices[0]:
                sched.process(SpeFailure(time=0.0, spe=spe))
        live_spe = platform.spe_indices[0]
        record = sched.process(
            AppArrival(
                time=1.0,
                name="app",
                graph=single_task_app("app", 100.0, 10.0),
            )
        )
        assert record.accepted is True
        used = set(sched.assignment().values())
        assert used <= {0, live_spe}


# ---------------------------------------------------------------------- #
# The shared primitives the runtime contributed to the offline layers


class TestRuntimePrimitives:
    def test_delta_tasks_on_mirrors_mapping(self, platform):
        from repro.errors import MappingError
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("two")
        g.add_task(Task("a", wppe=10.0, wspe=5.0))
        g.add_task(Task("b", wppe=10.0, wspe=5.0))
        state = DeltaAnalyzer(Mapping(g, platform, {"a": 0, "b": 2}))
        assert state.tasks_on(0) == ["a"]
        assert state.tasks_on(2) == ["b"]
        assert state.tasks_on(1) == []
        state.apply_move("b", 0)
        assert state.tasks_on(0) == ["a", "b"]
        with pytest.raises(MappingError, match="invalid PE"):
            state.tasks_on(platform.n_pes)

    def test_budgeted_descent_respects_budget_and_pes(self, platform):
        from repro.heuristics import budgeted_descent
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("spread")
        for i in range(4):
            g.add_task(Task(f"t{i}", wppe=40.0, wspe=10.0))
        start = Mapping.all_on_ppe(g, platform)  # period 160 on the PPE
        state = DeltaAnalyzer(start)
        moved = budgeted_descent(state, budget=2)
        assert moved == 2  # improving moves exist beyond the budget
        assert state.period() < 160.0
        # Restricted to the PPE only, there is nowhere to go.
        state2 = DeltaAnalyzer(start)
        assert budgeted_descent(state2, budget=5, pes=[0]) == 0
        assert budgeted_descent(state2, budget=0) == 0

    def test_budgeted_descent_period_cap(self, platform):
        """Under the cap, no move may cross it — even an objective-
        improving one; above the cap, descent is allowed."""
        from repro.heuristics import budgeted_descent
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("capped")
        for i in range(3):
            g.add_task(Task(f"t{i}", wppe=30.0, wspe=10.0))
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))  # period 90
        # Cap far below: only period-reducing moves allowed — descent runs.
        moved = budgeted_descent(state, budget=10, period_cap=1.0)
        assert moved > 0
        assert state.period() < 90.0


# ---------------------------------------------------------------------- #
# Report serialization


class TestReport:
    def test_json_round_trip(self, platform):
        events = ScenarioGenerator(platform, seed=5, load=2.0).generate(20)
        report = OnlineScheduler(platform, migration_budget=2).run(events)
        assert report.n_events == 20
        clone = RuntimeReport.from_json(report.to_json())
        assert clone == report
        assert clone.acceptance_rate == report.acceptance_rate
        assert clone.mean_period == report.mean_period

    def test_malformed_json_rejected(self):
        with pytest.raises(OnlineSchedulingError, match="malformed"):
            RuntimeReport.from_json("{not json")
        with pytest.raises(OnlineSchedulingError, match="malformed"):
            RuntimeReport.from_json('{"platform": "x"}')

    def test_aggregates(self, platform):
        report = RuntimeReport(platform="p", objective="period", migration_budget=1)
        assert report.acceptance_rate == 1.0  # vacuous: nothing arrived
        assert report.mean_period == 0.0
        assert report.total_migrations == 0
        assert report.all_feasible

    def test_table_mentions_outcomes(self, platform):
        events = ScenarioGenerator(platform, seed=5, load=2.0).generate(16)
        report = OnlineScheduler(platform).run(events)
        table = report.table()
        assert "acceptance" in table
        assert "mean period" in table


# ---------------------------------------------------------------------- #
# The experiment sweep


class TestOnlineExperiment:
    def test_serial_equals_parallel(self):
        kwargs = dict(loads=(1.0, 2.0), budgets=(0, 2), n_events=12)
        serial = online.run(jobs=None, **kwargs)
        parallel = online.run(jobs=2, **kwargs)
        assert serial == parallel
        assert len(serial.points) == 4
        for point in serial.points:
            assert point.all_feasible
            assert 0.0 <= point.acceptance_rate <= 1.0
            assert math.isfinite(point.mean_period)

    def test_budget_columns_share_the_timeline(self):
        """Same load, different budgets: identical arrival streams, so
        arrival counts match across the budget axis."""
        result = online.run(loads=(2.0,), budgets=(0, 4), n_events=14)
        by_budget = {p.budget: p for p in result.points}
        assert by_budget[0].arrivals == by_budget[4].arrivals

    def test_validation(self):
        with pytest.raises(ExperimentError, match="loads"):
            online.run(loads=())
        with pytest.raises(ExperimentError, match="loads"):
            online.run(loads=(0.0,))
        with pytest.raises(ExperimentError, match="budgets"):
            online.run(budgets=(-1,))
        with pytest.raises(ExperimentError, match="n_events"):
            online.run(n_events=1)
        with pytest.raises(ExperimentError, match="unknown objective"):
            online.run(objective="throughput")

    def test_main_surfaces_invalid_explicit_values(self):
        """main() must not silently swap explicit-but-invalid values
        (0 events, empty lists) for the defaults."""
        with pytest.raises(ExperimentError, match="n_events"):
            online.main(loads=(1.0,), budgets=(0,), n_events=0)
        with pytest.raises(ExperimentError, match="loads"):
            online.main(loads=())

    def test_table_lists_points(self):
        result = online.run(loads=(1.5,), budgets=(1,), n_events=8)
        table = result.table()
        assert "1.50" in table
        assert "migration budget" in table or "migrations" in table


class TestCli:
    def test_online_subcommand(self, capsys):
        rc = main_experiment(
            ["online", "--events", "10", "--loads", "1.5",
             "--budgets", "0,2", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "acceptance" in out.lower() or "rate" in out

    def test_online_rejects_bad_loads(self, capsys):
        rc = main_experiment(["online", "--loads", "fast"])
        assert rc == 1
        assert "--loads" in capsys.readouterr().err
        rc = main_experiment(["online", "--loads", "0"])
        assert rc == 1
        assert "positive" in capsys.readouterr().err

    def test_online_rejects_bad_budgets_and_events(self, capsys):
        rc = main_experiment(["online", "--budgets", "-2"])
        assert rc == 1
        assert "--budgets" in capsys.readouterr().err
        rc = main_experiment(["online", "--events", "1"])
        assert rc == 1
        assert "--events" in capsys.readouterr().err

    def test_online_flags_noted_elsewhere(self, capsys):
        rc = main_experiment(
            ["fig7", "--loads", "1", "--budgets", "2", "--strategies", "warp"]
        )
        err = capsys.readouterr().err
        assert rc == 1  # unknown strategy still aborts
        assert "--loads only applies to online" in err
        assert "--budgets only applies to online" in err

    def test_online_objective_accepted(self, capsys):
        rc = main_experiment(
            ["online", "--events", "8", "--loads", "1",
             "--budgets", "0", "--objective", "weighted"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "weighted" in out


# ---------------------------------------------------------------------- #
# Arrival patterns (bursty / diurnal load modulation)


class TestArrivalPatterns:
    def test_every_pattern_generates_valid_deterministic_timelines(
        self, platform
    ):
        for pattern in ScenarioGenerator.ARRIVAL_PATTERNS:
            kwargs = dict(seed=7, load=2.0, arrival_pattern=pattern)
            a = ScenarioGenerator(platform, **kwargs).generate(18)
            b = ScenarioGenerator(platform, **kwargs).generate(18)
            validate_timeline(a)
            assert len(a) == 18
            assert [(e.time, e.subject) for e in a] == [
                (e.time, e.subject) for e in b
            ]

    def test_patterns_reshape_arrivals_without_changing_their_count(
        self, platform
    ):
        def arrival_times(pattern):
            events = ScenarioGenerator(
                platform, seed=7, load=2.0, arrival_pattern=pattern
            ).generate(18)
            return [e.time for e in events if isinstance(e, AppArrival)]

        poisson = arrival_times("poisson")
        bursty = arrival_times("bursty")
        diurnal = arrival_times("diurnal")
        assert len(poisson) == len(bursty) == len(diurnal)
        assert poisson != bursty
        assert poisson != diurnal

    def test_diurnal_with_zero_amplitude_is_poisson(self, platform):
        """Amplitude 0 leaves the rate untouched, and every pattern
        consumes exactly one draw per gap — so the timelines coincide
        bit for bit."""
        flat = ScenarioGenerator(
            platform, seed=7, load=2.0, arrival_pattern="diurnal",
            diurnal_amplitude=0.0,
        ).generate(18)
        poisson = ScenarioGenerator(platform, seed=7, load=2.0).generate(18)
        assert [e.time for e in flat] == [e.time for e in poisson]

    def test_pattern_parameter_validation(self, platform):
        with pytest.raises(GeneratorError, match="arrival_pattern"):
            ScenarioGenerator(platform, arrival_pattern="fractal")
        with pytest.raises(GeneratorError, match="burst_factor"):
            ScenarioGenerator(
                platform, arrival_pattern="bursty", burst_factor=0.5
            )
        with pytest.raises(GeneratorError, match="burst_size"):
            ScenarioGenerator(platform, arrival_pattern="bursty", burst_size=0)
        with pytest.raises(GeneratorError, match="diurnal_period"):
            ScenarioGenerator(
                platform, arrival_pattern="diurnal", diurnal_period=0.0
            )
        with pytest.raises(GeneratorError, match="diurnal_amplitude"):
            ScenarioGenerator(
                platform, arrival_pattern="diurnal", diurnal_amplitude=1.0
            )

    def test_mean_downtime_validated_up_front(self, platform):
        with pytest.raises(GeneratorError, match="mean_downtime"):
            ScenarioGenerator(platform, mean_downtime=0.0)
        with pytest.raises(GeneratorError, match="mean_downtime"):
            ScenarioGenerator(platform, mean_downtime=-3.0)


# ---------------------------------------------------------------------- #
# Fault injection (correlated bursts, whole-Cell outages, perturbations)


class TestFaultInjector:
    def base(self, platform, seed=3, n=12):
        return ScenarioGenerator(
            platform, seed=seed, load=2.0, n_failures=0
        ).generate(n)

    def test_deterministic_and_valid(self, platform):
        base = self.base(platform)
        make = lambda: FaultInjector(  # noqa: E731
            platform, seed=11, correlation=0.6
        ).inject(base, n_bursts=3, n_perturbations=2)
        a, b = make(), make()
        validate_timeline(a)
        assert [(e.time, e.event_type, e.subject) for e in a] == [
            (e.time, e.event_type, e.subject) for e in b
        ]
        assert sum(e.event_type == "failure" for e in a) >= 3
        assert sum(e.event_type == "perturb" for e in a) == 2

    def test_never_double_fails_an_spe(self, platform):
        """Injection composes with generator-produced failures: scanning
        the merged timeline, a failure only hits an SPE that is up."""
        base = ScenarioGenerator(
            platform, seed=3, load=2.0, n_failures=2
        ).generate(16)
        merged = FaultInjector(platform, seed=1, correlation=0.7).inject(
            base, n_bursts=4
        )
        down = set()
        for event in merged:
            if isinstance(event, SpeFailure):
                assert event.spe not in down
                down.add(event.spe)
            elif isinstance(event, SpeRecovery):
                assert event.spe in down
                down.discard(event.spe)

    def test_whole_cell_outage_fails_one_chip_at_once(self):
        platform = CellPlatform.qs22_dual()
        base = ScenarioGenerator(
            platform, seed=3, load=2.0, n_failures=0
        ).generate(10)
        merged = FaultInjector(
            platform, seed=2, whole_cell_probability=1.0
        ).inject(base, n_bursts=1)
        failures = [e for e in merged if isinstance(e, SpeFailure)]
        cells = {platform.cell_of(e.spe) for e in failures}
        assert len(cells) == 1
        assert len({e.time for e in failures}) == 1
        (cell,) = cells
        expect = {s for s in platform.spe_indices if platform.cell_of(s) == cell}
        assert {e.spe for e in failures} == expect

    def test_zero_correlation_bursts_are_singletons(self, platform):
        merged = FaultInjector(platform, seed=5, correlation=0.0).inject(
            self.base(platform), n_bursts=2
        )
        n_failures = sum(isinstance(e, SpeFailure) for e in merged)
        assert 1 <= n_failures <= 2  # a clashing window may skip a burst

    def test_injected_timeline_plays_cleanly(self, platform):
        merged = FaultInjector(platform, seed=11, correlation=0.6).inject(
            self.base(platform, n=14), n_bursts=2, n_perturbations=1
        )
        report = OnlineScheduler(
            platform, migration_budget=2, retry_limit=1,
            brownout_threshold=0.3,
        ).run(merged)
        assert report.all_feasible

    def test_parameter_validation(self, platform):
        with pytest.raises(GeneratorError, match="correlation"):
            FaultInjector(platform, correlation=1.0)
        with pytest.raises(GeneratorError, match="whole_cell_probability"):
            FaultInjector(platform, whole_cell_probability=2.0)
        with pytest.raises(GeneratorError, match="mean_downtime"):
            FaultInjector(platform, mean_downtime=0.0)
        with pytest.raises(GeneratorError, match="cascade_lag"):
            FaultInjector(platform, cascade_lag=-1.0)
        with pytest.raises(GeneratorError, match="bw_scale"):
            FaultInjector(platform, bw_scale=(0.0, 1.0))
        with pytest.raises(GeneratorError, match="compute_scale"):
            FaultInjector(platform, compute_scale=(2.0, 1.0))
        with pytest.raises(GeneratorError, match="n_bursts"):
            FaultInjector(platform).inject([], n_bursts=-1)


class TestTimelineJson:
    def make(self, platform):
        base = ScenarioGenerator(
            platform, seed=4, load=2.0, n_failures=1
        ).generate(14)
        return FaultInjector(platform, seed=6).inject(
            base, n_bursts=1, n_perturbations=1
        )

    def test_round_trip_replays_identically(self, platform):
        timeline = self.make(platform)
        clone = timeline_loads(timeline_dumps(timeline))
        assert [(e.time, e.event_type, e.subject) for e in clone] == [
            (e.time, e.event_type, e.subject) for e in timeline
        ]
        play = lambda events: OnlineScheduler(  # noqa: E731
            platform, migration_budget=2
        ).run(events)
        assert play(clone) == play(timeline)

    def test_save_and_load_file(self, platform, tmp_path):
        timeline = self.make(platform)
        path = save_timeline(timeline, tmp_path / "timeline.json")
        clone = load_timeline(path)
        assert [(e.time, e.event_type) for e in clone] == [
            (e.time, e.event_type) for e in timeline
        ]

    def test_malformed_payloads_rejected(self, tmp_path):
        with pytest.raises(OnlineSchedulingError, match="malformed timeline"):
            timeline_loads("{not json")
        with pytest.raises(OnlineSchedulingError, match="malformed timeline"):
            timeline_loads('{"version": 1}')
        with pytest.raises(OnlineSchedulingError, match="unknown timeline"):
            timeline_loads(
                '{"version": 1, "events": [{"type": "meteor", "time": 0}]}'
            )
        with pytest.raises(OnlineSchedulingError, match="cannot read"):
            load_timeline(tmp_path / "absent.json")


# ---------------------------------------------------------------------- #
# Cost perturbation windows


class TestPerturbation:
    def test_window_scales_and_restores_exactly(self, platform):
        g_a = single_task_app("a", 40.0, 20.0)
        sched = OnlineScheduler(platform, migration_budget=2)
        sched.process(AppArrival(time=0.0, name="a", graph=g_a))
        assert sched.state.period() == 20.0
        record = sched.process(
            CostPerturbation(time=1.0, compute_scale=2.0, bw_scale=0.5)
        )
        assert record.feasible
        assert sched.perturbed
        assert sched.state.period() == 40.0
        assert sched.platform is not platform
        assert sched.platform.bw == pytest.approx(0.5 * platform.bw)
        # Arrival inside the window is admitted at the inflated costs...
        g_b = single_task_app("b", 10.0, 6.0)
        sched.process(AppArrival(time=2.0, name="b", graph=g_b))
        assert sched.workload.app("b").graph is not g_b
        sched.process(CostRestore(time=3.0))
        # ...and the restore puts back the *original* objects: the
        # platform and every resident graph, bit-identical by identity.
        assert not sched.perturbed
        assert sched.platform is platform
        assert sched.workload.app("a").graph is g_a
        assert sched.workload.app("b").graph is g_b
        assert sched.state.period() == 20.0

    @pytest.mark.parametrize("mode", ALL_MODES, ids=MODE_IDS)
    def test_snapshot_bit_identical_inside_window(self, platform, mode):
        """During a window the analyze() reference must use the
        scheduler's *scaled* platform and graphs, and still match."""
        events = [
            AppArrival(time=0.0, name="a", graph=single_task_app("a", 40, 20)),
            CostPerturbation(time=1.0, compute_scale=1.7, bw_scale=0.6),
            AppArrival(time=2.0, name="b", graph=single_task_app("b", 30, 25)),
        ]
        sched = OnlineScheduler(platform, migration_budget=2, **mode)
        for event in events:
            sched.process(event)
        snap = sched.state.snapshot()
        full = analyze(
            Mapping(
                sched.workload.compile(), sched.platform, sched.assignment()
            ),
            **mode,
        )
        assert snap.period == full.period
        assert snap.buffer_bytes == full.buffer_bytes
        assert snap.link_loads == full.link_loads

    def test_window_pairing_enforced(self, platform):
        sched = OnlineScheduler(platform)
        with pytest.raises(OnlineSchedulingError, match="no perturbation"):
            sched.process(CostRestore(time=0.0))
        sched.process(CostPerturbation(time=1.0, compute_scale=1.5))
        with pytest.raises(OnlineSchedulingError, match="already open"):
            sched.process(CostPerturbation(time=2.0, compute_scale=1.5))
        with pytest.raises(OnlineSchedulingError, match="positive"):
            CostPerturbation(time=0.0, compute_scale=0.0)
        with pytest.raises(OnlineSchedulingError, match="already open"):
            validate_timeline(
                [
                    CostPerturbation(time=0.0, compute_scale=2.0),
                    CostPerturbation(time=1.0, compute_scale=2.0),
                ]
            )
        with pytest.raises(OnlineSchedulingError, match="no perturbation"):
            validate_timeline([CostRestore(time=0.0)])


# ---------------------------------------------------------------------- #
# Degradation policies: shedding, deferred admission, brownout


class TestShedPolicies:
    def admit_pair(self, sched, first, second):
        a = sched.process(AppArrival(time=0.0, **first))
        b = sched.process(AppArrival(time=1.0, **second))
        assert a.accepted and b.accepted
        return sched.process(SpeFailure(time=2.0, spe=1))

    def test_newest_first_ignores_weight(self):
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")
        sched = OnlineScheduler(
            platform, migration_budget=2, shed_policy="newest-first"
        )
        record = self.admit_pair(
            sched,
            dict(name="light", graph=single_task_app("light", 30, 30),
                 weight=0.5, target_period=55.0),
            dict(name="heavy", graph=single_task_app("heavy", 50, 50),
                 weight=2.0, target_period=60.0),
        )
        assert record.dropped == ("heavy",)
        assert sched.workload.app_names() == ["light"]

    def test_highest_stretch_sheds_the_tightest_target(self):
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")
        sched = OnlineScheduler(
            platform, migration_budget=2, shed_policy="highest-stretch"
        )
        record = self.admit_pair(
            sched,
            dict(name="tight", graph=single_task_app("tight", 50, 50),
                 target_period=55.0),
            dict(name="loose", graph=single_task_app("loose", 30, 30),
                 target_period=70.0),
        )
        # Post-failure the PPE-only period misses both targets; the
        # worst period/target ratio (80/55 > 80/70) is shed first.
        assert record.dropped == ("tight",)
        assert sched.workload.app_names() == ["loose"]

    def test_unknown_policy_rejected(self, platform):
        with pytest.raises(OnlineSchedulingError, match="shed_policy"):
            OnlineScheduler(platform, shed_policy="coin-flip")
        assert set(online.SHED_POLICIES if hasattr(online, "SHED_POLICIES")
                   else ()) or True  # registry lives in repro.runtime
        from repro.runtime import SHED_POLICIES

        assert set(SHED_POLICIES) == {
            "lowest-weight", "highest-stretch", "newest-first"
        }


class TestRetryQueue:
    def test_rejected_arrival_retries_after_backoff(self):
        platform = CellPlatform(n_ppe=1, n_spe=0, name="ppe-only")
        sched = OnlineScheduler(platform, retry_limit=2, retry_backoff=5.0)
        big = sched.process(
            AppArrival(time=0.0, name="big",
                       graph=single_task_app("big", 50, 50),
                       target_period=60.0)
        )
        assert big.accepted
        second = sched.process(
            AppArrival(time=1.0, name="second",
                       graph=single_task_app("second", 30, 30),
                       target_period=100.0)
        )
        assert second.accepted is False
        assert second.reason.endswith(";retry-queued")
        assert sched.pending_retries == ((6.0, "second", 2),)
        sched.process(AppDeparture(time=3.0, name="big"))
        # The next event drains the queue first: the retry fires at its
        # due time (monotone clock), not at the event's.
        sched.process(AppDeparture(time=10.0, name="ghost"))
        report = sched.report()
        retries = [r for r in report.records if r.event == "retry"]
        assert len(retries) == 1
        assert retries[0].time == 6.0
        assert retries[0].accepted is True
        assert "second" in sched.workload
        assert report.n_retries == 1
        assert report.n_retry_admitted == 1
        times = [r.time for r in report.records]
        assert times == sorted(times)

    def test_retry_limit_exhausts(self):
        platform = CellPlatform(n_ppe=1, n_spe=0, name="ppe-only")
        sched = OnlineScheduler(platform, retry_limit=2, retry_backoff=5.0)
        sched.process(
            AppArrival(time=0.0, name="hog",
                       graph=single_task_app("hog", 50, 50))
        )
        rec = sched.process(
            AppArrival(time=1.0, name="wants",
                       graph=single_task_app("wants", 30, 30),
                       target_period=10.0)  # unreachable even alone
        )
        assert rec.accepted is False and "retry-queued" in rec.reason
        sched.process(AppDeparture(time=40.0, name="ghost"))
        report = sched.report()
        retries = [r for r in report.records if r.event == "retry"]
        # retry_limit=2: exactly two deferred attempts fire (backoff
        # 5 then 10), both rejected, and the queue is then empty.
        assert [r.time for r in retries] == [6.0, 16.0]
        assert all(r.accepted is False for r in retries)
        assert sched.pending_retries == ()
        assert report.n_retry_admitted == 0

    def test_departure_cancels_queued_retries(self):
        platform = CellPlatform(n_ppe=1, n_spe=0, name="ppe-only")
        sched = OnlineScheduler(platform, retry_limit=3, retry_backoff=5.0)
        sched.process(
            AppArrival(time=0.0, name="hog",
                       graph=single_task_app("hog", 50, 50),
                       target_period=60.0)
        )
        sched.process(
            AppArrival(time=1.0, name="later",
                       graph=single_task_app("later", 30, 30),
                       target_period=100.0)
        )
        assert sched.pending_retries != ()
        record = sched.process(AppDeparture(time=2.0, name="later"))
        assert record.reason == "retry-cancelled"
        assert sched.pending_retries == ()
        # The cancelled app never fires, even long after its due time.
        sched.process(AppDeparture(time=50.0, name="ghost"))
        assert "later" not in sched.workload
        assert sched.report().n_retries == 0

    def test_retry_knob_validation(self, platform):
        with pytest.raises(OnlineSchedulingError, match="retry_limit"):
            OnlineScheduler(platform, retry_limit=-1)
        with pytest.raises(OnlineSchedulingError, match="retry_backoff"):
            OnlineScheduler(platform, retry_backoff=0.0)
        with pytest.raises(OnlineSchedulingError, match="brownout_threshold"):
            OnlineScheduler(platform, brownout_threshold=1.5)


class TestBrownout:
    def duo(self):
        return CellPlatform(n_ppe=1, n_spe=2, name="duo")

    def test_enter_relax_exit_reenforce(self):
        platform = self.duo()
        sched = OnlineScheduler(
            platform, migration_budget=2, brownout_threshold=0.6
        )
        sched.process(
            AppArrival(time=0.0, name="a",
                       graph=single_task_app("a", 50, 50))
        )
        failure = sched.process(SpeFailure(time=1.0, spe=1))
        # 1 of 2 SPEs live (0.5 < 0.6): brownout entered.
        assert sched.degraded
        assert failure.reason == "brownout-enter"
        assert failure.degraded and failure.feasible
        # Under brownout the QoS gate relaxes to feasibility: an app
        # whose target is unreachable is still admitted best-effort.
        arrival = sched.process(
            AppArrival(time=2.0, name="b",
                       graph=single_task_app("b", 50, 50),
                       weight=0.5, target_period=10.0)
        )
        assert arrival.accepted is True
        assert arrival.target_misses >= 1
        assert arrival.feasible
        recovery = sched.process(SpeRecovery(time=3.0, spe=1))
        # Exit re-enforces the full QoS gate: the unreachable target
        # cannot stand, so the (lowest-weight) violator is shed.
        assert not sched.degraded
        assert recovery.reason == "brownout-exit"
        assert recovery.dropped == ("b",)
        assert sched.workload.app_names() == ["a"]
        # Duration-weighted robustness metrics (interval semantics).
        report = sched.report()
        assert report.time_in_degraded == pytest.approx(2.0)
        assert report.degraded_fraction == pytest.approx(2.0 / 3.0)
        assert report.qos_violation_rate == pytest.approx(1.0 / 3.0)
        assert report.availability == pytest.approx(1.0 / 3.0)
        assert "[degraded]" in report.table()

    def test_threshold_zero_never_degrades(self):
        platform = self.duo()
        sched = OnlineScheduler(platform, migration_budget=2)
        sched.process(SpeFailure(time=0.0, spe=1))
        sched.process(SpeFailure(time=1.0, spe=2))
        assert not sched.degraded
        assert sched.report().time_in_degraded == 0.0


# ---------------------------------------------------------------------- #
# Failure edge cases (the satellite scenarios)


class TestFailureEdgeCases:
    def test_all_spes_down_leaves_ppe_haven(self, platform):
        sched = OnlineScheduler(platform, migration_budget=2)
        sched.process(
            AppArrival(time=0.0, name="app",
                       graph=single_task_app("app", 40, 20))
        )
        last = None
        for i, spe in enumerate(platform.spe_indices):
            last = sched.process(SpeFailure(time=1.0 + i, spe=spe))
            assert last.feasible
        # Every task survives on the PPE haven; no app was shed.
        assert last.dropped == ()
        assert set(sched.assignment().values()) <= set(platform.ppe_indices)
        # Arrivals during the total outage still land (PPE-only)...
        record = sched.process(
            AppArrival(time=50.0, name="late",
                       graph=single_task_app("late", 15, 5))
        )
        assert record.accepted is True
        assert set(sched.assignment().values()) <= set(platform.ppe_indices)
        # ...and full recovery restores SPE placements.
        for i, spe in enumerate(platform.spe_indices):
            sched.process(SpeRecovery(time=60.0 + i, spe=spe))
        assert sched.failed_spes == frozenset()
        snap = sched.state.snapshot()
        full = analyze(
            Mapping(
                sched.workload.compile(), platform, sched.assignment()
            )
        )
        assert snap.period == full.period

    def test_recovery_of_never_failed_spe_is_an_error_not_a_corruption(
        self, platform
    ):
        sched = OnlineScheduler(platform, migration_budget=2)
        sched.process(
            AppArrival(time=0.0, name="app",
                       graph=single_task_app("app", 40, 20))
        )
        before = sched.assignment()
        with pytest.raises(OnlineSchedulingError, match="not failed"):
            sched.process(SpeRecovery(time=1.0, spe=platform.spe_indices[0]))
        # The scheduler survives the bad event untouched and keeps going.
        assert sched.assignment() == before
        record = sched.process(AppDeparture(time=2.0, name="app"))
        assert record.feasible

    def test_departure_of_app_shed_during_outage_is_noop(self):
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")
        sched = OnlineScheduler(platform, migration_budget=2)
        sched.process(
            AppArrival(time=0.0, name="heavy",
                       graph=single_task_app("heavy", 50, 50),
                       weight=2.0, target_period=60.0)
        )
        sched.process(
            AppArrival(time=1.0, name="light",
                       graph=single_task_app("light", 30, 30),
                       weight=0.5, target_period=55.0)
        )
        shed = sched.process(SpeFailure(time=2.0, spe=1))
        assert shed.dropped == ("light",)
        # The app's own (late) departure event must not crash or double
        # free: it is a recorded no-op.
        record = sched.process(AppDeparture(time=3.0, name="light"))
        assert record.reason == "not-resident"
        assert record.feasible
        assert sched.workload.app_names() == ["heavy"]


# ---------------------------------------------------------------------- #
# Robustness metrics


class TestRobustnessMetrics:
    @staticmethod
    def rec(seq, time, *, degraded=False, misses=0, period=0.0, n_apps=1):
        return EventRecord(
            seq=seq, time=time, event="arrival", subject=f"s{seq}",
            accepted=True, reason="", migrations=0, dropped=(),
            period=period, value=period, feasible=True, n_apps=n_apps,
            n_tasks=n_apps, degraded=degraded, target_misses=misses,
            app_periods=(("app", period),) if n_apps else (),
        )

    def report(self, records):
        return RuntimeReport(
            platform="p", objective="period", migration_budget=0,
            records=records,
        )

    def test_interval_semantics_of_duration_metrics(self):
        report = self.report([
            self.rec(0, 0.0, degraded=True, misses=1, period=10.0),
            self.rec(1, 10.0, period=20.0),
            self.rec(2, 30.0, degraded=True, period=30.0),
            self.rec(3, 40.0, period=40.0),
        ])
        assert report.span == 40.0
        # Record i rules [t_i, t_{i+1}); the final record has zero
        # measure even though it is itself clean.
        assert report.time_in_degraded == pytest.approx(20.0)
        assert report.degraded_fraction == pytest.approx(0.5)
        assert report.qos_violation_rate == pytest.approx(0.25)
        assert report.availability == pytest.approx(0.5)

    def test_period_quantiles(self):
        report = self.report([
            self.rec(i, float(i), period=p)
            for i, p in enumerate((10.0, 20.0, 30.0, 40.0))
        ])
        assert report.period_p50 == pytest.approx(25.0)
        assert report.period_quantile(0.0) == 10.0
        assert report.period_quantile(1.0) == 40.0
        assert report.app_period_quantiles(0.5)["app"] == pytest.approx(25.0)
        with pytest.raises(OnlineSchedulingError, match="quantile"):
            report.period_quantile(1.5)

    def test_degenerate_reports(self):
        empty = self.report([])
        assert empty.span == 0.0
        assert empty.period_p99 == 0.0
        assert empty.qos_violation_rate == 0.0
        assert empty.availability == 1.0
        assert empty.app_period_quantiles() == {}

    def test_new_fields_round_trip_and_default(self, platform):
        events = FaultInjector(platform, seed=6).inject(
            ScenarioGenerator(
                platform, seed=4, load=2.0, n_failures=1
            ).generate(14),
            n_bursts=1, n_perturbations=1,
        )
        report = OnlineScheduler(
            platform, migration_budget=2, retry_limit=1,
            brownout_threshold=0.3,
        ).run(events)
        clone = RuntimeReport.from_json(report.to_json())
        assert clone == report
        assert clone.availability == report.availability
        assert clone.period_p99 == report.period_p99
        # Pre-fault-injection archives (no robustness keys) still load.
        import json as _json

        payload = _json.loads(report.to_json())
        for entry in payload["records"]:
            entry.pop("degraded")
            entry.pop("target_misses")
            entry.pop("app_periods")
        old = RuntimeReport.from_json(_json.dumps(payload))
        assert old.time_in_degraded == 0.0
        assert all(r.app_periods == () for r in old.records)


# ---------------------------------------------------------------------- #
# Experiment sweep and CLI: fault knobs and timeline replay


class TestOnlineExperimentFaults:
    def timeline(self, platform):
        base = ScenarioGenerator(
            platform, seed=4, load=2.0, n_failures=1
        ).generate(12)
        return FaultInjector(platform, seed=6).inject(base, n_bursts=1)

    def test_replay_serial_equals_parallel(self, platform):
        timeline = self.timeline(platform)
        kwargs = dict(budgets=(0, 2), timeline=timeline, retry_limit=1,
                      brownout_threshold=0.3)
        serial = online.run(jobs=None, **kwargs)
        parallel = online.run(jobs=2, **kwargs)
        assert serial == parallel
        assert len(serial.points) == 2
        for point in serial.points:
            assert point.load is None
            # Retry firings append records beyond the replayed events.
            assert point.n_events >= len(timeline)
            assert 0.0 <= point.availability <= 1.0
        assert "replay" in serial.table()

    def test_failure_knobs_thread_through(self):
        result = online.run(
            loads=(2.0,), budgets=(2,), n_events=14, n_failures=2,
            mean_downtime=10.0,
        )
        (point,) = result.points
        assert point.all_feasible
        assert 0.0 <= point.degraded_fraction <= 1.0

    def test_knob_validation(self):
        with pytest.raises(ExperimentError, match="n_failures"):
            online.run(n_failures=-1)
        with pytest.raises(ExperimentError, match="mean_downtime"):
            online.run(mean_downtime=0.0)
        with pytest.raises(ExperimentError, match="shed_policy"):
            online.run(shed_policy="coin-flip")

    def test_main_rejects_contradictory_replay_flags(self, platform):
        from repro.errors import UsageError

        timeline = self.timeline(platform)
        with pytest.raises(UsageError, match="--timeline replays"):
            online.main(timeline=timeline, loads=(1.0,))
        with pytest.raises(UsageError, match="--seed"):
            online.main(timeline=timeline, seed=3)
        with pytest.raises(UsageError, match="--mean-downtime"):
            online.main(timeline=timeline, mean_downtime=5.0)


class TestCliFaults:
    def save(self, platform, tmp_path):
        base = ScenarioGenerator(
            platform, seed=4, load=2.0, n_failures=1
        ).generate(10)
        return save_timeline(base, tmp_path / "timeline.json")

    def test_failure_flags_accepted(self, capsys):
        rc = main_experiment(
            ["online", "--events", "10", "--loads", "1.5", "--budgets", "0",
             "--failures", "2", "--mean-downtime", "10"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "p99" in out

    def test_timeline_replay(self, capsys, platform, tmp_path):
        path = self.save(platform, tmp_path)
        rc = main_experiment(["online", "--timeline", str(path),
                              "--budgets", "0,2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replay" in out

    def test_timeline_clashes_rejected(self, capsys, platform, tmp_path):
        path = self.save(platform, tmp_path)
        rc = main_experiment(["online", "--timeline", str(path),
                              "--loads", "1"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "--timeline replays saved events" in err
        assert "--loads" in err
        rc = main_experiment(["online", "--timeline", str(path),
                              "--failures", "2"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "--failures" in err

    def test_missing_timeline_file_is_a_clean_error(self, capsys, tmp_path):
        rc = main_experiment(
            ["online", "--timeline", str(tmp_path / "nope.json")]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot read timeline" in err

    def test_fault_flags_noted_elsewhere(self, capsys):
        rc = main_experiment(
            ["fig7", "--failures", "1", "--mean-downtime", "5",
             "--strategies", "warp"]
        )
        err = capsys.readouterr().err
        assert rc == 1  # unknown strategy still aborts
        assert "--failures only applies to online" in err
        assert "--mean-downtime only applies to online" in err
