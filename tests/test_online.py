"""The online scheduling runtime: events, scenarios, scheduler, sweep.

The acceptance bar of the runtime PR: a seeded end-to-end scenario of
≥20 events (including at least one SPE failure) must be deterministic
per seed, keep every intermediate (post-event) mapping feasible, and
keep the scheduler's ``DeltaAnalyzer.snapshot()`` bit-identical to a
fresh ``analyze()`` of the surviving workload in **all** buffer-model
modes; the experiment sweep must give identical results serially and in
parallel.
"""

import math

import pytest

from repro.cli import main_experiment
from repro.errors import (
    ExperimentError,
    GeneratorError,
    ObjectiveError,
    OnlineSchedulingError,
)
from repro.experiments import online
from repro.graph import StreamGraph, Task
from repro.platform import CellPlatform
from repro.runtime import (
    AppArrival,
    AppDeparture,
    OnlineScheduler,
    RuntimeReport,
    ScenarioGenerator,
    SpeFailure,
    SpeRecovery,
    validate_timeline,
)
from repro.runtime.scenario import solo_period_bound
from repro.steady_state import Mapping, analyze

#: The four buffer-model configurations the evaluation engine supports.
ALL_MODES = (
    {},
    {"elide_local_comm": True},
    {"merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)
MODE_IDS = ("default", "elide", "merge", "elide+merge")


def single_task_app(name: str, wppe: float, wspe: float) -> StreamGraph:
    g = StreamGraph(name)
    g.add_task(Task("work", wppe=wppe, wspe=wspe))
    return g


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


# ---------------------------------------------------------------------- #
# Events and timeline validation


class TestTimeline:
    def test_validate_accepts_sorted(self, platform):
        events = ScenarioGenerator(platform, seed=1).generate(10)
        assert validate_timeline(events) == list(events)
        assert [e.time for e in events] == sorted(e.time for e in events)

    def test_validate_rejects_unsorted(self):
        g = single_task_app("a", 10.0, 5.0)
        events = [
            AppArrival(time=5.0, name="a", graph=g),
            AppDeparture(time=1.0, name="a"),
        ]
        with pytest.raises(OnlineSchedulingError, match="back in time"):
            validate_timeline(events)

    def test_validate_rejects_negative_time_and_junk(self):
        with pytest.raises(OnlineSchedulingError, match="negative time"):
            validate_timeline([AppDeparture(time=-1.0, name="x")])
        with pytest.raises(OnlineSchedulingError, match="not a runtime event"):
            validate_timeline(["not-an-event"])

    def test_scheduler_rejects_time_regression(self, platform):
        sched = OnlineScheduler(platform)
        sched.process(AppDeparture(time=10.0, name="ghost"))
        with pytest.raises(OnlineSchedulingError, match="time order"):
            sched.process(AppDeparture(time=5.0, name="ghost"))


# ---------------------------------------------------------------------- #
# Scenario generation


class TestScenarioGenerator:
    def test_deterministic_per_seed(self, platform):
        a = ScenarioGenerator(platform, seed=4, load=2.0).generate(20)
        b = ScenarioGenerator(platform, seed=4, load=2.0).generate(20)
        assert len(a) == len(b) == 20
        for x, y in zip(a, b):
            assert type(x) is type(y)
            assert x.time == y.time
            assert x.subject == y.subject
        c = ScenarioGenerator(platform, seed=5, load=2.0).generate(20)
        assert [e.time for e in a] != [e.time for e in c]

    def test_exact_event_count_and_failures(self, platform):
        for n in (2, 3, 20, 25):
            events = ScenarioGenerator(platform, seed=0, n_failures=2).generate(n)
            assert len(events) == n
        events = ScenarioGenerator(platform, seed=0, n_failures=2).generate(24)
        failures = [e for e in events if isinstance(e, SpeFailure)]
        recoveries = [e for e in events if isinstance(e, SpeRecovery)]
        assert len(failures) == len(recoveries) == 2
        # Distinct SPEs: overlapping windows can never double-fail one SPE.
        assert len({e.spe for e in failures}) == 2

    def test_no_failures_without_spes(self):
        ppe_only = CellPlatform(n_ppe=1, n_spe=0)
        events = ScenarioGenerator(ppe_only, seed=0, n_failures=3).generate(12)
        assert not any(isinstance(e, (SpeFailure, SpeRecovery)) for e in events)
        assert len(events) == 12

    def test_targets_use_slack_over_bound(self, platform):
        lo, hi = 3.0, 4.0
        gen = ScenarioGenerator(
            platform, seed=2, target_probability=1.0, target_slack=(lo, hi)
        )
        arrivals = [e for e in gen.generate(16) if isinstance(e, AppArrival)]
        assert arrivals
        for arrival in arrivals:
            bound = solo_period_bound(arrival.graph)
            assert lo * bound <= arrival.target_period <= hi * bound

    def test_zero_bound_builder_gets_positive_targets(self, platform):
        """A graph that is free on one PE kind must not produce a
        target_period of 0 (WorkloadError at arrival); the bound is
        clamped like objective.reference_periods."""
        def free_app():
            g = StreamGraph("free")
            g.add_task(Task("noop", wppe=1.0, wspe=0.0))
            return g

        gen = ScenarioGenerator(
            platform,
            seed=1,
            builders={"free": free_app},
            target_probability=1.0,
        )
        events = gen.generate(10)
        for event in events:
            if isinstance(event, AppArrival):
                assert event.target_period > 0
        report = OnlineScheduler(platform).run(events)
        assert report.all_feasible

    def test_parameter_validation(self, platform):
        with pytest.raises(GeneratorError, match="load"):
            ScenarioGenerator(platform, load=0.0)
        with pytest.raises(GeneratorError, match="mean_service"):
            ScenarioGenerator(platform, mean_service=-1.0)
        with pytest.raises(GeneratorError, match="target_slack"):
            ScenarioGenerator(platform, target_slack=(2.0, 1.0))
        with pytest.raises(GeneratorError, match="n_events"):
            ScenarioGenerator(platform).generate(1)


# ---------------------------------------------------------------------- #
# The end-to-end acceptance bar


class TestEndToEndAcceptance:
    """≥20 events incl. ≥1 SPE failure: deterministic, always feasible,
    snapshot bit-identical to a fresh analyze() in every buffer mode."""

    @pytest.mark.parametrize("mode", ALL_MODES, ids=MODE_IDS)
    def test_snapshot_bit_identical_every_event(self, platform, mode):
        events = ScenarioGenerator(platform, seed=5, load=2.5).generate(22)
        assert len(events) >= 20
        assert any(isinstance(e, SpeFailure) for e in events)
        sched = OnlineScheduler(platform, migration_budget=3, **mode)
        for event in events:
            record = sched.process(event)
            # Every intermediate (post-event) mapping is feasible.
            assert record.feasible
            if sched.state is None:
                continue
            snap = sched.state.snapshot()
            composite = sched.workload.compile()
            full = analyze(
                Mapping(composite, platform, sched.assignment()), **mode
            )
            assert snap.period == full.period
            assert snap.app_periods == full.app_periods
            assert snap.loads == full.loads
            assert snap.buffer_bytes == full.buffer_bytes
            assert snap.dma_in == full.dma_in
            assert snap.dma_proxy == full.dma_proxy
            assert snap.violations == full.violations
            assert snap.link_loads == full.link_loads
            assert snap.mapping == full.mapping

    def test_deterministic_per_seed(self, platform):
        def play(seed):
            events = ScenarioGenerator(platform, seed=seed, load=2.0).generate(24)
            return OnlineScheduler(platform, migration_budget=2).run(events)

        assert play(11) == play(11)
        assert play(11) != play(12)

    def test_delta_matches_reference_path(self, platform):
        """use_delta=False (full analyze per candidate) must take the
        exact same decisions on integer-cost graphs."""
        def play(use_delta):
            events = ScenarioGenerator(platform, seed=5, load=2.5).generate(20)
            sched = OnlineScheduler(
                platform, migration_budget=2, use_delta=use_delta
            )
            report = sched.run(events)
            return report, sched.assignment()

        fast_report, fast_assign = play(True)
        slow_report, slow_assign = play(False)
        assert fast_report == slow_report
        assert fast_assign == slow_assign

    def test_multi_cell_platform(self):
        """The runtime works unchanged on the dual-Cell platform (BIF
        link loads included in the bit-identity check)."""
        platform = CellPlatform.qs22_dual()
        events = ScenarioGenerator(platform, seed=9, load=3.0).generate(20)
        sched = OnlineScheduler(platform, migration_budget=2)
        for event in events:
            record = sched.process(event)
            assert record.feasible
            if sched.state is not None:
                snap = sched.state.snapshot()
                full = analyze(sched.state.mapping())
                assert snap.period == full.period
                assert snap.link_loads == full.link_loads

    @pytest.mark.parametrize("objective", ("weighted", "max_stretch"))
    def test_app_aware_objectives(self, platform, objective):
        events = ScenarioGenerator(platform, seed=3, load=2.0).generate(20)
        sched = OnlineScheduler(
            platform, objective=objective, migration_budget=2
        )
        report = sched.run(events)
        assert report.all_feasible
        assert report.objective == objective


# ---------------------------------------------------------------------- #
# Admission control


class TestAdmission:
    def test_unreachable_target_rejected_cleanly(self, platform):
        g = single_task_app("greedy", 50.0, 50.0)
        sched = OnlineScheduler(platform)
        record = sched.process(
            AppArrival(time=0.0, name="greedy", graph=g, target_period=10.0)
        )
        assert record.accepted is False
        assert "target-missed:greedy" in record.reason
        # No trace: workload empty, no state, nothing mapped.
        assert len(sched.workload) == 0
        assert sched.state is None
        assert sched.assignment() == {}

    def test_admission_protects_resident_targets(self):
        """An arrival that would push the shared period past a resident
        app's target is rejected even if it has no target itself."""
        platform = CellPlatform(n_ppe=1, n_spe=0, name="ppe-only")
        sched = OnlineScheduler(platform)
        first = sched.process(
            AppArrival(
                time=0.0,
                name="resident",
                graph=single_task_app("resident", 50.0, 50.0),
                target_period=60.0,
            )
        )
        assert first.accepted is True
        second = sched.process(
            AppArrival(
                time=1.0,
                name="intruder",
                graph=single_task_app("intruder", 30.0, 30.0),
            )
        )
        assert second.accepted is False
        assert "target-missed:resident" in second.reason
        assert sched.workload.app_names() == ["resident"]

    def test_duplicate_resident_name_rejected(self, platform):
        g = single_task_app("dup", 10.0, 5.0)
        sched = OnlineScheduler(platform)
        assert sched.process(
            AppArrival(time=0.0, name="dup", graph=g)
        ).accepted is True
        record = sched.process(
            AppArrival(time=1.0, name="dup", graph=single_task_app("dup2", 8.0, 4.0))
        )
        assert record.accepted is False
        assert record.reason == "duplicate-name"
        assert len(sched.workload) == 1

    def test_budget_can_rescue_an_arrival(self):
        """A tight target only reachable by remapping a resident task:
        budget 0 rejects, budget ≥ 1 admits — the admission side of the
        period-vs-reconfiguration trade."""
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")

        def play(budget):
            sched = OnlineScheduler(platform, migration_budget=budget)
            # Resident prefers the PPE (cheaper there), then the arrival
            # needs the PPE to itself: only a resident migration to the
            # SPE makes the target reachable.
            sched.process(
                AppArrival(
                    time=0.0,
                    name="resident",
                    graph=single_task_app("resident", 20.0, 25.0),
                )
            )
            # Without migrations: newcomer on PPE → 50, on SPE → 100,
            # both past the 35 µs target.  Moving the resident to the
            # SPE first gives max(25, 30) = 30 ≤ 35.
            return sched.process(
                AppArrival(
                    time=1.0,
                    name="newcomer",
                    graph=single_task_app("newcomer", 30.0, 100.0),
                    target_period=35.0,
                )
            )

        rejected = play(0)
        assert rejected.accepted is False
        admitted = play(1)
        assert admitted.accepted is True
        assert admitted.migrations == 1


# ---------------------------------------------------------------------- #
# Departures and the migration budget


class TestDeparture:
    def test_departure_of_unadmitted_app_is_noop(self, platform):
        sched = OnlineScheduler(platform)
        record = sched.process(AppDeparture(time=0.0, name="never-arrived"))
        assert record.accepted is None
        assert record.reason == "not-resident"
        assert sched.state is None

    def test_departure_frees_and_reoptimizes_within_budget(self, platform):
        events = ScenarioGenerator(platform, seed=7, load=3.0).generate(24)
        budget = 2
        sched = OnlineScheduler(platform, migration_budget=budget)
        report = sched.run(events)
        for record in report.records:
            if record.event in ("departure", "recovery", "arrival"):
                assert record.migrations <= budget
        # Last departure of each admitted app eventually empties the mix.
        assert report.records[-1].n_apps == len(sched.workload)

    def test_zero_budget_never_migrates_outside_failures(self, platform):
        events = ScenarioGenerator(platform, seed=7, load=3.0).generate(24)
        report = OnlineScheduler(platform, migration_budget=0).run(events)
        for record in report.records:
            if record.event != "failure":
                assert record.migrations == 0

    def test_negative_budget_rejected(self, platform):
        with pytest.raises(OnlineSchedulingError, match="migration_budget"):
            OnlineScheduler(platform, migration_budget=-1)
        with pytest.raises(ObjectiveError, match="unknown objective"):
            OnlineScheduler(platform, objective="fastest")


# ---------------------------------------------------------------------- #
# SPE failure and recovery


class TestFailure:
    def test_failed_spe_is_fully_evacuated(self, platform):
        events = ScenarioGenerator(
            platform, seed=5, load=3.0, n_failures=1
        ).generate(22)
        sched = OnlineScheduler(platform, migration_budget=2)
        saw_failure = False
        for event in events:
            sched.process(event)
            if isinstance(event, SpeFailure):
                saw_failure = True
                assert event.spe in sched.failed_spes
                assert all(
                    pe != event.spe for pe in sched.assignment().values()
                )
            if isinstance(event, SpeRecovery):
                assert event.spe not in sched.failed_spes
        assert saw_failure

    def test_failure_drops_lowest_weight_app(self):
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tiny")
        sched = OnlineScheduler(platform, migration_budget=2)
        heavy = sched.process(
            AppArrival(
                time=0.0,
                name="heavy",
                graph=single_task_app("heavy", 50.0, 50.0),
                weight=2.0,
                target_period=60.0,
            )
        )
        light = sched.process(
            AppArrival(
                time=1.0,
                name="light",
                graph=single_task_app("light", 30.0, 30.0),
                weight=0.5,
                target_period=55.0,
            )
        )
        assert heavy.accepted and light.accepted
        # Both fit: one of them runs on the sole SPE (shared period 50).
        assert sched.state.period() == 50.0
        record = sched.process(SpeFailure(time=2.0, spe=1))
        # PPE-only cannot hold both under their targets: the lightest
        # goes, the survivor meets its target again.
        assert record.dropped == ("light",)
        assert record.feasible
        assert sched.workload.app_names() == ["heavy"]
        assert sched.state.period() == 50.0 <= 60.0

    def test_failure_validation(self, platform):
        sched = OnlineScheduler(platform)
        with pytest.raises(OnlineSchedulingError, match="not an SPE"):
            sched.process(SpeFailure(time=0.0, spe=0))  # PE 0 is the PPE
        with pytest.raises(OnlineSchedulingError, match="not an SPE"):
            sched.process(SpeFailure(time=0.0, spe=99))
        sched.process(SpeFailure(time=1.0, spe=3))
        with pytest.raises(OnlineSchedulingError, match="already failed"):
            sched.process(SpeFailure(time=2.0, spe=3))
        with pytest.raises(OnlineSchedulingError, match="not failed"):
            sched.process(SpeRecovery(time=3.0, spe=4))

    def test_arrival_during_outage_avoids_failed_spe(self, platform):
        sched = OnlineScheduler(platform, migration_budget=2)
        for spe in platform.spe_indices:
            if spe != platform.spe_indices[0]:
                sched.process(SpeFailure(time=0.0, spe=spe))
        live_spe = platform.spe_indices[0]
        record = sched.process(
            AppArrival(
                time=1.0,
                name="app",
                graph=single_task_app("app", 100.0, 10.0),
            )
        )
        assert record.accepted is True
        used = set(sched.assignment().values())
        assert used <= {0, live_spe}


# ---------------------------------------------------------------------- #
# The shared primitives the runtime contributed to the offline layers


class TestRuntimePrimitives:
    def test_delta_tasks_on_mirrors_mapping(self, platform):
        from repro.errors import MappingError
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("two")
        g.add_task(Task("a", wppe=10.0, wspe=5.0))
        g.add_task(Task("b", wppe=10.0, wspe=5.0))
        state = DeltaAnalyzer(Mapping(g, platform, {"a": 0, "b": 2}))
        assert state.tasks_on(0) == ["a"]
        assert state.tasks_on(2) == ["b"]
        assert state.tasks_on(1) == []
        state.apply_move("b", 0)
        assert state.tasks_on(0) == ["a", "b"]
        with pytest.raises(MappingError, match="invalid PE"):
            state.tasks_on(platform.n_pes)

    def test_budgeted_descent_respects_budget_and_pes(self, platform):
        from repro.heuristics import budgeted_descent
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("spread")
        for i in range(4):
            g.add_task(Task(f"t{i}", wppe=40.0, wspe=10.0))
        start = Mapping.all_on_ppe(g, platform)  # period 160 on the PPE
        state = DeltaAnalyzer(start)
        moved = budgeted_descent(state, budget=2)
        assert moved == 2  # improving moves exist beyond the budget
        assert state.period() < 160.0
        # Restricted to the PPE only, there is nowhere to go.
        state2 = DeltaAnalyzer(start)
        assert budgeted_descent(state2, budget=5, pes=[0]) == 0
        assert budgeted_descent(state2, budget=0) == 0

    def test_budgeted_descent_period_cap(self, platform):
        """Under the cap, no move may cross it — even an objective-
        improving one; above the cap, descent is allowed."""
        from repro.heuristics import budgeted_descent
        from repro.steady_state import DeltaAnalyzer

        g = StreamGraph("capped")
        for i in range(3):
            g.add_task(Task(f"t{i}", wppe=30.0, wspe=10.0))
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))  # period 90
        # Cap far below: only period-reducing moves allowed — descent runs.
        moved = budgeted_descent(state, budget=10, period_cap=1.0)
        assert moved > 0
        assert state.period() < 90.0


# ---------------------------------------------------------------------- #
# Report serialization


class TestReport:
    def test_json_round_trip(self, platform):
        events = ScenarioGenerator(platform, seed=5, load=2.0).generate(20)
        report = OnlineScheduler(platform, migration_budget=2).run(events)
        assert report.n_events == 20
        clone = RuntimeReport.from_json(report.to_json())
        assert clone == report
        assert clone.acceptance_rate == report.acceptance_rate
        assert clone.mean_period == report.mean_period

    def test_malformed_json_rejected(self):
        with pytest.raises(OnlineSchedulingError, match="malformed"):
            RuntimeReport.from_json("{not json")
        with pytest.raises(OnlineSchedulingError, match="malformed"):
            RuntimeReport.from_json('{"platform": "x"}')

    def test_aggregates(self, platform):
        report = RuntimeReport(platform="p", objective="period", migration_budget=1)
        assert report.acceptance_rate == 1.0  # vacuous: nothing arrived
        assert report.mean_period == 0.0
        assert report.total_migrations == 0
        assert report.all_feasible

    def test_table_mentions_outcomes(self, platform):
        events = ScenarioGenerator(platform, seed=5, load=2.0).generate(16)
        report = OnlineScheduler(platform).run(events)
        table = report.table()
        assert "acceptance" in table
        assert "mean period" in table


# ---------------------------------------------------------------------- #
# The experiment sweep


class TestOnlineExperiment:
    def test_serial_equals_parallel(self):
        kwargs = dict(loads=(1.0, 2.0), budgets=(0, 2), n_events=12)
        serial = online.run(jobs=None, **kwargs)
        parallel = online.run(jobs=2, **kwargs)
        assert serial == parallel
        assert len(serial.points) == 4
        for point in serial.points:
            assert point.all_feasible
            assert 0.0 <= point.acceptance_rate <= 1.0
            assert math.isfinite(point.mean_period)

    def test_budget_columns_share_the_timeline(self):
        """Same load, different budgets: identical arrival streams, so
        arrival counts match across the budget axis."""
        result = online.run(loads=(2.0,), budgets=(0, 4), n_events=14)
        by_budget = {p.budget: p for p in result.points}
        assert by_budget[0].arrivals == by_budget[4].arrivals

    def test_validation(self):
        with pytest.raises(ExperimentError, match="loads"):
            online.run(loads=())
        with pytest.raises(ExperimentError, match="loads"):
            online.run(loads=(0.0,))
        with pytest.raises(ExperimentError, match="budgets"):
            online.run(budgets=(-1,))
        with pytest.raises(ExperimentError, match="n_events"):
            online.run(n_events=1)
        with pytest.raises(ExperimentError, match="unknown objective"):
            online.run(objective="throughput")

    def test_main_surfaces_invalid_explicit_values(self):
        """main() must not silently swap explicit-but-invalid values
        (0 events, empty lists) for the defaults."""
        with pytest.raises(ExperimentError, match="n_events"):
            online.main(loads=(1.0,), budgets=(0,), n_events=0)
        with pytest.raises(ExperimentError, match="loads"):
            online.main(loads=())

    def test_table_lists_points(self):
        result = online.run(loads=(1.5,), budgets=(1,), n_events=8)
        table = result.table()
        assert "1.50" in table
        assert "migration budget" in table or "migrations" in table


class TestCli:
    def test_online_subcommand(self, capsys):
        rc = main_experiment(
            ["online", "--events", "10", "--loads", "1.5",
             "--budgets", "0,2", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "acceptance" in out.lower() or "rate" in out

    def test_online_rejects_bad_loads(self, capsys):
        rc = main_experiment(["online", "--loads", "fast"])
        assert rc == 1
        assert "--loads" in capsys.readouterr().err
        rc = main_experiment(["online", "--loads", "0"])
        assert rc == 1
        assert "positive" in capsys.readouterr().err

    def test_online_rejects_bad_budgets_and_events(self, capsys):
        rc = main_experiment(["online", "--budgets", "-2"])
        assert rc == 1
        assert "--budgets" in capsys.readouterr().err
        rc = main_experiment(["online", "--events", "1"])
        assert rc == 1
        assert "--events" in capsys.readouterr().err

    def test_online_flags_noted_elsewhere(self, capsys):
        rc = main_experiment(
            ["fig7", "--loads", "1", "--budgets", "2", "--strategies", "warp"]
        )
        err = capsys.readouterr().err
        assert rc == 1  # unknown strategy still aborts
        assert "--loads only applies to online" in err
        assert "--budgets only applies to online" in err

    def test_online_objective_accepted(self, capsys):
        rc = main_experiment(
            ["online", "--events", "8", "--loads", "1",
             "--budgets", "0", "--objective", "weighted"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "weighted" in out
