"""Tests for repro.steady_state.periods — the §4.2 timing/buffer model."""

import pytest

from repro.graph import DataEdge, StreamGraph, Task
from repro.steady_state import (
    Mapping,
    buffer_requirements,
    buffer_sizes,
    first_periods,
    spe_buffer_load,
)


class TestFirstPeriods:
    def test_sources_start_at_zero(self, fig3_graph):
        fp = first_periods(fig3_graph)
        assert fp["T1"] == 0

    def test_paper_formula(self, fig3_graph):
        # fp(k) = max_pred fp + peek_k + 2.
        fp = first_periods(fig3_graph)
        assert fp["T2"] == 0 + 0 + 2 == 2
        # Note: the paper's prose says 4 here, but its own formula gives 3
        # (T3's only predecessor is T1); we implement the formula.
        assert fp["T3"] == 0 + 1 + 2 == 3

    def test_peek_chain(self, peek_chain):
        fp = first_periods(peek_chain)
        assert fp == {"a": 0, "b": 3, "c": 7}

    def test_deep_max_over_predecessors(self):
        g = StreamGraph("join")
        for n in ("a", "b", "c", "d"):
            g.add_task(Task(n, wppe=1, wspe=1))
        g.add_edge(DataEdge("a", "b", 1))
        g.add_edge(DataEdge("b", "d", 1))
        g.add_edge(DataEdge("c", "d", 1))
        fp = first_periods(g)
        # d waits for the later of b (fp=2) and c (fp=0).
        assert fp["d"] == 2 + 0 + 2

    def test_monotone_along_edges(self, peek_chain):
        fp = first_periods(peek_chain)
        for e in peek_chain.edges():
            assert fp[e.dst] >= fp[e.src] + 2

    def test_elide_local_comm_requires_mapping(self, peek_chain):
        with pytest.raises(ValueError):
            first_periods(peek_chain, elide_local_comm=True)

    def test_elide_local_comm_tightens(self, peek_chain, qs22):
        same_pe = Mapping.all_on_ppe(peek_chain, qs22)
        fp = first_periods(peek_chain, same_pe, elide_local_comm=True)
        fp_default = first_periods(peek_chain)
        # One period saved per same-PE hop.
        assert fp["b"] == fp_default["b"] - 1
        assert fp["c"] == fp_default["c"] - 2
        # Cross-PE mapping keeps the paper values.
        split = Mapping(peek_chain, qs22, {"a": 0, "b": 1, "c": 2})
        assert first_periods(peek_chain, split, elide_local_comm=True) == {
            "a": 0, "b": 3, "c": 7,
        }


class TestBufferSizes:
    def test_formula(self, peek_chain):
        # buff(k,l) = data * (fp(l) - fp(k)).
        sizes = buffer_sizes(peek_chain)
        assert sizes[("a", "b")] == 100.0 * 3
        assert sizes[("b", "c")] == 200.0 * 4

    def test_requirements_sum_in_and_out(self, peek_chain):
        need = buffer_requirements(peek_chain)
        assert need["a"] == 300.0  # out only
        assert need["b"] == 300.0 + 800.0  # in + out
        assert need["c"] == 800.0  # in only

    def test_duplication_even_same_pe(self, peek_chain, qs22):
        # §4.2: both buffers allocated even if neighbours share a PE.
        need_plain = buffer_requirements(peek_chain)
        mapping = Mapping.all_on_ppe(peek_chain, qs22)
        merged = buffer_requirements(
            peek_chain, mapping, merge_same_pe_buffers=True
        )
        # Future-work optimisation: the consumer-side copy is saved, so
        # each task keeps only its output buffers.
        assert merged["b"] == 800.0  # out buffer (b,c); in buffer merged away
        assert merged["c"] == 0.0
        assert merged["a"] == need_plain["a"]
        assert sum(merged.values()) < sum(need_plain.values())

    def test_merge_requires_mapping(self, peek_chain):
        with pytest.raises(ValueError):
            buffer_requirements(peek_chain, merge_same_pe_buffers=True)

    def test_spe_buffer_load(self, peek_chain, qs22):
        mapping = Mapping(peek_chain, qs22, {"a": 1, "b": 1, "c": 0})
        load = spe_buffer_load(mapping)
        need = buffer_requirements(peek_chain)
        assert load[1] == need["a"] + need["b"]
        assert load[2] == 0.0
        assert 0 not in load  # the PPE has no store limit
