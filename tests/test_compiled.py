"""The compiled-kernel layer: ``CompiledGraph`` arrays and the batched API.

Three families of guarantees:

* **structure** — the integer-indexed arrays are a faithful view of the
  graph: name↔index is a bijection preserving insertion order
  (hypothesis property), CSR adjacency matches ``in_edges``/``out_edges``
  edge for edge, incident edge ids follow global edge order (the
  ``buffer_requirements`` accumulation order), and composites carry an
  ``app_index`` that agrees with ``CompositeGraph.app_of``;
* **memoization** — ``compile_graph`` is cached per graph *version*:
  same version returns the same object, any mutation recompiles (the
  version-bump side is audited in ``test_graph_version.py``);
* **batched = scalar** — ``score_moves`` / ``evaluate_moves`` /
  ``best_move`` return exactly the per-candidate verdicts on
  integer-cost graphs, across platforms (incl. dual-Cell BIF links),
  buffer-model modes (where the batched API falls back to the
  per-candidate path) and objectives, interleaved with applies; and the
  incrementally-maintained ``tasks_on`` membership matches the O(V)
  reference after arbitrary move sequences;
* **numpy = scalar = analyze** — a hypothesis property suite: under the
  vectorized numpy kernel backend, every whole-neighbourhood /
  swap-pair / population batch returns bit-identical verdicts to the
  scalar kernel *and* to a fresh ``analyze()`` of the explicitly-built
  candidate mapping, across all four buffer-model modes, the test
  platforms and all three objectives (``tests/test_backend.py`` covers
  the selection layer itself).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_delta import PLATFORMS, integer_cost_graph

from repro.errors import MappingError
from repro.graph import DataEdge, StreamGraph, Task, Workload
from repro.platform import CellPlatform
from repro.steady_state import (
    DeltaAnalyzer,
    Mapping,
    analyze,
    compile_graph,
    make_objective,
    numpy_available,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)

MODES = (
    {},
    {"elide_local_comm": True},
    {"merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)
MODE_IDS = ("default", "elide", "merge", "elide+merge")


def build_composite(seed: int = 0):
    w = Workload(f"mix{seed}")
    for i in range(3):
        w.add_app(f"app{i}", integer_cost_graph(seed * 10 + i, n_min=4, n_max=8))
    return w.compile()


class TestCompiledStructure:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_name_index_round_trip(self, seed):
        """names[index[n]] == n for every task, in insertion order."""
        g = integer_cost_graph(seed % 1000)
        cg = compile_graph(g)
        assert list(cg.names) == g.task_names()
        assert len(cg.index) == cg.n == g.n_tasks
        for tid, name in enumerate(cg.names):
            assert cg.index[name] == tid
            assert cg.names[cg.index[name]] == name

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_csr_matches_adjacency(self, seed):
        """CSR slices reproduce in_edges/out_edges edge for edge."""
        g = integer_cost_graph(seed % 1000)
        cg = compile_graph(g)
        for tid, name in enumerate(cg.names):
            ins = [
                (cg.names[cg.in_src[k]], cg.in_data[k])
                for k in range(cg.in_ptr[tid], cg.in_ptr[tid + 1])
            ]
            assert ins == [(e.src, e.data) for e in g.in_edges(name)]
            outs = [
                (cg.names[cg.out_dst[k]], cg.out_data[k])
                for k in range(cg.out_ptr[tid], cg.out_ptr[tid + 1])
            ]
            assert outs == [(e.dst, e.data) for e in g.out_edges(name)]

    def test_edge_arrays_follow_insertion_order(self):
        g = integer_cost_graph(7)
        cg = compile_graph(g)
        edges = list(g.edges())
        assert cg.n_edges == len(edges)
        for e, edge in enumerate(edges):
            assert cg.names[cg.edge_src[e]] == edge.src
            assert cg.names[cg.edge_dst[e]] == edge.dst
            assert cg.edge_data[e] == edge.data
            assert cg.edge_keys[e] == edge.key

    def test_incident_ids_follow_global_edge_order(self):
        """inc_eid per task is sorted — the accumulation order
        buffer_requirements uses, the bit-exactness anchor of the
        mapping-dependent modes."""
        g = integer_cost_graph(11)
        cg = compile_graph(g)
        for tid in range(cg.n):
            eids = cg.inc_eid[cg.inc_ptr[tid]:cg.inc_ptr[tid + 1]]
            assert eids == sorted(eids)
            for e in eids:
                assert tid in (cg.edge_src[e], cg.edge_dst[e])

    def test_cost_tables_and_need(self):
        g = integer_cost_graph(3)
        cg = compile_graph(g)
        from repro.steady_state import buffer_requirements

        need = buffer_requirements(g)
        for tid, task in enumerate(g.tasks()):
            assert cg.wppe[tid] == task.wppe
            assert cg.wspe[tid] == task.wspe
            assert cg.read[tid] == task.read
            assert cg.write[tid] == task.write
            assert cg.peek[tid] == task.peek
            assert cg.need_default[tid] == need[task.name]

    def test_plain_graph_has_no_app_index(self):
        cg = compile_graph(integer_cost_graph(5))
        assert cg.app_index is None
        assert cg.app_names == ()

    def test_composite_app_index_agrees_with_app_of(self):
        """The flat app_index reproduces CompositeGraph.app_of exactly."""
        composite = build_composite(2)
        cg = compile_graph(composite)
        assert cg.app_names == composite.app_names
        assert cg.app_index is not None
        for tid, name in enumerate(cg.names):
            assert cg.app_names[cg.app_index[tid]] == composite.app_of[name]


class TestCompiledMemoization:
    def test_same_version_shares_one_compilation(self):
        g = integer_cost_graph(1)
        assert compile_graph(g) is compile_graph(g)

    def test_analyzers_share_the_compilation(self):
        g = integer_cost_graph(1)
        platform = CellPlatform.qs22()
        mapping = Mapping.all_on_ppe(g, platform)
        a = DeltaAnalyzer(mapping)
        b = DeltaAnalyzer(mapping)
        assert a._cg is b._cg is compile_graph(g)
        assert a.clone()._cg is a._cg

    def test_mutation_recompiles(self):
        g = integer_cost_graph(1)
        before = compile_graph(g)
        g.replace_task(Task("t0", wppe=123.0, wspe=45.0))
        after = compile_graph(g)
        assert after is not before
        assert after.version == g.version
        assert after.wppe[after.index["t0"]] == 123.0


class TestBatchedEquivalence:
    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_score_moves_matches_score_move(self, seed, mode):
        """Batched == scalar verdicts, interleaved with random applies."""
        g = integer_cost_graph(seed)
        platform = PLATFORMS[seed % len(PLATFORMS)]
        rng = random.Random(9000 + seed)
        names = g.task_names()
        state = DeltaAnalyzer(
            Mapping(
                g, platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            ),
            **mode,
        )
        for _ in range(6):
            name = rng.choice(names)
            batched = state.score_moves(name)
            assert len(batched) == platform.n_pes
            for pe in range(platform.n_pes):
                assert batched[pe] == state.score_move(name, pe)
            # a custom target list stays aligned with its entries
            subset = rng.sample(range(platform.n_pes), k=3)
            for pe, score in zip(subset, state.score_moves(name, subset)):
                assert score == state.score_move(name, pe)
            state.apply_move(rng.choice(names), rng.randrange(platform.n_pes))

    @pytest.mark.parametrize("objective", ("period", "weighted", "max_stretch"))
    @pytest.mark.parametrize("dual", (False, True), ids=("qs22", "dual"))
    def test_evaluate_moves_matches_on_composites(self, objective, dual):
        composite = build_composite(1)
        platform = CellPlatform.qs22_dual() if dual else CellPlatform.qs22()
        obj = make_objective(objective, composite)
        rng = random.Random(31)
        names = composite.task_names()
        state = DeltaAnalyzer(
            Mapping(
                composite, platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            )
        )
        for _ in range(8):
            name = rng.choice(names)
            batched = state.evaluate_moves(name, objective=obj)
            for pe in range(platform.n_pes):
                assert batched[pe] == state.evaluate_move(name, pe, obj)
            state.apply_move(rng.choice(names), rng.randrange(platform.n_pes))

    def test_origin_entry_is_current_score(self):
        g = integer_cost_graph(4)
        platform = CellPlatform.qs22()
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))
        name = g.task_names()[0]
        assert state.score_moves(name)[state.pe_of(name)] == state.score()

    def test_best_move_matches_manual_scan(self):
        """best_move == the historical per-candidate argmin loop."""
        for seed in range(4):
            g = integer_cost_graph(20 + seed)
            platform = PLATFORMS[seed % len(PLATFORMS)]
            rng = random.Random(seed)
            names = g.task_names()
            state = DeltaAnalyzer(
                Mapping(
                    g, platform,
                    {n: rng.randrange(platform.n_pes) for n in names},
                )
            )
            current = state.evaluate(None)
            best = None
            best_key = (current.value, current.period)
            for name in names:
                origin = state.pe_of(name)
                for pe in range(platform.n_pes):
                    if pe == origin:
                        continue
                    score = state.evaluate_move(name, pe)
                    if not score.feasible:
                        continue
                    key = (score.value, score.period)
                    if key < best_key:
                        best, best_key = (name, pe, score), key
            assert state.best_move() == best

    def test_validation_errors(self):
        g = integer_cost_graph(2)
        platform = CellPlatform.qs22()
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))
        with pytest.raises(MappingError):
            state.score_moves("missing-task")
        with pytest.raises(MappingError):
            state.score_moves(g.task_names()[0], [0, platform.n_pes])
        with pytest.raises(MappingError):
            state.evaluate_move(g.task_names()[0], -1)


class TestMembership:
    def test_tasks_on_matches_reference_after_moves(self):
        g = integer_cost_graph(8)
        platform = CellPlatform.qs22()
        rng = random.Random(5)
        names = g.task_names()
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))
        for _ in range(60):
            state.apply_move(rng.choice(names), rng.randrange(platform.n_pes))
            mapping = state.mapping()
            for pe in range(platform.n_pes):
                assert state.tasks_on(pe) == mapping.tasks_on(pe)

    def test_clone_membership_is_independent(self):
        g = integer_cost_graph(8)
        platform = CellPlatform.qs22()
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform))
        twin = state.clone()
        name = g.task_names()[0]
        state.apply_move(name, 1)
        assert name in state.tasks_on(1)
        assert name not in twin.tasks_on(1)
        assert name in twin.tasks_on(0)

    def test_tasks_on_rejects_bad_pe(self):
        g = integer_cost_graph(8)
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, CellPlatform.qs22()))
        with pytest.raises(MappingError):
            state.tasks_on(99)


@needs_numpy
class TestNumpyBackendProperty:
    """Hypothesis: numpy kernel == scalar kernel == fresh ``analyze()``.

    Every example builds one random integer-cost graph, mapping, buffer
    mode and platform, then checks the vectorized batches entry for
    entry against the scalar per-candidate verdicts — plus one
    explicitly-applied candidate against a from-scratch ``analyze()``,
    anchoring both kernels to the reference model."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 500),
        mode_i=st.integers(0, len(MODES) - 1),
        plat_i=st.integers(0, len(PLATFORMS) - 1),
        data=st.data(),
    )
    def test_move_matrix_matches_scalar_and_analyze(
        self, seed, mode_i, plat_i, data
    ):
        g = integer_cost_graph(seed, n_min=5, n_max=9)
        platform = PLATFORMS[plat_i]
        mode = MODES[mode_i]
        names = g.task_names()
        n_pes = platform.n_pes
        assignment = {
            n: data.draw(st.integers(0, n_pes - 1), label=n) for n in names
        }
        mapping = Mapping(g, platform, assignment)
        scalar = DeltaAnalyzer(mapping, backend="python", **mode)
        vector = DeltaAnalyzer(mapping, backend="numpy", **mode)

        worst, nviol = vector.score_move_matrix()
        for i, name in enumerate(names):
            for pe, score in enumerate(scalar.score_moves(name)):
                assert float(worst[i][pe]) == score.period
                assert int(nviol[i][pe]) == score.n_violations
        assert vector.best_move() == scalar.best_move()

        # Anchor one candidate to the reference model: apply it on both
        # analyzers and compare the committed state to a fresh analyze().
        name = data.draw(st.sampled_from(names), label="move-task")
        pe = data.draw(st.integers(0, n_pes - 1), label="move-pe")
        scalar.apply_move(name, pe)
        vector.apply_move(name, pe)
        reference = analyze(
            Mapping(g, platform, dict(assignment, **{name: pe})), **mode
        )
        for state in (scalar, vector):
            assert state.period() == reference.period
            assert state.feasible == reference.feasible
        # ...and the matrices re-agree on the mutated state.
        worst, nviol = vector.score_move_matrix()
        ref_w, ref_v = scalar.score_move_matrix()
        for i in range(len(names)):
            for pe in range(n_pes):
                assert float(worst[i][pe]) == float(ref_w[i][pe])
                assert int(nviol[i][pe]) == int(ref_v[i][pe])

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 4),
        objective=st.sampled_from(("period", "weighted", "max_stretch")),
        dual=st.booleans(),
        data=st.data(),
    )
    def test_objective_batches_match_on_composites(
        self, seed, objective, dual, data
    ):
        composite = build_composite(seed)
        platform = CellPlatform.qs22_dual() if dual else CellPlatform.qs22()
        obj = make_objective(objective, composite)
        names = composite.task_names()
        n_pes = platform.n_pes
        assignment = {
            n: data.draw(st.integers(0, n_pes - 1), label=n) for n in names
        }
        mapping = Mapping(composite, platform, assignment)
        scalar = DeltaAnalyzer(mapping, backend="python")
        vector = DeltaAnalyzer(mapping, backend="numpy")

        rows = vector.evaluate_all_moves(objective=obj)
        for i, name in enumerate(names):
            assert rows[i] == scalar.evaluate_moves(name, objective=obj)

        pairs = [
            tuple(data.draw(st.permutations(names), label=f"pair{k}")[:2])
            for k in range(4)
        ] + [(names[0], names[0])]
        assert vector.evaluate_swaps(pairs, obj) == [
            scalar.evaluate_swap(a, b, obj) for a, b in pairs
        ]

        candidates = [
            {
                n: data.draw(st.integers(0, n_pes - 1), label=f"cand{k}-{n}")
                for n in data.draw(
                    st.lists(st.sampled_from(names), max_size=5, unique=True),
                    label=f"cand{k}",
                )
            }
            for k in range(3)
        ] + [{}]
        assert vector.evaluate_assignments(candidates, obj) == [
            scalar.evaluate_changes(ch, obj) for ch in candidates
        ]


def make_graph_with_dangling_cache() -> StreamGraph:
    g = StreamGraph("cached")
    g.add_task(Task("a", wppe=1.0, wspe=1.0))
    g.add_task(Task("b", wppe=1.0, wspe=1.0))
    g.add_edge(DataEdge("a", "b", 64.0))
    return g


def test_cache_does_not_leak_across_id_reuse():
    """A new graph reusing a dead graph's id() must not see its arrays."""
    g = make_graph_with_dangling_cache()
    cg = compile_graph(g)
    assert cg.n == 2
    # A second, different graph never returns the first one's compilation.
    h = integer_cost_graph(99)
    assert compile_graph(h) is not cg
    assert compile_graph(h).n == h.n_tasks
