"""Tests for the discrete-event simulator: exact timings on tiny cases,
conservation invariants, DMA throttling, overhead accounting."""

import pytest

from repro.errors import SimulationError
from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import DmaCosts
from repro.simulator import SimConfig, Simulator, simulate
from repro.simulator.state import EdgeKind, EdgeRuntime
from repro.steady_state import Mapping, analyze


def single_task_graph(wppe=10.0, wspe=4.0):
    g = StreamGraph("one")
    g.add_task(Task("t", wppe=wppe, wspe=wspe))
    return g


class TestEdgeRuntime:
    def remote(self, window=2, peek=0):
        return EdgeRuntime(
            key=("a", "b"), kind=EdgeKind.REMOTE, src_pe=0, dst_pe=1,
            data=100.0, window=window, peek=peek,
        )

    def test_sender_buffer_unlocks_on_arrival(self):
        e = self.remote(window=2)
        assert e.can_produce(2)
        e.produced = 2
        assert not e.can_produce(2)  # produced - arrived == window
        e.arrived = 1
        assert e.can_produce(2)

    def test_input_ready_with_peek(self):
        e = self.remote(window=4, peek=2)
        e.arrived = 2
        assert not e.input_ready(0, last_instance=99)  # needs 0..2
        e.arrived = 3
        assert e.input_ready(0, last_instance=99)

    def test_peek_truncates_at_stream_end(self):
        e = self.remote(window=4, peek=2)
        e.arrived = 5
        # Instance 4 of a 5-instance stream: peek truncates to instance 4.
        assert e.input_ready(4, last_instance=4)

    def test_wants_transfer_requires_data_and_space(self):
        e = self.remote(window=2)
        assert not e.wants_transfer(10)  # nothing produced
        e.produced = 1
        assert e.wants_transfer(10)
        e.in_flight = 1
        assert not e.wants_transfer(10)  # one get at a time
        e.in_flight = 0
        e.arrived = 1
        e.consumed = 0
        e.produced = 3
        e.arrived = 1
        # receiver holds 1, capacity 2 -> one slot free
        assert e.wants_transfer(10)
        e.arrived = 2
        assert not e.wants_transfer(10) or e.arrived - e.consumed < 2


class TestExactTimings:
    def test_single_task_on_ppe(self, qs22):
        g = single_task_graph(wppe=10.0)
        m = Mapping.all_on_ppe(g, qs22)
        result = simulate(m, 5, SimConfig.ideal())
        # 5 instances, 10 µs each, no pipeline: done at exactly 50 µs.
        assert result.makespan == pytest.approx(50.0)
        assert result.completion_times == pytest.approx([10, 20, 30, 40, 50])

    def test_single_task_on_spe(self, qs22):
        g = single_task_graph(wspe=4.0)
        m = Mapping(g, qs22, {"t": 1})
        result = simulate(m, 3, SimConfig.ideal())
        assert result.makespan == pytest.approx(12.0)

    def test_two_task_pipeline_overlaps(self, qs22, two_task_chain):
        # a (100 on PPE) and b (40 on SPE0): steady rate = 1/100.
        m = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        result = simulate(m, 50, SimConfig.ideal())
        assert result.steady_state_throughput() == pytest.approx(
            analyze(m).throughput, rel=0.02
        )

    def test_transfer_time_visible_without_pipelining(self, qs22):
        # One instance: makespan = w_a + transfer + w_b (no overlap possible).
        g = StreamGraph("two")
        g.add_task(Task("a", wppe=10.0, wspe=10.0))
        g.add_task(Task("b", wppe=10.0, wspe=10.0))
        g.add_edge(DataEdge("a", "b", 25_000.0))  # exactly 1 µs at bw
        m = Mapping(g, qs22, {"a": 0, "b": 1})
        result = simulate(m, 1, SimConfig.ideal())
        assert result.makespan == pytest.approx(21.0)

    def test_scheduler_overhead_charged_per_activation(self, qs22):
        g = single_task_graph(wppe=10.0)
        m = Mapping.all_on_ppe(g, qs22)
        config = SimConfig(scheduler_overhead=2.0)
        result = simulate(m, 4, config)
        assert result.makespan == pytest.approx(4 * 12.0)
        assert result.pe_overhead["PPE0"] == pytest.approx(8.0)

    def test_dma_latency_delays_first_instance(self, qs22):
        g = StreamGraph("lat")
        g.add_task(Task("a", wppe=10.0, wspe=10.0))
        g.add_task(Task("b", wppe=10.0, wspe=10.0))
        g.add_edge(DataEdge("a", "b", 0.0))
        m = Mapping(g, qs22, {"a": 0, "b": 1})
        base = simulate(m, 1, SimConfig.ideal())
        delayed = simulate(
            m, 1, SimConfig(dma=DmaCosts(latency=5.0))
        )
        assert delayed.makespan == pytest.approx(base.makespan + 5.0)


class TestPeekSemantics:
    def test_peek_delays_first_consumption(self, qs22):
        # b peeks 1: it cannot process instance 0 before instance 1 of its
        # input exists, so its first completion is strictly later.
        def build(peek):
            g = StreamGraph(f"peek{peek}")
            g.add_task(Task("a", wppe=10.0, wspe=10.0))
            g.add_task(Task("b", wppe=1.0, wspe=1.0, peek=peek))
            g.add_edge(DataEdge("a", "b", 0.0))
            return g

        m0 = Mapping.all_on_ppe(build(0), qs22)
        m1 = Mapping.all_on_ppe(build(1), qs22)
        r0 = simulate(m0, 10, SimConfig.ideal())
        r1 = simulate(m1, 10, SimConfig.ideal())
        assert r1.completion_times[0] > r0.completion_times[0]
        # Same steady rate: peek affects latency, not throughput.
        assert r1.steady_state_throughput() == pytest.approx(
            r0.steady_state_throughput(), rel=0.05
        )

    def test_peek_chain_completes(self, qs22, peek_chain):
        m = Mapping(peek_chain, qs22, {"a": 0, "b": 1, "c": 2})
        result = simulate(m, 40, SimConfig.realistic())
        assert result.n_instances == 40
        assert len(result.completion_times) == 40


class TestDmaThrottling:
    def fan_in_graph(self, n_sources):
        g = StreamGraph("fanin")
        g.add_task(Task("sink", wppe=1.0, wspe=1.0))
        for i in range(n_sources):
            g.add_task(Task(f"s{i}", wppe=1.0, wspe=1.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 50_000.0))
        return g

    def test_mfc_queue_limits_concurrency(self, qs22):
        g = self.fan_in_graph(20)
        assignment = {"sink": 1}
        assignment.update({f"s{i}": 0 for i in range(20)})
        m = Mapping(g, qs22, assignment)
        throttled = simulate(m, 3, SimConfig.ideal())
        free = simulate(
            m, 3, SimConfig(enforce_dma_slots=False)
        )
        # 20 concurrent gets cannot fit the 16-slot queue: serialised tail.
        assert throttled.makespan >= free.makespan - 1e-6

    def test_slot_accounting_returns_to_zero(self, qs22):
        g = self.fan_in_graph(10)
        assignment = {"sink": 1}
        assignment.update({f"s{i}": 0 for i in range(10)})
        sim = Simulator(Mapping(g, qs22, assignment), SimConfig.ideal())
        sim.run(5)
        for pe in sim.pes:
            assert pe.mfc_in_flight == 0
            assert pe.proxy_in_flight == 0


class TestMemoryTraffic:
    def test_read_write_happen(self, qs22):
        g = StreamGraph("io")
        g.add_task(Task("t", wppe=10.0, wspe=10.0, read=1000.0, write=500.0))
        m = Mapping.all_on_ppe(g, qs22)
        sim = Simulator(m, SimConfig.ideal())
        result = sim.run(7)
        reads = [e for e in sim.edges if e.kind == EdgeKind.MEM_READ]
        writes = [e for e in sim.edges if e.kind == EdgeKind.MEM_WRITE]
        assert reads[0].arrived == 7
        assert writes[0].arrived == 7
        assert result.end_time >= result.makespan

    def test_comm_bound_source(self, qs22):
        # Reading 250 kB per instance at 25 GB/s = 10 µs > 1 µs compute:
        # the read dominates and the simulator must show it.
        g = StreamGraph("io-bound")
        g.add_task(Task("t", wppe=1.0, wspe=1.0, read=250_000.0))
        m = Mapping.all_on_ppe(g, qs22)
        result = simulate(m, 20, SimConfig.ideal())
        assert result.steady_state_throughput() == pytest.approx(
            analyze(m).throughput, rel=0.05
        )


class TestInvariants:
    def test_all_instances_complete(self, qs22, diamond_graph):
        m = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 3})
        result = simulate(m, 25, SimConfig.realistic())
        assert len(result.completion_times) == 25
        assert result.completion_times == sorted(result.completion_times)

    def test_determinism(self, qs22, diamond_graph):
        m = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 3})
        r1 = simulate(m, 30, SimConfig.realistic())
        r2 = simulate(m, 30, SimConfig.realistic())
        assert r1.completion_times == r2.completion_times

    def test_ideal_sim_matches_analytic_model(self, qs22):
        from repro.generator import assign_costs, random_topology
        from repro.heuristics import greedy_cpu

        graph = assign_costs(random_topology(16, seed=5), ccr=0.8, seed=5)
        mapping = greedy_cpu(graph, qs22)
        result = simulate(mapping, 600, SimConfig.ideal())
        assert result.efficiency() == pytest.approx(1.0, abs=0.03)

    def test_realistic_overheads_slow_things_down(self, qs22, diamond_graph):
        m = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 3})
        ideal = simulate(m, 60, SimConfig.ideal())
        real = simulate(m, 60, SimConfig.realistic())
        assert real.makespan > ideal.makespan

    def test_serial_comm_ablation_runs(self, qs22, diamond_graph):
        # Store-and-forward communication is a *different* model, not a
        # uniformly slower one (a serialised transfer can complete its
        # first instance earlier than a fair-shared one).  The ablation
        # must complete and stay close when communication is light.
        m = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 3})
        fair = simulate(m, 40, SimConfig.ideal())
        serial = simulate(m, 40, SimConfig(serial_comm=True))
        assert len(serial.completion_times) == 40
        assert serial.makespan == pytest.approx(fair.makespan, rel=0.05)

    def test_bad_instance_count(self, qs22):
        g = single_task_graph()
        m = Mapping.all_on_ppe(g, qs22)
        with pytest.raises(SimulationError):
            simulate(m, 0)

    def test_utilisation_bounded(self, qs22, diamond_graph):
        m = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 3})
        result = simulate(m, 50, SimConfig.realistic())
        for frac in result.utilisation().values():
            assert 0.0 <= frac <= 1.0 + 1e-9


class TestTrace:
    def test_throughput_curve_ramps_up(self, qs22, peek_chain):
        m = Mapping(peek_chain, qs22, {"a": 1, "b": 2, "c": 3})
        result = simulate(m, 300, SimConfig.ideal())
        curve = result.throughput_curve(window=50)
        assert curve[0][1] <= curve[-1][1] * 1.05
        steady = result.steady_state_throughput()
        assert curve[-1][1] == pytest.approx(steady, rel=0.1)

    def test_summary_text(self, qs22):
        g = single_task_graph()
        result = simulate(Mapping.all_on_ppe(g, qs22), 10, SimConfig.ideal())
        text = result.summary()
        assert "instances" in text and "steady-state" in text
