"""Mapping JSON round-trip properties and payload validation.

``Mapping.to_json`` / ``Mapping.from_json`` are the only way mappings
cross process boundaries (``repro-solve --mapping-out`` →
``repro-simulate --mapping``), so the round-trip must be exact for any
graph/platform pair — including multi-Cell platforms whose PE indices
exceed the single-Cell range — and a payload naming tasks the graph does
not contain must be rejected with a clear :class:`MappingError`, not a
generic validation failure.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import CellPlatform
from repro.steady_state import Mapping

#: Platforms whose PE index spaces differ: single Cell (0..8), dual Cell
#: (0..17, PPEs 0-1), and a PPE-heavy synthetic one.
PLATFORMS = (
    CellPlatform.qs22(),
    CellPlatform.qs22_dual(),
    CellPlatform(n_ppe=2, n_spe=4, name="2ppe"),
)


def random_graph(seed: int, n_tasks: int) -> StreamGraph:
    rng = random.Random(seed)
    g = StreamGraph(f"rt{seed}")
    names = [f"t{i}" for i in range(n_tasks)]
    for i, name in enumerate(names):
        g.add_task(
            Task(
                name,
                wppe=float(rng.randint(1, 500)),
                wspe=float(rng.randint(1, 500)),
                peek=rng.choice([0, 0, 1]),
            )
        )
        if i and rng.random() < 0.7:
            g.add_edge(
                DataEdge(
                    names[rng.randrange(i)], name, float(rng.randint(1, 4096))
                )
            )
    return g


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        n_tasks=st.integers(1, 25),
        platform_idx=st.integers(0, len(PLATFORMS) - 1),
    )
    def test_roundtrip_property(self, seed, n_tasks, platform_idx):
        """from_json(to_json(m)) == m for random graphs and assignments,
        including dual-Cell PE indices beyond the single-Cell range."""
        platform = PLATFORMS[platform_idx]
        graph = random_graph(seed, n_tasks)
        rng = random.Random(seed ^ 0x5EED)
        mapping = Mapping(
            graph,
            platform,
            {name: rng.randrange(platform.n_pes) for name in graph.task_names()},
        )
        rebuilt = Mapping.from_json(graph, platform, mapping.to_json())
        assert rebuilt == mapping
        assert rebuilt.to_dict() == mapping.to_dict()
        # A second round-trip is a fixed point.
        assert rebuilt.to_json() == mapping.to_json()

    def test_roundtrip_uses_every_pe_of_dual_cell(self):
        """Pin the multi-Cell case: every PE index 0..17 survives."""
        platform = CellPlatform.qs22_dual()
        graph = StreamGraph("all-pes")
        for i in range(platform.n_pes):
            graph.add_task(Task(f"t{i}", wppe=1.0, wspe=1.0))
        mapping = Mapping(
            graph, platform, {f"t{i}": i for i in range(platform.n_pes)}
        )
        rebuilt = Mapping.from_json(graph, platform, mapping.to_json())
        assert rebuilt.to_dict() == {
            f"t{i}": i for i in range(platform.n_pes)
        }


class TestRejection:
    def make_payload(self, mapping: Mapping, extra: dict) -> str:
        payload = json.loads(mapping.to_json())
        payload["assignment"].update(extra)
        return json.dumps(payload)

    def test_unknown_task_rejected_clearly(self, two_task_chain, qs22):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        text = self.make_payload(mapping, {"ghost": 0})
        with pytest.raises(MappingError, match="absent from graph.*'ghost'"):
            Mapping.from_json(two_task_chain, qs22, text)

    def test_many_unknown_tasks_truncated(self, two_task_chain, qs22):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        text = self.make_payload(
            mapping, {f"ghost{i}": 0 for i in range(8)}
        )
        with pytest.raises(MappingError, match=r"8 task\(s\) absent.*\.\.\."):
            Mapping.from_json(two_task_chain, qs22, text)

    def test_missing_task_still_rejected(self, two_task_chain, qs22):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        payload = json.loads(mapping.to_json())
        del payload["assignment"]["a"]
        with pytest.raises(MappingError, match="not mapped"):
            Mapping.from_json(two_task_chain, qs22, json.dumps(payload))

    def test_wrong_graph_name_rejected(self, two_task_chain, qs22):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        payload = json.loads(mapping.to_json())
        payload["graph"] = "someone-else"
        with pytest.raises(MappingError, match="computed for graph"):
            Mapping.from_json(two_task_chain, qs22, json.dumps(payload))

    def test_malformed_payload_rejected(self, two_task_chain, qs22):
        with pytest.raises(MappingError, match="malformed"):
            Mapping.from_json(two_task_chain, qs22, "{not json")
        with pytest.raises(MappingError, match="malformed"):
            Mapping.from_json(two_task_chain, qs22, '{"no_assignment": 1}')
