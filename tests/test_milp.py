"""Tests for the §5 MILP: formulation structure and optimality (Theorem 2)."""

import pytest

from repro.complexity import optimal_mapping_brute_force
from repro.graph import DataEdge, StreamGraph, Task
from repro.milp import (
    PAPER_MIP_GAP,
    build_formulation,
    ppe_only_period,
    solve_optimal_mapping,
)
from repro.platform import CellPlatform
from repro.steady_state import analyze


def small_graph():
    g = StreamGraph("small")
    g.add_task(Task("a", wppe=40.0, wspe=90.0))
    g.add_task(Task("b", wppe=100.0, wspe=30.0))
    g.add_task(Task("c", wppe=90.0, wspe=25.0))
    g.add_task(Task("d", wppe=30.0, wspe=80.0, peek=1))
    g.add_edge(DataEdge("a", "b", 2000.0))
    g.add_edge(DataEdge("a", "c", 2000.0))
    g.add_edge(DataEdge("b", "d", 1000.0))
    g.add_edge(DataEdge("c", "d", 1000.0))
    return g


class TestFormulation:
    def test_sizes(self, tiny_platform):
        g = small_graph()
        f = build_formulation(g, tiny_platform)
        n = tiny_platform.n_pes
        assert len(f.alpha) == g.n_tasks * n
        assert len(f.beta) == g.n_edges * n * n
        # Only α is integral by default (β-relaxation).
        assert f.model.n_integer_vars == g.n_tasks * n

    def test_integral_beta_option(self, tiny_platform):
        g = small_graph()
        f = build_formulation(g, tiny_platform, integral_beta=True)
        n = tiny_platform.n_pes
        assert f.model.n_integer_vars == g.n_tasks * n + g.n_edges * n * n

    def test_constraint_families_present(self, tiny_platform):
        g = small_graph()
        f = build_formulation(g, tiny_platform)
        names = [c.name for c in f.model.constraints]
        for tag in (
            "(1b)", "(1c)", "(1d)", "(1e)", "(1f)",
            "(1g)", "(1h)", "(1i)", "(1j)", "(1k)",
        ):
            assert any(n.startswith(tag) for n in names), f"missing {tag}"

    def test_ppe_only_period_upper_bound(self, tiny_platform):
        g = small_graph()
        assert ppe_only_period(g, tiny_platform) == pytest.approx(260.0)
        # The T variable is bounded by the PPE-only period.
        f = build_formulation(g, tiny_platform)
        assert f.T.ub == pytest.approx(260.0)


class TestSolve:
    def test_matches_brute_force(self, tiny_platform):
        g = small_graph()
        brute, brute_period = optimal_mapping_brute_force(g, tiny_platform)
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        assert result.period == pytest.approx(brute_period, rel=1e-6)

    def test_gap_solution_within_gap(self, tiny_platform):
        g = small_graph()
        _, brute_period = optimal_mapping_brute_force(g, tiny_platform)
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=PAPER_MIP_GAP)
        assert result.period <= brute_period * (1 + PAPER_MIP_GAP) + 1e-9

    def test_decoded_mapping_feasible_and_consistent(self, tiny_platform):
        g = small_graph()
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        analysis = analyze(result.mapping)
        assert analysis.feasible
        # Theorem 2 consistency: analytic period of the decoded mapping
        # equals the solver's T (exact solve, no gap).
        assert analysis.period == pytest.approx(result.solver_period, rel=1e-6)

    def test_beta_integral_in_solution(self, tiny_platform):
        g = small_graph()
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        # The β-relaxation argument: with binary α, (1c)+(1d) force β
        # to 0/1 even though it is declared continuous.
        for var in result.formulation.beta.values():
            value = result.solution.value(var)
            assert min(abs(value), abs(value - 1.0)) < 1e-6

    def test_beta_matches_alpha_product(self, tiny_platform):
        g = small_graph()
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        f = result.formulation
        sol = result.solution
        for edge in g.edges():
            for i in range(tiny_platform.n_pes):
                for j in range(tiny_platform.n_pes):
                    beta = sol.value(f.beta[(edge.src, edge.dst, i, j)])
                    alpha_prod = sol.value(f.alpha[(edge.src, i)]) * sol.value(
                        f.alpha[(edge.dst, j)]
                    )
                    assert beta == pytest.approx(alpha_prod, abs=1e-6)

    def test_never_worse_than_heuristics(self, qs22):
        from repro.heuristics import greedy_cpu, greedy_mem

        g = small_graph()
        result = solve_optimal_mapping(g, qs22, mip_rel_gap=None)
        for heuristic in (greedy_cpu, greedy_mem):
            h_analysis = analyze(heuristic(g, qs22))
            if h_analysis.feasible:
                assert result.period <= h_analysis.period + 1e-9

    def test_single_task(self, tiny_platform):
        g = StreamGraph("one")
        g.add_task(Task("only", wppe=50.0, wspe=10.0))
        result = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        # Best PE is an SPE (cost 10).
        assert result.period == pytest.approx(10.0)
        assert tiny_platform.is_spe(result.mapping.pe_of("only"))

    def test_memory_forces_ppe(self):
        # A task whose buffers exceed the local store must stay on the PPE
        # even though the SPE is faster (constraint (1i)).
        platform = CellPlatform(n_ppe=1, n_spe=1, name="tight")
        g = StreamGraph("fat")
        g.add_task(Task("a", wppe=10.0, wspe=1.0))
        g.add_task(Task("b", wppe=10.0, wspe=1.0))
        g.add_edge(DataEdge("a", "b", platform.buffer_budget))
        result = solve_optimal_mapping(g, platform, mip_rel_gap=None)
        assert result.mapping.pe_of("a") == 0
        assert result.mapping.pe_of("b") == 0

    def test_dma_limit_respected(self, qs22):
        # 20 producers feeding one fast consumer: at most 16 distinct data
        # can reach an SPE per period (constraint (1j)).
        g = StreamGraph("fanin")
        g.add_task(Task("sink", wppe=200.0, wspe=10.0))
        for i in range(20):
            g.add_task(Task(f"s{i}", wppe=1.0, wspe=1000.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 10.0))
        result = solve_optimal_mapping(g, qs22, mip_rel_gap=None)
        analysis = analyze(result.mapping)
        assert analysis.feasible
        sink_pe = result.mapping.pe_of("sink")
        if qs22.is_spe(sink_pe):
            cross = sum(
                1 for e in g.edges() if result.mapping.is_cross_edge(e)
                and result.mapping.pe_of(e.dst) == sink_pe
            )
            assert cross <= qs22.dma_in_slots

    def test_branch_bound_backend_agrees(self, tiny_platform):
        g = StreamGraph("bb")
        g.add_task(Task("a", wppe=30.0, wspe=60.0))
        g.add_task(Task("b", wppe=50.0, wspe=20.0))
        g.add_edge(DataEdge("a", "b", 500.0))
        highs = solve_optimal_mapping(g, tiny_platform, mip_rel_gap=None)
        bb = solve_optimal_mapping(
            g, tiny_platform, mip_rel_gap=None, backend="branch-bound"
        )
        assert bb.period == pytest.approx(highs.period, rel=1e-6)

    def test_unknown_backend(self, tiny_platform):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            solve_optimal_mapping(
                small_graph(), tiny_platform, backend="cplex"
            )

    def test_report_text(self, tiny_platform):
        result = solve_optimal_mapping(small_graph(), tiny_platform)
        assert "MILP mapping" in result.report()
        assert result.throughput > 0
