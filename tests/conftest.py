"""Shared fixtures: platforms and small hand-made graphs with known answers."""

import pytest

from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import CellPlatform


@pytest.fixture
def qs22():
    return CellPlatform.qs22()


@pytest.fixture
def tiny_platform():
    """1 PPE + 2 SPEs — small enough for brute-force cross-checks."""
    return CellPlatform(n_ppe=1, n_spe=2, name="tiny")


@pytest.fixture
def two_task_chain():
    """a -> b with 1 kB of data; peeks zero."""
    g = StreamGraph("two-chain")
    g.add_task(Task("a", wppe=100.0, wspe=50.0))
    g.add_task(Task("b", wppe=80.0, wspe=40.0))
    g.add_edge(DataEdge("a", "b", 1024.0))
    return g


@pytest.fixture
def peek_chain():
    """a -> b -> c where b peeks 1 and c peeks 2 (the §4.2 worked shape)."""
    g = StreamGraph("peek-chain")
    g.add_task(Task("a", wppe=10.0, wspe=5.0))
    g.add_task(Task("b", wppe=10.0, wspe=5.0, peek=1))
    g.add_task(Task("c", wppe=10.0, wspe=5.0, peek=2))
    g.add_edge(DataEdge("a", "b", 100.0))
    g.add_edge(DataEdge("b", "c", 200.0))
    return g


@pytest.fixture
def fig3_graph():
    """The Fig. 3 example: T1 -> T2, T1 -> T3, with peek_3 = 1."""
    g = StreamGraph("fig3")
    g.add_task(Task("T1", wppe=10.0, wspe=10.0))
    g.add_task(Task("T2", wppe=10.0, wspe=10.0))
    g.add_task(Task("T3", wppe=10.0, wspe=10.0, peek=1))
    g.add_edge(DataEdge("T1", "T2", 100.0))
    g.add_edge(DataEdge("T1", "T3", 100.0))
    return g


@pytest.fixture
def diamond_graph():
    """a -> {b, c} -> d with distinct costs for mapping tests."""
    g = StreamGraph("diamond")
    g.add_task(Task("a", wppe=40.0, wspe=80.0))
    g.add_task(Task("b", wppe=100.0, wspe=30.0))
    g.add_task(Task("c", wppe=90.0, wspe=25.0))
    g.add_task(Task("d", wppe=30.0, wspe=70.0))
    g.add_edge(DataEdge("a", "b", 2048.0))
    g.add_edge(DataEdge("a", "c", 2048.0))
    g.add_edge(DataEdge("b", "d", 1024.0))
    g.add_edge(DataEdge("c", "d", 1024.0))
    return g
