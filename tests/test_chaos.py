"""Chaos property harness: randomized fault timelines vs the runtime.

The robustness acceptance bar: **≥200 randomized fault timelines**
(seeded scenarios with correlated failure bursts, cost-perturbation
windows, bursty/diurnal arrivals, retries and brownout enabled) played
through :class:`~repro.runtime.scheduler.OnlineScheduler` in all four
buffer-model modes, asserting after *every* event:

* the committed state is hard-feasible (``record.feasible``);
* ``snapshot()`` is bit-identical to a fresh ``analyze()`` of the
  scheduler's *current* workload and platform — ``sched.platform``, not
  the base platform, because a perturbation window swaps in a scaled
  copy;
* the record clock is monotone (retry firings included);
* no orphaned tasks: the assignment keys are exactly the compiled
  composite's task names;

plus whole-run properties: determinism per seed, and JSON replay
equivalence (a saved/reloaded timeline produces the identical report).

Scale: ``CHAOS_TIMELINES`` (default 200) seeded cases; the nightly CI
job raises it.  Cases use small synthetic applications so each
per-event full ``analyze()`` stays cheap.

Structural properties of the fault layer (injector output always
validates, quantiles are ordered and bounded, timelines survive JSON)
are driven by hypothesis when it is installed, and skipped otherwise.
"""

import os
import random
from dataclasses import replace

import pytest

from repro.graph import DataEdge, StreamGraph, Task
from repro.obs import metrics as _metrics
from repro.platform import CellPlatform
from repro.runtime import (
    DurableScheduler,
    FaultInjector,
    OnlineScheduler,
    ScenarioGenerator,
    timeline_dumps,
    timeline_loads,
)
from repro.steady_state import Mapping, analyze

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in CI
    HAVE_HYPOTHESIS = False

#: The four buffer-model configurations the evaluation engine supports.
ALL_MODES = (
    {},
    {"elide_local_comm": True},
    {"merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)

#: Total randomized timelines thrown at the scheduler (the acceptance
#: bar is >= 200; the nightly chaos job raises it via the env var).
N_TIMELINES = int(os.environ.get("CHAOS_TIMELINES", "200"))

#: Kill/recover cycles injected per crash-recovery case (the nightly
#: chaos job raises it via the env var).
N_KILLS = int(os.environ.get("CHAOS_KILLS", "1"))

SHED_POLICIES = ("lowest-weight", "highest-stretch", "newest-first")
PATTERNS = ("poisson", "bursty", "diurnal")


def tiny_pipeline() -> StreamGraph:
    g = StreamGraph("tiny-pipeline")
    g.add_task(Task("src", wppe=14.0, wspe=9.0))
    g.add_task(Task("sink", wppe=11.0, wspe=6.0))
    g.add_edge(DataEdge("src", "sink", 768.0))
    return g


def tiny_fork() -> StreamGraph:
    g = StreamGraph("tiny-fork")
    g.add_task(Task("in", wppe=10.0, wspe=7.0))
    g.add_task(Task("left", wppe=8.0, wspe=5.0))
    g.add_task(Task("right", wppe=9.0, wspe=4.0))
    g.add_edge(DataEdge("in", "left", 512.0))
    g.add_edge(DataEdge("in", "right", 640.0))
    return g


def solo_task() -> StreamGraph:
    g = StreamGraph("solo")
    g.add_task(Task("work", wppe=16.0, wspe=10.0))
    return g


BUILDERS = {"pipe": tiny_pipeline, "fork": tiny_fork, "solo": solo_task}


def chaos_timeline(platform, seed):
    """One seeded fault timeline: scenario + injected bursts/windows."""
    generator = ScenarioGenerator(
        platform,
        seed=seed,
        load=1.5 + (seed % 5) * 0.7,
        builders=BUILDERS,
        n_failures=seed % 3,
        arrival_pattern=PATTERNS[seed % len(PATTERNS)],
        target_probability=0.6,
    )
    base = generator.generate(12 + (seed % 5))
    injector = FaultInjector(
        platform,
        seed=seed + 1,
        correlation=0.2 + 0.15 * (seed % 4),
        mean_downtime=8.0 + (seed % 3) * 10.0,
    )
    return injector.inject(
        base, n_bursts=1 + seed % 3, n_perturbations=seed % 2
    )


def chaos_scheduler(platform, seed, mode):
    return OnlineScheduler(
        platform,
        migration_budget=seed % 4,
        shed_policy=SHED_POLICIES[seed % len(SHED_POLICIES)],
        retry_limit=seed % 3,
        retry_backoff=4.0,
        brownout_threshold=(0.0, 0.3, 0.6)[seed % 3],
        **mode,
    )


def assert_invariants(sched, mode, last_time):
    """The per-event chaos invariants; returns the advanced clock."""
    if sched.state is not None:
        snap = sched.state.snapshot()
        composite = sched.workload.compile()
        # The reference must be built against the scheduler's *current*
        # platform: inside a perturbation window that is a scaled copy.
        full = analyze(
            Mapping(composite, sched.platform, sched.assignment()), **mode
        )
        assert snap.period == full.period
        assert snap.app_periods == full.app_periods
        assert snap.loads == full.loads
        assert snap.buffer_bytes == full.buffer_bytes
        assert snap.dma_in == full.dma_in
        assert snap.dma_proxy == full.dma_proxy
        assert snap.violations == full.violations
        assert snap.link_loads == full.link_loads
        assert snap.mapping == full.mapping
        # No orphans: every composite task is placed, nothing else is.
        assert set(sched.assignment()) == set(composite.task_names())
        # Failed SPEs hold nothing.
        assert not (set(sched.assignment().values()) & sched.failed_spes)
    else:
        assert sched.assignment() == {}
    record = sched.report().records[-1]
    assert record.feasible
    assert record.time >= last_time
    return record.time


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.mark.parametrize("case", range(N_TIMELINES))
def test_chaos_invariants(platform, case):
    """One randomized timeline, one buffer mode: every committed state
    feasible, snapshot bit-identical, clock monotone, no orphans."""
    mode = ALL_MODES[case % len(ALL_MODES)]
    events = chaos_timeline(platform, case)
    sched = chaos_scheduler(platform, case, mode)
    clock = 0.0
    for event in events:
        sched.process(event)
        clock = assert_invariants(sched, mode, clock)
    report = sched.report()
    times = [r.time for r in report.records]
    assert times == sorted(times)
    assert report.all_feasible
    assert 0.0 <= report.availability <= 1.0
    assert 0.0 <= report.degraded_fraction <= 1.0


@pytest.mark.parametrize("seed", range(0, N_TIMELINES, 25))
def test_chaos_deterministic_per_seed(platform, seed):
    """Replaying the same seeded chaos case reproduces the identical
    report — fault handling introduces no hidden nondeterminism."""
    def play():
        events = chaos_timeline(platform, seed)
        return chaos_scheduler(platform, seed, ALL_MODES[0]).run(events)

    assert play() == play()


@pytest.mark.parametrize("seed", range(0, N_TIMELINES, 40))
def test_chaos_json_replay_equivalence(platform, seed):
    """A timeline that went through JSON produces the identical run."""
    events = chaos_timeline(platform, seed)
    clone = timeline_loads(timeline_dumps(events))
    play = lambda evs: chaos_scheduler(  # noqa: E731
        platform, seed, ALL_MODES[1]
    ).run(evs)
    assert play(clone) == play(events)


def test_chaos_covers_the_fault_surface(platform):
    """The case grid actually exercises faults: across the sweep there
    are failures, perturbations, retries, sheds and brownout entries —
    a guard against the harness silently degenerating to arrivals."""
    saw = {"failure": 0, "perturb": 0, "retry": 0, "shed": 0, "degraded": 0}
    for case in range(0, min(N_TIMELINES, 40)):
        events = chaos_timeline(platform, case)
        saw["failure"] += sum(e.event_type == "failure" for e in events)
        saw["perturb"] += sum(e.event_type == "perturb" for e in events)
        report = chaos_scheduler(
            platform, case, ALL_MODES[case % len(ALL_MODES)]
        ).run(events)
        saw["retry"] += report.n_retries
        saw["shed"] += report.shed_count
        saw["degraded"] += sum(r.degraded for r in report.records)
    assert all(count > 0 for count in saw.values()), saw


@pytest.mark.parametrize("case", range(N_TIMELINES))
def test_crash_recovery_equivalence(platform, case, tmp_path):
    """Kill the durable scheduler at random committed-event boundaries
    (optionally tearing the journal tail, as a real crash mid-write
    would), recover, replay — the final report must be bit-identical to
    the uninterrupted run, per seed, in all four buffer modes."""
    mode = ALL_MODES[case % len(ALL_MODES)]
    events = chaos_timeline(platform, case)
    baseline = chaos_scheduler(platform, case, mode).run(events)
    rng = random.Random(10_000 + case)
    kills = sorted(
        rng.sample(range(1, len(events) + 1), min(N_KILLS, len(events)))
    )
    journal_path = tmp_path / "wal.jsonl"
    checkpoint_path = tmp_path / "wal.json"
    durable = DurableScheduler(
        chaos_scheduler(platform, case, mode),
        journal_path,
        checkpoint_path=checkpoint_path,
        checkpoint_every=1 + rng.randrange(4),
        fsync=False,
    )
    done = 0
    for kill in kills:
        for event in events[done:kill]:
            durable.process(event)
        done = kill
        # Crash: no close(), no final checkpoint; half the time the
        # journal additionally has a torn final line.
        if rng.random() < 0.5:
            with open(journal_path, "ab") as fh:
                fh.write(b'{"idx": 999999, "event": {"ty')
        durable = DurableScheduler.recover(
            journal_path,
            checkpoint_path=checkpoint_path,
            checkpoint_every=1 + rng.randrange(4),
            fsync=False,
        )
        assert durable.n_applied == done
    for event in events[done:]:
        durable.process(event)
    report = durable.scheduler.report()
    durable.close()
    assert report == baseline
    if _metrics.REGISTRY is None:
        assert report.to_json() == baseline.to_json()


class TestRetryDueTimeCarveOut:
    """The event/time semantics contract's rule-4 carve-out (see
    :mod:`repro.runtime.faults`): a deferred admission's due time is the
    absolute ``rejection_time + retry_backoff · 2^(k-1)``, so stretching
    a timeline's timestamps preserves the decision sequence only when
    the backoff is stretched by the same factor — exactly so for
    power-of-two factors."""

    BACKOFF = 4.0

    def scheduler(self, platform, backoff):
        return OnlineScheduler(
            platform,
            migration_budget=2,
            retry_limit=2,
            retry_backoff=backoff,
        )

    def retryful_timeline(self, platform):
        # Over-subscribed: rejections feed the retry queue (this seed
        # fires several retries and leaves one queued at the end).
        return ScenarioGenerator(
            platform,
            seed=7,
            load=6.0,
            builders=BUILDERS,
            n_failures=1,
            target_probability=0.9,
        ).generate(18)

    def test_due_times_follow_the_formula(self, platform):
        events = self.retryful_timeline(platform)
        report = self.scheduler(platform, self.BACKOFF).run(events)
        assert report.n_retries > 0
        records = list(report.records)
        rejections = {}  # name -> retry-queued rejections so far
        expected = {}  # name -> due time of its pending retry
        fired = 0
        for record in records:
            if record.event == "retry":
                # A firing consumes exactly the due time the formula
                # predicted at its rejection — bitwise.
                assert record.time == expected.pop(record.subject)
                fired += 1
            elif record.reason == "retry-cancelled":
                # The stream departed while its admission was queued.
                expected.pop(record.subject, None)
            if record.reason and "retry-queued" in record.reason:
                k = rejections.get(record.subject, 0) + 1
                rejections[record.subject] = k
                expected[record.subject] = (
                    record.time + self.BACKOFF * 2.0 ** (k - 1)
                )
        assert fired > 0
        # Whatever never fired was still pending when the timeline ended.
        assert all(due > records[-1].time for due in expected.values())

    def test_power_of_two_stretch_with_scaled_backoff_is_exact(
        self, platform
    ):
        s = 2.0
        events = self.retryful_timeline(platform)
        base = self.scheduler(platform, self.BACKOFF).run(events)
        assert base.n_retries > 0
        stretched = self.scheduler(platform, self.BACKOFF * s).run(
            [replace(e, time=e.time * s) for e in events]
        )
        assert [r.time for r in stretched.records] == [
            r.time * s for r in base.records
        ]
        key = lambda r: (r.event, r.subject, r.accepted, r.reason)  # noqa: E731
        assert list(map(key, stretched.records)) == list(
            map(key, base.records)
        )

    def test_unscaled_backoff_diverges(self, platform):
        s = 2.0
        events = self.retryful_timeline(platform)
        base = self.scheduler(platform, self.BACKOFF).run(events)
        assert base.n_retries > 0
        stretched = self.scheduler(platform, self.BACKOFF).run(
            [replace(e, time=e.time * s) for e in events]
        )
        # The retry due times no longer stretch with the timeline: the
        # record clocks diverge from a pure rescaling.
        assert [r.time for r in stretched.records] != [
            r.time * s for r in base.records
        ]


if HAVE_HYPOTHESIS:

    class TestStructuralProperties:
        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(0, 10_000),
            correlation=st.floats(0.0, 0.95),
            n_bursts=st.integers(0, 4),
            n_perturbations=st.integers(0, 3),
        )
        def test_injector_output_always_validates(
            self, seed, correlation, n_bursts, n_perturbations
        ):
            from repro.runtime import validate_timeline

            platform = CellPlatform.qs22()
            base = ScenarioGenerator(
                platform, seed=seed % 7, load=2.0, builders=BUILDERS,
                n_failures=seed % 2,
            ).generate(8)
            merged = FaultInjector(
                platform, seed=seed, correlation=correlation
            ).inject(
                base, n_bursts=n_bursts, n_perturbations=n_perturbations
            )
            validate_timeline(merged)
            assert timeline_loads(timeline_dumps(merged)) is not None

        @settings(max_examples=50, deadline=None)
        @given(
            values=st.lists(
                st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=30
            ),
            q=st.floats(0.0, 1.0),
        )
        def test_quantile_is_bounded_and_monotone(self, values, q):
            from repro.runtime.report import RuntimeReport

            quant = RuntimeReport._quantile
            assert min(values) <= quant(values, q) <= max(values)
            assert quant(values, 0.0) == min(values)
            assert quant(values, 1.0) == max(values)
            assert quant(values, q) <= quant(values, min(1.0, q + 0.1))
