"""Property tests: DeltaAnalyzer vs full analyze(), and the delta heuristics.

The randomized consistency tests use graphs whose costs and payloads are
integer-valued floats: every per-PE sum then stays exactly representable,
so ``DeltaAnalyzer`` must agree with ``analyze()`` *bit for bit* after any
sequence of moves/swaps.  A separate test covers generator graphs with
arbitrary float costs, where agreement is within ulp-level tolerance.
"""

import random

import pytest

from repro.errors import MappingError
from repro.generator import assign_costs, random_topology
from repro.graph import DataEdge, StreamGraph, Task
from repro.heuristics import (
    critical_path_mapping,
    greedy_cpu,
    local_search,
    simulated_annealing,
    tabu_search,
)
from repro.platform import CellPlatform
from repro.steady_state import (
    DeltaAnalyzer,
    Mapping,
    MoveScore,
    analyze,
    buffer_requirements,
    period,
)

#: Platforms cycled through by the randomized tests: the paper's single
#: Cell, the dual-Cell future-work configuration (exercises BIF link
#: bookkeeping), and a deliberately tight platform (small local stores and
#: DMA queues) so the violation bookkeeping sees both feasible and
#: infeasible states.
PLATFORMS = (
    CellPlatform.qs22(),
    CellPlatform.qs22_dual(),
    CellPlatform(
        n_ppe=1,
        n_spe=4,
        local_store=64 * 1024,
        code_size=32 * 1024,
        dma_in_slots=3,
        dma_proxy_slots=2,
        name="tight",
    ),
)


def integer_cost_graph(seed: int, n_min: int = 6, n_max: int = 24) -> StreamGraph:
    """A random DAG whose costs/payloads are all integer-valued floats."""
    rng = random.Random(seed)
    n = rng.randint(n_min, n_max)
    g = StreamGraph(f"intrand{seed}")
    names = [f"t{i}" for i in range(n)]
    for i, name in enumerate(names):
        g.add_task(
            Task(
                name,
                wppe=float(rng.randint(20, 900)),
                wspe=float(rng.randint(10, 2000)),
                read=float(rng.choice([0, 0, 0, 256, 1024])),
                write=float(rng.choice([0, 0, 0, 512])),
                peek=rng.choice([0, 0, 0, 1, 2]),
            )
        )
        if i:
            for p in rng.sample(range(i), k=min(i, rng.randint(1, 3))):
                if rng.random() < 0.8 and not g.has_edge(names[p], name):
                    g.add_edge(
                        DataEdge(names[p], name, float(rng.randint(1, 80) * 128))
                    )
    if g.n_edges == 0:
        g.add_edge(DataEdge(names[0], names[1], 1024.0))
    return g


def assert_snapshot_matches(state: DeltaAnalyzer) -> None:
    """snapshot() must equal a fresh analyze() field for field, bit for bit."""
    snap = state.snapshot()
    full = analyze(state.mapping())
    assert snap.period == full.period
    assert snap.loads == full.loads
    assert snap.violations == full.violations
    assert snap.buffer_bytes == full.buffer_bytes
    assert snap.dma_in == full.dma_in
    assert snap.dma_proxy == full.dma_proxy
    assert snap.link_loads == full.link_loads
    assert snap.feasible == full.feasible
    assert snap.mapping == full.mapping


class TestConsistency:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_sequences_exact(self, seed):
        """25 scenarios × 10 applies = 250 verified move/swap sequences."""
        g = integer_cost_graph(seed)
        platform = PLATFORMS[seed % len(PLATFORMS)]
        rng = random.Random(1000 + seed)
        names = g.task_names()
        mapping = Mapping(
            g, platform, {n: rng.randrange(platform.n_pes) for n in names}
        )
        state = DeltaAnalyzer(mapping)
        assert_snapshot_matches(state)
        for _step in range(10):
            if rng.random() < 0.35 and len(names) >= 2:
                a, b = rng.sample(names, 2)
                score = state.score_swap(a, b)
                candidate = (
                    state.mapping()
                    .with_assignment(a, state.pe_of(b))
                    .with_assignment(b, state.pe_of(a))
                )
                reference = analyze(candidate)
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                state.apply_swap(a, b)
            else:
                task = rng.choice(names)
                pe = rng.randrange(platform.n_pes)
                score = state.score_move(task, pe)
                reference = analyze(state.mapping().with_assignment(task, pe))
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                state.apply_move(task, pe)
            assert_snapshot_matches(state)

    def test_scores_do_not_mutate_state(self, qs22):
        g = integer_cost_graph(99)
        mapping = greedy_cpu(g, qs22)
        state = DeltaAnalyzer(mapping)
        before = state.snapshot()
        names = g.task_names()
        for name in names:
            for pe in range(qs22.n_pes):
                state.score_move(name, pe)
        state.score_swap(names[0], names[-1])
        after = state.snapshot()
        assert before.period == after.period
        assert before.loads == after.loads
        assert state.mapping() == mapping

    def test_noop_move_returns_current_score(self, qs22):
        g = integer_cost_graph(7)
        state = DeltaAnalyzer(greedy_cpu(g, qs22))
        name = g.task_names()[0]
        assert state.score_move(name, state.pe_of(name)) == state.score()
        # applying a no-op is also harmless
        state.apply_move(name, state.pe_of(name))
        assert_snapshot_matches(state)

    def test_generator_graph_sequences_close(self):
        """Arbitrary float costs: agreement within ulp-level tolerance."""
        g = assign_costs(random_topology(18, fat=0.5, seed=3), ccr=1.2, seed=3)
        platform = CellPlatform.qs22()
        rng = random.Random(5)
        names = g.task_names()
        state = DeltaAnalyzer(
            Mapping(g, platform, {n: rng.randrange(platform.n_pes) for n in names})
        )
        for _step in range(60):
            task = rng.choice(names)
            pe = rng.randrange(platform.n_pes)
            score = state.score_move(task, pe)
            reference = analyze(state.mapping().with_assignment(task, pe))
            assert score.period == pytest.approx(reference.period, rel=1e-9)
            assert score.feasible == reference.feasible
            state.apply_move(task, pe)
        snap, full = state.snapshot(), analyze(state.mapping())
        assert snap.period == pytest.approx(full.period, rel=1e-9)
        assert snap.feasible == full.feasible
        # resync() squashes any accumulated drift back to bit-identity
        state.resync()
        assert_snapshot_matches(state)

    def test_dual_cell_link_is_the_bottleneck_when_loaded(self):
        """Cross-cell traffic must show up in the period via the BIF link."""
        platform = CellPlatform.qs22_dual()
        g = StreamGraph("cross")
        g.add_task(Task("a", wppe=10.0, wspe=10.0))
        g.add_task(Task("b", wppe=10.0, wspe=10.0))
        g.add_edge(DataEdge("a", "b", 4_000_000.0))
        # a on cell 0's PPE, b on cell 1's PPE: the edge crosses the BIF.
        state = DeltaAnalyzer(Mapping(g, platform, {"a": 0, "b": 1}))
        assert state.period() == analyze(state.mapping()).period
        assert state.snapshot().link_loads
        # moving b next to a removes the link load entirely
        state.apply_move("b", 0)
        assert not state.snapshot().link_loads
        assert_snapshot_matches(state)

    def test_rejects_unknown_task_and_bad_pe(self, qs22):
        state = DeltaAnalyzer(greedy_cpu(integer_cost_graph(1), qs22))
        with pytest.raises(MappingError):
            state.score_move("nope", 0)
        with pytest.raises(MappingError):
            state.score_move(state.mapping().graph.task_names()[0], qs22.n_pes)

    def test_score_is_named_tuple(self, qs22):
        state = DeltaAnalyzer(greedy_cpu(integer_cost_graph(2), qs22))
        score = state.score()
        assert isinstance(score, MoveScore)
        assert score.period == state.period()
        assert score.feasible == state.feasible


class TestLocalSearchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_from_ppe_start(self, seed, qs22):
        g = integer_cost_graph(50 + seed, n_min=10, n_max=14)
        start = Mapping.all_on_ppe(g, qs22)
        fast = local_search(start, max_rounds=6, use_delta=True)
        slow = local_search(start, max_rounds=6, use_delta=False)
        assert fast.to_dict() == slow.to_dict()
        assert period(fast) == period(slow)

    def test_matches_reference_on_generator_graph(self, qs22):
        g = assign_costs(random_topology(14, fat=0.5, seed=8), ccr=1.0, seed=8)
        start = greedy_cpu(g, qs22)
        fast = local_search(start, max_rounds=8)
        slow = local_search(start, max_rounds=8, use_delta=False)
        assert fast.to_dict() == slow.to_dict()
        assert period(fast) == period(slow)

    def test_matches_reference_without_swaps(self, qs22):
        g = integer_cost_graph(77, n_min=10, n_max=14)
        start = Mapping.all_on_ppe(g, qs22)
        fast = local_search(start, max_rounds=6, try_swaps=False)
        slow = local_search(start, max_rounds=6, try_swaps=False, use_delta=False)
        assert fast.to_dict() == slow.to_dict()

    def test_matches_reference_on_dual_cell(self):
        platform = CellPlatform.qs22_dual()
        g = integer_cost_graph(33, n_min=8, n_max=12)
        start = Mapping.all_on_ppe(g, platform)
        fast = local_search(start, max_rounds=4)
        slow = local_search(start, max_rounds=4, use_delta=False)
        assert fast.to_dict() == slow.to_dict()


class TestMetaheuristics:
    def tight_graph(self):
        g = StreamGraph("tight")
        g.add_task(Task("src", wppe=10.0, wspe=20.0))
        for i in range(20):
            g.add_task(Task(f"w{i}", wppe=100.0, wspe=40.0))
            g.add_edge(DataEdge("src", f"w{i}", 9000.0))
        return g

    @pytest.mark.parametrize("strategy", [simulated_annealing, tabu_search])
    def test_feasible_and_no_worse_than_start(self, strategy, qs22):
        g = integer_cost_graph(5, n_min=15, n_max=20)
        result = (
            strategy(g, qs22, iterations=600)
            if strategy is simulated_annealing
            else strategy(g, qs22, rounds=30)
        )
        analysis = analyze(result)
        assert analysis.feasible
        start = critical_path_mapping(g, qs22)
        assert analysis.period <= analyze(start).period

    @pytest.mark.parametrize("strategy", [simulated_annealing, tabu_search])
    def test_never_infeasible_under_tight_memory(self, strategy, qs22):
        g = self.tight_graph()
        result = strategy(g, qs22, seed=2, **(
            {"iterations": 400} if strategy is simulated_annealing else {"rounds": 20}
        ))
        assert analyze(result).feasible

    def test_zero_and_negative_temperature_are_clamped(self, qs22):
        # T=0 must behave as pure greedy acceptance, not divide by zero.
        g = integer_cost_graph(41, n_min=8, n_max=10)
        frozen = simulated_annealing(g, qs22, iterations=200, initial_temperature=0.0)
        assert analyze(frozen).feasible
        cold = simulated_annealing(g, qs22, iterations=200, initial_temperature=-5.0)
        assert analyze(cold).feasible

    def test_deterministic_per_seed(self, qs22):
        g = integer_cost_graph(12, n_min=12, n_max=16)
        a = simulated_annealing(g, qs22, seed=4, iterations=300)
        b = simulated_annealing(g, qs22, seed=4, iterations=300)
        assert a == b
        c = tabu_search(g, qs22, seed=4, rounds=15)
        d = tabu_search(g, qs22, seed=4, rounds=15)
        assert c == d

    def test_escapes_local_optimum_at_least_matches_local_search(self, qs22):
        # Tabu search applies worsening moves, so it must never end worse
        # than the steepest-descent local optimum it also visits.
        g = integer_cost_graph(21, n_min=15, n_max=20)
        start = critical_path_mapping(g, qs22)
        descended = local_search(start, max_rounds=20)
        tabu = tabu_search(g, qs22, start=start, rounds=40)
        assert period(tabu) <= period(descended) * 1.05

    def test_registered_in_strategies(self):
        from repro.experiments import STRATEGIES, build_mapping

        assert "simulated_annealing" in STRATEGIES
        assert "tabu_search" in STRATEGIES
        g = integer_cost_graph(30, n_min=8, n_max=10)
        platform = CellPlatform.qs22().with_spes(2)
        for name in ("simulated_annealing", "tabu_search"):
            mapping = build_mapping(name, g, platform)
            assert analyze(mapping).feasible


class TestBufferMemoization:
    def build(self):
        g = StreamGraph("memo")
        g.add_task(Task("a", wppe=10.0, wspe=5.0))
        g.add_task(Task("b", wppe=10.0, wspe=5.0, peek=1))
        g.add_task(Task("c", wppe=10.0, wspe=5.0))
        g.add_edge(DataEdge("a", "b", 100.0))
        g.add_edge(DataEdge("b", "c", 200.0))
        return g

    def test_cached_and_copied(self):
        g = self.build()
        first = buffer_requirements(g)
        second = buffer_requirements(g)
        assert first == second
        assert first is not second  # callers get private copies
        second["a"] = -1.0  # mutating a copy must not poison the cache
        assert buffer_requirements(g)["a"] == first["a"]

    def test_invalidated_by_graph_mutation(self):
        g = self.build()
        before = buffer_requirements(g)
        g.add_task(Task("d", wppe=1.0, wspe=1.0))
        g.add_edge(DataEdge("c", "d", 50.0))
        after = buffer_requirements(g)
        assert "d" in after
        assert after["c"] != before["c"]

    def test_invalidated_by_edge_replacement(self):
        g = self.build()
        before = buffer_requirements(g)
        g.replace_edge(DataEdge("a", "b", 1000.0))
        after = buffer_requirements(g)
        assert after["a"] != before["a"]

    def test_mapping_dependent_variants_not_cached(self, qs22):
        g = self.build()
        plain = buffer_requirements(g)
        mapping = Mapping.all_on_ppe(g, qs22)
        merged = buffer_requirements(g, mapping, merge_same_pe_buffers=True)
        assert merged["b"] < plain["b"]

    def test_version_counter_tracks_all_mutations(self):
        g = self.build()
        v0 = g.version
        g.replace_task(Task("a", wppe=20.0, wspe=5.0))
        assert g.version == v0 + 1
        g.replace_edge(DataEdge("a", "b", 300.0))
        assert g.version == v0 + 2
