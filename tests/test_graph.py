"""Tests for repro.graph: tasks, edges, the StreamGraph container."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import PEKind


def t(name, wppe=10.0, wspe=5.0, **kw):
    return Task(name, wppe=wppe, wspe=wspe, **kw)


class TestTask:
    def test_cost_on(self):
        task = t("a", wppe=7.0, wspe=3.0)
        assert task.cost_on(PEKind.PPE) == 7.0
        assert task.cost_on(PEKind.SPE) == 3.0

    def test_operation_count_defaults_to_wppe(self):
        assert t("a", wppe=12.0).operation_count == 12.0
        assert t("a", wppe=12.0, ops=99.0).operation_count == 99.0

    def test_scaled(self):
        task = t("a", wppe=10.0, wspe=4.0).scaled(2.0)
        assert task.wppe == 20.0 and task.wspe == 8.0
        with pytest.raises(GraphError):
            t("a").scaled(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", wppe=1, wspe=1),
            dict(name="a", wppe=-1, wspe=1),
            dict(name="a", wppe=0, wspe=0),
            dict(name="a", wppe=1, wspe=1, read=-1),
            dict(name="a", wppe=1, wspe=1, write=-1),
            dict(name="a", wppe=1, wspe=1, peek=-1),
            dict(name="a", wppe=1, wspe=1, ops=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(GraphError):
            Task(**kwargs)

    def test_zero_cost_on_one_class_allowed(self):
        # Unrelated machines: a task may be instantaneous on one class.
        assert Task("a", wppe=0.0, wspe=1.0).wppe == 0.0


class TestDataEdge:
    def test_key_and_scale(self):
        edge = DataEdge("a", "b", 100.0)
        assert edge.key == ("a", "b")
        assert edge.scaled(0.5).data == 50.0

    @pytest.mark.parametrize(
        "args", [("a", "a", 1.0), ("", "b", 1.0), ("a", "b", -1.0)]
    )
    def test_invalid(self, args):
        with pytest.raises(GraphError):
            DataEdge(*args)


class TestStreamGraph:
    def diamond(self):
        g = StreamGraph("diamond")
        for name in "abcd":
            g.add_task(t(name))
        g.add_edge(DataEdge("a", "b", 1.0))
        g.add_edge(DataEdge("a", "c", 2.0))
        g.add_edge(DataEdge("b", "d", 3.0))
        g.add_edge(DataEdge("c", "d", 4.0))
        return g

    def test_counts(self):
        g = self.diamond()
        assert g.n_tasks == 4 and g.n_edges == 4
        assert len(g) == 4
        assert "a" in g and "z" not in g

    def test_duplicate_task(self):
        g = StreamGraph()
        g.add_task(t("a"))
        with pytest.raises(GraphError):
            g.add_task(t("a"))

    def test_duplicate_edge(self):
        g = self.diamond()
        with pytest.raises(GraphError):
            g.add_edge(DataEdge("a", "b", 9.0))

    def test_edge_with_unknown_endpoint(self):
        g = StreamGraph()
        g.add_task(t("a"))
        with pytest.raises(GraphError):
            g.add_edge(DataEdge("a", "ghost", 1.0))

    def test_neighbours(self):
        g = self.diamond()
        assert set(g.successors("a")) == {"b", "c"}
        assert set(g.predecessors("d")) == {"b", "c"}
        assert g.in_degree("d") == 2 and g.out_degree("a") == 2
        assert [e.key for e in g.out_edges("a")] == [("a", "b"), ("a", "c")]
        assert g.edge("c", "d").data == 4.0
        assert g.has_edge("a", "b") and not g.has_edge("b", "a")

    def test_unknown_lookups(self):
        g = self.diamond()
        with pytest.raises(GraphError):
            g.task("nope")
        with pytest.raises(GraphError):
            g.edge("a", "d")
        with pytest.raises(GraphError):
            g.successors("nope")

    def test_sources_sinks(self):
        g = self.diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_topological_order(self):
        g = self.diamond()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in g.edges():
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detection(self):
        g = StreamGraph()
        for name in "abc":
            g.add_task(t(name))
        g.add_edge(DataEdge("a", "b", 1))
        g.add_edge(DataEdge("b", "c", 1))
        g.add_edge(DataEdge("c", "a", 1))
        assert not g.is_acyclic()
        with pytest.raises(CycleError):
            g.topological_order()

    def test_validate_empty(self):
        with pytest.raises(GraphError):
            StreamGraph().validate()

    def test_depth_width_levels(self):
        g = self.diamond()
        assert g.depth() == 3
        assert g.width() == 2
        levels = g.levels()
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_copy_and_equality(self):
        g = self.diamond()
        h = g.copy()
        assert g == h
        h.replace_edge(DataEdge("a", "b", 42.0))
        assert g != h

    def test_scaled(self):
        g = self.diamond().scaled(compute_factor=2.0, data_factor=10.0)
        assert g.task("a").wppe == 20.0
        assert g.edge("a", "b").data == 10.0

    def test_replace_task(self):
        g = self.diamond()
        g.replace_task(t("a", wppe=99.0))
        assert g.task("a").wppe == 99.0
        with pytest.raises(GraphError):
            g.replace_task(t("ghost"))

    def test_chain_of(self):
        tasks = [t(f"s{i}") for i in range(4)]
        g = StreamGraph.chain_of(tasks, [1.0, 2.0, 3.0])
        assert g.sources() == ["s0"] and g.sinks() == ["s3"]
        assert g.depth() == 4 and g.width() == 1
        with pytest.raises(GraphError):
            StreamGraph.chain_of(tasks, [1.0])

    def test_from_parts_validates(self):
        with pytest.raises(GraphError):
            StreamGraph.from_parts([], [])

    def test_to_networkx(self):
        nx_graph = self.diamond().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes["a"]["wppe"] == 10.0
        assert nx_graph.edges[("c", "d")]["data"] == 4.0
