"""Kernel-backend selection and the backend-independence contract.

Covers the selection layer itself (``resolve_backend`` precedence:
explicit argument > ``REPRO_KERNEL_BACKEND`` > auto-detection, error
paths when numpy is requested but unavailable), the way
:class:`DeltaAnalyzer` / the strategies / :class:`OnlineScheduler`
thread the choice through, the batch-API validation errors, and —
nightly, gated on ``REPRO_XCHECK_LARGE=1`` — a scaled-up scalar-vs-numpy
cross-check on large random graphs.  The per-entry bit-exactness
property suite lives in ``tests/test_compiled.py``.
"""

import os
import random

import pytest

from test_delta import PLATFORMS, integer_cost_graph

from repro.errors import KernelBackendError, MappingError
from repro.heuristics import critical_path_mapping, local_search, tabu_search
from repro.platform import CellPlatform
from repro.runtime import OnlineScheduler
from repro.steady_state import (
    BACKEND_ENV_VAR,
    NO_EXTENSION_ENV_VAR,
    DeltaAnalyzer,
    KERNEL_BACKENDS,
    Mapping,
    available_backends,
    cython_available,
    numpy_available,
    resolve_backend,
)
from repro.steady_state import backend as backend_mod

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)
needs_cython = pytest.mark.skipif(
    not cython_available(), reason="compiled extension not built"
)


class TestResolveBackend:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend("python") == "python"

    def test_env_var_used_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend() == "python"

    def test_auto_detects(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        if cython_available():
            expected = "cython"
        else:
            expected = "numpy" if numpy_available() else "python"
        assert resolve_backend() == expected
        assert resolve_backend("auto") == expected
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend() == expected

    def test_auto_precedence_pinned(self, monkeypatch):
        """auto resolves cython > numpy > python, degrading one step at
        a time as backends become unavailable."""
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.delenv(NO_EXTENSION_ENV_VAR, raising=False)
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", True)
        monkeypatch.setattr(backend_mod, "_NUMPY_OK", True)
        assert resolve_backend("auto") == "cython"
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", False)
        assert resolve_backend("auto") == "numpy"
        monkeypatch.setattr(backend_mod, "_NUMPY_OK", False)
        assert resolve_backend("auto") == "python"

    def test_selection_is_trimmed_and_case_insensitive(self):
        assert resolve_backend("  PYTHON ") == "python"

    def test_unknown_name_raises_with_source(self, monkeypatch):
        with pytest.raises(KernelBackendError, match="backend argument"):
            resolve_backend("fortran")
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(KernelBackendError, match=BACKEND_ENV_VAR):
            resolve_backend()

    def test_numpy_request_without_numpy_raises(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(backend_mod, "_NUMPY_OK", False)
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", False)
        assert available_backends() == ("python",)
        assert resolve_backend() == "python"  # auto falls back silently
        with pytest.raises(KernelBackendError, match="not importable"):
            resolve_backend("numpy")
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        with pytest.raises(KernelBackendError, match=BACKEND_ENV_VAR):
            resolve_backend()

    def test_cython_request_without_extension_raises(self, monkeypatch):
        """Explicit cython selection in a pure-python install fails with
        an error that names the fix (how to build the extension)."""
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", False)
        assert "cython" not in available_backends()
        with pytest.raises(KernelBackendError, match="pip install"):
            resolve_backend("cython")
        with pytest.raises(KernelBackendError, match="build_ext"):
            resolve_backend("cython")
        monkeypatch.setenv(BACKEND_ENV_VAR, "cython")
        with pytest.raises(KernelBackendError, match=BACKEND_ENV_VAR):
            resolve_backend()

    def test_no_extension_env_disables_cython(self, monkeypatch):
        """REPRO_NO_EXTENSION makes a built extension invisible (the CI
        no-extension leg)."""
        monkeypatch.setenv(NO_EXTENSION_ENV_VAR, "1")
        assert not cython_available()
        assert "cython" not in available_backends()
        with pytest.raises(KernelBackendError, match="not built"):
            resolve_backend("cython")

    def test_available_backends_reflect_build_state(self, monkeypatch):
        monkeypatch.delenv(NO_EXTENSION_ENV_VAR, raising=False)
        monkeypatch.setattr(backend_mod, "_NUMPY_OK", True)
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", True)
        assert available_backends() == ("python", "numpy", "cython")
        monkeypatch.setattr(backend_mod, "_CYTHON_OK", False)
        assert available_backends() == ("python", "numpy")
        # and the real build state is what cython_available() reports
        monkeypatch.undo()
        assert ("cython" in available_backends()) == cython_available()

    def test_registry_names(self):
        assert KERNEL_BACKENDS == ("python", "numpy", "cython")
        assert available_backends()[0] == "python"


class TestAnalyzerBackend:
    def _state(self, **kwargs):
        g = integer_cost_graph(1, n_min=6, n_max=9)
        mapping = Mapping.all_on_ppe(g, CellPlatform.qs22())
        return DeltaAnalyzer(mapping, **kwargs)

    def test_python_backend_has_no_kernel(self):
        state = self._state(backend="python")
        assert state.backend == "python"
        assert state._kernel is None

    @needs_numpy
    def test_numpy_backend_builds_kernel(self):
        state = self._state(backend="numpy")
        assert state.backend == "numpy"
        assert state._kernel is not None

    @needs_numpy
    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert self._state().backend == "python"
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert self._state().backend == "numpy"

    @needs_cython
    def test_cython_backend_builds_ckernel(self):
        state = self._state(backend="cython")
        assert state.backend == "cython"
        assert state._ck is not None
        # the dense numpy batch kernels stay active alongside
        assert (state._kernel is not None) == numpy_available()

    def test_non_cython_backends_have_no_ckernel(self):
        assert self._state(backend="python")._ck is None
        if numpy_available():
            assert self._state(backend="numpy")._ck is None

    @needs_numpy
    def test_clone_preserves_backend(self):
        for backend in available_backends():
            state = self._state(backend=backend)
            assert state.clone().backend == backend

    def test_batch_validation_errors(self):
        state = self._state(backend=None)
        names = state.graph.task_names()
        with pytest.raises(MappingError, match="not mapped"):
            state.score_assignments([{}, {"missing-task": 0}])
        with pytest.raises(MappingError, match="invalid PE"):
            state.score_assignments([{}, {names[0]: 99}])
        with pytest.raises(MappingError):
            state.score_move_matrix(pes=[0, 99])
        with pytest.raises(MappingError):
            state.evaluate_swaps([(names[0], "missing-task")] * 2)


@needs_numpy
class TestBackendThreading:
    """The strategies and the online runtime honour ``backend=``."""

    def test_local_search_backend_independent(self):
        g = integer_cost_graph(6, n_min=12, n_max=16)
        start = critical_path_mapping(g, CellPlatform.qs22())
        a = local_search(start, max_rounds=5, backend="python")
        b = local_search(start, max_rounds=5, backend="numpy")
        assert a.to_dict() == b.to_dict()

    def test_tabu_search_backend_independent(self):
        g = integer_cost_graph(6, n_min=12, n_max=16)
        a = tabu_search(g, CellPlatform.qs22(), seed=3, rounds=10, backend="python")
        b = tabu_search(g, CellPlatform.qs22(), seed=3, rounds=10, backend="numpy")
        assert a.to_dict() == b.to_dict()

    def test_online_scheduler_forwards_backend(self):
        from repro.runtime.events import AppArrival

        for backend in available_backends():
            sched = OnlineScheduler(CellPlatform.qs22(), backend=backend)
            sched.run([AppArrival(0.0, "app", integer_cost_graph(2, n_min=6, n_max=9))])
            assert sched.state.backend == backend

    def test_reference_state_ignores_backend(self):
        sched = OnlineScheduler(
            CellPlatform.qs22(), use_delta=False, backend="numpy"
        )
        from repro.runtime.events import AppArrival

        sched.run([AppArrival(0.0, "app", integer_cost_graph(2, n_min=6, n_max=9))])
        assert not hasattr(sched.state, "_kernel")


@needs_numpy
@pytest.mark.skipif(
    not os.environ.get("REPRO_XCHECK_LARGE"),
    reason="nightly scale: set REPRO_XCHECK_LARGE=1",
)
def test_large_random_graph_cross_check():
    """Nightly: the scalar kernel and every other available backend
    agree verdict for verdict on graphs an order of magnitude past the
    tier-1 sizes, interleaved with applies (exercises the cached-state
    invalidation paths at scale)."""
    others = [b for b in available_backends() if b != "python"]
    for seed in range(4):
        g = integer_cost_graph(seed, n_min=120, n_max=180)
        platform = PLATFORMS[seed % len(PLATFORMS)]
        rng = random.Random(1000 + seed)
        names = g.task_names()
        n_pes = platform.n_pes
        assignment = {n: rng.randrange(n_pes) for n in names}
        mapping = Mapping(g, platform, assignment)
        scalar = DeltaAnalyzer(mapping, backend="python")
        states = [DeltaAnalyzer(mapping, backend=b) for b in others]
        for _ in range(3):
            pairs = [tuple(rng.sample(names, 2)) for _ in range(64)]
            candidates = [
                {n: rng.randrange(n_pes) for n in rng.sample(names, 10)}
                for _ in range(32)
            ]
            ref_moves = {n: scalar.score_moves(n) for n in names}
            ref_best = scalar.best_move()
            ref_swaps = [scalar.score_swap(a, b) for a, b in pairs]
            ref_changes = [scalar.score_changes(ch) for ch in candidates]
            for other in states:
                worst, nviol = other.score_move_matrix()
                for i, name in enumerate(names):
                    for pe, score in enumerate(ref_moves[name]):
                        assert float(worst[i, pe]) == score.period
                        assert int(nviol[i, pe]) == score.n_violations
                assert other.best_move() == ref_best
                assert other.score_swaps(pairs) == ref_swaps
                assert other.score_assignments(candidates) == ref_changes
                assert [
                    (s.period, s.n_violations)
                    for n in names[:16]
                    for s in other.score_moves(n)
                ] == [
                    (s.period, s.n_violations)
                    for n in names[:16]
                    for s in ref_moves[n]
                ]
            for _ in range(5):
                name = rng.choice(names)
                pe = rng.randrange(n_pes)
                scalar.apply_move(name, pe)
                for other in states:
                    other.apply_move(name, pe)
            for other in states:
                assert other.snapshot() == scalar.snapshot()
