"""Property-based tests (hypothesis) for the core invariants.

These encode the load-bearing identities of the paper's model:

* ``firstPeriod`` grows by at least peek+2 along every edge, so buffer
  windows are always ≥ 2 instances;
* the analytic period of any mapping is at least every lower bound the
  model implies, and the MILP never returns something worse than feasible
  heuristics or better than the brute-force optimum;
* max-min fair allocations never exceed port capacities and are Pareto
  (every flow is blocked by a saturated port);
* the ideal simulator converges to the analytic throughput.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.generator import assign_costs, random_topology
from repro.graph import ccr as graph_ccr
from repro.heuristics import random_mapping
from repro.milp import solve_optimal_mapping
from repro.platform import CellPlatform
from repro.simulator import FlowNetwork, SimConfig, simulate
from repro.steady_state import (
    analyze,
    buffer_sizes,
    first_periods,
)

SMALL_TOPOLOGY = st.builds(
    random_topology,
    n_tasks=st.integers(2, 14),
    fat=st.floats(0.2, 1.2),
    regularity=st.floats(0.0, 1.0),
    density=st.floats(0.0, 1.0),
    jump=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)


def graph_from(topology, seed, ccr=0.775):
    return assign_costs(topology, ccr=ccr, seed=seed)


@given(topology=SMALL_TOPOLOGY, seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_first_periods_monotone_and_windows_positive(topology, seed):
    graph = graph_from(topology, seed)
    fp = first_periods(graph)
    for edge in graph.edges():
        peek = graph.task(edge.dst).peek
        assert fp[edge.dst] >= fp[edge.src] + peek + 2
    for (src, dst), size in buffer_sizes(graph).items():
        window = fp[dst] - fp[src]
        assert window >= 2
        assert size == graph.edge(src, dst).data * window


@given(topology=SMALL_TOPOLOGY, seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_generator_hits_requested_ccr(topology, seed):
    graph = graph_from(topology, seed, ccr=1.3)
    if graph.n_edges:
        assert math.isclose(graph_ccr(graph), 1.3, rel_tol=1e-9)


@given(
    topology=SMALL_TOPOLOGY,
    seed=st.integers(0, 1000),
    map_seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_period_lower_bounds(topology, seed, map_seed):
    graph = graph_from(topology, seed)
    platform = CellPlatform.qs22()
    mapping = random_mapping(graph, platform, seed=map_seed)
    analysis = analyze(mapping)
    # Any PE's own load bounds the period from below...
    for load in analysis.loads:
        assert analysis.period >= load.compute - 1e-9
    # ...and so does the heaviest single task on its assigned class.
    for task in graph.tasks():
        pe = mapping.pe_of(task.name)
        assert analysis.period >= task.cost_on(platform.kind(pe)) - 1e-9


@given(
    topology=SMALL_TOPOLOGY,
    seed=st.integers(0, 300),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_milp_never_worse_than_random_feasible(topology, seed):
    graph = graph_from(topology, seed)
    platform = CellPlatform(n_ppe=1, n_spe=2)
    milp = solve_optimal_mapping(graph, platform, mip_rel_gap=None)
    contender = random_mapping(graph, platform, seed=seed)
    contender_analysis = analyze(contender)
    if contender_analysis.feasible:
        assert milp.period <= contender_analysis.period + 1e-6


@given(
    n_ports=st.integers(2, 6),
    n_flows=st.integers(1, 12),
    seed=st.integers(0, 10_000),
    bw=st.floats(1.0, 1e5),
)
@settings(max_examples=60, deadline=None)
def test_maxmin_capacity_and_pareto(n_ports, n_flows, seed, bw):
    import random

    rng = random.Random(seed)
    caps = {}
    for p in range(n_ports):
        caps[("out", p)] = bw
        caps[("in", p)] = bw
    net = FlowNetwork(caps)
    flows = [
        net.start_flow(
            ("out", rng.randrange(n_ports)),
            ("in", rng.randrange(n_ports)),
            rng.uniform(1, 100),
        )
        for _ in range(n_flows)
    ]
    net.allocate()
    net.check_capacities()
    usage = net.utilisation()
    # Pareto optimality: no flow can be sped up without hurting another.
    for f in flows:
        ports = [p for p in (f.src_port, f.dst_port)]
        assert any(usage[p] >= bw * (1 - 1e-6) for p in ports)
    # Every flow makes progress.
    assert all(f.rate > 0 for f in flows)


@given(
    topology=SMALL_TOPOLOGY,
    seed=st.integers(0, 200),
    map_seed=st.integers(0, 50),
)
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ideal_simulation_matches_model(topology, seed, map_seed):
    graph = graph_from(topology, seed)
    platform = CellPlatform.qs22().with_spes(3)
    mapping = random_mapping(graph, platform, seed=map_seed)
    analysis = analyze(mapping)
    if not analysis.feasible:
        return
    result = simulate(mapping, 400, SimConfig.ideal())
    assert result.efficiency() >= 0.93
    assert result.steady_state_throughput() <= analysis.throughput * 1.07


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_fptas_dominated_by_guarantee(data):
    from repro.complexity import (
        MultiprocessorInstance,
        exact_two_machines_dp,
        fptas_two_machines,
    )

    n = data.draw(st.integers(1, 10))
    l1 = data.draw(
        st.lists(st.floats(0.1, 50), min_size=n, max_size=n)
    )
    l2 = data.draw(
        st.lists(st.floats(0.1, 50), min_size=n, max_size=n)
    )
    eps = data.draw(st.sampled_from([0.5, 0.2, 0.05]))
    instance = MultiprocessorInstance.from_lists(l1, l2, bound=1.0)
    exact = exact_two_machines_dp(instance)
    value, allocation = fptas_two_machines(instance, eps)
    assert value <= exact * (1 + eps) + 1e-9
    assert math.isclose(instance.makespan(allocation), value, rel_tol=1e-9)
