"""Tests for the parallel sweep runner and the --jobs figure wiring."""

import pytest

from repro.experiments import fig7_speedup
from repro.experiments.common import rate_of_point, speedup_of_point
from repro.experiments.parallel import effective_jobs, point_seed, run_sweep
from repro.generator import assign_costs, random_topology
from repro.platform import CellPlatform
from repro.simulator import SimConfig


@pytest.fixture(scope="module")
def small_graph():
    return assign_costs(random_topology(10, fat=0.4, seed=21), ccr=0.775, seed=21)


@pytest.fixture(scope="module")
def small_platform():
    return CellPlatform.qs22().with_spes(2)


class TestEffectiveJobs:
    def test_serial_defaults(self):
        assert effective_jobs(None, 10) == 1
        assert effective_jobs(0, 10) == 1
        assert effective_jobs(1, 10) == 1

    def test_bounded_by_specs(self):
        assert effective_jobs(8, 3) == 3
        assert effective_jobs(2, 10) == 2

    def test_negative_means_all_cores(self):
        assert effective_jobs(-1, 1000) >= 1

    def test_point_seed_stable_and_distinct(self):
        assert point_seed("fig7", 1, "milp") == point_seed("fig7", 1, "milp")
        assert point_seed("fig7", 1, "milp") != point_seed("fig7", 2, "milp")


class TestRunSweep:
    def test_serial_path(self, small_graph, small_platform):
        config = SimConfig.ideal()
        specs = [
            (small_graph, small_platform, s, 60, config)
            for s in ("ppe", "greedy_cpu", "greedy_mem")
        ]
        rates = run_sweep(rate_of_point, specs)
        assert len(rates) == 3
        assert all(rate > 0 for rate in rates)

    def test_parallel_matches_serial(self, small_graph, small_platform):
        config = SimConfig.ideal()
        specs = [
            (small_graph, small_platform, s, 60, config)
            for s in ("ppe", "greedy_cpu", "critical_path")
        ]
        serial = run_sweep(rate_of_point, specs, jobs=None)
        parallel = run_sweep(rate_of_point, specs, jobs=2)
        assert parallel == serial

    def test_speedup_worker(self, small_graph, small_platform):
        ratio, n_on_spes = speedup_of_point(
            (small_graph, small_platform, "greedy_cpu", 60, SimConfig.ideal())
        )
        assert ratio > 0
        assert 0 <= n_on_spes <= small_graph.n_tasks

    def test_seeded_spec_is_deterministic(self, small_graph, small_platform):
        config = SimConfig.ideal()
        seed = point_seed("test", "tabu_search")
        spec = (small_graph, small_platform, "tabu_search", 60, config, seed)
        assert rate_of_point(spec) == rate_of_point(spec)
        # seedless 5-tuples remain supported (fixed strategy default seed)
        assert rate_of_point(spec[:5]) == rate_of_point(spec[:5])

    def test_build_mapping_forwards_seed_only_to_seeded_strategies(
        self, small_graph, small_platform
    ):
        from repro.experiments.common import SEEDED_STRATEGIES, build_mapping

        assert set(SEEDED_STRATEGIES) == {
            "simulated_annealing",
            "tabu_search",
            "genetic_algorithm",
        }
        a = build_mapping("tabu_search", small_graph, small_platform, seed=7)
        b = build_mapping("tabu_search", small_graph, small_platform, seed=7)
        assert a == b
        # deterministic strategies ignore the seed rather than rejecting it
        c = build_mapping("greedy_cpu", small_graph, small_platform, seed=7)
        d = build_mapping("greedy_cpu", small_graph, small_platform)
        assert c == d


class TestSweepCommon:
    """The shared-context path: objects shipped once per worker via the
    pool initializer must give bit-identical results to inline specs,
    serially and in parallel."""

    def test_refs_resolve_in_serial_and_parallel(
        self, small_graph, small_platform
    ):
        from repro.experiments.common import SweepRef

        config = SimConfig.ideal()
        common = {"g": small_graph, "p": small_platform, "cfg": config}
        ref_specs = [
            (SweepRef("g"), SweepRef("p"), s, 60, SweepRef("cfg"))
            for s in ("ppe", "greedy_cpu", "greedy_mem")
        ]
        inline_specs = [
            (small_graph, small_platform, s, 60, config)
            for s in ("ppe", "greedy_cpu", "greedy_mem")
        ]
        inline = run_sweep(rate_of_point, inline_specs)
        serial = run_sweep(rate_of_point, ref_specs, common=common)
        parallel = run_sweep(rate_of_point, ref_specs, jobs=2, common=common)
        assert serial == inline
        assert parallel == inline

    def test_serial_context_is_restored(self, small_graph, small_platform):
        from repro.experiments.parallel import sweep_common

        config = SimConfig.ideal()
        common = {"g": small_graph, "p": small_platform, "cfg": config}
        from repro.experiments.common import SweepRef

        specs = [(SweepRef("g"), SweepRef("p"), "ppe", 60, SweepRef("cfg"))]
        assert sweep_common() is None
        run_sweep(rate_of_point, specs, common=common)
        assert sweep_common() is None

    def test_missing_common_key_fails_fast(self, small_platform):
        from repro.errors import ExperimentError
        from repro.experiments.common import SweepRef

        spec = (SweepRef("absent"), small_platform, "ppe", 60, SimConfig.ideal())
        with pytest.raises(ExperimentError, match="absent"):
            run_sweep(rate_of_point, [spec])

    def test_explicit_chunksize_passthrough(self, small_graph, small_platform):
        config = SimConfig.ideal()
        specs = [
            (small_graph, small_platform, s, 60, config)
            for s in ("ppe", "greedy_cpu", "greedy_mem", "critical_path")
        ]
        serial = run_sweep(rate_of_point, specs)
        chunked = run_sweep(rate_of_point, specs, jobs=2, chunksize=3)
        assert chunked == serial


class TestFigureJobs:
    def test_fig7_jobs_equivalent(self, small_graph, small_platform):
        kwargs = dict(
            spe_counts=(0, 2),
            strategies=("greedy_cpu",),
            n_instances=60,
            config=SimConfig.ideal(),
            base_platform=small_platform,
        )
        serial = fig7_speedup.run_one(small_graph, **kwargs)
        fanned = fig7_speedup.run_one(small_graph, jobs=2, **kwargs)
        assert fanned.points == serial.points
