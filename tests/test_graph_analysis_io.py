"""Tests for repro.graph.analysis (CCR, critical path) and repro.graph.io."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    DataEdge,
    StreamGraph,
    Task,
    ccr,
    critical_path_time,
    graph_stats,
    total_compute,
    total_data_bytes,
    total_elements,
    total_operations,
)
from repro.graph.analysis import ELEMENT_BYTES
from repro.graph.io import dumps, from_dict, load, loads, save, to_dict, to_dot


def simple_graph():
    g = StreamGraph("g")
    g.add_task(Task("a", wppe=10.0, wspe=5.0, read=64.0, peek=1))
    g.add_task(Task("b", wppe=20.0, wspe=40.0, write=32.0, stateful=True))
    g.add_edge(DataEdge("a", "b", 400.0))
    return g


class TestAnalysis:
    def test_totals(self):
        g = simple_graph()
        assert total_data_bytes(g) == 400.0
        assert total_elements(g) == 400.0 / ELEMENT_BYTES == 100.0
        assert total_operations(g) == 30.0  # ops default to wppe
        assert total_compute(g, "ppe") == 30.0
        assert total_compute(g, "spe") == 45.0
        assert total_compute(g, "min") == 25.0
        with pytest.raises(ValueError):
            total_compute(g, "avg")

    def test_ccr_definition(self):
        # §6.2: CCR = transferred elements / operations.
        g = simple_graph()
        assert ccr(g) == pytest.approx(100.0 / 30.0)

    def test_ccr_uses_explicit_ops(self):
        g = StreamGraph("g")
        g.add_task(Task("a", wppe=10.0, wspe=5.0, ops=1000.0))
        g.add_task(Task("b", wppe=10.0, wspe=5.0, ops=1000.0))
        g.add_edge(DataEdge("a", "b", 8000.0))
        assert ccr(g) == pytest.approx(2000.0 / 2000.0)

    def test_ccr_degenerate(self):
        g = StreamGraph("g")
        g.add_task(Task("a", wppe=0.0, wspe=1.0, ops=0.0))
        assert ccr(g) == 0.0

    def test_critical_path(self):
        g = StreamGraph("g")
        for name, wppe, wspe in [("a", 10, 20), ("b", 30, 10), ("c", 5, 50)]:
            g.add_task(Task(name, wppe=wppe, wspe=wspe))
        g.add_edge(DataEdge("a", "b", 1))
        g.add_edge(DataEdge("a", "c", 1))
        # min costs: a=10, b=10, c=5 -> longest path a->b = 20
        assert critical_path_time(g, "min") == 20.0
        assert critical_path_time(g, "ppe") == 40.0  # a->b on PPE costs
        with pytest.raises(ValueError):
            critical_path_time(g, "nope")

    def test_stats(self):
        stats = graph_stats(simple_graph())
        assert stats.n_tasks == 2 and stats.n_edges == 1
        assert stats.depth == 2 and stats.width == 1
        assert stats.max_peek == 1
        assert stats.n_stateful == 1
        assert "g:" in str(stats)


class TestIO:
    def test_round_trip_dict(self):
        g = simple_graph()
        assert from_dict(to_dict(g)) == g

    def test_round_trip_text(self):
        g = simple_graph()
        assert loads(dumps(g)) == g

    def test_round_trip_file(self, tmp_path):
        g = simple_graph()
        path = save(g, tmp_path / "graph.json")
        assert load(path) == g

    def test_ops_preserved(self):
        g = StreamGraph("g")
        g.add_task(Task("a", wppe=1.0, wspe=1.0, ops=123.0))
        again = from_dict(to_dict(g))
        assert again.task("a").ops == 123.0

    def test_malformed_payload(self):
        with pytest.raises(GraphError):
            from_dict({"name": "x"})
        with pytest.raises(GraphError):
            from_dict({"tasks": [{"bogus": 1}], "edges": []})

    def test_dot_output(self):
        g = simple_graph()
        dot = to_dot(g)
        assert "digraph" in dot
        assert '"a" -> "b"' in dot
        assert "peek=1" in dot

    def test_dot_with_mapping(self):
        from repro.platform import CellPlatform
        from repro.steady_state import Mapping

        g = simple_graph()
        mapping = Mapping.all_on_ppe(g, CellPlatform.qs22())
        dot = to_dot(g, mapping)
        assert "fillcolor" in dot
