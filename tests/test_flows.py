"""Tests for the bounded-multiport max-min fair flow model."""

import pytest

from repro.errors import SimulationError
from repro.simulator import FlowNetwork


def net(bw=100.0, n=3, **kw):
    caps = {}
    for pe in range(n):
        caps[("out", pe)] = bw
        caps[("in", pe)] = bw
    return FlowNetwork(caps, **kw)


class TestMaxMin:
    def test_single_flow_full_bandwidth(self):
        network = net()
        f = network.start_flow(("out", 0), ("in", 1), 1000.0)
        network.allocate()
        assert f.rate == pytest.approx(100.0)

    def test_two_flows_share_receiver(self):
        network = net()
        f1 = network.start_flow(("out", 0), ("in", 2), 1000.0)
        f2 = network.start_flow(("out", 1), ("in", 2), 1000.0)
        network.allocate()
        assert f1.rate == pytest.approx(50.0)
        assert f2.rate == pytest.approx(50.0)

    def test_max_min_not_proportional(self):
        # Flows: A:0->1, B:0->2, C:3->2.  Port out0 is shared by A and B,
        # port in2 by B and C.  Max-min: everyone 50, then A and C top up
        # to their residual 50 -> A=50? No: out0 gives A 50, in2 gives C 50;
        # A's in1 and C's out3 are free, so A and C rise to 50+residual.
        network = net(n=4)
        a = network.start_flow(("out", 0), ("in", 1), 1e6)
        b = network.start_flow(("out", 0), ("in", 2), 1e6)
        c = network.start_flow(("out", 3), ("in", 2), 1e6)
        network.allocate()
        # b is constrained on both ports to the fair share 50; a and c can
        # then use the residual 50 on their private ports.
        assert b.rate == pytest.approx(50.0)
        assert a.rate == pytest.approx(50.0)
        assert c.rate == pytest.approx(50.0)

    def test_asymmetric_bottleneck(self):
        caps = {("out", 0): 100.0, ("in", 1): 30.0}
        network = FlowNetwork(caps)
        f = network.start_flow(("out", 0), ("in", 1), 1000.0)
        network.allocate()
        assert f.rate == pytest.approx(30.0)

    def test_memory_endpoint_unconstrained(self):
        network = net()
        f1 = network.start_flow(None, ("in", 0), 1000.0)  # MEM -> PE0
        f2 = network.start_flow(("out", 0), None, 1000.0)  # PE0 -> MEM
        network.allocate()
        # Only the PE interface constrains each flow.
        assert f1.rate == pytest.approx(100.0)
        assert f2.rate == pytest.approx(100.0)

    def test_capacities_never_exceeded(self):
        network = net(bw=40.0)
        import random

        rng = random.Random(0)
        for _ in range(20):
            src = ("out", rng.randrange(3))
            dst = ("in", rng.randrange(3))
            network.start_flow(src, dst, 100.0)
        network.allocate()
        network.check_capacities()
        usage = network.utilisation()
        for port, used in usage.items():
            assert used <= 40.0 * (1 + 1e-9)

    def test_pareto_no_free_capacity_left(self):
        # Max-min is Pareto: every flow touches at least one full port.
        network = net(bw=60.0)
        flows = [
            network.start_flow(("out", 0), ("in", 1), 1e6),
            network.start_flow(("out", 0), ("in", 2), 1e6),
            network.start_flow(("out", 1), ("in", 2), 1e6),
        ]
        network.allocate()
        usage = network.utilisation()
        for f in flows:
            ports = [p for p in (f.src_port, f.dst_port) if p is not None]
            assert any(
                usage[p] == pytest.approx(60.0) for p in ports
            ), f"flow {f.flow_id} could still grow"

    def test_epoch_bumped_on_allocate(self):
        network = net()
        f = network.start_flow(("out", 0), ("in", 1), 10.0)
        before = f.epoch
        network.allocate()
        assert f.epoch == before + 1

    def test_advance_decrements(self):
        network = net()
        f = network.start_flow(("out", 0), ("in", 1), 1000.0)
        network.allocate()
        network.advance(2.0)
        assert f.remaining == pytest.approx(800.0)
        network.advance(100.0)
        assert f.remaining == 0.0
        with pytest.raises(SimulationError):
            network.advance(-1.0)

    def test_finish_flow(self):
        network = net()
        f = network.start_flow(("out", 0), ("in", 1), 10.0)
        network.finish_flow(f.flow_id)
        assert not network.flows
        with pytest.raises(SimulationError):
            network.finish_flow(f.flow_id)

    def test_unknown_port_rejected(self):
        network = net()
        with pytest.raises(SimulationError):
            network.start_flow(("out", 99), ("in", 0), 10.0)


class TestEib:
    def test_eib_cap_binds_aggregate(self):
        network = net(bw=100.0, n=4, eib_bw=150.0)
        flows = [
            network.start_flow(("out", i), ("in", i + 2), 1e6) for i in range(2)
        ]
        network.allocate()
        total = sum(f.rate for f in flows)
        assert total == pytest.approx(150.0)

    def test_paper_claim_eib_never_binds_at_scale(self):
        # 8 interfaces at 25 GB/s = the 200 GB/s ring: with one flow per
        # interface pair the ring cannot be the bottleneck (§2.1).
        caps = {}
        for pe in range(8):
            caps[("out", pe)] = 25_000.0
            caps[("in", pe)] = 25_000.0
        network = FlowNetwork(caps, eib_bw=200_000.0)
        flows = [
            network.start_flow(("out", i), ("in", (i + 1) % 8), 1e9)
            for i in range(8)
        ]
        network.allocate()
        for f in flows:
            assert f.rate == pytest.approx(25_000.0)


class TestSerial:
    def test_one_flow_at_a_time_per_port(self):
        network = net(serial=True)
        f1 = network.start_flow(("out", 0), ("in", 1), 1e6)
        f2 = network.start_flow(("out", 0), ("in", 2), 1e6)
        network.allocate()
        assert f1.rate == pytest.approx(100.0)  # FIFO head
        assert f2.rate == 0.0

    def test_disjoint_flows_run_concurrently(self):
        network = net(serial=True)
        f1 = network.start_flow(("out", 0), ("in", 1), 1e6)
        f2 = network.start_flow(("out", 2), ("in", 0), 1e6)
        network.allocate()
        assert f1.rate > 0 and f2.rate > 0

    def test_serial_never_faster_than_maxmin_total(self):
        fair = net()
        serial = net(serial=True)
        for network in (fair, serial):
            network.start_flow(("out", 0), ("in", 1), 1e6)
            network.start_flow(("out", 0), ("in", 1), 1e6)
            network.allocate()
        assert sum(f.rate for f in serial.flows.values()) <= sum(
            f.rate for f in fair.flows.values()
        ) + 1e-9
