"""Tests for the simulator's ablation switches and platform diagnostics.

Each knob exists to answer a DESIGN.md question; these tests pin down the
direction of its effect on small, controlled workloads.
"""

import pytest

from repro.errors import PlatformError, SimulationError
from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import CellPlatform, DmaCosts, diagnose_fit
from repro.simulator import SimConfig, Simulator, simulate
from repro.steady_state import Mapping


def star_graph(n_leaves=6, data=100_000.0):
    g = StreamGraph("star")
    g.add_task(Task("hub", wppe=5.0, wspe=5.0))
    for i in range(n_leaves):
        g.add_task(Task(f"leaf{i}", wppe=5.0, wspe=5.0))
        g.add_edge(DataEdge("hub", f"leaf{i}", data))
    return g


class TestEibAblation:
    def test_eib_cap_slows_heavy_fanout(self, qs22):
        # Six concurrent 100 kB transfers out of the hub; with the ring
        # capped the aggregate cannot exceed 200 GB/s.
        g = star_graph()
        assignment = {"hub": 0}
        assignment.update({f"leaf{i}": i + 1 for i in range(6)})
        m = Mapping(g, qs22, assignment)
        free = simulate(m, 10, SimConfig.ideal())
        capped = simulate(m, 10, SimConfig(enforce_eib=True))
        assert capped.makespan >= free.makespan - 1e-6

    def test_paper_claim_single_flows_unaffected(self, qs22):
        # One transfer at a time never reaches the ring limit (§2.1).
        g = StreamGraph("pair")
        g.add_task(Task("a", wppe=5.0, wspe=5.0))
        g.add_task(Task("b", wppe=5.0, wspe=5.0))
        g.add_edge(DataEdge("a", "b", 50_000.0))
        m = Mapping(g, qs22, {"a": 1, "b": 2})
        free = simulate(m, 20, SimConfig.ideal())
        capped = simulate(m, 20, SimConfig(enforce_eib=True))
        assert capped.makespan == pytest.approx(free.makespan)


class TestMemoryDmaAblation:
    def test_counting_memory_dma_throttles_spe_reads(self, qs22):
        # 1 SPE task reading from memory: with count_memory_dma the read
        # occupies an MFC slot; behaviour must stay correct either way.
        g = StreamGraph("reader")
        g.add_task(Task("r", wppe=5.0, wspe=5.0, read=10_000.0))
        m = Mapping(g, qs22, {"r": 1})
        for flag in (False, True):
            result = simulate(m, 15, SimConfig(count_memory_dma=flag))
            assert len(result.completion_times) == 15

    def test_slot_pressure_with_memory_counted(self, qs22):
        sim = Simulator(
            Mapping(
                StreamGraph.from_parts(
                    [Task("r", wppe=1.0, wspe=1.0, read=1000.0)], [], name="r"
                ),
                qs22,
                {"r": 1},
            ),
            SimConfig(count_memory_dma=True),
        )
        sim.run(5)
        assert sim.pes[1].mfc_in_flight == 0


class TestDmaSlotAblation:
    def test_disabling_slots_allows_more_concurrency(self, qs22):
        g = star_graph(n_leaves=7, data=200_000.0)
        # All leaves on one SPE: 7 incoming gets compete for its queue.
        assignment = {"hub": 0}
        assignment.update({f"leaf{i}": 1 for i in range(7)})
        m = Mapping(g, qs22, assignment)
        throttled = simulate(m, 5, SimConfig.ideal())
        free = simulate(m, 5, SimConfig(enforce_dma_slots=False))
        assert free.makespan <= throttled.makespan + 1e-6


class TestOverheadKnobs:
    def test_each_overhead_increases_makespan(self, qs22, two_task_chain):
        m = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        base = simulate(m, 30, SimConfig.ideal()).makespan
        for costs in (
            DmaCosts(issue_overhead=5.0),
            DmaCosts(completion_overhead=5.0),
            DmaCosts(signal_overhead=5.0),
            DmaCosts(latency=5.0),
        ):
            slowed = simulate(m, 30, SimConfig(dma=costs)).makespan
            assert slowed > base

    def test_invalid_config(self):
        with pytest.raises(SimulationError):
            SimConfig(scheduler_overhead=-1.0)
        with pytest.raises(SimulationError):
            SimConfig(mem_write_window=0)
        with pytest.raises(SimulationError):
            SimConfig(max_events=0)

    def test_max_events_guard(self, qs22, two_task_chain):
        m = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        with pytest.raises(SimulationError):
            simulate(m, 100, SimConfig(max_events=10))


class TestDiagnoseFit:
    def test_warns_on_oversized_task(self, qs22):
        g = StreamGraph("fat")
        g.add_task(Task("tiny", wppe=1.0, wspe=1.0))  # fits anywhere
        g.add_task(Task("small", wppe=1.0, wspe=1.0))
        g.add_task(Task("fat", wppe=1.0, wspe=1.0))
        # The edge buffer (data × window 2) blows the budget on *both*
        # endpoints — the §4.2 buffers live on producer and consumer.
        g.add_edge(DataEdge("small", "fat", qs22.buffer_budget))
        warnings = diagnose_fit(g, qs22)
        assert any("'fat'" in w for w in warnings)
        assert any("'small'" in w for w in warnings)

    def test_raises_when_nothing_fits(self, qs22):
        g = StreamGraph("all-fat")
        g.add_task(Task("a", wppe=1.0, wspe=1.0))
        g.add_task(Task("b", wppe=1.0, wspe=1.0))
        g.add_edge(DataEdge("a", "b", qs22.buffer_budget * 2))
        with pytest.raises(PlatformError):
            diagnose_fit(g, qs22)

    def test_silent_when_all_fit(self, qs22, two_task_chain):
        assert diagnose_fit(two_task_chain, qs22) == []

    def test_no_spes_no_warnings(self, two_task_chain):
        platform = CellPlatform(n_ppe=1, n_spe=0)
        assert diagnose_fit(two_task_chain, platform) == []
