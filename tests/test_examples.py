"""Smoke-run every example in quick mode so examples can't silently rot.

Each ``examples/*.py`` script exposes ``main(quick=True)``: a scaled-down
run (small graph, short simulated stream) of the exact same code path as
the full demo.  Importing and executing them here means an API change
that breaks an example fails the test suite instead of the next reader.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

QUICK_EXAMPLES = ("quickstart", "dual_cell", "platform_comparison")


def load_example(name: str):
    """Import ``examples/<name>.py`` as a standalone module."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name", QUICK_EXAMPLES)
def test_example_runs_quick(name, capsys):
    module = load_example(name)
    module.main(quick=True)
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_examples_all_covered():
    """New examples must either join QUICK_EXAMPLES or opt out here."""
    # ccr_sweep and audio_encoder_study predate the quick-mode protocol
    # and run minutes-long artefact sweeps; they are exercised manually.
    opted_out = {"ccr_sweep", "audio_encoder_study"}
    present = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    unaccounted = present - set(QUICK_EXAMPLES) - opted_out
    assert not unaccounted, (
        f"examples {sorted(unaccounted)} are not smoke-tested: add a "
        "main(quick=True) mode and list them in QUICK_EXAMPLES"
    )
