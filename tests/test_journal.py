"""Durability layer: journal, checkpoint, and crash recovery.

Small deterministic cases for the write-ahead journal and checkpoint
files (the randomized kill-anywhere sweep lives in ``test_chaos.py``):

* ``snapshot_state``/``restore_state`` round-trips mid-timeline and the
  resumed scheduler finishes identically to the uninterrupted one;
* the JSONL journal round-trips, detects a torn tail (crash mid-write)
  without raising, repairs it in place, and keeps appending with
  contiguous indices — including against a checked-in regression
  payload under ``tests/data/``;
* a corrupt *middle* record is data loss and raises
  :class:`~repro.errors.JournalError` (only the tail may be torn);
* ``DurableScheduler.recover`` replays to the bit-identical report in
  all four buffer modes and across kernel backends;
* a crash inside a cost-perturbation window recovers the scaled
  platform and graphs exactly, and still restores the originals at
  ``CostRestore``.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.errors import CheckpointError, JournalError, OnlineSchedulingError
from repro.graph import DataEdge, StreamGraph, Task
from repro.obs import metrics as _metrics
from repro.platform import CellPlatform
from repro.runtime import (
    AppArrival,
    CostPerturbation,
    CostRestore,
    DurableScheduler,
    EventJournal,
    OnlineScheduler,
    ScenarioGenerator,
    read_checkpoint,
    scheduler_from_config,
    write_checkpoint,
)
from test_chaos import ALL_MODES

DATA_DIR = Path(__file__).parent / "data"


def small_graph(name="jrnl", w=9.0):
    g = StreamGraph(name)
    g.add_task(Task("a", wppe=12.0, wspe=w))
    g.add_task(Task("b", wppe=10.0, wspe=w - 2.0))
    g.add_edge(DataEdge("a", "b", 512.0))
    return g


def scenario(platform, seed=3, n=12, load=2.0):
    return ScenarioGenerator(
        platform, seed=seed, load=load, n_failures=1
    ).generate(n)


def fresh_scheduler(platform, **mode):
    return OnlineScheduler(
        platform,
        migration_budget=2,
        retry_limit=1,
        retry_backoff=4.0,
        **mode,
    )


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


def assert_reports_equal(left, right):
    assert left == right
    # JSON bit-identity only holds while instrumentation is off: the
    # CI instrumented leg records wall-clock latencies into the records.
    if _metrics.REGISTRY is None:
        assert left.to_json() == right.to_json()


# ------------------------------------------------------------------ #
# snapshot_state / restore_state


class TestSnapshotRestore:
    def test_mid_timeline_round_trip(self, platform):
        events = scenario(platform)
        baseline = fresh_scheduler(platform).run(events)
        sched = fresh_scheduler(platform)
        for event in events[:6]:
            sched.process(event)
        clone = scheduler_from_config(sched.config())
        clone.restore_state(sched.snapshot_state())
        for event in events[6:]:
            clone.process(event)
        assert_reports_equal(clone.report(), baseline)

    def test_restore_is_backend_agnostic(self, platform):
        events = scenario(platform, seed=5)
        sched = fresh_scheduler(platform)
        for event in events[:6]:
            sched.process(event)
        state = sched.snapshot_state()
        finals = []
        for use_delta in (True, False):
            clone = scheduler_from_config(sched.config(), use_delta=use_delta)
            clone.restore_state(state)
            for event in events[6:]:
                clone.process(event)
            finals.append(clone.report())
        # The engine name differs by construction; the decisions do not.
        assert finals[0].records == finals[1].records
        assert finals[0].acceptance_rate == finals[1].acceptance_rate

    def test_restore_rejects_unknown_schema(self, platform):
        sched = fresh_scheduler(platform)
        sched.run(scenario(platform, n=4))
        payload = sched.snapshot_state()
        payload["schema"] = 99
        with pytest.raises(OnlineSchedulingError, match="schema"):
            fresh_scheduler(platform).restore_state(payload)

    def test_restore_rejects_mangled_payload(self, platform):
        sched = fresh_scheduler(platform)
        sched.run(scenario(platform, n=6))
        payload = sched.snapshot_state()
        del payload["apps"]
        with pytest.raises(OnlineSchedulingError):
            fresh_scheduler(platform).restore_state(payload)

    def test_snapshot_survives_json(self, platform):
        events = scenario(platform, seed=9)
        baseline = fresh_scheduler(platform).run(events)
        sched = fresh_scheduler(platform)
        for event in events[:7]:
            sched.process(event)
        payload = json.loads(json.dumps(sched.snapshot_state()))
        clone = scheduler_from_config(sched.config())
        clone.restore_state(payload)
        for event in events[7:]:
            clone.process(event)
        assert_reports_equal(clone.report(), baseline)


# ------------------------------------------------------------------ #
# EventJournal


class TestEventJournal:
    def test_append_read_round_trip(self, tmp_path, platform):
        from repro.runtime import event_to_dict

        events = scenario(platform, n=8)
        path = tmp_path / "j.jsonl"
        with EventJournal(path, config={"n": 1}) as journal:
            for i, event in enumerate(events):
                assert journal.append(event) == i
        config, entries, torn = EventJournal.read(path)
        assert config == {"n": 1}
        assert not torn
        assert [idx for idx, _ in entries] == list(range(len(events)))
        assert [event_to_dict(e) for _, e in entries] == [
            event_to_dict(e) for e in events
        ]

    def test_torn_tail_detected_and_repaired(self, tmp_path, platform):
        events = scenario(platform, n=6)
        path = tmp_path / "j.jsonl"
        with EventJournal(path, config=None) as journal:
            for event in events:
                journal.append(event)
        with open(path, "ab") as fh:
            fh.write(b'{"idx": 6, "event": {"type": "arr')  # crash mid-write
        _, entries, torn = EventJournal.read(path)
        assert torn
        assert len(entries) == len(events)
        EventJournal.repair(path)
        _, entries, torn = EventJournal.read(path)
        assert not torn
        assert len(entries) == len(events)
        # Appending after repair keeps indices contiguous.
        with EventJournal(path, fresh=False) as journal:
            assert journal.append(events[0]) == len(events)

    def test_missing_final_newline_is_not_data_loss(self, tmp_path, platform):
        """A final record that parses but lost its ``\\n`` is complete —
        repair rewrites only the terminator, and appending after the
        auto-repairing reopen does not corrupt the line."""
        events = scenario(platform, n=4)
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for event in events:
                journal.append(event)
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        _, entries, torn = EventJournal.read(path)
        assert not torn
        assert len(entries) == len(events)
        with EventJournal(path, fresh=False) as journal:
            assert journal.append(events[0]) == len(events)
        _, entries, torn = EventJournal.read(path)
        assert not torn
        assert len(entries) == len(events) + 1

    def test_corrupt_middle_record_raises(self, tmp_path, platform):
        events = scenario(platform, n=5)
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for event in events:
                journal.append(event)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"idx": 1, "event": {"type": "arr\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError):
            EventJournal.read(path)

    def test_gap_in_indices_raises(self, tmp_path, platform):
        events = scenario(platform, n=4)
        path = tmp_path / "j.jsonl"
        with EventJournal(path) as journal:
            for event in events:
                journal.append(event)
        lines = path.read_bytes().splitlines(keepends=True)
        del lines[2]
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="contiguous|index"):
            EventJournal.read(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"")
        with pytest.raises(JournalError):
            EventJournal.read(path)

    def test_append_after_close_raises(self, tmp_path, platform):
        journal = EventJournal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(JournalError):
            journal.append(scenario(platform, n=2)[0])

    def test_regression_payload_recovers(self, tmp_path):
        """The checked-in torn journal (crash mid-record-3) recovers
        cleanly: two committed events, torn tail truncated, replay
        works."""
        src = DATA_DIR / "torn_journal.jsonl"
        _, entries, torn = EventJournal.read(src)
        assert torn
        assert [idx for idx, _ in entries] == [0, 1]
        path = tmp_path / "torn.jsonl"
        shutil.copy(src, path)
        with DurableScheduler.recover(path) as recovered:
            assert recovered.n_applied == 2
            report = recovered.scheduler.report()
        # The recovered run equals a fresh replay of the two committed
        # events (retry firings may add records beyond the entries).
        config, entries, _ = EventJournal.read(path)
        replay = scheduler_from_config(config)
        for _, event in entries:
            replay.process(event)
        assert report == replay.report()
        assert report.all_feasible
        # The torn tail was truncated in place, not preserved.
        _, entries, torn = EventJournal.read(path)
        assert not torn
        assert len(entries) == 2


# ------------------------------------------------------------------ #
# Checkpoint files


class TestCheckpoint:
    def test_write_read_round_trip(self, tmp_path, platform):
        sched = fresh_scheduler(platform)
        sched.run(scenario(platform, n=6))
        path = tmp_path / "c.json"
        write_checkpoint(sched, path, n_applied=6)
        payload = read_checkpoint(path)
        assert payload["n_applied"] == 6
        assert payload["config"] == sched.config()
        assert payload["state"] == json.loads(
            json.dumps(sched.snapshot_state())
        )
        assert not list(tmp_path.glob("*.tmp"))  # atomic rename cleaned up

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"not": "a checkpoint"}')
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_read_rejects_torn_file(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text('{"checkpoint": 1, "n_appl')
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


# ------------------------------------------------------------------ #
# Crash-recovery equivalence (small deterministic cases; the randomized
# sweep is test_chaos.py::test_crash_recovery_equivalence)


class TestRecovery:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: ",".join(m) or "plain")
    def test_kill_and_recover_matches_uninterrupted(
        self, tmp_path, platform, mode
    ):
        events = scenario(platform, seed=11)
        baseline = fresh_scheduler(platform, **mode).run(events)
        stem = tmp_path / "run"
        durable = DurableScheduler(
            fresh_scheduler(platform, **mode),
            stem.with_suffix(".jsonl"),
            checkpoint_path=stem.with_suffix(".json"),
            checkpoint_every=3,
            fsync=False,
        )
        for event in events[:7]:
            durable.process(event)
        # Crash: no close(), no final checkpoint — only what process()
        # already made durable survives.
        recovered = DurableScheduler.recover(
            stem.with_suffix(".jsonl"),
            checkpoint_path=stem.with_suffix(".json"),
            fsync=False,
        )
        with recovered:
            assert recovered.n_applied == 7
            for event in events[7:]:
                recovered.process(event)
            assert_reports_equal(recovered.scheduler.report(), baseline)

    def test_recover_without_checkpoint_uses_config_echo(
        self, tmp_path, platform
    ):
        events = scenario(platform, seed=13)
        baseline = fresh_scheduler(platform).run(events)
        path = tmp_path / "run.jsonl"
        durable = DurableScheduler(
            fresh_scheduler(platform), path, fsync=False
        )
        for event in events[:5]:
            durable.process(event)
        with DurableScheduler.recover(path, fsync=False) as recovered:
            for event in events[5:]:
                recovered.process(event)
            assert_reports_equal(recovered.scheduler.report(), baseline)

    def test_recover_onto_other_backend(self, tmp_path, platform):
        events = scenario(platform, seed=17)
        baseline = fresh_scheduler(platform).run(events)
        path = tmp_path / "run.jsonl"
        durable = DurableScheduler(
            fresh_scheduler(platform), path, fsync=False
        )
        for event in events[:6]:
            durable.process(event)
        with DurableScheduler.recover(
            path, use_delta=False, fsync=False
        ) as recovered:
            for event in events[6:]:
                recovered.process(event)
            # The engine name differs; every decision must not.
            assert recovered.scheduler.report().records == baseline.records

    def test_recover_without_anything_raises(self, tmp_path):
        with pytest.raises((JournalError, CheckpointError, OSError)):
            DurableScheduler.recover(tmp_path / "absent.jsonl")


# ------------------------------------------------------------------ #
# Crash inside a cost-perturbation window (satellite: the scaled
# platform and graphs must be reinstated exactly, and CostRestore must
# still restore the originals)


class TestPerturbationWindowRecovery:
    COMPUTE_SCALE = 1.25
    BW_SCALE = 0.5

    def timeline(self):
        return [
            AppArrival(0.0, "stay", small_graph("stay")),
            CostPerturbation(
                10.0,
                compute_scale=self.COMPUTE_SCALE,
                bw_scale=self.BW_SCALE,
            ),
            AppArrival(15.0, "mid", small_graph("mid", w=7.0)),
            CostRestore(20.0),
            AppArrival(25.0, "late", small_graph("late", w=8.0)),
        ]

    def test_crash_during_window(self, tmp_path, platform):
        events = self.timeline()
        baseline = fresh_scheduler(platform).run(events)
        stem = tmp_path / "window"
        durable = DurableScheduler(
            fresh_scheduler(platform),
            stem.with_suffix(".jsonl"),
            checkpoint_path=stem.with_suffix(".json"),
            checkpoint_every=1,
            fsync=False,
        )
        for event in events[:3]:  # crash after the in-window arrival
            durable.process(event)
        recovered = DurableScheduler.recover(
            stem.with_suffix(".jsonl"),
            checkpoint_path=stem.with_suffix(".json"),
            fsync=False,
        )
        with recovered:
            sched = recovered.scheduler
            # The scaled platform is recomputed bit-exactly.
            assert sched.platform.bw == platform.bw * self.BW_SCALE
            assert sched.platform.eib_bw == platform.eib_bw * self.BW_SCALE
            assert sched.platform.bif_bw == platform.bif_bw * self.BW_SCALE
            # Resident graphs carry the in-window compute scaling.
            graphs = {app.name: app.graph for app in sched.workload}
            assert (
                graphs["stay"].task("a").wspe
                == 9.0 * self.COMPUTE_SCALE
            )
            # CostRestore still lands on the saved originals.
            for event in events[3:]:
                recovered.process(event)
            assert sched.platform.bw == platform.bw
            assert sched.platform.eib_bw == platform.eib_bw
            graphs = {app.name: app.graph for app in sched.workload}
            assert graphs["stay"].task("a").wspe == 9.0
            assert_reports_equal(sched.report(), baseline)

    def test_crash_before_window_replays_through_it(
        self, tmp_path, platform
    ):
        events = self.timeline()
        baseline = fresh_scheduler(platform).run(events)
        path = tmp_path / "pre.jsonl"
        durable = DurableScheduler(
            fresh_scheduler(platform), path, fsync=False
        )
        durable.process(events[0])  # crash before the window opens
        with DurableScheduler.recover(path, fsync=False) as recovered:
            for event in events[1:]:
                recovered.process(event)
            assert_reports_equal(recovered.scheduler.report(), baseline)
