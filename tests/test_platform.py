"""Tests for repro.platform: elements, Cell presets, DMA model, validation."""

import dataclasses

import pytest

from repro.errors import PlatformError
from repro.platform import (
    BYTES_PER_KB,
    DEFAULT_CODE_BYTES,
    INTERFACE_BW,
    LOCAL_STORE_BYTES,
    SPE_MFC_QUEUE_SLOTS,
    SPE_PROXY_QUEUE_SLOTS,
    CellPlatform,
    CommInterface,
    DmaCosts,
    PEKind,
    ProcessingElement,
    check_platform,
)


class TestElements:
    def test_pe_kinds(self):
        assert PEKind.PPE.value == "PPE"
        assert PEKind.SPE.value == "SPE"

    def test_interface_requires_positive_bandwidth(self):
        with pytest.raises(ValueError):
            CommInterface(bw_in=0, bw_out=1)
        with pytest.raises(ValueError):
            CommInterface(bw_in=1, bw_out=-2)

    def test_processing_element_properties(self):
        pe = ProcessingElement(
            index=3, kind=PEKind.SPE, interface=CommInterface(1.0, 2.0)
        )
        assert pe.is_spe and not pe.is_ppe
        assert pe.name == "SPE3"


class TestDmaModel:
    def test_paper_constants(self):
        # §2.1: at most 16 simultaneous DMA calls per SPE, 8 from PPEs.
        assert SPE_MFC_QUEUE_SLOTS == 16
        assert SPE_PROXY_QUEUE_SLOTS == 8

    def test_costs_validation(self):
        with pytest.raises(ValueError):
            DmaCosts(issue_overhead=-1)
        assert DmaCosts.free().issue_overhead == 0.0
        realistic = DmaCosts.realistic()
        assert realistic.issue_overhead > 0
        assert realistic.latency > 0


class TestCellPlatform:
    def test_qs22_preset(self):
        plat = CellPlatform.qs22()
        assert plat.n_ppe == 1 and plat.n_spe == 8
        assert plat.n_pes == 9
        assert plat.bw == INTERFACE_BW == 25_000.0
        assert plat.local_store == LOCAL_STORE_BYTES == 256 * BYTES_PER_KB

    def test_ps3_preset(self):
        plat = CellPlatform.playstation3()
        # §6: only 6 usable SPEs on the PlayStation 3.
        assert plat.n_spe == 6

    def test_indexing_convention(self):
        # Paper convention: PPEs first, SPEs after.
        plat = CellPlatform(n_ppe=2, n_spe=3)
        assert list(plat.ppe_indices) == [0, 1]
        assert list(plat.spe_indices) == [2, 3, 4]
        assert plat.is_ppe(0) and plat.is_ppe(1)
        assert plat.is_spe(2) and plat.is_spe(4)
        assert plat.kind(0) is PEKind.PPE
        assert plat.kind(4) is PEKind.SPE

    def test_pe_names(self):
        plat = CellPlatform.qs22()
        assert plat.pe_name(0) == "PPE0"
        assert plat.pe_name(1) == "SPE0"
        assert plat.pe_name(8) == "SPE7"

    def test_pe_objects(self):
        plat = CellPlatform.qs22()
        pes = list(plat.pes())
        assert len(pes) == 9
        assert pes[0].is_ppe and pes[1].is_spe
        assert pes[0].interface.bw_in == plat.bw

    def test_with_spes(self):
        plat = CellPlatform.qs22().with_spes(3)
        assert plat.n_spe == 3
        assert plat.n_pes == 4
        # Other fields survive the copy.
        assert plat.bw == INTERFACE_BW

    def test_buffer_budget(self):
        plat = CellPlatform.qs22()
        assert plat.buffer_budget == LOCAL_STORE_BYTES - DEFAULT_CODE_BYTES
        small = CellPlatform.qs22(code_size=200 * BYTES_PER_KB)
        assert small.buffer_budget == 56 * BYTES_PER_KB

    def test_index_out_of_range(self):
        plat = CellPlatform.qs22()
        with pytest.raises(PlatformError):
            plat.pe(9)
        with pytest.raises(PlatformError):
            plat.pe_name(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_ppe=0),
            dict(n_spe=-1),
            dict(bw=0),
            dict(eib_bw=-5),
            dict(local_store=0),
            dict(code_size=LOCAL_STORE_BYTES),
            dict(dma_in_slots=0),
            dict(dma_proxy_slots=0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(PlatformError):
            CellPlatform(**kwargs)

    def test_replace_revalidates(self):
        # Frozen dataclasses re-run __post_init__ on replace.
        plat = CellPlatform.qs22()
        with pytest.raises(PlatformError):
            dataclasses.replace(plat, code_size=plat.local_store + 1)

    def test_check_platform_accepts_valid(self):
        check_platform(CellPlatform.qs22())  # no exception

    def test_zero_spes_allowed(self):
        plat = CellPlatform(n_ppe=1, n_spe=0)
        assert plat.n_pes == 1
        assert list(plat.spe_indices) == []
