"""Tests for the LP/MILP substrate: modelling layer, HiGHS backend, B&B."""


import pytest

from repro.errors import InfeasibleModelError, SolverError, UnboundedModelError
from repro.lp import Model, lpsum, solve, solve_branch_bound


class TestModelLayer:
    def test_expression_arithmetic(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + 3 * y - 4 + x / 2
        assert expr.terms[x.index] == pytest.approx(2.5)
        assert expr.terms[y.index] == pytest.approx(3.0)
        assert expr.constant == pytest.approx(-4.0)
        neg = -expr
        assert neg.terms[x.index] == pytest.approx(-2.5)
        rsub = 10 - x
        assert rsub.constant == 10 and rsub.terms[x.index] == -1

    def test_expression_value(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + y + 1
        assert expr.value([3.0, 4.0]) == pytest.approx(11.0)

    def test_nonlinear_rejected(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(TypeError):
            x * x  # noqa: B018
        with pytest.raises(TypeError):
            (x + 1) * (x + 1)

    def test_constraint_senses(self):
        m = Model()
        x = m.add_var("x")
        le = x <= 5
        ge = x >= 2
        eq = x == 3
        assert le.sense == "<=" and eq.sense == "=="
        # x >= 2 is normalised to 2 - x <= 0.
        assert ge.sense == "<=" and ge.expr.terms[x.index] == -1

    def test_constraint_violation(self):
        m = Model()
        x = m.add_var("x")
        c = x <= 5
        assert c.violation([7.0]) == pytest.approx(2.0)
        assert c.violation([4.0]) == 0.0
        assert (x == 3).violation([5.0]) == pytest.approx(2.0)

    def test_add_constraint_guards(self):
        m = Model()
        with pytest.raises(SolverError):
            m.add_constraint(True)  # the classic number<=number mistake

    def test_bad_bounds(self):
        m = Model()
        with pytest.raises(SolverError):
            m.add_var("x", lb=3, ub=2)

    def test_lpsum(self):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(100)]
        expr = lpsum(xs)
        assert len(expr.terms) == 100
        assert lpsum([]).constant == 0.0
        assert lpsum([1, 2, 3]).constant == 6.0

    def test_stats(self):
        m = Model("demo")
        m.add_var("x")
        m.add_binary("b")
        assert m.n_vars == 2 and m.n_integer_vars == 1
        assert m.is_mip()
        assert "demo" in m.stats()


class TestScipyBackend:
    def make_lp(self):
        # max x + 2y s.t. x + y <= 4, x <= 3, y <= 2  -> optimum (2, 2) = 6.
        m = Model("lp")
        x = m.add_var("x", ub=3)
        y = m.add_var("y", ub=2)
        m.add_constraint(x + y <= 4)
        m.maximize(x + 2 * y)
        return m, x, y

    def test_pure_lp(self):
        m, x, y = self.make_lp()
        sol = solve(m)
        assert sol.objective == pytest.approx(6.0)
        assert sol.value(y) == pytest.approx(2.0)
        assert sol.value(x + y) == pytest.approx(4.0)

    def test_knapsack_mip(self):
        # Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50.
        m = Model("knapsack")
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(10 * xs[0] + 20 * xs[1] + 30 * xs[2] <= 50)
        m.maximize(60 * xs[0] + 100 * xs[1] + 120 * xs[2])
        sol = solve(m)
        assert sol.objective == pytest.approx(220.0)
        assert [round(sol.value(x)) for x in xs] == [0, 1, 1]

    def test_equality_constraints(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constraint(x + y == 10)
        m.minimize(x - y)
        sol = solve(m)
        assert sol.value(x) == pytest.approx(0.0)
        assert sol.value(y) == pytest.approx(10.0)

    def test_objective_constant(self):
        m = Model()
        x = m.add_var("x", lb=1, ub=5)
        m.minimize(x + 100)
        assert solve(m).objective == pytest.approx(101.0)

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constraint(x >= 2)
        m.minimize(x)
        with pytest.raises(InfeasibleModelError):
            solve(m)

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")
        m.maximize(x)
        with pytest.raises(UnboundedModelError):
            solve(m)

    def test_no_objective(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(SolverError):
            solve(m)

    def test_relax_integrality(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(2 * x <= 1)
        m.maximize(x)
        assert solve(m).objective == pytest.approx(0.0)  # integral
        assert solve(m, relax_integrality=True).objective == pytest.approx(0.5)

    def test_mip_gap_option_accepted(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(x)
        sol = solve(m, mip_rel_gap=0.05, time_limit=10)
        assert sol.objective == pytest.approx(1.0)


class TestBranchBound:
    def test_agrees_with_highs_on_knapsack(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        weights = [3, 5, 7, 4, 6]
        values = [8, 11, 14, 9, 13]
        m.add_constraint(lpsum(w * x for w, x in zip(weights, xs)) <= 12)
        m.maximize(lpsum(v * x for v, x in zip(values, xs)))
        exact = solve(m)
        bb, stats = solve_branch_bound(m)
        assert bb.objective == pytest.approx(exact.objective)
        assert stats.nodes_explored >= 1
        assert stats.incumbents >= 1

    def test_integer_bounds_respected(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, integer=True)
        m.add_constraint(2 * x <= 7)
        m.maximize(x)
        bb, _ = solve_branch_bound(m)
        assert bb.objective == pytest.approx(3.0)

    def test_infeasible_detected(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 0.4)
        m.add_constraint(x <= 0.6)
        m.minimize(x)
        with pytest.raises(InfeasibleModelError):
            solve_branch_bound(m)

    def test_continuous_only(self):
        m = Model()
        x = m.add_var("x", ub=2)
        m.maximize(x)
        bb, stats = solve_branch_bound(m)
        assert bb.objective == pytest.approx(2.0)
