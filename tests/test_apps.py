"""Tests for the realistic example applications."""

import pytest

from repro import apps
from repro.heuristics import greedy_cpu
from repro.platform import diagnose_fit
from repro.simulator import SimConfig, simulate
from repro.steady_state import analyze, speedup


@pytest.fixture(params=["audio", "video", "crypto"])
def app_graph(request):
    return {
        "audio": apps.audio_encoder,
        "video": apps.video_pipeline,
        "crypto": apps.crypto_pipeline,
    }[request.param]()


class TestStructure:
    def test_valid_dags(self, app_graph):
        app_graph.validate()
        assert app_graph.n_tasks >= 7

    def test_single_stream_in_and_out(self, app_graph):
        # Every app reads its stream from memory and writes results back.
        reads = [t for t in app_graph.tasks() if t.read > 0]
        writes = [t for t in app_graph.tasks() if t.write > 0]
        assert reads and writes

    def test_unrelated_costs_in_both_directions(self, app_graph):
        ratios = [t.wspe / t.wppe for t in app_graph.tasks()]
        assert any(r < 1 for r in ratios), "no SPE-friendly task"
        assert any(r > 1 for r in ratios), "no PPE-friendly task"

    def test_audio_has_peek(self):
        g = apps.audio_encoder()
        assert any(t.peek > 0 for t in g.tasks())  # psychoacoustic lookahead

    def test_parametric_width(self):
        assert apps.audio_encoder(n_filter_groups=8).n_tasks > apps.audio_encoder(
            n_filter_groups=2
        ).n_tasks
        with pytest.raises(ValueError):
            apps.audio_encoder(0)
        with pytest.raises(ValueError):
            apps.video_pipeline(0)
        with pytest.raises(ValueError):
            apps.crypto_pipeline(0)


class TestSchedulability:
    def test_greedy_feasible_on_qs22(self, app_graph, qs22):
        mapping = greedy_cpu(app_graph, qs22)
        analysis = analyze(mapping)
        assert not [v for v in analysis.violations if v.constraint == "memory"]

    def test_offload_gives_speedup(self, qs22):
        g = apps.crypto_pipeline()
        mapping = greedy_cpu(g, qs22)
        assert speedup(mapping) > 1.2

    def test_video_frames_do_not_fit_spes(self, qs22):
        # A QVGA frame with its §4.2 window exceeds the 256 kB local store:
        # the full-frame tasks are PPE-only — exactly why real Cell codecs
        # process stripes.
        warnings = diagnose_fit(apps.video_pipeline(), qs22)
        assert any("denoise" in w for w in warnings)

    def test_apps_simulate_end_to_end(self, app_graph, qs22):
        mapping = greedy_cpu(app_graph, qs22)
        result = simulate(mapping, 40, SimConfig.realistic())
        assert len(result.completion_times) == 40
