"""End-to-end integration tests: the full paper pipeline on small inputs."""

import pytest

from repro import CellPlatform, Mapping, analyze, solve_optimal_mapping
from repro.generator import assign_costs, chain, random_topology, rescale_ccr
from repro.graph import ccr as graph_ccr
from repro.graph.io import loads, dumps
from repro.heuristics import greedy_cpu, greedy_mem, local_search
from repro.simulator import SimConfig, simulate
from repro.steady_state import build_schedule


@pytest.fixture(scope="module")
def pipeline_graph():
    return assign_costs(random_topology(18, fat=0.5, seed=42), ccr=0.775, seed=42)


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22().with_spes(4)


class TestFullPipeline:
    def test_solve_simulate_verify(self, pipeline_graph, platform):
        """The quickstart workflow: solve -> schedule -> simulate -> check."""
        result = solve_optimal_mapping(pipeline_graph, platform)
        schedule = build_schedule(result.mapping)
        assert schedule.period_length == pytest.approx(result.period)

        sim = simulate(result.mapping, 500, SimConfig.ideal())
        assert sim.efficiency() == pytest.approx(1.0, abs=0.04)

        real = simulate(result.mapping, 500, SimConfig.realistic())
        assert 0.80 <= real.efficiency() <= 1.0

    def test_strategy_ordering_measured(self, pipeline_graph, platform):
        """MILP >= greedy on both the model and the simulator (§6.4.2)."""
        config = SimConfig.realistic()
        milp = solve_optimal_mapping(pipeline_graph, platform).mapping
        rates = {}
        for name, mapping in [
            ("milp", milp),
            ("greedy_cpu", greedy_cpu(pipeline_graph, platform)),
            ("greedy_mem", greedy_mem(pipeline_graph, platform)),
            ("ppe", Mapping.all_on_ppe(pipeline_graph, platform)),
        ]:
            rates[name] = simulate(
                mapping, 400, config
            ).steady_state_throughput()
        assert rates["milp"] >= rates["greedy_cpu"] * 0.95
        assert rates["milp"] >= rates["greedy_mem"] * 0.95
        assert rates["milp"] > rates["ppe"]

    def test_local_search_closes_gap(self, pipeline_graph, platform):
        milp_period = solve_optimal_mapping(
            pipeline_graph, platform, mip_rel_gap=None
        ).period
        refined = local_search(
            greedy_cpu(pipeline_graph, platform), max_rounds=30
        )
        refined_period = analyze(refined).period
        greedy_period = analyze(greedy_cpu(pipeline_graph, platform)).period
        assert milp_period <= refined_period + 1e-9 <= greedy_period + 1e-9

    def test_json_round_trip_preserves_solution(self, pipeline_graph, platform):
        clone = loads(dumps(pipeline_graph))
        a = solve_optimal_mapping(pipeline_graph, platform, mip_rel_gap=None)
        b = solve_optimal_mapping(clone, platform, mip_rel_gap=None)
        assert a.period == pytest.approx(b.period)

    def test_ccr_rescale_pipeline(self, platform):
        base = assign_costs(chain(10), ccr=0.775, seed=3)
        heavy = rescale_ccr(base, 4.6)
        assert graph_ccr(heavy) == pytest.approx(4.6)
        light_result = solve_optimal_mapping(base, platform, mip_rel_gap=None)
        heavy_result = solve_optimal_mapping(heavy, platform, mip_rel_gap=None)
        # More communication can never help: the optimal period cannot
        # shrink when every payload grows.
        assert heavy_result.period >= light_result.period - 1e-9

    def test_peek_graph_full_stack(self, platform):
        from repro.generator import CostModel

        graph = assign_costs(
            chain(8),
            ccr=1.0,
            seed=11,
            model=CostModel(peek_choices=(2,)),
        )
        result = solve_optimal_mapping(graph, platform)
        sim = simulate(result.mapping, 300, SimConfig.realistic())
        assert len(sim.completion_times) == 300

    def test_ps3_vs_qs22_same_spe_count(self, pipeline_graph):
        """§6.4: results on the PS3 match the QS22 at 6 SPEs."""
        ps3 = CellPlatform.playstation3()
        qs22_6 = CellPlatform.qs22().with_spes(6)
        r_ps3 = solve_optimal_mapping(pipeline_graph, ps3, mip_rel_gap=None)
        r_qs22 = solve_optimal_mapping(pipeline_graph, qs22_6, mip_rel_gap=None)
        assert r_ps3.period == pytest.approx(r_qs22.period, rel=1e-6)
