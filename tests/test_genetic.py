"""The genetic-algorithm strategy and metaheuristics under buffer modes.

Covers the population search itself (feasibility, determinism, elitism
floor), its registration in the experiment/CLI strategy registries and the
parallel sweep path, plus the satellite requirement that
``simulated_annealing`` / ``tabu_search`` stay feasible and no worse than
their start under ``elide_local_comm=True`` now that the delta engine
supports the mapping-dependent buffer models.
"""

import pytest

from test_delta import integer_cost_graph

from repro.cli import main_solve
from repro.experiments import STRATEGIES, build_mapping, fig7_speedup
from repro.experiments.common import SEEDED_STRATEGIES
from repro.graph import DataEdge, StreamGraph, Task
from repro.heuristics import (
    critical_path_mapping,
    genetic_algorithm,
    simulated_annealing,
    tabu_search,
)
from repro.platform import CellPlatform
from repro.simulator import SimConfig
from repro.steady_state import analyze


def tight_graph() -> StreamGraph:
    """A fan-out whose buffers overflow an SPE if placed carelessly."""
    g = StreamGraph("tight")
    g.add_task(Task("src", wppe=10.0, wspe=20.0))
    for i in range(20):
        g.add_task(Task(f"w{i}", wppe=100.0, wspe=40.0))
        g.add_edge(DataEdge("src", f"w{i}", 9000.0))
    return g


class TestGeneticAlgorithm:
    def test_feasible_and_no_worse_than_start(self, qs22):
        g = integer_cost_graph(5, n_min=15, n_max=20)
        result = genetic_algorithm(g, qs22, seed=0, generations=12)
        analysis = analyze(result)
        assert analysis.feasible
        start = critical_path_mapping(g, qs22)
        assert analysis.period <= analyze(start).period

    def test_deterministic_per_seed(self, qs22):
        g = integer_cost_graph(12, n_min=12, n_max=16)
        a = genetic_algorithm(g, qs22, seed=4, generations=8)
        b = genetic_algorithm(g, qs22, seed=4, generations=8)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_never_infeasible_under_tight_memory(self, qs22):
        result = genetic_algorithm(
            tight_graph(), qs22, seed=2, generations=8, population_size=10
        )
        assert analyze(result).feasible

    def test_degenerate_platform_returns_start(self):
        platform = CellPlatform.qs22().with_spes(0)
        g = integer_cost_graph(3, n_min=6, n_max=8)
        result = genetic_algorithm(g, platform, seed=1)
        assert analyze(result).feasible
        assert set(result.to_dict().values()) == {0}

    @pytest.mark.parametrize(
        "mode",
        (
            {"elide_local_comm": True},
            {"merge_same_pe_buffers": True},
            {"elide_local_comm": True, "merge_same_pe_buffers": True},
        ),
        ids=("elide", "merge", "elide+merge"),
    )
    def test_feasible_under_mapping_dependent_modes(self, qs22, mode):
        g = integer_cost_graph(9, n_min=12, n_max=16)
        result = genetic_algorithm(g, qs22, seed=3, generations=6, **mode)
        assert analyze(result, **mode).feasible

    def test_registered_in_strategies(self):
        assert "genetic_algorithm" in STRATEGIES
        assert "genetic_algorithm" in SEEDED_STRATEGIES
        g = integer_cost_graph(30, n_min=8, n_max=10)
        platform = CellPlatform.qs22().with_spes(2)
        for seed in (1, 2):
            mapping = build_mapping("genetic_algorithm", g, platform, seed=seed)
            assert analyze(mapping).feasible

    def test_selectable_from_cli(self, capsys, tmp_path):
        from repro.graph import save
        from repro.generator import assign_costs, random_topology

        graph = assign_costs(random_topology(8, seed=21), ccr=0.775, seed=21)
        path = str(save(graph, tmp_path / "graph.json"))
        assert (
            main_solve([path, "--strategy", "genetic_algorithm", "--json"])
            == 0
        )
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["throughput_per_s"] > 0

    def test_parallel_sweep_matches_serial(self):
        """fig7 sweep of the GA: identical results for any worker count."""
        g = integer_cost_graph(44, n_min=8, n_max=10)
        platform = CellPlatform.qs22().with_spes(3)
        kwargs = dict(
            spe_counts=(0, 2),
            strategies=("genetic_algorithm",),
            n_instances=120,
            config=SimConfig.ideal(),
            base_platform=platform,
        )
        serial = fig7_speedup.run_one(g, **kwargs)
        fanned = fig7_speedup.run_one(g, jobs=2, **kwargs)
        assert serial.points == fanned.points


class TestMetaheuristicsUnderElide:
    @pytest.mark.parametrize(
        "strategy", (simulated_annealing, tabu_search, genetic_algorithm)
    )
    def test_feasible_and_no_worse_than_start(self, strategy, qs22):
        g = integer_cost_graph(5, n_min=15, n_max=20)
        start = critical_path_mapping(g, qs22)
        budget = (
            {"iterations": 500}
            if strategy is simulated_annealing
            else {"rounds": 25}
            if strategy is tabu_search
            else {"generations": 8}
        )
        result = strategy(
            g, qs22, start=start, seed=1, elide_local_comm=True, **budget
        )
        analysis = analyze(result, elide_local_comm=True)
        assert analysis.feasible
        assert analysis.period <= analyze(start, elide_local_comm=True).period

    @pytest.mark.parametrize("strategy", (simulated_annealing, tabu_search))
    def test_never_infeasible_under_tight_memory(self, strategy, qs22):
        result = strategy(
            tight_graph(),
            qs22,
            seed=2,
            elide_local_comm=True,
            merge_same_pe_buffers=True,
            **(
                {"iterations": 300}
                if strategy is simulated_annealing
                else {"rounds": 15}
            ),
        )
        assert analyze(
            result, elide_local_comm=True, merge_same_pe_buffers=True
        ).feasible

    def test_elision_unlocks_buffer_bound_graphs(self, qs22):
        """A mapping infeasible under duplicated buffers can become
        feasible once local edges are elided — the metaheuristics must be
        able to exploit that headroom rather than fall back to the PPE."""
        g = tight_graph()
        result = tabu_search(
            g, qs22, seed=0, rounds=20,
            elide_local_comm=True, merge_same_pe_buffers=True,
        )
        flagged = analyze(
            result, elide_local_comm=True, merge_same_pe_buffers=True
        )
        assert flagged.feasible
        # And the elided model never reports larger SPE footprints than
        # the paper's duplicated-buffer model for the same mapping.
        plain = analyze(result)
        for spe, used in flagged.buffer_bytes.items():
            assert used <= plain.buffer_bytes[spe]
