"""Asyncio scheduler service: equivalence, overload, durability.

pytest-asyncio is not a dependency, so every test drives its coroutine
with ``asyncio.run`` — which also matches how the CLI and experiment
harness run the service.  The properties:

* a service with the queue sized to the timeline produces the
  bit-identical report to ``OnlineScheduler.run`` — the serving loop
  adds no decisions of its own;
* overload is *protective*: a small bounded queue sheds with recorded
  reasons (``backpressure``/``queue-full``), the depth never exceeds
  the bound, and every future resolves — no hung requests;
* a per-request deadline resolves ``deadline-exceeded`` instead of
  hanging;
* graceful shutdown drains; ``drain=False`` rejects with ``shutdown``;
* a durable service's journal validates and recovery reproduces the
  service's own final report;
* the ``/stats`` endpoint answers JSON over a plain socket;
* a bad event resolves ``"error"`` and the loop keeps serving.
"""

import asyncio
import json

import pytest

from repro.obs import metrics as _metrics
from repro.platform import CellPlatform
from repro.runtime import (
    DurableScheduler,
    EventJournal,
    OnlineScheduler,
    ScenarioGenerator,
    SchedulerService,
    SpeFailure,
    play,
)
from repro.errors import ServiceError


def make_events(platform, n=14, seed=2, load=2.0):
    return ScenarioGenerator(
        platform, seed=seed, load=load, n_failures=1
    ).generate(n)


def make_scheduler(platform):
    return OnlineScheduler(platform, migration_budget=2, retry_limit=1)


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


# ------------------------------------------------------------------ #
# Equivalence


def test_service_matches_offline_run(platform):
    events = make_events(platform)
    baseline = make_scheduler(platform).run(events)

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            admission_batch=3,
            max_queue=len(events) + 1,
            high_watermark=len(events) + 1,
        )
        await service.start()
        responses = await play(service, events)
        report = await service.stop()
        return responses, report

    responses, report = asyncio.run(drive())
    assert all(r.status == "ok" for r in responses)
    assert report == baseline
    if _metrics.REGISTRY is None:
        assert report.to_json() == baseline.to_json()


def test_batch_size_does_not_change_decisions(platform):
    events = make_events(platform, seed=4)

    async def drive(batch):
        service = SchedulerService(
            make_scheduler(platform),
            admission_batch=batch,
            max_queue=len(events) + 1,
            high_watermark=len(events) + 1,
        )
        await service.start()
        await play(service, events)
        return await service.stop()

    reports = [asyncio.run(drive(batch)) for batch in (1, 4, len(events))]
    assert reports[0] == reports[1] == reports[2]


# ------------------------------------------------------------------ #
# Overload protection


def test_backpressure_sheds_with_reasons_and_resolves_everything(platform):
    events = make_events(platform, n=16, seed=6)

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            admission_batch=1,
            max_queue=6,
            high_watermark=4,
            low_watermark=1,
        )
        await service.start()
        responses = await play(service, events)
        report = await service.stop()
        return responses, report, service.stats()

    responses, report, stats = asyncio.run(drive())
    assert len(responses) == len(events)  # every future resolved
    ok = [r for r in responses if r.status == "ok"]
    rejected = [r for r in responses if r.status == "rejected"]
    assert ok and rejected
    assert {r.reason for r in rejected} <= {"backpressure", "queue-full"}
    assert stats["max_depth"] <= 6  # the queue never grew past its bound
    assert stats["shed_entries"] >= 1
    assert (
        stats["rejected_backpressure"] + stats["rejected_queue_full"]
        == len(rejected)
    )
    assert stats["processed"] == len(ok)
    assert report.n_events >= len(ok)  # retries may add records


def test_deadline_exceeded_rejects_instead_of_hanging(platform):
    event = make_events(platform, n=2)[0]

    async def drive():
        service = SchedulerService(make_scheduler(platform))
        # Submitted before start: queues until the loop runs, so the
        # deadline fires deterministically while the request waits.
        pending = asyncio.ensure_future(service.submit(event, timeout=0.02))
        await asyncio.sleep(0.08)
        await service.start()
        response = await pending
        report = await service.stop()
        return response, report, service.stats()

    response, report, stats = asyncio.run(drive())
    assert response.status == "rejected"
    assert response.reason == "deadline-exceeded"
    assert stats["rejected_deadline"] == 1
    assert report.n_events == 0  # never reached the scheduler


def test_shutdown_rejects_new_and_queued_requests(platform):
    events = make_events(platform, n=8, seed=8)

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            max_queue=len(events) + 1,
            high_watermark=len(events) + 1,
        )
        # Queue everything before the loop ever runs, then abort.
        pending = [
            asyncio.ensure_future(service.submit(e)) for e in events
        ]
        await asyncio.sleep(0)
        report = await service.stop(drain=False)
        responses = await asyncio.gather(*pending)
        late = await service.submit(events[0])
        return responses, late, report

    responses, late, report = asyncio.run(drive())
    assert all(r.status == "rejected" for r in responses)
    assert {r.reason for r in responses} == {"shutdown"}
    assert late.status == "rejected" and late.reason == "shutdown"
    assert report.n_events == 0


# ------------------------------------------------------------------ #
# Durability through the service


def test_durable_service_journal_recovers_to_same_report(
    tmp_path, platform
):
    events = make_events(platform, n=12, seed=10)
    journal_path = tmp_path / "svc.jsonl"
    checkpoint_path = tmp_path / "svc.json"

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            admission_batch=2,
            max_queue=len(events) + 1,
            high_watermark=len(events) + 1,
            journal_path=journal_path,
            checkpoint_path=checkpoint_path,
            checkpoint_every=4,
        )
        await service.start()
        responses = await play(service, events)
        report = await service.stop()
        return responses, report

    responses, report = asyncio.run(drive())
    assert all(r.status == "ok" for r in responses)
    _, entries, torn = EventJournal.read(journal_path)
    assert not torn
    assert len(entries) == len(events)
    with DurableScheduler.recover(
        journal_path, checkpoint_path=checkpoint_path
    ) as recovered:
        assert recovered.scheduler.report() == report


def test_checkpoint_without_journal_is_an_error(platform):
    with pytest.raises(ServiceError):
        SchedulerService(
            make_scheduler(platform), checkpoint_path="orphan.json"
        )


# ------------------------------------------------------------------ #
# Stats endpoint


def test_stats_endpoint_serves_json(platform):
    events = make_events(platform, n=6, seed=12)

    async def fetch(port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.split(b"\r\n")[0].decode(), body

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            max_queue=len(events) + 1,
            high_watermark=len(events) + 1,
        )
        server, port = await service.serve_stats(port=0)
        try:
            await service.start()
            await play(service, events)
            status, body = await fetch(port, "/stats")
            health_status, health = await fetch(port, "/healthz")
            missing_status, _ = await fetch(port, "/nope")
            await service.stop()
        finally:
            server.close()
            await server.wait_closed()
        return status, json.loads(body), health_status, health, missing_status

    status, stats, health_status, health, missing_status = asyncio.run(
        drive()
    )
    assert "200" in status
    assert stats["processed"] == len(events)
    assert stats["scheduler"]["events"] >= len(events)
    assert "200" in health_status and json.loads(health)["ok"] is True
    assert "404" in missing_status


# ------------------------------------------------------------------ #
# Error responses keep the loop alive


def test_bad_event_errors_and_service_continues(platform):
    events = make_events(platform, n=6, seed=14)
    # An event whose clock runs backwards violates the scheduler's
    # monotone-time contract and must surface as an "error" response.
    stale = SpeFailure(time=-1.0, spe=0)

    async def drive():
        service = SchedulerService(
            make_scheduler(platform),
            max_queue=len(events) + 2,
            high_watermark=len(events) + 2,
        )
        await service.start()
        first = await service.submit(events[0])
        bad = await service.submit(stale)
        rest = await play(service, events[1:])
        report = await service.stop()
        return first, bad, rest, report, service.stats()

    first, bad, rest, report, stats = asyncio.run(drive())
    assert first.status == "ok"
    assert bad.status == "error" and bad.reason
    assert all(r.status == "ok" for r in rest)
    assert stats["errors"] == 1
    assert stats["processed"] == len(events)
    # The failed event was never journaled nor recorded.
    assert report == make_scheduler(platform).run(events)
