"""Workload layer: composite semantics, per-app analysis, delta parity,
and the pluggable objective layer.

The acceptance bar for the co-scheduling refactor: on a 3-application
workload, ``DeltaAnalyzer.snapshot()`` must stay bit-identical to the
flagged ``analyze()`` in **all** buffer-model modes across hundreds of
randomized move/swap sequences (4 modes × 6 seeds × 10 applies = 240
verified sequences per run), per-app periods included.
"""

import random

import pytest

from repro.apps import audio_encoder, crypto_pipeline, video_pipeline
from repro.errors import ObjectiveError, WorkloadError
from repro.graph import CompositeGraph, StreamGraph, Task, Workload
from repro.heuristics import (
    genetic_algorithm,
    local_search,
    simulated_annealing,
    tabu_search,
)
from repro.platform import CellPlatform
from repro.steady_state import (
    OBJECTIVES,
    DeltaAnalyzer,
    Mapping,
    analyze,
    make_objective,
)
from repro.steady_state.objective import reference_periods

#: The four buffer-model configurations the delta engine supports.
ALL_MODES = (
    {},
    {"elide_local_comm": True},
    {"merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)
MODE_IDS = ("default", "elide", "merge", "elide+merge")

PLATFORMS = (
    CellPlatform.qs22(),
    CellPlatform.qs22_dual(),
    CellPlatform(
        n_ppe=1,
        n_spe=4,
        local_store=64 * 1024,
        code_size=32 * 1024,
        dma_in_slots=3,
        dma_proxy_slots=2,
        name="tight",
    ),
)


def three_app_workload() -> Workload:
    """The canonical 3-app mix (36 tasks, all integer-valued costs)."""
    w = Workload("mix3")
    w.add_app("audio", audio_encoder(), weight=2.0)
    w.add_app("video", video_pipeline(), weight=1.0, target_period=2000.0)
    w.add_app("crypto", crypto_pipeline(), weight=0.5)
    return w


@pytest.fixture(scope="module")
def composite() -> CompositeGraph:
    return three_app_workload().compile()


# ---------------------------------------------------------------------- #
# Composite-graph semantics


class TestCompositeSemantics:
    def test_namespacing_and_bookkeeping(self, composite):
        assert composite.app_names == ("audio", "video", "crypto")
        assert composite.n_tasks == (
            audio_encoder().n_tasks
            + video_pipeline().n_tasks
            + crypto_pipeline().n_tasks
        )
        for app in composite.app_names:
            names = composite.app_tasks[app]
            assert names, f"app {app} has no tasks"
            for name in names:
                assert name.startswith(app + ":")
                assert composite.app_of[name] == app
                assert composite.app_of_task(name) == app
            # Source/sink bookkeeping matches the member graph's.
            assert composite.app_sources[app]
            assert composite.app_sinks[app]
            for source in composite.app_sources[app]:
                assert composite.in_degree(source) == 0
            for sink in composite.app_sinks[app]:
                assert composite.out_degree(sink) == 0
        assert composite.app_weights == {
            "audio": 2.0, "video": 1.0, "crypto": 0.5,
        }
        assert composite.app_targets["video"] == 2000.0
        assert composite.app_targets["audio"] is None

    def test_no_cross_app_edges(self, composite):
        for edge in composite.edges():
            assert composite.app_of[edge.src] == composite.app_of[edge.dst]

    def test_edge_and_cost_fidelity(self, composite):
        """Each member survives namespacing with costs and edges intact."""
        audio = audio_encoder()
        assert composite.n_edges >= audio.n_edges
        for edge in audio.edges():
            mirrored = composite.edge("audio:" + edge.src, "audio:" + edge.dst)
            assert mirrored.data == edge.data
        for task in audio.tasks():
            mirrored = composite.task("audio:" + task.name)
            assert mirrored.wppe == task.wppe
            assert mirrored.wspe == task.wspe
            assert mirrored.peek == task.peek

    def test_compile_memoized_until_mutation(self):
        w = three_app_workload()
        first = w.compile()
        assert w.compile() is first  # same version, cached object
        member = w.app("audio").graph
        member.replace_task(member.task("framing"))
        second = w.compile()
        assert second is not first

    def test_duplicate_and_invalid_apps_rejected(self):
        w = Workload()
        g = StreamGraph("g")
        g.add_task(Task("a", wppe=1.0, wspe=1.0))
        w.add_app("g", g)
        with pytest.raises(WorkloadError, match="duplicate"):
            w.add_app("g", g)
        with pytest.raises(WorkloadError, match="weight"):
            w.add_app("h", g, weight=0.0)
        with pytest.raises(WorkloadError, match="target_period"):
            w.add_app("h", g, target_period=-1.0)
        with pytest.raises(WorkloadError, match="no application"):
            Workload("empty").compile()

    def test_from_graphs_and_weight_mismatch(self):
        graphs = [audio_encoder(), crypto_pipeline()]
        w = Workload.from_graphs(graphs, weights=[1.0, 3.0])
        assert w.app_names() == ["audio-encoder", "crypto-pipeline"]
        assert w.app("crypto-pipeline").weight == 3.0
        with pytest.raises(WorkloadError, match="weights"):
            Workload.from_graphs(graphs, weights=[1.0])

    def test_composite_usable_by_existing_layers(self, composite):
        """The whole point: a composite is a plain StreamGraph downstream."""
        platform = CellPlatform.qs22()
        mapping = Mapping.all_on_ppe(composite, platform)
        analysis = analyze(mapping)
        assert analysis.feasible
        # All three apps run on one PPE: each app's own period is its
        # compute sum there, and the shared period is the total.
        assert analysis.period == pytest.approx(
            sum(analysis.app_periods.values())
        )


# ---------------------------------------------------------------------- #
# Per-app periods in analyze()


class TestAppPeriods:
    def test_plain_graph_has_no_app_periods(self, composite):
        mapping = Mapping.all_on_ppe(audio_encoder(), CellPlatform.qs22())
        assert analyze(mapping).app_periods == {}

    def test_app_period_never_beats_shared_period(self, composite):
        platform = CellPlatform.qs22()
        rng = random.Random(7)
        names = composite.task_names()
        for _ in range(5):
            mapping = Mapping(
                composite,
                platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            )
            analysis = analyze(mapping)
            assert set(analysis.app_periods) == set(composite.app_names)
            for app_period in analysis.app_periods.values():
                assert app_period <= analysis.period + 1e-12

    def test_single_app_workload_app_period_equals_period(self):
        w = Workload("solo")
        w.add_app("only", crypto_pipeline())
        composite = w.compile()
        platform = CellPlatform.qs22()
        rng = random.Random(3)
        mapping = Mapping(
            composite,
            platform,
            {
                n: rng.randrange(platform.n_pes)
                for n in composite.task_names()
            },
        )
        analysis = analyze(mapping)
        assert analysis.app_periods == {"only": analysis.period}

    def test_report_mentions_apps(self, composite):
        mapping = Mapping.all_on_ppe(composite, CellPlatform.qs22())
        report = analyze(mapping).report()
        for app in composite.app_names:
            assert app in report


# ---------------------------------------------------------------------- #
# Delta parity on composites — the acceptance bar


def assert_snapshot_matches(state: DeltaAnalyzer) -> None:
    """snapshot() must equal the flagged analyze() bit for bit."""
    snap = state.snapshot()
    full = analyze(
        state.mapping(),
        elide_local_comm=state.elide_local_comm,
        merge_same_pe_buffers=state.merge_same_pe_buffers,
    )
    assert snap.period == full.period
    assert snap.app_periods == full.app_periods
    assert snap.loads == full.loads
    assert snap.violations == full.violations
    assert snap.buffer_bytes == full.buffer_bytes
    assert snap.dma_in == full.dma_in
    assert snap.dma_proxy == full.dma_proxy
    assert snap.link_loads == full.link_loads
    assert snap.feasible == full.feasible
    assert snap.mapping == full.mapping


class TestCompositeDeltaParity:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_sequences_bit_identical(self, composite, mode, seed):
        """4 modes x 6 seeds x 10 applies = 240 verified sequences."""
        platform = PLATFORMS[seed % len(PLATFORMS)]
        rng = random.Random(9000 + seed)
        names = composite.task_names()
        state = DeltaAnalyzer(
            Mapping(
                composite,
                platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            ),
            **mode,
        )
        assert_snapshot_matches(state)
        obj = make_objective("weighted", composite)
        for _step in range(10):
            if rng.random() < 0.35:
                a, b = rng.sample(names, 2)
                if state.pe_of(a) == state.pe_of(b):
                    continue
                candidate = (
                    state.mapping()
                    .with_assignment(a, state.pe_of(b))
                    .with_assignment(b, state.pe_of(a))
                )
                reference = analyze(candidate, **mode)
                score = state.evaluate_swap(a, b, obj)
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                assert score.value == obj.value(
                    reference.period, reference.app_periods
                )
                state.apply_swap(a, b)
            else:
                task = rng.choice(names)
                pe = rng.randrange(platform.n_pes)
                reference = analyze(
                    state.mapping().with_assignment(task, pe), **mode
                )
                score = state.evaluate_move(task, pe, obj)
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                assert score.value == obj.value(
                    reference.period, reference.app_periods
                )
                state.apply_move(task, pe)
            assert_snapshot_matches(state)

    @pytest.mark.parametrize("mode", ALL_MODES, ids=MODE_IDS)
    def test_clone_and_bulk_changes(self, composite, mode):
        """clone() + score_changes/apply_changes parity on composites."""
        platform = CellPlatform.qs22_dual()
        rng = random.Random(77)
        names = composite.task_names()
        state = DeltaAnalyzer(
            Mapping(
                composite,
                platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            ),
            **mode,
        )
        clone = state.clone()
        changes = {
            n: rng.randrange(platform.n_pes) for n in rng.sample(names, 8)
        }
        score = clone.score_changes(changes)
        clone.apply_changes(changes)
        assert clone.period() == score.period
        assert_snapshot_matches(clone)
        # The original is untouched.
        assert state.assignment() != clone.assignment()
        assert_snapshot_matches(state)

    def test_app_periods_track_resync(self, composite):
        """resync() leaves per-app sums exactly where analyze puts them."""
        platform = CellPlatform.qs22()
        rng = random.Random(5)
        names = composite.task_names()
        state = DeltaAnalyzer(
            Mapping(
                composite,
                platform,
                {n: rng.randrange(platform.n_pes) for n in names},
            )
        )
        for _ in range(30):
            state.apply_move(rng.choice(names), rng.randrange(platform.n_pes))
        state.resync()
        assert_snapshot_matches(state)
        assert state.app_periods() == analyze(state.mapping()).app_periods


# ---------------------------------------------------------------------- #
# Objective layer


class TestObjectives:
    def test_registry_and_unknown_objective(self, composite):
        assert OBJECTIVES == ("period", "weighted", "max_stretch")
        with pytest.raises(ObjectiveError, match="unknown objective"):
            make_objective("fastest", composite)

    def test_period_objective_is_default_everywhere(self, composite):
        obj = make_objective("period", composite)
        assert not obj.needs_app_periods
        assert obj.value(42.0, None) == 42.0

    def test_plain_graph_collapses_to_period(self):
        graph = audio_encoder()
        for name in OBJECTIVES:
            obj = make_objective(name, graph)
            assert not obj.needs_app_periods
            assert obj.value(7.0, {}) == 7.0

    def test_weighted_value(self, composite):
        obj = make_objective("weighted", composite)
        app_periods = {"audio": 100.0, "video": 10.0, "crypto": 4.0}
        assert obj.value(123.0, app_periods) == pytest.approx(
            2.0 * 100.0 + 1.0 * 10.0 + 0.5 * 4.0
        )

    def test_max_stretch_uses_targets_and_bounds(self, composite):
        refs = reference_periods(composite)
        assert refs["video"] == 2000.0  # declared target wins
        audio = audio_encoder()
        expected = max(min(t.wppe, t.wspe) for t in audio.tasks())
        assert refs["audio"] == expected  # graph-derived lower bound
        obj = make_objective("max_stretch", composite)
        app_periods = {
            "audio": refs["audio"] * 3.0,
            "video": 2000.0,
            "crypto": refs["crypto"],
        }
        assert obj.value(0.0, app_periods) == pytest.approx(3.0)

    def test_reference_periods_reject_plain_graph(self):
        with pytest.raises(ObjectiveError, match="not a workload composite"):
            reference_periods(audio_encoder())

    def test_reference_periods_mixed_targets(self):
        """Apps with and without targets coexist: declared targets are
        honoured verbatim, the rest fall back to the graph-derived lower
        bound — the exact split admission control decides on."""
        w = Workload("mixed")
        w.add_app("qos", audio_encoder(), target_period=1234.5)
        w.add_app("besteffort", video_pipeline())  # no target
        w.add_app("tight", crypto_pipeline(), target_period=1.0)
        refs = reference_periods(w.compile())
        assert set(refs) == {"qos", "besteffort", "tight"}
        assert refs["qos"] == 1234.5
        assert refs["tight"] == 1.0  # even tighter than the lower bound
        video = video_pipeline()
        assert refs["besteffort"] == max(
            min(t.wppe, t.wspe) for t in video.tasks()
        )
        assert all(ref > 0 for ref in refs.values())

    def test_reference_periods_degenerate_bound_clamped(self):
        """A zero-cost best-effort app still gets a positive (finite-
        stretch) reference."""
        g = StreamGraph("free")
        # min(wppe, wspe) == 0: the naive lower bound degenerates to zero.
        g.add_task(Task("noop", wppe=1.0, wspe=0.0))
        w = Workload("clamp")
        w.add_app("free", g)
        w.add_app("paid", audio_encoder(), target_period=500.0)
        refs = reference_periods(w.compile())
        assert refs["free"] > 0  # clamped away from zero
        assert refs["paid"] == 500.0
        # The max_stretch objective stays finite with the clamped ref.
        obj = make_objective("max_stretch", w.compile())
        value = obj.value(0.0, {"free": 0.0, "paid": 250.0})
        assert value == pytest.approx(0.5)


# ---------------------------------------------------------------------- #
# Objective-aware heuristics on composites


HEURISTIC_CASES = (
    ("weighted", simulated_annealing),
    ("weighted", tabu_search),
    ("weighted", genetic_algorithm),
    ("max_stretch", simulated_annealing),
    ("max_stretch", tabu_search),
    ("max_stretch", genetic_algorithm),
)


class TestObjectiveHeuristics:
    @pytest.mark.parametrize(
        "objective,heuristic",
        HEURISTIC_CASES,
        ids=[f"{o}-{h.__name__}" for o, h in HEURISTIC_CASES],
    )
    def test_feasible_and_deterministic(self, composite, objective, heuristic):
        platform = CellPlatform.qs22().with_spes(4)
        kwargs = dict(seed=11, objective=objective)
        if heuristic is simulated_annealing:
            kwargs["iterations"] = 300
        elif heuristic is tabu_search:
            kwargs["rounds"] = 8
        else:
            kwargs.update(generations=3, population_size=8)
        first = heuristic(composite, platform, **kwargs)
        second = heuristic(composite, platform, **kwargs)
        assert first.to_dict() == second.to_dict()  # deterministic per seed
        assert analyze(first).feasible  # feasible-only contract

    def test_local_search_improves_objective_not_worse(self, composite):
        platform = CellPlatform.qs22().with_spes(4)
        start = Mapping.all_on_ppe(composite, platform)
        obj = make_objective("weighted", composite)
        before = obj.value(
            analyze(start).period, analyze(start).app_periods
        )
        refined = local_search(
            start, max_rounds=3, try_swaps=False, objective="weighted"
        )
        analysis = analyze(refined)
        after = obj.value(analysis.period, analysis.app_periods)
        assert analysis.feasible
        assert after <= before

    def test_local_search_full_path_matches_delta_path(self, composite):
        """The reference (use_delta=False) path ranks by the same values."""
        platform = CellPlatform.qs22().with_spes(2)
        start = Mapping.all_on_ppe(composite, platform)
        fast = local_search(
            start, max_rounds=2, try_swaps=False, objective="max_stretch"
        )
        slow = local_search(
            start,
            max_rounds=2,
            try_swaps=False,
            use_delta=False,
            objective="max_stretch",
        )
        assert fast.to_dict() == slow.to_dict()

    def test_weighted_objective_shifts_the_optimum(self):
        """A heavily-weighted app drags resources toward itself: its own
        period under the weighted optimum is no worse than under the
        period optimum (sanity that the objective actually steers)."""
        w = Workload("skew")
        w.add_app("hot", audio_encoder(), weight=100.0)
        w.add_app("cold", video_pipeline(), weight=0.01)
        composite = w.compile()
        platform = CellPlatform.qs22().with_spes(3)
        by_period = tabu_search(
            composite, platform, seed=2, rounds=12, objective="period"
        )
        by_weight = tabu_search(
            composite, platform, seed=2, rounds=12, objective="weighted"
        )
        hot_period = analyze(by_weight).app_periods["hot"]
        hot_baseline = analyze(by_period).app_periods["hot"]
        assert hot_period <= hot_baseline + 1e-9
