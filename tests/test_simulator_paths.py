"""Tests for the simulator's distinct communication paths (§6.1).

The paper's runtime uses three mechanisms — mfc_get (SPE→SPE),
proxy gets (SPE→PPE) and memcpy (PPE↔memory/PPE) — which map to distinct
slot-accounting rules in the simulator."""

import pytest

from repro.graph import DataEdge, StreamGraph, Task
from repro.platform import CellPlatform
from repro.simulator import SimConfig, Simulator
from repro.steady_state import Mapping


def pair_graph(data=10_000.0):
    g = StreamGraph("pair")
    g.add_task(Task("a", wppe=10.0, wspe=10.0))
    g.add_task(Task("b", wppe=10.0, wspe=10.0))
    g.add_edge(DataEdge("a", "b", data))
    return g


class TestTransferPaths:
    def run_pair(self, platform, src_pe, dst_pe, config=None):
        g = pair_graph()
        sim = Simulator(
            Mapping(g, platform, {"a": src_pe, "b": dst_pe}),
            config or SimConfig.ideal(),
        )
        result = sim.run(10)
        return sim, result

    def test_spe_to_spe_uses_receiver_mfc(self, qs22):
        sim, result = self.run_pair(qs22, 1, 2)
        assert result.n_instances == 10
        # Slots are all released at the end.
        assert sim.pes[2].mfc_in_flight == 0
        assert sim.pes[1].proxy_in_flight == 0

    def test_spe_to_ppe_uses_proxy(self, qs22):
        # During the run the source SPE's proxy queue is used; afterwards
        # it must be drained.
        sim, result = self.run_pair(qs22, 1, 0)
        assert sim.pes[1].proxy_in_flight == 0
        assert result.completion_times[-1] > 0

    def test_ppe_to_spe_uses_spe_mfc(self, qs22):
        sim, result = self.run_pair(qs22, 0, 1)
        assert sim.pes[1].mfc_in_flight == 0

    def test_ppe_to_ppe_memcpy_unthrottled(self):
        platform = CellPlatform(n_ppe=2, n_spe=2, name="2ppe")
        sim, result = self.run_pair(platform, 0, 1)
        assert result.n_instances == 10
        # No SPE slot involved at all.
        for pe in sim.pes:
            assert pe.mfc_in_flight == 0 and pe.proxy_in_flight == 0

    def test_proxy_queue_throttles_spe_to_ppe_fanout(self, qs22):
        # 10 SPE-resident producers all sending to the PPE from the same
        # SPE exceeds the 8-slot proxy queue; the run must still finish.
        g = StreamGraph("proxy-fanout")
        g.add_task(Task("sink", wppe=1.0, wspe=1.0))
        for i in range(10):
            g.add_task(Task(f"s{i}", wppe=1.0, wspe=1.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 100_000.0))
        assignment = {"sink": 0}
        assignment.update({f"s{i}": 1 for i in range(10)})
        sim = Simulator(Mapping(g, qs22, assignment), SimConfig.ideal())
        result = sim.run(4)
        assert result.n_instances == 4
        assert sim.pes[1].proxy_in_flight == 0


class TestBranchBoundLimits:
    def test_node_limit_without_incumbent(self):
        from repro.errors import SolverError
        from repro.lp import Model, lpsum, solve_branch_bound

        # A feasible but awkward MILP; with max_nodes=0 no node is
        # explored and no incumbent exists.
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constraint(lpsum(xs) == 3)
        m.minimize(lpsum((i + 0.5) * x for i, x in enumerate(xs)))
        with pytest.raises(SolverError):
            solve_branch_bound(m, max_nodes=0)

    def test_stats_log_incumbents(self):
        from repro.lp import Model, lpsum, solve_branch_bound

        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        m.add_constraint(lpsum(xs) <= 2)
        m.maximize(lpsum((i + 1) * x for i, x in enumerate(xs)))
        solution, stats = solve_branch_bound(m)
        assert solution.objective == pytest.approx(7.0)  # x3 + x2
        assert stats.incumbents >= 1
        assert all("incumbent" in line for line in stats.log)
