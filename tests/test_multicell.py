"""Tests for the dual-Cell QS22 extension (the paper's future work).

Scheduling across both Cells adds one resource class: the directed
FlexIO/BIF link between the chips.  The extension threads it through the
analytic model (LinkLoad), the MILP (constraint (X1)) and the simulator
(a shared flow port)."""

import pytest

from repro.errors import PlatformError
from repro.graph import DataEdge, StreamGraph, Task
from repro.milp import build_formulation, solve_optimal_mapping
from repro.platform import CellPlatform
from repro.platform.cell import BIF_BW
from repro.simulator import SimConfig, simulate
from repro.steady_state import Mapping, analyze


@pytest.fixture
def dual():
    """A small dual-Cell platform: 2 PPEs + 4 SPEs (2 per chip)."""
    return CellPlatform(n_ppe=2, n_spe=4, n_cells=2, name="dual-small")


class TestPlatformTopology:
    def test_qs22_dual_preset(self):
        plat = CellPlatform.qs22_dual()
        assert plat.n_ppe == 2 and plat.n_spe == 16 and plat.n_cells == 2
        assert plat.bif_bw == BIF_BW

    def test_cell_partition(self, dual):
        # PPE0+SPE0,SPE1 on chip 0; PPE1+SPE2,SPE3 on chip 1.
        assert [dual.cell_of(i) for i in range(dual.n_pes)] == [0, 1, 0, 0, 1, 1]

    def test_single_cell_is_chip_zero(self, qs22):
        assert all(qs22.cell_of(i) == 0 for i in range(qs22.n_pes))
        assert not qs22.is_cross_cell(0, 5)

    def test_cross_cell_predicate(self, dual):
        assert dual.is_cross_cell(0, 1)
        assert dual.is_cross_cell(2, 4)
        assert not dual.is_cross_cell(2, 3)

    def test_uneven_split_rejected(self):
        with pytest.raises(PlatformError):
            CellPlatform(n_ppe=1, n_spe=8, n_cells=2)
        with pytest.raises(PlatformError):
            CellPlatform(n_ppe=2, n_spe=7, n_cells=2)
        with pytest.raises(PlatformError):
            CellPlatform(n_ppe=1, n_spe=2, n_cells=0)
        with pytest.raises(PlatformError):
            CellPlatform(n_ppe=1, n_spe=2, bif_bw=0)


class TestAnalyticLinkLoads:
    def cross_graph(self, data=40_000.0):
        g = StreamGraph("cross")
        g.add_task(Task("a", wppe=10.0, wspe=5.0))
        g.add_task(Task("b", wppe=10.0, wspe=5.0))
        g.add_edge(DataEdge("a", "b", data))
        return g

    def test_cross_cell_edge_loads_link(self, dual):
        g = self.cross_graph()
        mapping = Mapping(g, dual, {"a": 2, "b": 4})  # chip 0 -> chip 1
        analysis = analyze(mapping)
        assert len(analysis.link_loads) == 1
        link = analysis.link_loads[0]
        assert (link.src_cell, link.dst_cell) == (0, 1)
        assert link.time == pytest.approx(40_000.0 / dual.bif_bw)

    def test_intra_cell_edge_does_not(self, dual):
        g = self.cross_graph()
        mapping = Mapping(g, dual, {"a": 2, "b": 3})  # both on chip 0
        assert analyze(mapping).link_loads == []

    def test_link_can_be_the_bottleneck(self, dual):
        # 200 kB across the 20 GB/s link = 10 µs > the 5 µs compute.
        g = self.cross_graph(data=200_000.0)
        mapping = Mapping(g, dual, {"a": 2, "b": 4})
        analysis = analyze(mapping)
        assert analysis.period == pytest.approx(200_000.0 / dual.bif_bw)


class TestMilpExtension:
    def test_x1_constraints_present(self, dual):
        g = self.two_chain()
        f = build_formulation(g, dual)
        names = [c.name for c in f.model.constraints]
        assert any(n.startswith("(X1)") for n in names)
        # Single-Cell platforms get no (X1).
        single = CellPlatform.qs22()
        f1 = build_formulation(g, single)
        assert not any(
            c.name.startswith("(X1)") for c in f1.model.constraints
        )

    def two_chain(self):
        g = StreamGraph("chain2")
        g.add_task(Task("a", wppe=10.0, wspe=30.0))
        g.add_task(Task("b", wppe=10.0, wspe=30.0))
        g.add_edge(DataEdge("a", "b", 1000.0))
        return g

    def test_milp_avoids_saturating_link(self, dual):
        # Two PPE-friendly tasks joined by a huge edge: splitting across
        # chips would cost 50 µs of link time; keeping them together wins.
        g = StreamGraph("huge-edge")
        g.add_task(Task("a", wppe=10.0, wspe=100.0))
        g.add_task(Task("b", wppe=10.0, wspe=100.0))
        g.add_edge(DataEdge("a", "b", 1_000_000.0))
        result = solve_optimal_mapping(g, dual, mip_rel_gap=None)
        assert not dual.is_cross_cell(
            result.mapping.pe_of("a"), result.mapping.pe_of("b")
        )
        assert result.period == pytest.approx(20.0)

    def test_dual_cell_beats_single_when_compute_bound(self, dual):
        g = StreamGraph("par")
        for i in range(8):
            g.add_task(Task(f"t{i}", wppe=100.0, wspe=100.0))
        single = CellPlatform(n_ppe=1, n_spe=2, name="single")
        r_single = solve_optimal_mapping(g, single, mip_rel_gap=None)
        r_dual = solve_optimal_mapping(g, dual, mip_rel_gap=None)
        assert r_dual.period < r_single.period

    def test_simulator_enforces_link(self, dual):
        g = StreamGraph("pipe")
        g.add_task(Task("a", wppe=10.0, wspe=10.0))
        g.add_task(Task("b", wppe=10.0, wspe=10.0))
        g.add_edge(DataEdge("a", "b", 100_000.0))
        cross = Mapping(g, dual, {"a": 2, "b": 4})
        result = simulate(cross, 30, SimConfig.ideal())
        # 100 kB per instance over the 20 GB/s link = 5 µs per instance;
        # the steady rate must match the analytic link-aware period.
        assert result.efficiency() == pytest.approx(1.0, abs=0.03)
        analysis = analyze(cross)
        assert analysis.period >= 100_000.0 / dual.bif_bw


class TestStrengtheningCuts:
    def test_cuts_preserve_optimum(self, dual):
        from repro.generator import assign_costs, random_topology

        for seed in (1, 5, 9):
            graph = assign_costs(
                random_topology(8, seed=seed), ccr=0.775, seed=seed
            )
            plain = solve_optimal_mapping(
                graph, dual, mip_rel_gap=None, strengthen=False
            )
            cut = solve_optimal_mapping(
                graph, dual, mip_rel_gap=None, strengthen=True
            )
            assert cut.period == pytest.approx(plain.period, rel=1e-6)

    def test_cut_constraints_named(self, dual):
        g = StreamGraph("s")
        g.add_task(Task("a", wppe=5.0, wspe=7.0))
        f = build_formulation(g, dual, strengthen=True, symmetry_breaking=True)
        names = [c.name for c in f.model.constraints]
        assert any(n.startswith("(S1)") for n in names)
        assert any(n.startswith("(S2)") for n in names)
        # Symmetry breaking stays within a chip: SPE1->SPE0 and SPE3->SPE2
        # orderings only (never across the BIF).
        s2 = [n for n in names if n.startswith("(S2)")]
        assert len(s2) == 2
        # Default build: no (S2), HiGHS handles symmetry better itself.
        f_default = build_formulation(g, dual)
        assert not any(
            c.name.startswith("(S2)") for c in f_default.model.constraints
        )

    def test_symmetry_breaking_preserves_optimum(self, dual):
        from repro.generator import assign_costs, random_topology
        from repro.lp import solve

        graph = assign_costs(random_topology(8, seed=3), ccr=0.775, seed=3)
        plain = build_formulation(graph, dual)
        broken = build_formulation(graph, dual, symmetry_breaking=True)
        t_plain = solve(plain.model).value(plain.T)
        t_broken = solve(broken.model).value(broken.T)
        assert t_broken == pytest.approx(t_plain, rel=1e-6)
