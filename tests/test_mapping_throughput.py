"""Tests for Mapping and the analytic throughput model (§3–§4)."""

import pytest

from repro.errors import InfeasibleMappingError, MappingError
from repro.graph import DataEdge, StreamGraph, Task
from repro.steady_state import (
    Mapping,
    analyze,
    assert_feasible,
    period,
    speedup,
    throughput,
)


class TestMapping:
    def test_requires_all_tasks(self, two_task_chain, qs22):
        with pytest.raises(MappingError):
            Mapping(two_task_chain, qs22, {"a": 0})

    def test_rejects_unknown_task(self, two_task_chain, qs22):
        with pytest.raises(MappingError):
            Mapping(two_task_chain, qs22, {"a": 0, "b": 1, "ghost": 2})

    def test_rejects_bad_pe(self, two_task_chain, qs22):
        with pytest.raises(MappingError):
            Mapping(two_task_chain, qs22, {"a": 0, "b": 99})

    def test_all_on_ppe(self, two_task_chain, qs22):
        m = Mapping.all_on_ppe(two_task_chain, qs22)
        assert m.pe_of("a") == m.pe_of("b") == 0
        assert m.used_pes() == [0]
        with pytest.raises(MappingError):
            Mapping.all_on_ppe(two_task_chain, qs22, ppe=3)  # PE 3 is an SPE

    def test_from_lists(self, two_task_chain, qs22):
        m = Mapping.from_lists(two_task_chain, qs22, [["a"], ["b"]])
        assert m.pe_of("b") == 1
        with pytest.raises(MappingError):
            Mapping.from_lists(two_task_chain, qs22, [["a", "b"], ["b"]])

    def test_with_assignment(self, two_task_chain, qs22):
        m = Mapping.all_on_ppe(two_task_chain, qs22)
        m2 = m.with_assignment("b", 4)
        assert m.pe_of("b") == 0  # original untouched
        assert m2.pe_of("b") == 4

    def test_cross_edges(self, two_task_chain, qs22):
        same = Mapping.all_on_ppe(two_task_chain, qs22)
        assert same.cross_edges() == []
        split = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        assert [e.key for e in split.cross_edges()] == [("a", "b")]
        assert split.n_tasks_on_spes() == 1

    def test_tasks_on_and_summary(self, two_task_chain, qs22):
        m = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        assert m.tasks_on(0) == ["a"]
        assert "SPE0" in m.summary()


class TestAnalyticThroughput:
    def test_ppe_only_period_is_total_compute(self, two_task_chain, qs22):
        m = Mapping.all_on_ppe(two_task_chain, qs22)
        assert period(m) == pytest.approx(180.0)
        assert throughput(m) == pytest.approx(1 / 180.0)

    def test_split_period_includes_comm(self, two_task_chain, qs22):
        m = Mapping(two_task_chain, qs22, {"a": 0, "b": 1})
        analysis = analyze(m)
        # Compute: a on PPE = 100, b on SPE = 40.
        loads = {load.pe_name: load for load in analysis.loads}
        assert loads["PPE0"].compute == pytest.approx(100.0)
        assert loads["SPE0"].compute == pytest.approx(40.0)
        # Communication: 1024 B over 25000 B/µs in each direction.
        assert loads["PPE0"].comm_out == pytest.approx(1024.0 / 25000.0)
        assert loads["SPE0"].comm_in == pytest.approx(1024.0 / 25000.0)
        assert analysis.period == pytest.approx(100.0)
        assert analysis.bottleneck == ("PPE0", "compute")

    def test_memory_io_counts_as_communication(self, qs22):
        g = StreamGraph("io")
        g.add_task(Task("src", wppe=1.0, wspe=1.0, read=50_000.0))
        g.add_task(Task("dst", wppe=1.0, wspe=1.0, write=25_000.0))
        g.add_edge(DataEdge("src", "dst", 0.0))
        m = Mapping.all_on_ppe(g, qs22)
        analysis = analyze(m)
        load = analysis.loads[0]
        assert load.comm_in == pytest.approx(2.0)  # 50 kB / 25 kB/µs
        assert load.comm_out == pytest.approx(1.0)
        assert analysis.period == pytest.approx(2.0)  # comm bound

    def test_memory_violation(self, qs22):
        g = StreamGraph("fat")
        g.add_task(Task("a", wppe=1.0, wspe=1.0))
        g.add_task(Task("b", wppe=1.0, wspe=1.0))
        # Buffer = data * 2 on both sides; blow one local store.
        g.add_edge(DataEdge("a", "b", qs22.buffer_budget))
        m = Mapping(g, qs22, {"a": 1, "b": 2})
        analysis = analyze(m)
        assert not analysis.feasible
        kinds = {v.constraint for v in analysis.violations}
        assert kinds == {"memory"}
        with pytest.raises(InfeasibleMappingError):
            assert_feasible(m)

    def test_dma_in_violation(self, qs22):
        g = StreamGraph("fanin")
        g.add_task(Task("sink", wppe=1.0, wspe=1.0))
        for i in range(17):  # one above the 16-slot MFC queue
            g.add_task(Task(f"s{i}", wppe=1.0, wspe=1.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 1.0))
        assignment = {"sink": 1}
        assignment.update({f"s{i}": 0 for i in range(17)})
        analysis = analyze(Mapping(g, qs22, assignment))
        assert any(v.constraint == "dma_in" for v in analysis.violations)

    def test_dma_proxy_violation(self, qs22):
        g = StreamGraph("fanout")
        g.add_task(Task("src", wppe=1.0, wspe=1.0))
        for i in range(9):  # one above the 8-slot proxy queue
            g.add_task(Task(f"d{i}", wppe=1.0, wspe=1.0))
            g.add_edge(DataEdge("src", f"d{i}", 1.0))
        assignment = {"src": 1}
        assignment.update({f"d{i}": 0 for i in range(9)})  # PPE consumers
        analysis = analyze(Mapping(g, qs22, assignment))
        assert any(v.constraint == "dma_proxy" for v in analysis.violations)

    def test_dma_limits_do_not_count_local_edges(self, qs22):
        g = StreamGraph("local-fanin")
        g.add_task(Task("sink", wppe=1.0, wspe=1.0))
        for i in range(20):
            g.add_task(Task(f"s{i}", wppe=1.0, wspe=1.0))
            g.add_edge(DataEdge(f"s{i}", "sink", 1.0))
        everyone_on_spe0 = {name: 1 for name in g.task_names()}
        analysis = analyze(Mapping(g, qs22, everyone_on_spe0))
        assert not [v for v in analysis.violations if "dma" in v.constraint]

    def test_speedup_of_reference_is_one(self, two_task_chain, qs22):
        m = Mapping.all_on_ppe(two_task_chain, qs22)
        assert speedup(m) == pytest.approx(1.0)

    def test_speedup_improves_with_split(self, diamond_graph, qs22):
        split = Mapping(diamond_graph, qs22, {"a": 0, "b": 1, "c": 2, "d": 0})
        assert speedup(split) > 1.5

    def test_report_text(self, two_task_chain, qs22):
        analysis = analyze(Mapping.all_on_ppe(two_task_chain, qs22))
        text = analysis.report()
        assert "period" in text and "bottleneck" in text
