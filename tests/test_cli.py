"""Tests for the command-line interface."""

import json

import pytest

from repro import cli
from repro.cli import main_experiment, main_serve, main_simulate, main_solve
from repro.graph import save
from repro.generator import assign_costs, random_topology


@pytest.fixture
def small_graph_file(tmp_path):
    graph = assign_costs(random_topology(8, seed=21), ccr=0.775, seed=21)
    return str(save(graph, tmp_path / "graph.json"))


class TestSolveCli:
    def test_greedy_on_builtin(self, capsys):
        assert main_solve(["crypto", "--strategy", "greedy_cpu"]) == 0
        out = capsys.readouterr().out
        assert "period" in out and "Mapping" in out

    def test_json_output(self, capsys, small_graph_file):
        code = main_solve(
            [small_graph_file, "--strategy", "greedy_mem", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["throughput_per_s"] > 0
        assert len(payload["assignment"]) == 8

    def test_ppe_strategy(self, capsys, small_graph_file):
        assert main_solve([small_graph_file, "--strategy", "ppe", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["assignment"].values()) == {0}

    def test_spes_restriction(self, capsys, small_graph_file):
        assert (
            main_solve(
                [small_graph_file, "--strategy", "greedy_mem", "--spes", "2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert max(payload["assignment"].values()) <= 2

    def test_ccr_rescale(self, capsys, small_graph_file):
        assert (
            main_solve(
                [small_graph_file, "--strategy", "ppe", "--ccr", "4.6", "--json"]
            )
            == 0
        )

    def test_missing_file_errors(self, capsys):
        assert main_solve(["/nonexistent/graph.json"]) == 1

    def test_milp_on_file(self, capsys, small_graph_file):
        assert main_solve([small_graph_file, "--strategy", "milp", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True

    @pytest.mark.parametrize("strategy", ["simulated_annealing", "tabu_search"])
    def test_metaheuristic_strategies(self, capsys, small_graph_file, strategy):
        assert main_solve([small_graph_file, "--strategy", strategy, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["throughput_per_s"] > 0


class TestExperimentCli:
    def test_jobs_flag_forwarded(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(n=n_instances, jobs=jobs)

        monkeypatch.setattr(cli.fig7_speedup, "main", fake_main)
        assert main_experiment(["fig7", "--instances", "5", "--jobs", "3"]) == 0
        assert called == {"n": 5, "jobs": 3}

    def test_jobs_flag_default_serial(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(jobs=jobs)

        monkeypatch.setattr(cli.fig8_ccr, "main", fake_main)
        assert main_experiment(["fig8", "--instances", "5"]) == 0
        assert called == {"jobs": None}

    def test_strategies_flag_forwarded(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(strategies=strategies)

        monkeypatch.setattr(cli.fig7_speedup, "main", fake_main)
        assert (
            main_experiment(
                ["fig7", "--strategies", "genetic_algorithm,greedy_cpu"]
            )
            == 0
        )
        assert called == {"strategies": ("genetic_algorithm", "greedy_cpu")}

    def test_strategies_flag_rejects_empty(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig7_speedup,
            "main",
            lambda n_instances, jobs=None, strategies=None: None,
        )
        assert main_experiment(["fig7", "--strategies", ","]) == 1
        assert "--strategies is empty" in capsys.readouterr().err

    def test_strategies_flag_rejects_unknown(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig8_ccr,
            "main",
            lambda n_instances, jobs=None, strategies=None: None,
        )
        assert main_experiment(["fig8", "--strategies", "nope"]) == 1
        assert "unknown strategies" in capsys.readouterr().err

    def test_service_flags_forwarded(self, monkeypatch):
        called = {}

        def fake_main(**kwargs):
            called.update(kwargs)

        monkeypatch.setattr(cli.service_experiment, "main", fake_main)
        assert (
            main_experiment(
                [
                    "service", "--batches", "1,4", "--budgets", "0,2",
                    "--loads", "3", "--events", "10", "--seed", "5",
                    "--jobs", "2",
                ]
            )
            == 0
        )
        assert called["batches"] == (1, 4)
        assert called["budgets"] == (0, 2)
        assert called["load"] == 3.0
        assert called["n_events"] == 10
        assert called["seed"] == 5
        assert called["jobs"] == 2

    def test_service_rejects_multiple_loads(self, capsys):
        assert main_experiment(["service", "--loads", "1,2"]) == 1
        assert "single --loads" in capsys.readouterr().err

    def test_service_rejects_bad_batches(self, capsys):
        assert main_experiment(["service", "--batches", "0,2"]) == 1
        assert "--batches" in capsys.readouterr().err

    def test_batches_warns_outside_service(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.online, "main", lambda **kwargs: None
        )
        assert main_experiment(["online", "--batches", "2"]) == 0
        assert "--batches only applies to service" in capsys.readouterr().err

    def test_online_checkpoint_replay_smoke(self, capsys, tmp_path):
        """--checkpoint-every writes recoverable journals/checkpoints:
        recovery from the sweep's own files reproduces the point."""
        from repro.runtime import DurableScheduler

        ckpt_dir = tmp_path / "ckpt"
        code = main_experiment(
            [
                "online", "--loads", "2", "--budgets", "1", "--events",
                "10", "--checkpoint-every", "3", "--checkpoint-dir",
                str(ckpt_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoints (every 3 events)" in out
        journals = sorted(ckpt_dir.glob("*.journal.jsonl"))
        assert len(journals) == 1
        checkpoint = journals[0].with_name(
            journals[0].name.replace(".journal.jsonl", ".checkpoint.json")
        )
        assert checkpoint.exists()
        with DurableScheduler.recover(
            journals[0], checkpoint_path=checkpoint
        ) as recovered:
            report = recovered.scheduler.report()
        assert report.n_events >= 10
        assert report.all_feasible

    def test_jobs_noop_warns_on_single_point_experiments(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig6_rampup, "main", lambda n_instances, jobs=None: None
        )
        assert main_experiment(["fig6", "--jobs", "4"]) == 0
        assert "--jobs ignored" in capsys.readouterr().err
        monkeypatch.setattr(cli.tables, "main", lambda: None)
        assert main_experiment(["tables", "--jobs", "4"]) == 0
        assert "--jobs ignored" in capsys.readouterr().err
        # no warning when serial anyway
        assert main_experiment(["tables"]) == 0
        assert "--jobs" not in capsys.readouterr().err


class TestSimulateCli:
    def test_simulate_builtin(self, capsys):
        code = main_simulate(
            ["crypto", "--strategy", "greedy_cpu", "--instances", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated 50 instances" in out

    def test_simulate_ideal(self, capsys, small_graph_file):
        code = main_simulate(
            [small_graph_file, "--strategy", "greedy_mem", "--instances",
             "120", "--ideal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "efficiency" in out

    def test_ps3_platform(self, capsys, small_graph_file):
        code = main_simulate(
            [small_graph_file, "--strategy", "greedy_cpu", "--platform",
             "ps3", "--instances", "40"]
        )
        assert code == 0

    def test_mapping_round_trip(self, capsys, small_graph_file, tmp_path):
        """repro-solve --mapping-out + repro-simulate --mapping compose."""
        mapping_file = str(tmp_path / "mapping.json")
        assert (
            main_solve(
                [small_graph_file, "--strategy", "greedy_cpu",
                 "--mapping-out", mapping_file]
            )
            == 0
        )
        capsys.readouterr()
        code = main_simulate(
            [small_graph_file, "--mapping", mapping_file, "--instances", "60"]
        )
        assert code == 0
        assert "simulated 60 instances" in capsys.readouterr().out

    def test_mapping_graph_mismatch(self, capsys, small_graph_file, tmp_path):
        mapping_file = tmp_path / "mapping.json"
        mapping_file.write_text('{"graph": "other", "assignment": {}}')
        code = main_simulate(
            [small_graph_file, "--mapping", str(mapping_file)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestServeCli:
    def test_serve_smoke(self, capsys):
        code = main_serve(["--events", "8", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "8 requests" in out
        assert "0 rejected" in out

    def test_serve_durable_journal_validates(self, capsys, tmp_path):
        from repro.runtime import DurableScheduler, EventJournal

        journal = tmp_path / "serve.jsonl"
        checkpoint = tmp_path / "serve.json"
        code = main_serve(
            [
                "--events", "10", "--seed", "2", "--journal", str(journal),
                "--checkpoint", str(checkpoint), "--checkpoint-every", "4",
                "--stats-json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "journal written to" in out
        _, entries, torn = EventJournal.read(journal)
        assert not torn
        assert len(entries) == 10
        with DurableScheduler.recover(
            journal, checkpoint_path=checkpoint
        ) as recovered:
            assert recovered.n_applied == 10

    def test_serve_overload_reports_rejections(self, capsys):
        code = main_serve(
            ["--events", "16", "--seed", "3", "--max-queue", "4",
             "--batch", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejection reasons" in out
        assert "backpressure" in out or "queue-full" in out

    def test_serve_rejects_bad_events(self, capsys):
        assert main_serve(["--events", "1"]) == 1
        assert "--events" in capsys.readouterr().err

    def test_serve_checkpoint_without_journal_errors(self, capsys, tmp_path):
        code = main_serve(
            ["--events", "8", "--checkpoint", str(tmp_path / "c.json")]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
