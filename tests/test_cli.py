"""Tests for the command-line interface."""

import json

import pytest

from repro import cli
from repro.cli import main_experiment, main_simulate, main_solve
from repro.graph import save
from repro.generator import assign_costs, random_topology


@pytest.fixture
def small_graph_file(tmp_path):
    graph = assign_costs(random_topology(8, seed=21), ccr=0.775, seed=21)
    return str(save(graph, tmp_path / "graph.json"))


class TestSolveCli:
    def test_greedy_on_builtin(self, capsys):
        assert main_solve(["crypto", "--strategy", "greedy_cpu"]) == 0
        out = capsys.readouterr().out
        assert "period" in out and "Mapping" in out

    def test_json_output(self, capsys, small_graph_file):
        code = main_solve(
            [small_graph_file, "--strategy", "greedy_mem", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["throughput_per_s"] > 0
        assert len(payload["assignment"]) == 8

    def test_ppe_strategy(self, capsys, small_graph_file):
        assert main_solve([small_graph_file, "--strategy", "ppe", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["assignment"].values()) == {0}

    def test_spes_restriction(self, capsys, small_graph_file):
        assert (
            main_solve(
                [small_graph_file, "--strategy", "greedy_mem", "--spes", "2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert max(payload["assignment"].values()) <= 2

    def test_ccr_rescale(self, capsys, small_graph_file):
        assert (
            main_solve(
                [small_graph_file, "--strategy", "ppe", "--ccr", "4.6", "--json"]
            )
            == 0
        )

    def test_missing_file_errors(self, capsys):
        assert main_solve(["/nonexistent/graph.json"]) == 1

    def test_milp_on_file(self, capsys, small_graph_file):
        assert main_solve([small_graph_file, "--strategy", "milp", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True

    @pytest.mark.parametrize("strategy", ["simulated_annealing", "tabu_search"])
    def test_metaheuristic_strategies(self, capsys, small_graph_file, strategy):
        assert main_solve([small_graph_file, "--strategy", strategy, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["throughput_per_s"] > 0


class TestExperimentCli:
    def test_jobs_flag_forwarded(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(n=n_instances, jobs=jobs)

        monkeypatch.setattr(cli.fig7_speedup, "main", fake_main)
        assert main_experiment(["fig7", "--instances", "5", "--jobs", "3"]) == 0
        assert called == {"n": 5, "jobs": 3}

    def test_jobs_flag_default_serial(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(jobs=jobs)

        monkeypatch.setattr(cli.fig8_ccr, "main", fake_main)
        assert main_experiment(["fig8", "--instances", "5"]) == 0
        assert called == {"jobs": None}

    def test_strategies_flag_forwarded(self, monkeypatch):
        called = {}

        def fake_main(n_instances, jobs=None, strategies=None):
            called.update(strategies=strategies)

        monkeypatch.setattr(cli.fig7_speedup, "main", fake_main)
        assert (
            main_experiment(
                ["fig7", "--strategies", "genetic_algorithm,greedy_cpu"]
            )
            == 0
        )
        assert called == {"strategies": ("genetic_algorithm", "greedy_cpu")}

    def test_strategies_flag_rejects_empty(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig7_speedup,
            "main",
            lambda n_instances, jobs=None, strategies=None: None,
        )
        assert main_experiment(["fig7", "--strategies", ","]) == 1
        assert "--strategies is empty" in capsys.readouterr().err

    def test_strategies_flag_rejects_unknown(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig8_ccr,
            "main",
            lambda n_instances, jobs=None, strategies=None: None,
        )
        assert main_experiment(["fig8", "--strategies", "nope"]) == 1
        assert "unknown strategies" in capsys.readouterr().err

    def test_jobs_noop_warns_on_single_point_experiments(self, monkeypatch, capsys):
        monkeypatch.setattr(
            cli.fig6_rampup, "main", lambda n_instances, jobs=None: None
        )
        assert main_experiment(["fig6", "--jobs", "4"]) == 0
        assert "--jobs ignored" in capsys.readouterr().err
        monkeypatch.setattr(cli.tables, "main", lambda: None)
        assert main_experiment(["tables", "--jobs", "4"]) == 0
        assert "--jobs ignored" in capsys.readouterr().err
        # no warning when serial anyway
        assert main_experiment(["tables"]) == 0
        assert "--jobs" not in capsys.readouterr().err


class TestSimulateCli:
    def test_simulate_builtin(self, capsys):
        code = main_simulate(
            ["crypto", "--strategy", "greedy_cpu", "--instances", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated 50 instances" in out

    def test_simulate_ideal(self, capsys, small_graph_file):
        code = main_simulate(
            [small_graph_file, "--strategy", "greedy_mem", "--instances",
             "120", "--ideal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "efficiency" in out

    def test_ps3_platform(self, capsys, small_graph_file):
        code = main_simulate(
            [small_graph_file, "--strategy", "greedy_cpu", "--platform",
             "ps3", "--instances", "40"]
        )
        assert code == 0

    def test_mapping_round_trip(self, capsys, small_graph_file, tmp_path):
        """repro-solve --mapping-out + repro-simulate --mapping compose."""
        mapping_file = str(tmp_path / "mapping.json")
        assert (
            main_solve(
                [small_graph_file, "--strategy", "greedy_cpu",
                 "--mapping-out", mapping_file]
            )
            == 0
        )
        capsys.readouterr()
        code = main_simulate(
            [small_graph_file, "--mapping", mapping_file, "--instances", "60"]
        )
        assert code == 0
        assert "simulated 60 instances" in capsys.readouterr().out

    def test_mapping_graph_mismatch(self, capsys, small_graph_file, tmp_path):
        mapping_file = tmp_path / "mapping.json"
        mapping_file.write_text('{"graph": "other", "assignment": {}}')
        code = main_simulate(
            [small_graph_file, "--mapping", str(mapping_file)]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
