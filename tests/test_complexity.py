"""Tests for the §3 complexity artefacts: reduction, FPTAS, brute force."""

import pytest

from repro.complexity import (
    MultiprocessorInstance,
    allocation_from_mapping,
    exact_two_machines_dp,
    fptas_two_machines,
    mapping_from_allocation,
    optimal_mapping_brute_force,
    optimal_two_machine_makespan,
    to_cell_mapping,
    verify_equivalence,
)
from repro.errors import GraphError, ReproError
from repro.graph import DataEdge, StreamGraph, Task
from repro.milp import solve_optimal_mapping
from repro.steady_state import analyze


@pytest.fixture
def instance():
    return MultiprocessorInstance.from_lists(
        [3, 5, 2, 7, 4], [4, 2, 6, 3, 5], bound=11
    )


class TestReduction:
    def test_construction_shape(self, instance):
        graph, platform, bound = to_cell_mapping(instance)
        assert graph.n_tasks == 5
        assert graph.n_edges == 4  # a chain
        assert platform.n_ppe == 1 and platform.n_spe == 1
        assert bound == pytest.approx(1 / 11)
        # Zero-size data: the reduction neglects communication.
        assert all(e.data == 0.0 for e in graph.edges())

    def test_costs_transcribed(self, instance):
        graph, _, _ = to_cell_mapping(instance)
        assert graph.task("T1").wppe == 3 and graph.task("T1").wspe == 4
        assert graph.task("T4").wppe == 7 and graph.task("T4").wspe == 3

    def test_value_correspondence_both_ways(self, instance):
        for allocation in ([1, 1, 1, 1, 1], [2, 2, 2, 2, 2], [1, 2, 1, 2, 1]):
            assert verify_equivalence(instance, allocation)
            mapping = mapping_from_allocation(instance, allocation)
            assert allocation_from_mapping(mapping) == list(allocation)

    def test_decision_equivalence_via_milp(self, instance):
        # Solve the reduced Cell instance optimally and compare with the
        # 2-machine enumeration optimum: the periods must coincide.
        graph, platform, _ = to_cell_mapping(instance)
        milp = solve_optimal_mapping(graph, platform, mip_rel_gap=None)
        assert milp.period == pytest.approx(
            optimal_two_machine_makespan(instance)
        )

    def test_makespan(self, instance):
        assert instance.makespan([1] * 5) == pytest.approx(3 + 5 + 2 + 7 + 4)
        with pytest.raises(ReproError):
            instance.makespan([3, 1, 1, 1, 1])

    def test_validation(self):
        with pytest.raises(ReproError):
            MultiprocessorInstance((), 5.0)
        with pytest.raises(ReproError):
            MultiprocessorInstance(((1.0, 2.0),), 0.0)
        with pytest.raises(ReproError):
            MultiprocessorInstance.from_lists([1], [2, 3], 1.0)


class TestFptas:
    def test_epsilon_guarantee(self, instance):
        opt = optimal_two_machine_makespan(instance)
        for eps in (0.5, 0.1, 0.01):
            value, allocation = fptas_two_machines(instance, eps)
            assert value <= opt * (1 + eps) + 1e-9
            # The returned allocation must realise the returned value.
            assert instance.makespan(allocation) == pytest.approx(value)

    def test_exact_dp_matches_enumeration(self, instance):
        assert exact_two_machines_dp(instance) == pytest.approx(
            optimal_two_machine_makespan(instance)
        )

    def test_bigger_instance_fptas_close(self):
        import random

        rng = random.Random(42)
        lengths = [(rng.uniform(1, 20), rng.uniform(1, 20)) for _ in range(24)]
        instance = MultiprocessorInstance(tuple(lengths), bound=100.0)
        exact = exact_two_machines_dp(instance)
        value, _ = fptas_two_machines(instance, 0.05)
        assert value <= exact * 1.05 + 1e-9

    def test_invalid_epsilon(self, instance):
        with pytest.raises(ReproError):
            fptas_two_machines(instance, 0.0)


class TestBruteForce:
    def test_refuses_large_graphs(self, qs22):
        g = StreamGraph("big")
        for i in range(12):
            g.add_task(Task(f"t{i}", wppe=1.0, wspe=1.0))
        with pytest.raises(GraphError):
            optimal_mapping_brute_force(g, qs22, max_tasks=10)

    def test_finds_known_optimum(self, tiny_platform):
        g = StreamGraph("known")
        g.add_task(Task("a", wppe=10.0, wspe=100.0))  # PPE-friendly
        g.add_task(Task("b", wppe=100.0, wspe=10.0))  # SPE-friendly
        g.add_edge(DataEdge("a", "b", 0.0))
        mapping, period = optimal_mapping_brute_force(g, tiny_platform)
        assert period == pytest.approx(10.0)
        assert mapping.pe_of("a") == 0
        assert tiny_platform.is_spe(mapping.pe_of("b"))

    def test_result_is_feasible(self, tiny_platform, diamond_graph):
        mapping, _ = optimal_mapping_brute_force(diamond_graph, tiny_platform)
        assert analyze(mapping).feasible
