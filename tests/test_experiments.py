"""Tests for the experiment harnesses (scaled-down configurations)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    MeasuredPoint,
    ascii_plot,
    build_mapping,
    measure_throughput,
    measured_speedup,
    to_csv,
)
from repro.experiments import fig6_rampup, fig7_speedup, fig8_ccr, tables
from repro.generator import assign_costs, random_topology
from repro.platform import CellPlatform
from repro.simulator import SimConfig
from repro.steady_state import Mapping


@pytest.fixture(scope="module")
def small_graph():
    return assign_costs(random_topology(12, fat=0.4, seed=17), ccr=0.775, seed=17)


@pytest.fixture(scope="module")
def small_platform():
    return CellPlatform.qs22().with_spes(3)


class TestCommon:
    def test_build_mapping_strategies(self, small_graph, small_platform):
        for strategy in ("greedy_cpu", "greedy_mem", "critical_path", "milp"):
            mapping = build_mapping(strategy, small_graph, small_platform)
            assert mapping.graph is small_graph
        with pytest.raises(ExperimentError):
            build_mapping("oracle", small_graph, small_platform)

    def test_measured_speedup_protocol(self, small_graph, small_platform):
        baseline = measure_throughput(
            Mapping.all_on_ppe(small_graph, small_platform), 150, SimConfig.ideal()
        )
        mapping = build_mapping("greedy_cpu", small_graph, small_platform)
        ratio, result = measured_speedup(mapping, baseline, 150, SimConfig.ideal())
        assert ratio > 0.9
        assert result.n_instances == 150

    def test_ascii_plot_and_csv(self):
        points = [
            MeasuredPoint("a", 0, 1.0),
            MeasuredPoint("a", 1, 2.0),
            MeasuredPoint("b", 1, 1.5, detail="x"),
        ]
        plot = ascii_plot(points, width=20, height=5)
        assert "o=a" in plot and "x=b" in plot
        csv_text = to_csv(points)
        assert csv_text.splitlines()[0].startswith("series,")
        assert len(csv_text.splitlines()) == 4
        assert ascii_plot([]) == "(no data)"


class TestFig6:
    def test_run_produces_expected_shape(self, small_graph, small_platform):
        result = fig6_rampup.run(
            n_instances=400,
            graph=small_graph,
            platform=small_platform,
            config=SimConfig.realistic(),
            window=50,
        )
        assert result.curve, "empty throughput curve"
        # Ramp-up: early throughput below the steady plateau.
        early = result.curve[2][1]
        assert early <= result.steady * 1.1
        # §6.4.1's headline: measured steady state close to the prediction.
        assert 0.80 <= result.efficiency <= 1.01
        assert result.points()
        assert "theoretical" in result.table()


class TestFig7:
    def test_run_one_shape(self, small_graph, small_platform):
        result = fig7_speedup.run_one(
            small_graph,
            spe_counts=(0, 3),
            strategies=("milp", "greedy_cpu"),
            n_instances=200,
            config=SimConfig.ideal(),
            base_platform=small_platform,
        )
        series = result.series()
        assert set(series) == {"milp", "greedy_cpu"}
        for name, points in series.items():
            xs = [x for x, _ in points]
            assert xs == [0, 3]
        # With zero SPEs every strategy reduces to the PPE (speed-up 1).
        for name in series:
            assert series[name][0][1] == pytest.approx(1.0, abs=0.05)
        # The MILP with 3 SPEs must beat the PPE-only reference.
        assert series["milp"][1][1] > 1.1
        assert "Figure 7" in result.table()


class TestFig8:
    def test_run_monotone_tendency(self, small_platform):
        result = fig8_ccr.run(
            ccrs=(0.775, 4.6),
            graph_ids=(3,),
            n_instances=250,
            config=SimConfig.ideal(),
            platform=small_platform,
            strategy="greedy_cpu",
        )
        series = result.series()["random graph 3"]
        assert len(series) == 2
        low_ccr, high_ccr = series[0][1], series[1][1]
        # §6.4.3: higher CCR -> lower (or equal) speed-up.
        assert high_ccr <= low_ccr * 1.05
        assert "Figure 8" in result.table()


class TestTables:
    def test_solve_time_records(self, small_platform):
        records = tables.solve_time_table(
            graph_ids=(3,), ccrs=(0.775,), platform=small_platform,
            time_limit=60.0,
        )
        assert len(records) == 1
        record = records[0]
        assert record.solve_time < 60.0
        assert record.n_vars > 0 and record.n_integer > 0
        text = tables.format_solve_table(records)
        assert "max solve time" in text

    def test_beta_ablation(self, small_platform):
        text = tables.beta_ablation_table(
            graph_id=3, platform=small_platform, time_limit=120.0
        )
        assert "integral β" in text and "continuous β" in text

    def test_strengthening_ablation(self, small_platform):
        text = tables.strengthening_ablation_table(
            graph_id=3, platform=small_platform, time_limit=120.0
        )
        assert "paper-literal" in text
        assert "symmetry breaking" in text
