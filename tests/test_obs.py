"""Observability layer: registry/tracing/logging units and the passivity
contract — instrumentation on must be byte-identical to instrumentation
off for every strategy, every kernel backend, and the online runtime.
"""

import json
import logging

import pytest

from repro.experiments import online
from repro.experiments.parallel import run_sweep, run_sweep_telemetry
from repro.generator import assign_costs, random_topology
from repro.heuristics import (
    genetic_algorithm,
    greedy_cpu,
    local_search,
    simulated_annealing,
    tabu_search,
)
from repro.obs import logging as obs_logging
from repro.obs import metrics, tracing
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.platform import CellPlatform
from repro.runtime import (
    OnlineScheduler,
    RuntimeReport,
    ScenarioGenerator,
)
from repro.runtime.report import EventRecord
from repro.steady_state import DeltaAnalyzer, available_backends


@pytest.fixture(autouse=True)
def _clean_globals():
    """Every test starts and ends with instrumentation fully off."""
    metrics.disable()
    tracing.stop()
    yield
    metrics.disable()
    tracing.stop()


@pytest.fixture
def graph():
    return assign_costs(random_topology(14, fat=0.5, seed=8), ccr=1.0, seed=8)


@pytest.fixture
def qs22():
    return CellPlatform.qs22()


# ---------------------------------------------------------------------- #
# Histogram / registry units


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.25):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # two ≤1, one ≤10, one overflow
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.75)
        assert hist.min == 0.25
        assert hist.max == 50.0
        assert hist.mean == pytest.approx(55.75 / 4)

    def test_empty(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.to_dict()["min"] == 0.0  # not inf: JSON-safe

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram(buckets=())


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.set_gauge("depth", 3.0)
        reg.observe("lat", 0.002)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["gauges"] == {"depth": 3.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 2)
        b.inc("x", 3)
        b.inc("y")
        a.observe("lat", 0.001)
        b.observe("lat", 0.1)
        b.set_gauge("depth", 7.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"x": 5, "y": 1}
        assert snap["gauges"]["depth"] == 7.0
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.101)
        assert hist["min"] == 0.001
        assert hist["max"] == 0.1

    def test_merge_is_order_and_split_invariant_on_counts(self):
        parts = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(parts):
            reg.inc("n", i + 1)
            reg.observe("lat", 0.01 * (i + 1))
        ab = MetricsRegistry()
        for reg in parts:
            ab.merge(reg.snapshot())
        ba = MetricsRegistry()
        for reg in reversed(parts):
            ba.merge(reg.snapshot())
        assert ab.counters == ba.counters == {"n": 6}
        assert ab.histograms["lat"].count == ba.histograms["lat"].count == 3

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("lat", 0.5)
        snap = b.snapshot()
        snap["histograms"] = {
            "lat": Histogram(buckets=(1.0, 2.0)).to_dict()
        }
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(snap)

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("moves_scored", 17)
        reg.observe("admission_latency", 0.003)
        payload = json.loads(reg.to_json())
        assert payload["counters"]["moves_scored"] == 17
        restored = MetricsRegistry().merge(payload)
        assert restored.counters == reg.counters

    def test_enable_disable(self):
        assert metrics.REGISTRY is None
        assert not metrics.enabled()
        reg = metrics.enable()
        assert metrics.active() is reg
        assert metrics.enable() is reg  # idempotent without args
        fresh = MetricsRegistry()
        assert metrics.enable(fresh) is fresh  # explicit install swaps
        metrics.disable()
        assert metrics.REGISTRY is None


# ---------------------------------------------------------------------- #
# Tracing units


class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert tracing.span("kernel:x") is tracing.span("strategy:y")
        with tracing.span("kernel:x", detail=1):
            pass  # no tracer: nothing recorded, nothing raised

    def test_span_records_complete_event(self):
        tracer = tracing.start(tracing.Tracer())
        with tracing.span("kernel:best_move", task="t3"):
            pass
        with tracer.span("runtime:arrival"):
            pass
        tracing.stop()
        assert len(tracer.events) == 2
        first = tracer.events[0]
        assert first["name"] == "kernel:best_move"
        assert first["ph"] == "X"
        assert first["cat"] == "kernel"
        assert first["args"] == {"task": "t3"}
        assert first["dur"] >= 0.0
        assert "args" not in tracer.events[1]

    def test_to_json_is_chrome_trace_format(self):
        tracer = tracing.start(tracing.Tracer())
        with tracing.span("a:b"):
            pass
        tracing.stop()
        payload = json.loads(tracer.to_json())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert {"name", "ph", "ts", "dur", "pid", "tid", "cat"} <= set(
            events[0]
        )

    def test_absorb_concatenates(self):
        parent, child = tracing.Tracer(), tracing.Tracer()
        with child.span("x:y"):
            pass
        parent.absorb(child.events)
        assert len(parent.events) == 1

    def test_stop_returns_and_uninstalls(self):
        tracer = tracing.start()
        assert tracing.active() is tracer
        assert tracing.stop() is tracer
        assert tracing.TRACER is None
        assert tracing.stop() is None


# ---------------------------------------------------------------------- #
# Structured logging units


class TestLogging:
    def teardown_method(self):
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs", False):
                logger.removeHandler(handler)
        logger.propagate = True

    def test_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert obs_logging.configure() is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="json.*text"):
            obs_logging.configure("yaml")

    def test_json_mode_emits_structured_lines(self, capsys):
        obs_logging.configure("json")
        obs_logging.get_logger("runtime").info(
            "t=%g %s", 4.0, "arrival", extra={"subject": "app-1"}
        )
        line = capsys.readouterr().err.strip()
        payload = json.loads(line)
        assert payload["logger"] == "repro.runtime"
        assert payload["msg"] == "t=4 arrival"
        assert payload["subject"] == "app-1"
        assert payload["level"] == "info"

    def test_reconfigure_replaces_handler(self):
        obs_logging.configure("text")
        obs_logging.configure("json")
        logger = logging.getLogger("repro")
        tagged = [
            h for h in logger.handlers if getattr(h, "_repro_obs", False)
        ]
        assert len(tagged) == 1


# ---------------------------------------------------------------------- #
# Passivity: metrics on == metrics off, everywhere

STRATEGY_CALLS = {
    "local_search": lambda g, p, backend: local_search(
        greedy_cpu(g, p), max_rounds=4, backend=backend
    ),
    "simulated_annealing": lambda g, p, backend: simulated_annealing(
        g, p, seed=3, iterations=120, backend=backend
    ),
    "tabu_search": lambda g, p, backend: tabu_search(
        g, p, seed=3, rounds=6, backend=backend
    ),
    "genetic_algorithm": lambda g, p, backend: genetic_algorithm(
        g, p, seed=3, generations=3, population_size=10, backend=backend
    ),
}


@pytest.mark.parametrize("strategy", sorted(STRATEGY_CALLS))
@pytest.mark.parametrize("backend", available_backends())
def test_strategy_mapping_identical_with_metrics(
    graph, qs22, strategy, backend
):
    """Instrumented runs must emit bit-identical mappings: recording a
    counter or a span never consumes randomness or perturbs scores."""
    run = STRATEGY_CALLS[strategy]
    baseline = run(graph, qs22, backend)
    metrics.enable(MetricsRegistry())
    tracing.start(tracing.Tracer())
    try:
        instrumented = run(graph, qs22, backend)
    finally:
        tracing.stop()
        metrics.disable()
    assert instrumented.to_dict() == baseline.to_dict()
    assert instrumented.to_json() == baseline.to_json()


@pytest.mark.parametrize("backend", available_backends())
def test_strategy_counters_deterministic(graph, qs22, backend):
    """Counter totals are decision counts: two identical runs agree."""

    def run_counted():
        registry = metrics.enable(MetricsRegistry())
        try:
            tabu_search(graph, qs22, seed=5, rounds=5, backend=backend)
        finally:
            metrics.disable()
        return registry.counters

    first, second = run_counted(), run_counted()
    assert first == second
    assert first["moves_scored"] > 0
    assert first[f"backend_dispatches.{backend}"] >= 1


def test_scheduler_report_identical_with_metrics(qs22):
    """Same timeline, metrics+tracing on vs off: equal reports, and the
    serialized records differ only in the decision-latency telemetry."""
    events = ScenarioGenerator(
        qs22, seed=7, load=2.0, n_failures=2
    ).generate(16)

    def play():
        scheduler = OnlineScheduler(
            qs22, retry_limit=2, brownout_threshold=0.5
        )
        return scheduler.run(events)

    baseline = play()
    metrics.enable(MetricsRegistry())
    tracing.start(tracing.Tracer())
    try:
        instrumented = play()
    finally:
        tracing.stop()
        metrics.disable()
    assert instrumented == baseline
    assert all(r.decision_latency == 0.0 for r in baseline.records)
    assert any(r.decision_latency > 0.0 for r in instrumented.records)
    zeroed = RuntimeReport(
        platform=instrumented.platform,
        objective=instrumented.objective,
        migration_budget=instrumented.migration_budget,
        records=[
            EventRecord.from_dict(
                {**r.to_dict(), "decision_latency": 0.0}
            )
            for r in instrumented.records
        ],
        kernel_backend=instrumented.kernel_backend,
    )
    assert zeroed.to_json() == baseline.to_json()


def test_scheduler_admission_counters_balance(qs22):
    events = ScenarioGenerator(qs22, seed=7, load=2.5).generate(14)
    registry = metrics.enable(MetricsRegistry())
    try:
        report = OnlineScheduler(qs22, retry_limit=1).run(events)
    finally:
        metrics.disable()
    decided = sum(1 for r in report.records if r.accepted is not None)
    counters = registry.counters
    assert (
        counters.get("admissions.accepted", 0)
        + counters.get("admissions.rejected", 0)
        == decided
    )
    assert counters.get("admissions.accepted", 0) == report.n_accepted
    hist = registry.histograms["admission_latency"]
    assert hist.count == decided
    assert report.mean_admission_latency > 0.0


def test_scheduler_shed_and_brownout_counters():
    """A failure-heavy brownout run feeds the degradation counters."""
    from repro.graph import DataEdge, StreamGraph, Task
    from repro.runtime import AppArrival, SpeFailure, SpeRecovery

    def app(tag):
        g = StreamGraph(f"app-{tag}")
        g.add_task(Task("src", wppe=400.0, wspe=100.0))
        g.add_task(Task("sink", wppe=400.0, wspe=100.0))
        g.add_edge(DataEdge("src", "sink", 512.0))
        return g

    platform = CellPlatform(n_ppe=1, n_spe=2, name="tiny")
    events = [
        AppArrival(2.0, "a", app("a"), target_period=150.0),
        AppArrival(4.0, "b", app("b"), target_period=150.0),
        SpeFailure(6.0, 1),
        SpeFailure(8.0, 2),
        SpeRecovery(10.0, 1),
        SpeRecovery(12.0, 2),
    ]
    registry = metrics.enable(MetricsRegistry())
    try:
        report = OnlineScheduler(
            platform, brownout_threshold=0.6
        ).run(events)
    finally:
        metrics.disable()
    counters = registry.counters
    assert counters.get("brownout_transitions", 0) == sum(
        1
        for r in report.records
        if r.reason in ("brownout-enter", "brownout-exit")
    )
    assert counters.get("brownout_transitions", 0) >= 2
    assert counters.get("admissions.shed", 0) == len(report.dropped_apps)
    assert registry.histograms["evacuation_latency"].count == 2
    assert "repair_latency" in registry.histograms


# ---------------------------------------------------------------------- #
# Sweep telemetry: merged worker registries == serial registry


def _double(spec):
    reg = metrics.REGISTRY
    if reg is not None:
        reg.inc("specs_seen")
        reg.observe("admission_latency", 0.001 * (spec + 1))
    return spec * 2


def test_run_sweep_telemetry_merges_across_workers():
    specs = list(range(6))
    serial, serial_reg, _ = run_sweep_telemetry(_double, specs, jobs=1)
    fanned, fanned_reg, _ = run_sweep_telemetry(_double, specs, jobs=3)
    assert serial == fanned == [s * 2 for s in specs]
    assert serial_reg.counters == fanned_reg.counters
    assert serial_reg.counters["specs_seen"] == len(specs)
    assert (
        serial_reg.histograms["admission_latency"].count
        == fanned_reg.histograms["admission_latency"].count
        == len(specs)
    )


def test_run_sweep_telemetry_restores_ambient_registry():
    ambient = metrics.enable(MetricsRegistry())
    try:
        run_sweep_telemetry(_double, [1, 2], jobs=1)
        assert metrics.REGISTRY is ambient
    finally:
        metrics.disable()


def test_online_sweep_telemetry_matches_serial(qs22):
    """The merged cross-worker registry of the online sweep equals the
    serial run's on every deterministic entry (counters + histogram
    counts), and the points themselves equal an untelemetered sweep."""
    kwargs = dict(
        loads=(1.0, 2.0),
        budgets=(0, 2),
        n_events=8,
        base_platform=qs22,
        seed=1,
    )
    plain = online.run(**kwargs)
    serial = online.run(metrics=True, trace=True, jobs=1, **kwargs)
    fanned = online.run(metrics=True, trace=True, jobs=2, **kwargs)
    assert plain.points == serial.points == fanned.points
    assert serial.metrics["counters"] == fanned.metrics["counters"]
    for name, hist in serial.metrics["histograms"].items():
        assert (
            hist["count"] == fanned.metrics["histograms"][name]["count"]
        ), name
    assert serial.metrics["counters"]["moves_scored"] > 0
    assert serial.trace_events and fanned.trace_events
    assert all(e["ph"] == "X" for e in serial.trace_events)
    # Telemetry sidecars populated; table grows the telemetry columns.
    assert all(p.candidates_per_sec is not None for p in serial.points)
    assert "cand/s" in serial.table()
    assert "cand/s" not in plain.table()


def test_run_sweep_unchanged_without_telemetry(qs22):
    """The plain sweep path never installs a registry behind the
    caller's back."""
    specs = list(range(3))
    assert run_sweep(_double, specs, jobs=1) == [0, 2, 4]
    assert metrics.REGISTRY is None


# ---------------------------------------------------------------------- #
# Report schema: decision_latency round-trip + old-archive regression


def test_report_round_trips_decision_latency(qs22):
    events = ScenarioGenerator(qs22, seed=2, load=1.5).generate(8)
    metrics.enable(MetricsRegistry())
    try:
        report = OnlineScheduler(qs22).run(events)
    finally:
        metrics.disable()
    restored = RuntimeReport.from_json(report.to_json())
    assert restored == report
    assert [r.decision_latency for r in restored.records] == [
        r.decision_latency for r in report.records
    ]
    assert restored.mean_decision_latency == report.mean_decision_latency


def test_old_schema_report_still_loads(qs22):
    """Archived pre-instrumentation reports (no decision_latency field)
    load with the benign 0.0 default — the PR 6 compatibility contract."""
    from pathlib import Path

    path = Path(__file__).parent / "data" / "runtime_report_pr6.json"
    text = path.read_text()
    assert "decision_latency" not in text  # stays an old-schema payload
    report = RuntimeReport.from_json(text)
    assert report.n_events == len(report.records) > 0
    assert all(r.decision_latency == 0.0 for r in report.records)
    assert report.mean_decision_latency == 0.0
    assert report.mean_admission_latency == 0.0
    # And re-serializing emits the new schema, which loads right back.
    assert RuntimeReport.from_json(report.to_json()) == report
