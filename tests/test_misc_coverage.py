"""Unit tests for smaller API corners: solution dicts, plots, presets."""

import pytest

from repro.experiments import MeasuredPoint, ascii_plot, to_csv
from repro.generator import CostModel, assign_costs, random_topology
from repro.graph import DataEdge, StreamGraph, Task, graph_stats
from repro.lp import Model, lpsum, solve
from repro.platform import CellPlatform
from repro.steady_state import Mapping, analyze, first_periods


class TestSolutionIntrospection:
    def test_var_dict(self):
        m = Model("demo")
        x = m.add_var("width", ub=5)
        y = m.add_var("height", ub=3)
        m.maximize(x + y)
        solution = solve(m)
        values = solution.var_dict(m)
        assert values == {"width": 5.0, "height": 3.0}

    def test_value_type_error(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.maximize(x)
        solution = solve(m)
        with pytest.raises(TypeError):
            solution.value("x")  # must be Var or LinExpr

    def test_lpsum_of_scaled_vars(self):
        m = Model()
        xs = [m.add_var(f"x{i}", ub=1) for i in range(3)]
        m.maximize(lpsum(2 * x for x in xs))
        assert solve(m).objective == pytest.approx(6.0)


class TestAsciiPlot:
    def test_single_point(self):
        plot = ascii_plot([MeasuredPoint("s", 1.0, 2.0)], width=10, height=4)
        assert "o=s" in plot

    def test_constant_series(self):
        points = [MeasuredPoint("flat", float(i), 5.0) for i in range(4)]
        plot = ascii_plot(points, width=16, height=4)
        assert "top=5" in plot

    def test_many_series_markers_cycle(self):
        points = [
            MeasuredPoint(f"s{i}", float(i), float(i)) for i in range(10)
        ]
        plot = ascii_plot(points)
        assert "s9" in plot

    def test_csv_header_override(self):
        text = to_csv(
            [MeasuredPoint("a", 1, 2)], header=("strategy", "spes", "speedup")
        )
        assert text.startswith("strategy,spes,speedup")


class TestPlatformPresetOverrides:
    def test_ps3_with_custom_code_size(self):
        plat = CellPlatform.playstation3(code_size=100 * 1024)
        assert plat.n_spe == 6
        assert plat.code_size == 100 * 1024

    def test_qs22_override_name(self):
        plat = CellPlatform.qs22(name="mine")
        assert plat.name == "mine"

    def test_dual_override_bif(self):
        plat = CellPlatform.qs22_dual(bif_bw=5_000.0)
        assert plat.bif_bw == 5_000.0


class TestGraphStatsOnGenerated:
    def test_stats_consistent_with_topology(self):
        topo = random_topology(30, fat=0.6, seed=4)
        graph = assign_costs(topo, ccr=1.0, seed=4)
        stats = graph_stats(graph)
        assert stats.n_tasks == topo.n_tasks == 30
        assert stats.n_edges == topo.n_edges
        assert stats.depth == len(topo.layers)

    def test_zero_ccr_graph(self):
        graph = assign_costs(random_topology(6, seed=2), ccr=0.0, seed=2)
        assert all(e.data == 0.0 for e in graph.edges())
        # Zero-size data still yields valid (zero-byte) buffers.
        fp = first_periods(graph)
        assert all(v >= 0 for v in fp.values())

    def test_peek_zero_model(self):
        model = CostModel(peek_choices=(0,), stateful_prob=0.0)
        graph = assign_costs(
            random_topology(10, seed=3), ccr=1.0, seed=3, model=model
        )
        assert all(t.peek == 0 and not t.stateful for t in graph.tasks())


class TestMappingEdgeCases:
    def test_single_pe_platform(self):
        platform = CellPlatform(n_ppe=1, n_spe=0)
        g = StreamGraph("solo")
        g.add_task(Task("only", wppe=5.0, wspe=99.0))
        mapping = Mapping.all_on_ppe(g, platform)
        analysis = analyze(mapping)
        assert analysis.feasible
        assert analysis.period == pytest.approx(5.0)

    def test_disconnected_components(self, qs22):
        g = StreamGraph("two-islands")
        g.add_task(Task("a1", wppe=10.0, wspe=10.0))
        g.add_task(Task("a2", wppe=10.0, wspe=10.0))
        g.add_task(Task("b1", wppe=10.0, wspe=10.0))
        g.add_edge(DataEdge("a1", "a2", 100.0))
        # b1 is an isolated task: simultaneously source and sink.
        assert set(g.sources()) == {"a1", "b1"}
        assert set(g.sinks()) == {"a2", "b1"}
        mapping = Mapping(g, qs22, {"a1": 0, "a2": 1, "b1": 2})
        assert analyze(mapping).feasible

    def test_repr_does_not_crash(self, qs22, two_task_chain):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        assert "Mapping" in repr(mapping)
        assert "two-chain" in repr(two_task_chain)
