"""DeltaAnalyzer under the mapping-dependent buffer models.

With ``elide_local_comm`` the ``firstPeriod`` vector — and so every edge's
buffer window — depends on the mapping; with ``merge_same_pe_buffers`` the
consumer-side copy of a same-PE edge is not allocated.  These tests drive
randomized move/swap sequences through the incremental engine and demand
*bit-identical* agreement with ``analyze(..., elide_local_comm=...,
merge_same_pe_buffers=...)`` on integer-cost graphs (the same exactness
contract test_delta.py establishes for the default mode), on single- and
dual-Cell platforms: 36 scenarios × 10 applies = 360 verified sequences
per run, plus the clone/bulk-change API the genetic algorithm relies on.
"""

import random

import pytest

from test_delta import PLATFORMS, integer_cost_graph

from repro.generator import assign_costs, random_topology
from repro.heuristics import greedy_cpu, local_search
from repro.platform import CellPlatform
from repro.steady_state import DeltaAnalyzer, Mapping, analyze, period

#: The three mapping-dependent configurations under test.
MODES = (
    {"elide_local_comm": True, "merge_same_pe_buffers": False},
    {"elide_local_comm": False, "merge_same_pe_buffers": True},
    {"elide_local_comm": True, "merge_same_pe_buffers": True},
)

MODE_IDS = ("elide", "merge", "elide+merge")


def assert_snapshot_matches(state: DeltaAnalyzer) -> None:
    """snapshot() must equal a fresh flagged analyze() bit for bit."""
    snap = state.snapshot()
    full = analyze(
        state.mapping(),
        elide_local_comm=state.elide_local_comm,
        merge_same_pe_buffers=state.merge_same_pe_buffers,
    )
    assert snap.period == full.period
    assert snap.loads == full.loads
    assert snap.violations == full.violations
    assert snap.buffer_bytes == full.buffer_bytes
    assert snap.dma_in == full.dma_in
    assert snap.dma_proxy == full.dma_proxy
    assert snap.link_loads == full.link_loads
    assert snap.feasible == full.feasible
    assert snap.mapping == full.mapping


class TestMappingDependentConsistency:
    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    @pytest.mark.parametrize("seed", range(12))
    def test_random_sequences_exact(self, seed, mode):
        """Randomized moves/swaps: scores and snapshots match analyze()."""
        g = integer_cost_graph(seed)
        platform = PLATFORMS[seed % len(PLATFORMS)]
        rng = random.Random(4000 + seed)
        names = g.task_names()
        mapping = Mapping(
            g, platform, {n: rng.randrange(platform.n_pes) for n in names}
        )
        state = DeltaAnalyzer(mapping, **mode)
        assert_snapshot_matches(state)
        for _step in range(10):
            if rng.random() < 0.35 and len(names) >= 2:
                a, b = rng.sample(names, 2)
                score = state.score_swap(a, b)
                candidate = (
                    state.mapping()
                    .with_assignment(a, state.pe_of(b))
                    .with_assignment(b, state.pe_of(a))
                )
                reference = analyze(candidate, **mode)
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                state.apply_swap(a, b)
            else:
                task = rng.choice(names)
                pe = rng.randrange(platform.n_pes)
                score = state.score_move(task, pe)
                reference = analyze(
                    state.mapping().with_assignment(task, pe), **mode
                )
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                state.apply_move(task, pe)
            assert_snapshot_matches(state)

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_dual_cell_sequences_exact(self, mode):
        """Dedicated dual-Cell coverage (BIF links + elided buffers)."""
        platform = CellPlatform.qs22_dual()
        for seed in (60, 61, 62, 63):
            g = integer_cost_graph(seed, n_min=10, n_max=18)
            rng = random.Random(seed)
            names = g.task_names()
            state = DeltaAnalyzer(
                Mapping(
                    g,
                    platform,
                    {n: rng.randrange(platform.n_pes) for n in names},
                ),
                **mode,
            )
            for _step in range(8):
                task = rng.choice(names)
                pe = rng.randrange(platform.n_pes)
                reference = analyze(
                    state.mapping().with_assignment(task, pe), **mode
                )
                score = state.score_move(task, pe)
                assert score.period == reference.period
                assert score.feasible == reference.feasible
                state.apply_move(task, pe)
                assert_snapshot_matches(state)

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_scores_do_not_mutate_state(self, qs22, mode):
        g = integer_cost_graph(17)
        state = DeltaAnalyzer(greedy_cpu(g, qs22), **mode)
        before = state.snapshot()
        names = g.task_names()
        for name in names:
            for pe in range(qs22.n_pes):
                state.score_move(name, pe)
        state.score_swap(names[0], names[-1])
        state.score_changes({names[0]: 1, names[-1]: 2})
        after = state.snapshot()
        assert before.period == after.period
        assert before.loads == after.loads
        assert before.buffer_bytes == after.buffer_bytes

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_bulk_changes_match_fresh_analyzer(self, qs22, mode):
        """score_changes/apply_changes equal analyze() on the blended map."""
        g = integer_cost_graph(23, n_min=12, n_max=18)
        rng = random.Random(7)
        names = g.task_names()
        state = DeltaAnalyzer(
            Mapping(g, qs22, {n: rng.randrange(qs22.n_pes) for n in names}),
            **mode,
        )
        changes = {
            n: rng.randrange(qs22.n_pes) for n in rng.sample(names, 5)
        }
        target = state.mapping()
        for name, pe in changes.items():
            target = target.with_assignment(name, pe)
        reference = analyze(target, **mode)
        score = state.score_changes(changes)
        assert score.period == reference.period
        assert score.feasible == reference.feasible
        state.apply_changes(changes)
        assert state.mapping() == target
        assert_snapshot_matches(state)

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_try_apply_changes_commits_only_feasible(self, mode):
        platform = CellPlatform(
            n_ppe=1,
            n_spe=4,
            local_store=64 * 1024,
            code_size=32 * 1024,
            dma_in_slots=3,
            dma_proxy_slots=2,
            name="tight",
        )
        g = integer_cost_graph(28, n_min=12, n_max=18)
        rng = random.Random(3)
        names = g.task_names()
        state = DeltaAnalyzer(Mapping.all_on_ppe(g, platform), **mode)
        committed = rejected = 0
        for _step in range(30):
            changes = {
                n: rng.randrange(platform.n_pes)
                for n in rng.sample(names, 3)
            }
            before = state.assignment()
            reference = state.score_changes(changes)
            verdict = state.try_apply_changes(changes)
            assert verdict == reference
            if verdict.feasible:
                committed += 1
                for name, pe in changes.items():
                    assert state.pe_of(name) == pe
            else:
                rejected += 1
                assert state.assignment() == before
            assert_snapshot_matches(state)
        # The tight platform must exercise both branches.
        assert committed and rejected

    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_clone_is_independent(self, qs22, mode):
        g = integer_cost_graph(31, n_min=10, n_max=14)
        state = DeltaAnalyzer(greedy_cpu(g, qs22), **mode)
        twin = state.clone()
        assert twin.mapping() == state.mapping()
        assert twin.period() == state.period()
        name = g.task_names()[0]
        twin.apply_move(name, (state.pe_of(name) + 1) % qs22.n_pes)
        # The original is untouched by the clone's move, and both stay
        # bit-consistent with their own mappings.
        assert state.pe_of(name) != twin.pe_of(name)
        assert_snapshot_matches(state)
        assert_snapshot_matches(twin)

    def test_elide_buffers_never_larger(self, qs22):
        """Eliding local communication can only shrink buffer windows."""
        g = integer_cost_graph(40, n_min=10, n_max=16)
        mapping = greedy_cpu(g, qs22)
        plain = DeltaAnalyzer(mapping)
        elided = DeltaAnalyzer(mapping, elide_local_comm=True)
        for spe, plain_bytes in plain.snapshot().buffer_bytes.items():
            assert elided.snapshot().buffer_bytes[spe] <= plain_bytes

    def test_generator_graph_sequences_close_and_resync(self):
        """Arbitrary float costs: ulp-level agreement, resync restores."""
        g = assign_costs(random_topology(16, fat=0.5, seed=11), ccr=1.3, seed=11)
        platform = CellPlatform.qs22()
        rng = random.Random(13)
        names = g.task_names()
        state = DeltaAnalyzer(
            Mapping(
                g, platform, {n: rng.randrange(platform.n_pes) for n in names}
            ),
            elide_local_comm=True,
            merge_same_pe_buffers=True,
        )
        for _step in range(40):
            task = rng.choice(names)
            pe = rng.randrange(platform.n_pes)
            score = state.score_move(task, pe)
            reference = analyze(
                state.mapping().with_assignment(task, pe),
                elide_local_comm=True,
                merge_same_pe_buffers=True,
            )
            assert score.period == pytest.approx(reference.period, rel=1e-9)
            state.apply_move(task, pe)
        state.resync()
        assert_snapshot_matches(state)


class TestLocalSearchUnderModes:
    @pytest.mark.parametrize("mode", MODES, ids=MODE_IDS)
    def test_matches_full_reference(self, qs22, mode):
        """Delta-evaluated local search equals the analyze()-per-candidate
        reference under every buffer model."""
        g = integer_cost_graph(52, n_min=10, n_max=13)
        start = Mapping.all_on_ppe(g, qs22)
        fast = local_search(start, max_rounds=4, **mode)
        slow = local_search(start, max_rounds=4, use_delta=False, **mode)
        assert fast.to_dict() == slow.to_dict()
        assert period(fast) == period(slow)
