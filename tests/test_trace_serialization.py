"""Tests for throughput curves (cumulative vs windowed) and mapping JSON."""

import pytest

from repro.errors import MappingError
from repro.simulator import SimConfig, simulate
from repro.steady_state import Mapping


class TestThroughputCurve:
    @pytest.fixture
    def result(self, peek_chain, qs22):
        mapping = Mapping(peek_chain, qs22, {"a": 1, "b": 2, "c": 3})
        return simulate(mapping, 250, SimConfig.ideal())

    def test_cumulative_monotone_ramp(self, result):
        """The paper's Fig. 6 metric: cumulative rate rises to the plateau."""
        curve = result.throughput_curve()  # cumulative mode
        assert len(curve) == 250
        rates = [r for _i, r in curve]
        # Within noise, early cumulative rate is below the late one.
        assert rates[5] < rates[-1]
        # And the cumulative rate approaches (never exceeds) steady state.
        steady = result.steady_state_throughput()
        assert rates[-1] <= steady * 1.01

    def test_windowed_mode(self, result):
        windowed = result.throughput_curve(window=40)
        assert len(windowed) == 249
        # Late windowed rate matches the steady estimate.
        assert windowed[-1][1] == pytest.approx(
            result.steady_state_throughput(), rel=0.1
        )

    def test_instance_indices(self, result):
        curve = result.throughput_curve()
        assert curve[0][0] == 1
        assert curve[-1][0] == 250


class TestMappingJson:
    def test_round_trip(self, two_task_chain, qs22):
        mapping = Mapping(two_task_chain, qs22, {"a": 0, "b": 3})
        clone = Mapping.from_json(two_task_chain, qs22, mapping.to_json())
        assert clone == mapping

    def test_graph_name_checked(self, two_task_chain, peek_chain, qs22):
        mapping = Mapping.all_on_ppe(two_task_chain, qs22)
        with pytest.raises(MappingError):
            Mapping.from_json(peek_chain, qs22, mapping.to_json())

    def test_malformed_payload(self, two_task_chain, qs22):
        with pytest.raises(MappingError):
            Mapping.from_json(two_task_chain, qs22, "not json")
        with pytest.raises(MappingError):
            Mapping.from_json(two_task_chain, qs22, "{}")

    def test_unknown_task_rejected(self, two_task_chain, qs22):
        payload = '{"graph": "two-chain", "assignment": {"a": 0, "b": 0, "ghost": 1}}'
        with pytest.raises(MappingError):
            Mapping.from_json(two_task_chain, qs22, payload)
