"""Tests for the workload generators: DagGen topologies, shapes, costs."""

import pytest

from repro.errors import GeneratorError
from repro.generator import (
    BASE_CCR,
    PAPER_CCRS,
    CostModel,
    assign_costs,
    butterfly,
    ccr_variants,
    chain,
    diamond,
    fork_join,
    paper_suite,
    random_graph_1,
    random_graph_2,
    random_graph_3,
    random_topology,
    rescale_ccr,
)
from repro.graph import ccr as graph_ccr


class TestDagGen:
    def test_task_count_exact(self):
        for n in (1, 7, 50, 94):
            topo = random_topology(n, seed=1)
            assert topo.n_tasks == n

    def test_every_non_root_has_parent(self):
        topo = random_topology(40, seed=2)
        children = {dst for _s, dst in topo.edges}
        for layer in topo.layers[1:]:
            for task in layer:
                assert task in children

    def test_edges_go_forward(self):
        topo = random_topology(60, fat=0.6, jump=3, seed=3)
        level = {}
        for depth, layer in enumerate(topo.layers):
            for task in layer:
                level[task] = depth
        for src, dst in topo.edges:
            assert level[src] < level[dst]

    def test_jump_bounds_edge_span(self):
        topo = random_topology(60, fat=0.6, jump=2, seed=4)
        level = {}
        for depth, layer in enumerate(topo.layers):
            for task in layer:
                level[task] = depth
        assert all(level[d] - level[s] <= 2 for s, d in topo.edges)

    def test_fat_controls_width(self):
        narrow = random_topology(64, fat=0.15, seed=5)
        wide = random_topology(64, fat=1.5, seed=5)
        assert max(len(layer) for layer in wide.layers) > max(
            len(layer) for layer in narrow.layers
        )

    def test_deterministic_per_seed(self):
        a = random_topology(30, seed=9)
        b = random_topology(30, seed=9)
        assert a.edges == b.edges and a.layers == b.layers
        c = random_topology(30, seed=10)
        assert a.edges != c.edges or a.layers != c.layers

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_tasks=0),
            dict(n_tasks=5, fat=0),
            dict(n_tasks=5, regularity=2),
            dict(n_tasks=5, density=-0.1),
            dict(n_tasks=5, jump=0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(GeneratorError):
            random_topology(**kwargs)


class TestShapes:
    def test_chain(self):
        topo = chain(5)
        assert topo.n_tasks == 5 and topo.n_edges == 4
        assert topo.edges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_fork_join(self):
        topo = fork_join(3, branch_length=2)
        assert topo.n_tasks == 1 + 6 + 1
        # Source fans out to 3, sink joins 3.
        sources = [e for e in topo.edges if e[0] == 0]
        assert len(sources) == 3

    def test_diamond(self):
        topo = diamond(4)
        assert topo.n_tasks == 6

    def test_butterfly(self):
        topo = butterfly(3, 2)
        assert topo.n_tasks == 6
        assert topo.n_edges == 2 * 2 * 2  # full bipartite between stages

    @pytest.mark.parametrize(
        "builder,args",
        [(chain, (0,)), (fork_join, (0,)), (butterfly, (0, 1))],
    )
    def test_invalid(self, builder, args):
        with pytest.raises(GeneratorError):
            builder(*args)


class TestCosts:
    def test_target_ccr_hit_exactly(self):
        topo = random_topology(30, seed=6)
        for target in (0.5, 0.775, 2.0, 4.6):
            graph = assign_costs(topo, ccr=target, seed=6)
            assert graph_ccr(graph) == pytest.approx(target, rel=1e-9)

    def test_cost_ranges(self):
        model = CostModel(wppe_range=(10.0, 20.0), spe_ratio_range=(2.0, 3.0))
        graph = assign_costs(random_topology(40, seed=7), ccr=1.0, seed=7, model=model)
        for task in graph.tasks():
            assert 10.0 <= task.wppe <= 20.0
            assert 2.0 - 1e-9 <= task.wspe / task.wppe <= 3.0 + 1e-9

    def test_ops_recorded(self):
        model = CostModel(ops_per_us=4.0)
        graph = assign_costs(random_topology(10, seed=8), ccr=1.0, seed=8, model=model)
        for task in graph.tasks():
            assert task.ops == pytest.approx(task.wppe * 4.0)

    def test_sources_read_sinks_write(self):
        graph = assign_costs(random_topology(25, seed=9), ccr=1.0, seed=9)
        for name in graph.sources():
            assert graph.task(name).read > 0
        for name in graph.sinks():
            assert graph.task(name).write > 0
        interior = (
            set(graph.task_names()) - set(graph.sources()) - set(graph.sinks())
        )
        for name in interior:
            task = graph.task(name)
            assert task.read == 0 and task.write == 0

    def test_peek_from_choices(self):
        model = CostModel(peek_choices=(3,))
        graph = assign_costs(random_topology(10, seed=1), ccr=1.0, seed=1, model=model)
        assert all(t.peek == 3 for t in graph.tasks())

    def test_invalid_model(self):
        with pytest.raises(GeneratorError):
            CostModel(wppe_range=(5.0, 1.0))
        with pytest.raises(GeneratorError):
            CostModel(peek_choices=())
        with pytest.raises(GeneratorError):
            CostModel(ops_per_us=0.0)

    def test_negative_ccr_rejected(self):
        with pytest.raises(GeneratorError):
            assign_costs(random_topology(5, seed=0), ccr=-1.0)


class TestRescaleCCR:
    def test_rescale_exact(self):
        graph = assign_costs(random_topology(20, seed=3), ccr=1.0, seed=3)
        scaled = rescale_ccr(graph, 3.0)
        assert graph_ccr(scaled) == pytest.approx(3.0)

    def test_compute_costs_unchanged(self):
        graph = assign_costs(random_topology(20, seed=3), ccr=1.0, seed=3)
        scaled = rescale_ccr(graph, 4.0)
        for task in graph.tasks():
            assert scaled.task(task.name).wppe == task.wppe
            assert scaled.task(task.name).wspe == task.wspe

    def test_memory_io_scales_with_payloads(self):
        graph = assign_costs(random_topology(20, seed=3), ccr=1.0, seed=3)
        scaled = rescale_ccr(graph, 2.0)
        src = graph.sources()[0]
        assert scaled.task(src).read == pytest.approx(graph.task(src).read * 2.0)


class TestPaperGraphs:
    def test_sizes(self):
        assert random_graph_1().n_tasks == 50
        assert random_graph_2().n_tasks == 94
        g3 = random_graph_3()
        assert g3.n_tasks == 50
        assert g3.n_edges == 49  # a simple chain
        assert g3.depth() == 50

    def test_base_ccr(self):
        for graph in paper_suite():
            assert graph_ccr(graph) == pytest.approx(BASE_CCR)

    def test_deterministic(self):
        assert random_graph_1() == random_graph_1()

    def test_ccr_variants(self):
        variants = ccr_variants(3)
        assert set(variants) == set(PAPER_CCRS)
        for target, graph in variants.items():
            assert graph_ccr(graph) == pytest.approx(target, rel=1e-9)
        # Same topology and compute across variants.
        base = variants[PAPER_CCRS[0]]
        other = variants[PAPER_CCRS[-1]]
        assert base.task_names() == other.task_names()
        assert [e.key for e in base.edges()] == [e.key for e in other.edges()]
        assert base.task("T5").wppe == other.task("T5").wppe

    def test_paper_ccr_range(self):
        # §6.2: CCR from 0.775 to 4.6.
        assert PAPER_CCRS[0] == 0.775
        assert PAPER_CCRS[-1] == 4.6
        assert len(PAPER_CCRS) == 6
