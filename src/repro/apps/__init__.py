"""Realistic streaming applications (the workload classes of the paper's §1).

* :func:`audio_encoder` — MPEG-1 Layer II–style encoder (the paper's
  "real audio encoder");
* :func:`video_pipeline` — motion-JPEG edit chain with preview branch;
* :func:`crypto_pipeline` — real-time compress+encrypt+MAC stream.
"""

from .audio_encoder import build as audio_encoder
from .crypto_pipeline import build as crypto_pipeline
from .video_pipeline import build as video_pipeline

__all__ = ["audio_encoder", "crypto_pipeline", "video_pipeline"]
