"""A real-time data-encryption stream (the paper's §1 motivation).

One stream instance is one 16 KiB network chunk flowing through
compress → encrypt → MAC, with framing and key-schedule side tasks.  Block
ciphers and hashes are SIMD-friendly (fast on SPEs); the entropy coder and
the protocol framing are branchy (faster on the PPE).  The MAC branch and
the payload branch rejoin at the sender, which enforces ordering
(stateful).
"""

from __future__ import annotations

from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..graph.task import Task

__all__ = ["build", "CHUNK_BYTES"]

#: One stream instance: a 16 KiB plaintext chunk.
CHUNK_BYTES = 16 * 1024


def build(n_lanes: int = 2) -> StreamGraph:
    """Build the pipeline with ``n_lanes`` parallel cipher lanes."""
    if n_lanes < 1:
        raise ValueError("n_lanes must be >= 1")
    g = StreamGraph("crypto-pipeline")
    lane = CHUNK_BYTES // n_lanes

    g.add_task(Task("ingest", wppe=50.0, wspe=95.0, read=CHUNK_BYTES, ops=200.0))
    g.add_task(Task("compress", wppe=420.0, wspe=900.0, stateful=True, ops=1680.0))
    g.add_edge(DataEdge("ingest", "compress", CHUNK_BYTES))

    # Key schedule evolves per chunk (small state, cheap).
    g.add_task(Task("keysched", wppe=40.0, wspe=85.0, stateful=True, ops=160.0))
    g.add_edge(DataEdge("ingest", "keysched", 64))

    for i in range(n_lanes):
        g.add_task(Task(f"encrypt{i}", wppe=380.0, wspe=125.0, ops=1520.0))
        g.add_edge(DataEdge("compress", f"encrypt{i}", lane // 2))
        g.add_edge(DataEdge("keysched", f"encrypt{i}", 32))

    g.add_task(Task("hmac", wppe=300.0, wspe=105.0, ops=1200.0))
    g.add_edge(DataEdge("compress", "hmac", CHUNK_BYTES // 2))

    g.add_task(
        Task("send", wppe=110.0, wspe=270.0, stateful=True,
             write=CHUNK_BYTES // 2 + 32, ops=440.0)
    )
    for i in range(n_lanes):
        g.add_edge(DataEdge(f"encrypt{i}", "send", lane // 2))
    g.add_edge(DataEdge("hmac", "send", 32))

    g.validate()
    return g
