"""An MPEG-1 Layer II–style audio encoder as a streaming task graph.

The paper's abstract evaluates "a real audio encoder"; this module rebuilds
that workload class: one stream instance is one audio frame (1152 16-bit
stereo samples = 4608 B), flowing through

* framing (reads PCM from main memory),
* a 32-band polyphase analysis filterbank, split into ``n_filter_groups``
  parallel SIMD-friendly tasks (fast on SPEs),
* an FFT + psychoacoustic model branch that *peeks* one frame ahead
  (bit-reservoir style decisions need the next frame),
* bit allocation joining both branches,
* per-group quantisation,
* scale-factor coding, bitstream packing (branchy, faster on the PPE) and a
  sink writing the encoded frame to main memory.

Costs are hand-set in µs at realistic relative magnitudes: vector kernels
run ~3× faster on an SPE, control-heavy tasks ~2–3× slower.
"""

from __future__ import annotations

from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..graph.task import Task

__all__ = ["build", "FRAME_BYTES"]

#: One stream instance: 1152 stereo samples, 16-bit → 4608 bytes.
FRAME_BYTES = 1152 * 2 * 2


def build(n_filter_groups: int = 4) -> StreamGraph:
    """Build the encoder graph with ``n_filter_groups`` parallel filter tasks."""
    if n_filter_groups < 1:
        raise ValueError("n_filter_groups must be >= 1")
    g = StreamGraph("audio-encoder")

    # Source: de-interleave PCM, distribute to the filterbank + FFT branch.
    g.add_task(Task("framing", wppe=60.0, wspe=110.0, read=FRAME_BYTES, ops=240.0))

    # Polyphase filterbank: SIMD-heavy, much faster on SPEs.
    group_in = FRAME_BYTES // n_filter_groups
    group_out = (32 // n_filter_groups) * 36 * 4  # subband samples per group
    for i in range(n_filter_groups):
        g.add_task(
            Task(f"filterbank{i}", wppe=420.0, wspe=140.0, ops=1680.0)
        )
        g.add_edge(DataEdge("framing", f"filterbank{i}", group_in))

    # Psychoacoustic branch: FFT (vector) then masking model (scalar);
    # the masking model looks one frame ahead (peek=1).
    g.add_task(Task("fft", wppe=380.0, wspe=120.0, ops=1520.0))
    g.add_task(
        Task("psycho", wppe=250.0, wspe=520.0, peek=1, stateful=True, ops=1000.0)
    )
    g.add_edge(DataEdge("framing", "fft", FRAME_BYTES))
    g.add_edge(DataEdge("fft", "psycho", 1024 * 4))

    # Bit allocation joins masking thresholds with subband energies.
    g.add_task(Task("bitalloc", wppe=150.0, wspe=330.0, stateful=True, ops=600.0))
    g.add_edge(DataEdge("psycho", "bitalloc", 32 * 4))
    for i in range(n_filter_groups):
        g.add_edge(DataEdge(f"filterbank{i}", "bitalloc", 64))

    # Quantisation per group (vector-friendly).
    for i in range(n_filter_groups):
        g.add_task(Task(f"quantise{i}", wppe=260.0, wspe=95.0, ops=1040.0))
        g.add_edge(DataEdge(f"filterbank{i}", f"quantise{i}", group_out))
        g.add_edge(DataEdge("bitalloc", f"quantise{i}", 32 * 4 // n_filter_groups))

    # Scale factors + bitstream packing: branchy, PPE-friendly.
    g.add_task(Task("scalefactors", wppe=120.0, wspe=290.0, ops=480.0))
    g.add_edge(DataEdge("bitalloc", "scalefactors", 32 * 4))
    g.add_task(
        Task("bitpack", wppe=180.0, wspe=540.0, stateful=True,
             write=1044, ops=720.0)  # 1044 B ≈ one 384 kbit/s frame
    )
    g.add_edge(DataEdge("scalefactors", "bitpack", 32 * 2))
    for i in range(n_filter_groups):
        g.add_edge(DataEdge(f"quantise{i}", "bitpack", group_out // 2))

    g.validate()
    return g
