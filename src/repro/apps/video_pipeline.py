"""A motion-JPEG-style video filter pipeline (the paper's §1 motivation).

One stream instance is one QVGA frame (320×240, YUV 4:2:0 = 115 200 B).
The graph captures the classic edit-chain the paper's introduction cites
(video edition software, VoD):

* capture (reads a raw frame from main memory),
* colour-space conversion (vectorisable),
* temporal denoise that *peeks* two frames ahead,
* per-stripe DCT + quantisation (data-parallel across ``n_stripes``),
* entropy coding and muxing (branchy, PPE-friendly),
* a preview branch (downscale + overlay) writing a thumbnail to memory.
"""

from __future__ import annotations

from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..graph.task import Task

__all__ = ["build", "FRAME_BYTES"]

#: QVGA YUV 4:2:0 frame.
FRAME_BYTES = 320 * 240 * 3 // 2


def build(n_stripes: int = 4) -> StreamGraph:
    """Build the pipeline with ``n_stripes`` parallel DCT stripes."""
    if n_stripes < 1:
        raise ValueError("n_stripes must be >= 1")
    g = StreamGraph("video-pipeline")
    stripe = FRAME_BYTES // n_stripes

    g.add_task(Task("capture", wppe=80.0, wspe=150.0, read=FRAME_BYTES, ops=320.0))
    g.add_task(Task("colourspace", wppe=520.0, wspe=170.0, ops=2080.0))
    g.add_edge(DataEdge("capture", "colourspace", FRAME_BYTES))

    # Temporal denoise: needs the two following frames (peek=2).
    g.add_task(
        Task("denoise", wppe=640.0, wspe=240.0, peek=2, stateful=True, ops=2560.0)
    )
    g.add_edge(DataEdge("colourspace", "denoise", FRAME_BYTES))

    for i in range(n_stripes):
        g.add_task(Task(f"dct{i}", wppe=450.0, wspe=150.0, ops=1800.0))
        g.add_edge(DataEdge("denoise", f"dct{i}", stripe))
        g.add_task(Task(f"quant{i}", wppe=180.0, wspe=70.0, ops=720.0))
        g.add_edge(DataEdge(f"dct{i}", f"quant{i}", stripe))

    g.add_task(Task("entropy", wppe=300.0, wspe=780.0, stateful=True, ops=1200.0))
    for i in range(n_stripes):
        g.add_edge(DataEdge(f"quant{i}", "entropy", stripe // 4))
    g.add_task(
        Task(
            "mux", wppe=90.0, wspe=260.0, stateful=True,
            write=FRAME_BYTES // 8, ops=360.0,
        )
    )
    g.add_edge(DataEdge("entropy", "mux", FRAME_BYTES // 8))

    # Preview branch: cheap, stays wherever convenient.
    g.add_task(Task("downscale", wppe=160.0, wspe=60.0, ops=640.0))
    g.add_edge(DataEdge("colourspace", "downscale", FRAME_BYTES))
    g.add_task(Task("overlay", wppe=70.0, wspe=130.0, write=80 * 60 * 2, ops=280.0))
    g.add_edge(DataEdge("downscale", "overlay", 80 * 60 * 2))

    g.validate()
    return g
