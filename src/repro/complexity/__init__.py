"""Complexity artefacts of §3, made executable.

* :mod:`repro.complexity.reduction` — Theorem 1's reduction from 2-machine
  Minimum Multiprocessor Scheduling, both directions;
* :mod:`repro.complexity.fptas` — the Horowitz–Sahni FPTAS the paper cites;
* :mod:`repro.complexity.brute_force` — enumeration oracle for Theorem 2.
"""

from .brute_force import optimal_mapping_brute_force
from .fptas import exact_two_machines_dp, fptas_two_machines
from .reduction import (
    MultiprocessorInstance,
    allocation_from_mapping,
    mapping_from_allocation,
    optimal_two_machine_makespan,
    to_cell_mapping,
    verify_equivalence,
)

__all__ = [
    "optimal_mapping_brute_force",
    "exact_two_machines_dp",
    "fptas_two_machines",
    "MultiprocessorInstance",
    "allocation_from_mapping",
    "mapping_from_allocation",
    "optimal_two_machine_makespan",
    "to_cell_mapping",
    "verify_equivalence",
]
