"""The Horowitz–Sahni FPTAS for 2-machine unrelated scheduling [15].

§3.2 notes that Minimum Multiprocessor Scheduling with a fixed number of
machines admits a fully polynomial approximation scheme (Horowitz & Sahni,
J. ACM 1976) — but that the scheme stops applying once communications must
be mapped alongside computations.  We implement the scheme for the
2-machine case to make that remark concrete and to cross-check the
reduction oracle.

Algorithm: dynamic programming over the Pareto frontier of reachable
``(load1, load2)`` pairs, with trimming — points whose coordinates are
within a factor ``1 + ε/(2n)`` of a kept point are discarded.  The result
is a ``(1 + ε)``-approximation of the optimal makespan in time
``O(n² / ε)``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ReproError
from .reduction import MultiprocessorInstance

__all__ = ["fptas_two_machines", "exact_two_machines_dp"]


def _trim(points: List[Tuple[float, float]], delta: float) -> List[Tuple[float, float]]:
    """Keep a δ-net of the Pareto frontier, sorted by load1."""
    points.sort()
    kept: List[Tuple[float, float]] = []
    last_a = -1.0
    best_b = float("inf")
    for a, b in points:
        if b >= best_b:  # dominated: same-or-larger a with larger b
            continue
        if (
            kept
            and last_a > 0
            and a <= last_a * (1 + delta)
            and b >= kept[-1][1] / (1 + delta)
        ):
            # Within the δ-tube of the last kept point on both coordinates.
            best_b = min(best_b, b)
            continue
        kept.append((a, b))
        last_a = a if a > 0 else last_a
        best_b = b
    return kept


def fptas_two_machines(
    instance: MultiprocessorInstance, epsilon: float = 0.1
) -> Tuple[float, List[int]]:
    """A ``(1+ε)``-optimal allocation; returns ``(makespan, allocation)``."""
    if epsilon <= 0:
        raise ReproError("epsilon must be positive")
    n = len(instance.lengths)
    delta = epsilon / (2.0 * n)

    # Each frontier point carries the choice sequence encoded as a bitmask
    # (machine 2 = bit set); n ≤ 63 keeps the mask in one int.
    if n > 63:
        raise ReproError("fptas implementation limited to 63 tasks")
    frontier: List[Tuple[float, float, int]] = [(0.0, 0.0, 0)]
    for k, (l1, l2) in enumerate(instance.lengths):
        extended: List[Tuple[float, float, int]] = []
        for a, b, mask in frontier:
            extended.append((a + l1, b, mask))
            extended.append((a, b + l2, mask | (1 << k)))
        # Trim on (a, b) while keeping one witness mask per kept point.
        extended.sort(key=lambda p: (p[0], p[1]))
        kept: List[Tuple[float, float, int]] = []
        best_b = float("inf")
        for a, b, mask in extended:
            if b >= best_b:
                continue
            if (
                kept
                and a <= kept[-1][0] * (1 + delta)
                and b >= kept[-1][1] / (1 + delta)
            ):
                best_b = min(best_b, b)
                continue
            kept.append((a, b, mask))
            best_b = b
        frontier = kept

    a, b, mask = min(frontier, key=lambda p: max(p[0], p[1]))
    allocation = [2 if mask & (1 << k) else 1 for k in range(n)]
    return max(a, b), allocation


def exact_two_machines_dp(instance: MultiprocessorInstance) -> float:
    """Exact optimum via the untrimmed frontier (pseudo-polynomial oracle)."""
    frontier = {(0.0, 0.0)}
    for l1, l2 in instance.lengths:
        frontier = {
            point
            for a, b in frontier
            for point in ((a + l1, b), (a, b + l2))
        }
        # Prune dominated points to keep the set manageable.
        pruned = []
        for a, b in sorted(frontier):
            if not pruned or b < pruned[-1][1]:
                pruned.append((a, b))
        frontier = set(pruned)
    return min(max(a, b) for a, b in frontier)
