"""Exhaustive optimal mapping for tiny instances.

Enumerates every task→PE assignment, keeps the feasible one with the
smallest period.  Exponential (``n_pes ** n_tasks``) — strictly a test
oracle to validate the MILP on graphs of ≤ ~8 tasks, witnessing Theorem 2.
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Tuple

from ..errors import GraphError
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..steady_state.throughput import analyze

__all__ = ["optimal_mapping_brute_force"]


def optimal_mapping_brute_force(
    graph: StreamGraph,
    platform: CellPlatform,
    max_tasks: int = 10,
) -> Tuple[Mapping, float]:
    """The provably optimal mapping and its period, by enumeration.

    Raises :class:`GraphError` if the graph exceeds ``max_tasks`` (the
    search space would explode).
    """
    names = graph.task_names()
    if len(names) > max_tasks:
        raise GraphError(
            f"brute force refuses {len(names)} tasks (max {max_tasks}); "
            "use repro.milp.solve_optimal_mapping instead"
        )
    best: Optional[Mapping] = None
    best_period = float("inf")
    for combo in product(range(platform.n_pes), repeat=len(names)):
        mapping = Mapping(graph, platform, dict(zip(names, combo)))
        analysis = analyze(mapping)
        if analysis.feasible and analysis.period < best_period:
            best, best_period = mapping, analysis.period
    assert best is not None  # all-on-PPE is always feasible
    return best, best_period
