"""Theorem 1's NP-completeness reduction, executable.

The paper proves Cell-Mapping strongly NP-complete by reduction from
Minimum Multiprocessor Scheduling on two machines: an instance with tasks
of lengths ``l(k, i)`` (machine ``i ∈ {1, 2}``) and bound ``B'`` maps to a
Cell with one PPE (machine 1) and one SPE (machine 2), a chain application
with ``wPPE(T_k) = l(k,1)``, ``wSPE(T_k) = l(k,2)``, zero-size data, and
throughput bound ``B = 1/B'``.

This module materialises both directions of the proof so the test suite
can check them on concrete instances: schedules map to mappings of the
same objective value and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ReproError
from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..graph.task import Task
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..steady_state.throughput import analyze

__all__ = [
    "MultiprocessorInstance",
    "to_cell_mapping",
    "mapping_from_allocation",
    "allocation_from_mapping",
    "optimal_two_machine_makespan",
]


@dataclass(frozen=True)
class MultiprocessorInstance:
    """A 2-machine Minimum Multiprocessor Scheduling instance.

    ``lengths[k] = (l(k,1), l(k,2))`` — processing time of task ``k`` on
    machine 1 / machine 2 (unrelated machines).
    """

    lengths: Tuple[Tuple[float, float], ...]
    bound: float  # B': target makespan

    def __post_init__(self) -> None:
        if not self.lengths:
            raise ReproError("instance needs at least one task")
        for pair in self.lengths:
            if len(pair) != 2 or any(length < 0 for length in pair):
                raise ReproError("lengths must be non-negative pairs")
        if self.bound <= 0:
            raise ReproError("bound must be positive")

    @classmethod
    def from_lists(
        cls, l1: Sequence[float], l2: Sequence[float], bound: float
    ) -> "MultiprocessorInstance":
        if len(l1) != len(l2):
            raise ReproError("l1 and l2 must have equal length")
        return cls(tuple(zip(map(float, l1), map(float, l2))), bound)

    def makespan(self, allocation: Sequence[int]) -> float:
        """Makespan of ``allocation[k] ∈ {1, 2}``."""
        loads = {1: 0.0, 2: 0.0}
        for k, machine in enumerate(allocation):
            if machine not in (1, 2):
                raise ReproError(f"allocation[{k}] must be 1 or 2")
            loads[machine] += self.lengths[k][machine - 1]
        return max(loads.values())


def to_cell_mapping(
    instance: MultiprocessorInstance,
) -> Tuple[StreamGraph, CellPlatform, float]:
    """The paper's polynomial construction of instance ``I2``.

    Returns ``(graph, platform, B)`` where the question "is there a mapping
    with throughput ≥ B" is equivalent to the original scheduling question.
    """
    graph = StreamGraph("thm1-reduction")
    previous = None
    for k, (l1, l2) in enumerate(instance.lengths):
        name = f"T{k + 1}"
        graph.add_task(Task(name, wppe=l1, wspe=l2))
        if previous is not None:
            graph.add_edge(DataEdge(previous, name, 0.0))  # data(k,k+1) = 0
        previous = name
    platform = CellPlatform(n_ppe=1, n_spe=1, name="thm1")
    return graph, platform, 1.0 / instance.bound


def mapping_from_allocation(
    instance: MultiprocessorInstance, allocation: Sequence[int]
) -> Mapping:
    """Forward direction: a machine allocation becomes a Cell mapping."""
    graph, platform, _ = to_cell_mapping(instance)
    assignment: Dict[str, int] = {}
    for k, machine in enumerate(allocation):
        # Machine 1 -> the PPE (PE 0), machine 2 -> the SPE (PE 1).
        assignment[f"T{k + 1}"] = 0 if machine == 1 else 1
    return Mapping(graph, platform, assignment)


def allocation_from_mapping(mapping: Mapping) -> List[int]:
    """Backward direction: a Cell mapping becomes a machine allocation."""
    allocation = []
    for name in mapping.graph.task_names():
        allocation.append(1 if mapping.pe_of(name) == 0 else 2)
    return allocation


def optimal_two_machine_makespan(instance: MultiprocessorInstance) -> float:
    """Exact optimum by enumeration (test oracle; exponential)."""
    n = len(instance.lengths)
    if n > 20:
        raise ReproError("enumeration oracle limited to 20 tasks")
    best = float("inf")
    for mask in range(1 << n):
        allocation = [1 if mask & (1 << k) else 2 for k in range(n)]
        best = min(best, instance.makespan(allocation))
    return best


def verify_equivalence(
    instance: MultiprocessorInstance, allocation: Sequence[int]
) -> bool:
    """Check the proof's value correspondence on one allocation.

    The makespan of the allocation equals the period of the corresponding
    Cell mapping (communication is free in the reduction), so the decision
    answers agree.
    """
    mapping = mapping_from_allocation(instance, allocation)
    period = analyze(mapping).period
    return abs(period - instance.makespan(allocation)) <= 1e-9 * max(1.0, period)
