"""Streaming tasks (paper §2.2).

A task processes one *instance* of the stream per activation.  Costs follow
the unrelated-machines model: ``wppe`` and ``wspe`` give the time (µs) for
one instance on a PPE resp. an SPE, and neither dominates the other across
tasks.  ``peek`` is the number of *future* instances of every input data the
task must hold before it can process instance ``i`` (instances
``i .. i+peek``), as in video encoders that look ahead.  ``read``/``write``
are bytes exchanged with main memory per instance; they consume interface
bandwidth like any communication.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import GraphError
from ..platform.elements import PEKind

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """One node of the streaming task graph.

    Attributes
    ----------
    name:
        Unique identifier within a graph.
    wppe, wspe:
        Time (µs) to process one instance on a PPE / an SPE.
    read, write:
        Bytes read from / written to main memory per instance.
    peek:
        Number of future instances of each input required ahead of time.
    stateful:
        Whether the task carries internal state between instances.  With
        the paper's single-PE-per-task mappings this is informational (a
        stateful task simply cannot be replicated, which no mapping here
        does); generators label tasks to mirror the published graphs.
    ops:
        Abstract operation count per instance, used only for CCR
        accounting (§6.2).  Defaults to ``wppe`` (1 op ≡ 1 µs of PPE work).
    """

    name: str
    wppe: float
    wspe: float
    read: float = 0.0
    write: float = 0.0
    peek: int = 0
    stateful: bool = False
    ops: Optional[float] = field(default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("task name must be a non-empty string")
        if self.wppe < 0 or self.wspe < 0:
            raise GraphError(f"task {self.name!r}: costs must be non-negative")
        if self.wppe == 0 and self.wspe == 0:
            raise GraphError(f"task {self.name!r}: at least one cost must be positive")
        if self.read < 0 or self.write < 0:
            raise GraphError(f"task {self.name!r}: read/write must be non-negative")
        if self.peek < 0 or int(self.peek) != self.peek:
            raise GraphError(f"task {self.name!r}: peek must be a non-negative integer")
        if self.ops is not None and self.ops < 0:
            raise GraphError(f"task {self.name!r}: ops must be non-negative")

    def cost_on(self, kind: PEKind) -> float:
        """Per-instance processing time on a PE of class ``kind``."""
        return self.wppe if kind is PEKind.PPE else self.wspe

    @property
    def operation_count(self) -> float:
        """Operations per instance for CCR accounting (defaults to ``wppe``)."""
        return self.wppe if self.ops is None else self.ops

    def renamed(self, name: str) -> "Task":
        """A copy under another name (workload namespacing)."""
        return replace(self, name=name)

    def scaled(self, compute_factor: float = 1.0) -> "Task":
        """A copy with compute costs multiplied by ``compute_factor``."""
        if compute_factor <= 0:
            raise GraphError("compute_factor must be positive")
        return replace(
            self,
            wppe=self.wppe * compute_factor,
            wspe=self.wspe * compute_factor,
        )
