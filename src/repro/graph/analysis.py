"""Graph-level metrics: CCR, compute/communication totals, critical path.

The paper (§6.2) defines the communication-to-computation ratio of a
scenario as *"the total number of transferred elements divided by the number
of operations on these elements"*.  Elements are 4-byte words
(:data:`ELEMENT_BYTES`); the operation count of a task defaults to its PPE
time in µs (see :attr:`repro.graph.task.Task.operation_count`), i.e. one
abstract operation per microsecond of PPE work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .stream_graph import StreamGraph

__all__ = [
    "ELEMENT_BYTES",
    "GraphStats",
    "ccr",
    "total_data_bytes",
    "total_elements",
    "total_operations",
    "total_compute",
    "critical_path_time",
    "graph_stats",
]

#: Size of one stream element in bytes (single-precision word).
ELEMENT_BYTES: float = 4.0


def total_data_bytes(graph: StreamGraph) -> float:
    """Sum of per-instance edge payloads, in bytes."""
    return sum(edge.data for edge in graph.edges())


def total_elements(graph: StreamGraph) -> float:
    """Total transferred elements per instance (paper's CCR numerator)."""
    return total_data_bytes(graph) / ELEMENT_BYTES


def total_operations(graph: StreamGraph) -> float:
    """Total abstract operations per instance (paper's CCR denominator)."""
    return sum(task.operation_count for task in graph.tasks())


def ccr(graph: StreamGraph) -> float:
    """Communication-to-computation ratio of the application (§6.2)."""
    ops = total_operations(graph)
    if ops == 0:
        return float("inf") if total_elements(graph) > 0 else 0.0
    return total_elements(graph) / ops


def total_compute(graph: StreamGraph, kind: str = "ppe") -> float:
    """Total per-instance compute time (µs) if every task ran on ``kind``.

    ``kind`` is ``"ppe"``, ``"spe"`` or ``"min"`` (per-task best class).
    """
    if kind == "ppe":
        return sum(t.wppe for t in graph.tasks())
    if kind == "spe":
        return sum(t.wspe for t in graph.tasks())
    if kind == "min":
        return sum(min(t.wppe, t.wspe) for t in graph.tasks())
    raise ValueError(f"kind must be 'ppe', 'spe' or 'min', got {kind!r}")


def critical_path_time(graph: StreamGraph, kind: str = "min") -> float:
    """Length (µs) of the heaviest path, using per-task ``kind`` costs.

    For steady-state throughput the critical path does not bound the period
    (pipelining hides it), but it bounds the *latency* of one instance and
    the ramp-up length, and drives the critical-path heuristic.
    """
    cost: Dict[str, float] = {}
    for task in graph.tasks():
        if kind == "min":
            cost[task.name] = min(task.wppe, task.wspe)
        elif kind == "ppe":
            cost[task.name] = task.wppe
        elif kind == "spe":
            cost[task.name] = task.wspe
        else:
            raise ValueError(f"kind must be 'ppe', 'spe' or 'min', got {kind!r}")
    finish: Dict[str, float] = {}
    for name in graph.topological_order():
        start = max((finish[p] for p in graph.predecessors(name)), default=0.0)
        finish[name] = start + cost[name]
    return max(finish.values(), default=0.0)


@dataclass(frozen=True)
class GraphStats:
    """Summary of a streaming application's shape and weight."""

    name: str
    n_tasks: int
    n_edges: int
    depth: int
    width: int
    ccr: float
    total_data_bytes: float
    total_wppe: float
    total_wspe: float
    max_peek: int
    n_stateful: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.n_tasks} tasks / {self.n_edges} edges, "
            f"depth {self.depth}, width {self.width}, CCR {self.ccr:.3f}, "
            f"data {self.total_data_bytes:.0f} B/instance"
        )


def graph_stats(graph: StreamGraph) -> GraphStats:
    """Compute the :class:`GraphStats` summary of ``graph``."""
    return GraphStats(
        name=graph.name,
        n_tasks=graph.n_tasks,
        n_edges=graph.n_edges,
        depth=graph.depth(),
        width=graph.width(),
        ccr=ccr(graph),
        total_data_bytes=total_data_bytes(graph),
        total_wppe=total_compute(graph, "ppe"),
        total_wspe=total_compute(graph, "spe"),
        max_peek=max((t.peek for t in graph.tasks()), default=0),
        n_stateful=sum(1 for t in graph.tasks() if t.stateful),
    )
