"""Data dependencies between streaming tasks (paper §2.2).

An edge ``D(k,l)`` states that instance ``i`` of task ``l`` consumes the
instance-``i`` output of task ``k`` (plus ``peek_l`` following instances).
``data`` is the payload size in bytes per instance; it determines both the
communication time of cross-PE transfers and, multiplied by the steady-state
window (§4.2), the buffer footprint on both endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import GraphError

__all__ = ["DataEdge"]


@dataclass(frozen=True)
class DataEdge:
    """One edge of the streaming task graph.

    Attributes
    ----------
    src, dst:
        Names of the producing and consuming tasks.
    data:
        Bytes produced per instance (``data[k,l]`` in the paper).
    """

    src: str
    dst: str
    data: float

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise GraphError("edge endpoints must be non-empty task names")
        if self.src == self.dst:
            raise GraphError(f"self-loop on task {self.src!r} is not allowed")
        if self.data < 0:
            raise GraphError(
                f"edge {self.src!r}->{self.dst!r}: data size must be non-negative"
            )

    @property
    def key(self) -> Tuple[str, str]:
        """The ``(src, dst)`` pair identifying this edge in a graph."""
        return (self.src, self.dst)

    def scaled(self, data_factor: float) -> "DataEdge":
        """A copy with the payload multiplied by ``data_factor``."""
        if data_factor < 0:
            raise GraphError("data_factor must be non-negative")
        return replace(self, data=self.data * data_factor)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"D({self.src}->{self.dst}, {self.data:g} B)"
