"""The streaming application graph ``G_A = (V_A, E_A)`` (paper §2.2).

:class:`StreamGraph` is a small purpose-built DAG container: insertion-ordered,
validating (no dangling endpoints, no duplicate edges, no cycles on demand),
with the handful of traversals the schedulers need.  ``networkx`` export is
provided for interoperability but the library never requires it on hot paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import CycleError, GraphError
from .edge import DataEdge
from .task import Task

__all__ = ["StreamGraph"]


class StreamGraph:
    """A directed acyclic graph of streaming tasks.

    Tasks are identified by name.  Edges are identified by the
    ``(src, dst)`` pair; parallel edges are not allowed (the paper's model
    has a single data item ``D(k,l)`` per task pair).
    """

    def __init__(self, name: str = "stream") -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._edges: Dict[Tuple[str, str], DataEdge] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every structural or attribute change.

        Derived caches (e.g. the memoized ``buffer_requirements``) key on
        ``(graph, version)`` so they are invalidated by any mutation.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Construction

    def add_task(self, task: Task) -> Task:
        """Insert ``task``; raises :class:`GraphError` on duplicate names."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = []
        self._pred[task.name] = []
        self._version += 1
        return task

    def add_edge(self, edge: DataEdge) -> DataEdge:
        """Insert ``edge``; both endpoints must already be tasks."""
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._tasks:
                raise GraphError(
                    f"edge {edge.src!r}->{edge.dst!r}: unknown task {endpoint!r}"
                )
        if edge.key in self._edges:
            raise GraphError(f"duplicate edge {edge.src!r}->{edge.dst!r}")
        self._edges[edge.key] = edge
        self._succ[edge.src].append(edge.dst)
        self._pred[edge.dst].append(edge.src)
        self._version += 1
        return edge

    def replace_task(self, task: Task) -> None:
        """Swap the task of the same name, keeping all edges."""
        if task.name not in self._tasks:
            raise GraphError(f"unknown task {task.name!r}")
        self._tasks[task.name] = task
        self._version += 1

    def replace_edge(self, edge: DataEdge) -> None:
        """Swap the edge with the same ``(src, dst)`` key."""
        if edge.key not in self._edges:
            raise GraphError(f"unknown edge {edge.src!r}->{edge.dst!r}")
        self._edges[edge.key] = edge
        self._version += 1

    # ------------------------------------------------------------------ #
    # Queries

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r}") from None

    def edge(self, src: str, dst: str) -> DataEdge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise GraphError(f"unknown edge {src!r}->{dst!r}") from None

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def tasks(self) -> Iterator[Task]:
        """Tasks in insertion order."""
        return iter(self._tasks.values())

    def task_names(self) -> List[str]:
        return list(self._tasks.keys())

    def edges(self) -> Iterator[DataEdge]:
        """Edges in insertion order."""
        return iter(self._edges.values())

    def successors(self, name: str) -> List[str]:
        self.task(name)
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        self.task(name)
        return list(self._pred[name])

    def out_edges(self, name: str) -> List[DataEdge]:
        self.task(name)
        return [self._edges[(name, dst)] for dst in self._succ[name]]

    def in_edges(self, name: str) -> List[DataEdge]:
        self.task(name)
        return [self._edges[(src, name)] for src in self._pred[name]]

    def out_degree(self, name: str) -> int:
        self.task(name)
        return len(self._succ[name])

    def in_degree(self, name: str) -> int:
        self.task(name)
        return len(self._pred[name])

    def sources(self) -> List[str]:
        """Tasks with no predecessor (stream entry points)."""
        return [t for t in self._tasks if not self._pred[t]]

    def sinks(self) -> List[str]:
        """Tasks with no successor (stream exit points)."""
        return [t for t in self._tasks if not self._succ[t]]

    # ------------------------------------------------------------------ #
    # Traversals

    def topological_order(self) -> List[str]:
        """Kahn topological order; raises :class:`CycleError` on cycles."""
        in_deg = {t: len(self._pred[t]) for t in self._tasks}
        ready = [t for t in self._tasks if in_deg[t] == 0]
        order: List[str] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._tasks):
            raise CycleError(f"graph {self.name!r} contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def validate(self) -> None:
        """Full structural validation; raises on any inconsistency."""
        if not self._tasks:
            raise GraphError(f"graph {self.name!r} has no task")
        self.topological_order()  # raises CycleError on cycles

    def depth(self) -> int:
        """Number of tasks on the longest path (1 for edge-less graphs)."""
        level: Dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=0)
        return max(level.values(), default=0)

    def levels(self) -> Dict[str, int]:
        """Longest-path level of each task, sources at level 0."""
        level: Dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        return level

    def width(self) -> int:
        """Maximum number of tasks sharing a level (graph parallelism)."""
        counts: Dict[int, int] = {}
        for lvl in self.levels().values():
            counts[lvl] = counts.get(lvl, 0) + 1
        return max(counts.values(), default=0)

    # ------------------------------------------------------------------ #
    # Derivation

    def copy(self, name: Optional[str] = None) -> "StreamGraph":
        out = StreamGraph(name or self.name)
        for task in self.tasks():
            out.add_task(task)
        for edge in self.edges():
            out.add_edge(edge)
        return out

    def scaled(
        self,
        compute_factor: float = 1.0,
        data_factor: float = 1.0,
        name: Optional[str] = None,
    ) -> "StreamGraph":
        """A copy with all compute costs / data sizes scaled uniformly."""
        out = StreamGraph(name or self.name)
        for task in self.tasks():
            out.add_task(task.scaled(compute_factor))
        for edge in self.edges():
            out.add_edge(edge.scaled(data_factor))
        return out

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (attributes on nodes/edges)."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for task in self.tasks():
            g.add_node(
                task.name,
                wppe=task.wppe,
                wspe=task.wspe,
                read=task.read,
                write=task.write,
                peek=task.peek,
                stateful=task.stateful,
            )
        for edge in self.edges():
            g.add_edge(edge.src, edge.dst, data=edge.data)
        return g

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamGraph):
            return NotImplemented
        return self._tasks == other._tasks and self._edges == other._edges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamGraph({self.name!r}, {self.n_tasks} tasks, "
            f"{self.n_edges} edges)"
        )

    @classmethod
    def from_parts(
        cls,
        tasks: Iterable[Task],
        edges: Iterable[DataEdge],
        name: str = "stream",
    ) -> "StreamGraph":
        """Build and validate a graph from task and edge sequences."""
        graph = cls(name)
        for task in tasks:
            graph.add_task(task)
        for edge in edges:
            graph.add_edge(edge)
        graph.validate()
        return graph

    @classmethod
    def chain_of(
        cls, tasks: Sequence[Task], data: Sequence[float], name: str = "chain"
    ) -> "StreamGraph":
        """Convenience constructor for linear pipelines (Fig. 2a)."""
        if len(data) != max(len(tasks) - 1, 0):
            raise GraphError("chain_of needs len(data) == len(tasks) - 1")
        graph = cls(name)
        for task in tasks:
            graph.add_task(task)
        for (prev, nxt), size in zip(zip(tasks, tasks[1:]), data):
            graph.add_edge(DataEdge(prev.name, nxt.name, size))
        return graph
