"""Streaming application model (paper §2.2).

* :class:`Task` — per-instance costs (unrelated machines), peek, memory I/O;
* :class:`DataEdge` — per-instance payloads between tasks;
* :class:`StreamGraph` — the validated DAG container;
* :class:`Workload` / :class:`CompositeGraph` — co-scheduled
  multi-application workloads compiled into one namespaced graph;
* analysis helpers — :func:`ccr`, :func:`graph_stats`, critical path;
* :mod:`repro.graph.io` — JSON round-trip and DOT export.
"""

from .analysis import (
    ELEMENT_BYTES,
    GraphStats,
    ccr,
    critical_path_time,
    graph_stats,
    total_compute,
    total_data_bytes,
    total_elements,
    total_operations,
)
from .edge import DataEdge
from .io import from_dict, load, save, to_dict, to_dot
from .stream_graph import StreamGraph
from .task import Task
from .workload import CompositeGraph, Workload, WorkloadApp

__all__ = [
    "ELEMENT_BYTES",
    "GraphStats",
    "ccr",
    "critical_path_time",
    "graph_stats",
    "total_compute",
    "total_data_bytes",
    "total_elements",
    "total_operations",
    "DataEdge",
    "from_dict",
    "load",
    "save",
    "to_dict",
    "to_dot",
    "StreamGraph",
    "Task",
    "CompositeGraph",
    "Workload",
    "WorkloadApp",
]
