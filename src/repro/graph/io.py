"""Serialisation of streaming task graphs: JSON round-trip and DOT export.

The JSON schema is a flat dictionary so graphs generated once (e.g. the
paper-like random graphs) can be checked in and shared between experiments::

    {
      "name": "...",
      "tasks": [{"name": ..., "wppe": ..., "wspe": ..., ...}, ...],
      "edges": [{"src": ..., "dst": ..., "data": ...}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import GraphError
from .edge import DataEdge
from .stream_graph import StreamGraph
from .task import Task

__all__ = ["to_dict", "from_dict", "dumps", "loads", "save", "load", "to_dot"]

_SCHEMA_VERSION = 1


def to_dict(graph: StreamGraph) -> Dict[str, Any]:
    """JSON-serialisable dictionary form of ``graph``."""
    return {
        "schema": _SCHEMA_VERSION,
        "name": graph.name,
        "tasks": [
            {
                "name": t.name,
                "wppe": t.wppe,
                "wspe": t.wspe,
                "read": t.read,
                "write": t.write,
                "peek": t.peek,
                "stateful": t.stateful,
                **({"ops": t.ops} if t.ops is not None else {}),
            }
            for t in graph.tasks()
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "data": e.data} for e in graph.edges()
        ],
    }


def from_dict(payload: Dict[str, Any]) -> StreamGraph:
    """Rebuild a validated :class:`StreamGraph` from :func:`to_dict` output."""
    try:
        graph = StreamGraph(payload.get("name", "stream"))
        for spec in payload["tasks"]:
            graph.add_task(Task(**spec))
        for spec in payload["edges"]:
            graph.add_edge(DataEdge(**spec))
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph payload: {exc}") from exc
    graph.validate()
    return graph


def dumps(graph: StreamGraph, indent: int = 2) -> str:
    """Serialise ``graph`` to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent, sort_keys=False)


def loads(text: str) -> StreamGraph:
    """Parse a graph from JSON text produced by :func:`dumps`."""
    return from_dict(json.loads(text))


def save(graph: StreamGraph, path: Union[str, Path]) -> Path:
    """Write ``graph`` as JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dumps(graph))
    return path


def load(path: Union[str, Path]) -> StreamGraph:
    """Read a graph from a JSON file written by :func:`save`."""
    return loads(Path(path).read_text())


def to_dot(graph: StreamGraph, mapping=None) -> str:
    """GraphViz rendering; if ``mapping`` is given, colour tasks per PE.

    ``mapping`` may be any object with a ``pe_of(task_name) -> int`` method
    (e.g. :class:`repro.steady_state.mapping.Mapping`).
    """
    palette = [
        "lightblue", "lightyellow", "lightpink", "lightgreen", "orange",
        "cyan", "violet", "gold", "salmon", "palegreen", "khaki",
    ]
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;"]
    for task in graph.tasks():
        label = (
            f"{task.name}\\nppe={task.wppe:g} spe={task.wspe:g}"
            f"\\npeek={task.peek}{' stateful' if task.stateful else ''}"
        )
        colour = ""
        if mapping is not None:
            pe = mapping.pe_of(task.name)
            colour = f', style=filled, fillcolor="{palette[pe % len(palette)]}"'
        lines.append(f'  "{task.name}" [label="{label}"{colour}];')
    for edge in graph.edges():
        lines.append(
            f'  "{edge.src}" -> "{edge.dst}" [label="{edge.data:g}B"];'
        )
    lines.append("}")
    return "\n".join(lines)
