"""Co-scheduled multi-application workloads (beyond the paper: Benoit et
al., *Resource Allocation for Multiple Concurrent In-Network
Stream-Processing Applications*, 2009).

The paper maps **one** streaming application per Cell.  A
:class:`Workload` generalises this: an ordered collection of named
:class:`~repro.graph.stream_graph.StreamGraph` applications, each with a
throughput *weight* (its relative importance under the ``weighted``
objective) and an optional *target period* (its QoS requirement, the
reference of the ``max_stretch`` objective), co-scheduled on a single
platform.

Composite-graph semantics
-------------------------

:meth:`Workload.compile` flattens the member applications into **one**
:class:`CompositeGraph` that every existing layer (``Mapping``,
``analyze``, ``DeltaAnalyzer``, the MILP, every heuristic, the
simulator) consumes unchanged:

* **namespacing** — task ``t`` of application ``app`` becomes composite
  task ``app:t``; the original name is never parsed back out of the
  string, the composite carries an explicit ``app_of`` map instead (so
  member task names may themselves contain ``:``);
* **no cross-application edges** — member applications are independent
  streams; the composite is their disjoint union, and each edge belongs
  to exactly one application (its endpoints always share an app);
* **per-app bookkeeping** — ``app_tasks`` / ``app_sources`` /
  ``app_sinks`` record each application's composite task names, entry
  points and exit points, and ``app_weights`` / ``app_targets`` carry
  the scheduling metadata the objective layer consumes;
* **shared steady state** — all applications advance in lock-step with
  one instance of every application per period, so the composite's
  analytic period is the shared-resource period and
  ``analyze(...).app_periods`` reports, per application, the period it
  would achieve under the same mapping without the other applications'
  load (its resource occupation alone — the quantity stretch objectives
  compare against).

The compilation is memoized on :attr:`Workload.version`, which is
derived from the member graphs' own mutation counters — mutating any
member application (or the workload itself) invalidates the cached
composite, exactly like ``StreamGraph.version`` invalidates the memoized
``buffer_requirements``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import WorkloadError
from .edge import DataEdge
from .stream_graph import StreamGraph

__all__ = ["CompositeGraph", "Workload", "WorkloadApp"]

#: Separator between the application name and the task name in composite
#: task ids.  Cosmetic only — ownership is tracked by ``app_of``, never
#: by splitting the string.
APP_SEP = ":"


@dataclass(frozen=True)
class WorkloadApp:
    """One member application of a :class:`Workload`.

    Attributes
    ----------
    name:
        Unique identifier of the application within the workload.
    graph:
        The application's streaming task graph (held by reference — the
        workload sees later mutations through ``graph.version``).
    weight:
        Relative throughput importance under the ``weighted`` objective
        (must be positive; 1.0 = equal share).
    target_period:
        Optional QoS requirement in µs: the period this application
        considers nominal.  The ``max_stretch`` objective measures each
        application's period relative to this target (or to a
        graph-derived lower bound when unset).
    """

    name: str
    graph: StreamGraph
    weight: float = 1.0
    target_period: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("application name must be a non-empty string")
        if self.weight <= 0:
            raise WorkloadError(
                f"application {self.name!r}: weight must be positive "
                f"(got {self.weight!r})"
            )
        if self.target_period is not None and self.target_period <= 0:
            raise WorkloadError(
                f"application {self.name!r}: target_period must be positive "
                f"(got {self.target_period!r})"
            )


class CompositeGraph(StreamGraph):
    """The flattened union of a workload's applications.

    A plain :class:`StreamGraph` (every consumer works unchanged) plus
    the per-application metadata the workload-aware layers use.  Built
    by :meth:`Workload.compile`; not meant to be constructed directly.

    Note that generic derivations (``copy()``, ``scaled()``) return
    plain :class:`StreamGraph` objects and therefore drop the
    application metadata — recompile from the workload instead.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        #: Application names in workload insertion order.
        self.app_names: Tuple[str, ...] = ()
        #: Composite task name → owning application name.
        self.app_of: Dict[str, str] = {}
        #: Application name → throughput weight.
        self.app_weights: Dict[str, float] = {}
        #: Application name → target period (``None`` when unset).
        self.app_targets: Dict[str, Optional[float]] = {}
        #: Application name → its composite task names, in member order.
        self.app_tasks: Dict[str, List[str]] = {}
        #: Application name → composite names of its stream entry points.
        self.app_sources: Dict[str, List[str]] = {}
        #: Application name → composite names of its stream exit points.
        self.app_sinks: Dict[str, List[str]] = {}
        #: The :attr:`Workload.version` this composite was compiled from.
        self.workload_version: int = -1

    def app_of_task(self, name: str) -> str:
        """The application owning composite task ``name``."""
        try:
            return self.app_of[name]
        except KeyError:
            raise WorkloadError(f"unknown composite task {name!r}") from None


class Workload:
    """An ordered collection of named streaming applications to co-schedule.

    Usage::

        w = Workload("mix")
        w.add_app("audio", audio_encoder(), weight=2.0)
        w.add_app("video", video_pipeline(), target_period=900.0)
        composite = w.compile()          # one StreamGraph, namespaced ids
        mapping = genetic_algorithm(composite, platform,
                                    objective="max_stretch")
        analyze(mapping).app_periods     # {"audio": ..., "video": ...}
    """

    def __init__(self, name: str = "workload") -> None:
        self._version = 0
        self._apps: Dict[str, WorkloadApp] = {}
        self._compiled: Optional[CompositeGraph] = None
        self.name = name  # via the guarded setter (validates + bumps)

    @property
    def name(self) -> str:
        """Workload name (the compiled composite inherits it)."""
        return self._name

    @name.setter
    def name(self, value: str) -> None:
        self.rename(value)

    def rename(self, new_name: str) -> None:
        """Rename the workload; guarded so the memoized composite refreshes.

        The compiled :class:`CompositeGraph` carries the workload's name,
        so a rename must bump :attr:`version` (invalidating the memo) or
        ``compile()`` would keep serving a composite with the stale name.
        """
        if not new_name or not isinstance(new_name, str):
            raise WorkloadError("workload name must be a non-empty string")
        if new_name == getattr(self, "_name", None):
            return
        self._name = new_name
        self._version += 1

    # ------------------------------------------------------------------ #
    # Construction

    def add_app(
        self,
        name: str,
        graph: StreamGraph,
        weight: float = 1.0,
        target_period: Optional[float] = None,
    ) -> WorkloadApp:
        """Append an application; raises :class:`WorkloadError` on duplicates."""
        if name in self._apps:
            raise WorkloadError(f"duplicate application name {name!r}")
        graph.validate()
        app = WorkloadApp(
            name=name, graph=graph, weight=weight, target_period=target_period
        )
        self._apps[name] = app
        self._version += 1
        return app

    def remove_app(self, name: str) -> WorkloadApp:
        """Remove (and return) an application, e.g. when its stream ends.

        Raises :class:`WorkloadError` when ``name`` is not a member.  The
        removed application's graph leaves the :attr:`version` sum, so the
        internal counter absorbs its last contribution plus one — the
        derived version stays *strictly increasing* across the removal and
        every cache keyed on it (the compiled composite) is invalidated.
        """
        try:
            app = self._apps.pop(name)
        except KeyError:
            raise WorkloadError(f"unknown application {name!r}") from None
        # The member's graph.version no longer contributes to the sum in
        # `version`; fold it into the own counter (+1) so the total bumps.
        self._version += app.graph.version + 1
        return app

    def replace_graph(self, name: str, graph: StreamGraph) -> WorkloadApp:
        """Swap application ``name``'s graph, keeping weight/target/order.

        The online runtime's cost-perturbation windows use this to swap a
        member for a scaled copy (and later swap the *original object*
        back — exact restoration, no float drift).  The replaced graph's
        version leaves the member sum, so the internal counter absorbs
        its last contribution plus one, exactly like :meth:`remove_app`,
        and :attr:`version` stays strictly increasing.
        """
        old = self.app(name)
        graph.validate()
        self._apps[name] = WorkloadApp(
            name=name,
            graph=graph,
            weight=old.weight,
            target_period=old.target_period,
        )
        self._version += old.graph.version + 1
        return self._apps[name]

    @classmethod
    def from_graphs(
        cls,
        graphs: Iterable[StreamGraph],
        name: str = "workload",
        weights: Optional[Iterable[float]] = None,
    ) -> "Workload":
        """Build a workload from graphs, named after each graph's ``name``."""
        workload = cls(name)
        graphs = list(graphs)
        weight_list = (
            list(weights) if weights is not None else [1.0] * len(graphs)
        )
        if len(weight_list) != len(graphs):
            raise WorkloadError(
                f"{len(graphs)} graphs but {len(weight_list)} weights"
            )
        for graph, weight in zip(graphs, weight_list):
            workload.add_app(graph.name, graph, weight=weight)
        return workload

    # ------------------------------------------------------------------ #
    # Queries

    @property
    def version(self) -> int:
        """Composite mutation counter.

        Strictly increases whenever the workload itself mutates
        (``add_app``) *or any member graph* mutates — each member bump
        raises the sum, so derived caches (the compiled composite) can
        key on this single integer.
        """
        return self._version + sum(
            app.graph.version for app in self._apps.values()
        )

    @property
    def n_apps(self) -> int:
        return len(self._apps)

    def __len__(self) -> int:
        return len(self._apps)

    def __contains__(self, name: str) -> bool:
        return name in self._apps

    def __iter__(self) -> Iterator[WorkloadApp]:
        return iter(self._apps.values())

    def app(self, name: str) -> WorkloadApp:
        try:
            return self._apps[name]
        except KeyError:
            raise WorkloadError(f"unknown application {name!r}") from None

    def app_names(self) -> List[str]:
        """Application names in insertion order."""
        return list(self._apps.keys())

    def n_tasks(self) -> int:
        """Total task count across all applications."""
        return sum(app.graph.n_tasks for app in self._apps.values())

    # ------------------------------------------------------------------ #
    # Compilation

    def compile(self) -> CompositeGraph:
        """The namespaced composite graph (memoized on :attr:`version`)."""
        if not self._apps:
            raise WorkloadError(f"workload {self.name!r} has no application")
        version = self.version
        if (
            self._compiled is not None
            and self._compiled.workload_version == version
        ):
            return self._compiled
        composite = CompositeGraph(self.name)
        composite.app_names = tuple(self._apps.keys())
        for app in self._apps.values():
            prefix = app.name + APP_SEP
            composite.app_weights[app.name] = app.weight
            composite.app_targets[app.name] = app.target_period
            names: List[str] = []
            for task in app.graph.tasks():
                qualified = prefix + task.name
                composite.add_task(task.renamed(qualified))
                composite.app_of[qualified] = app.name
                names.append(qualified)
            for edge in app.graph.edges():
                composite.add_edge(
                    DataEdge(prefix + edge.src, prefix + edge.dst, edge.data)
                )
            composite.app_tasks[app.name] = names
            composite.app_sources[app.name] = [
                prefix + t for t in app.graph.sources()
            ]
            composite.app_sinks[app.name] = [
                prefix + t for t in app.graph.sinks()
            ]
        composite.validate()
        composite.workload_version = version
        self._compiled = composite
        return composite

    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        members = ", ".join(
            f"{app.name}({app.graph.n_tasks}t, w={app.weight:g})"
            for app in self._apps.values()
        )
        return f"Workload({self.name!r}, [{members}])"
