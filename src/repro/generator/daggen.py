"""DagGen-style random task-graph topology generator.

The paper's random applications come from Suter's DagGen [19], which builds
layered DAGs controlled by four shape parameters.  We reimplement that
scheme (the original is a small C program):

* ``fat`` — mean layer width is ``max(1, fat · sqrt(n))``; small values
  give chain-like graphs, large values give wide, parallel graphs;
* ``regularity`` — how uniform layer widths are (1 = all equal);
* ``density`` — fraction of possible parents in the previous layers each
  task connects to;
* ``jump`` — edges may originate up to ``jump`` layers above the task's
  layer (1 = strictly layer-to-layer).

Topology only; costs/data are assigned by :mod:`repro.generator.costs`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import GeneratorError

__all__ = ["DagTopology", "random_topology"]


@dataclass(frozen=True)
class DagTopology:
    """A layered DAG skeleton: task ids per layer plus edges between ids."""

    layers: List[List[int]]
    edges: List[Tuple[int, int]]

    @property
    def n_tasks(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def n_edges(self) -> int:
        return len(self.edges)


def random_topology(
    n_tasks: int,
    fat: float = 0.5,
    regularity: float = 0.5,
    density: float = 0.5,
    jump: int = 1,
    seed: int = 0,
) -> DagTopology:
    """Generate a DagGen-like layered topology with ``n_tasks`` tasks."""
    if n_tasks < 1:
        raise GeneratorError("n_tasks must be >= 1")
    if fat <= 0:
        raise GeneratorError("fat must be positive")
    if not 0 <= regularity <= 1:
        raise GeneratorError("regularity must be in [0, 1]")
    if not 0 <= density <= 1:
        raise GeneratorError("density must be in [0, 1]")
    if jump < 1:
        raise GeneratorError("jump must be >= 1")

    rng = random.Random(seed)
    mean_width = max(1.0, fat * math.sqrt(n_tasks))

    # ---- layer sizes ---------------------------------------------------- #
    layers: List[List[int]] = []
    next_id = 0
    while next_id < n_tasks:
        spread = 1.0 - regularity
        lo = max(1, int(round(mean_width * (1.0 - spread))))
        hi = max(lo, int(round(mean_width * (1.0 + spread))))
        width = min(rng.randint(lo, hi), n_tasks - next_id)
        layers.append(list(range(next_id, next_id + width)))
        next_id += width

    # ---- edges ---------------------------------------------------------- #
    edges: List[Tuple[int, int]] = []
    seen = set()
    for depth in range(1, len(layers)):
        reachable: List[int] = []
        for back in range(1, jump + 1):
            if depth - back >= 0:
                reachable.extend(layers[depth - back])
        for task in layers[depth]:
            # Every task keeps at least one parent so instances flow
            # end-to-end; extra parents follow the density parameter.
            n_parents = max(
                1, int(round(density * len(reachable)))
            )
            n_parents = min(n_parents, len(reachable))
            # Bias the mandatory parent towards the previous layer, as
            # DagGen does: layer-skipping edges are the exception.
            primary = rng.choice(layers[depth - 1])
            parents = {primary}
            while len(parents) < n_parents:
                parents.add(rng.choice(reachable))
            for parent in sorted(parents):
                key = (parent, task)
                if key not in seen:
                    seen.add(key)
                    edges.append(key)

    return DagTopology(layers=layers, edges=edges)
