"""Cost and data-size assignment, calibrated to the paper's CCR sweep.

The paper's figures label each task with ``cost ppe`` / ``cost spe`` /
``peek`` / ``stateless|stateful`` but the numeric values are not published.
We therefore draw them from distributions whose *regimes* match the
published behaviour, and document the calibration (see EXPERIMENTS.md):

* PPE costs are hundreds of µs per instance (the paper measures tens of
  instances per second over ~50-task graphs);
* the unrelated-machines ratio ``wspe/wppe`` is log-uniform in
  ``[0.8, 5.0]`` — most synthetic tasks are *slower* on an SPE (scalar,
  branchy code), a few faster; this reproduces the paper's 8-SPE speed-up
  plateau of 2–3.7× over the PPE;
* the CCR — total transferred *elements* (4 B) over total *operations*
  (1 op ≡ 1 µs of PPE time) — is imposed exactly by scaling edge payloads,
  so data sizes grow linearly with CCR and local-store pressure rises
  exactly as in §6.4.3.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import GeneratorError
from ..graph.analysis import ELEMENT_BYTES, ccr as graph_ccr
from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..graph.task import Task
from .daggen import DagTopology

__all__ = ["CostModel", "assign_costs", "rescale_ccr"]


@dataclass(frozen=True)
class CostModel:
    """Distributions for task costs and edge payload weights."""

    #: PPE cost per instance, µs (log-uniform range).
    wppe_range: tuple = (100.0, 1000.0)
    #: wspe = wppe × ratio, ratio log-uniform in this range.  Mostly > 1:
    #: the paper's synthetic kernels are scalar/branchy, which SPEs run
    #: slower than the PPE — this is what caps the 8-SPE speed-up at the
    #: paper's observed 2–3.7×.
    spe_ratio_range: tuple = (1.5, 10.0)
    #: Abstract operations executed per µs of PPE time.  Sets the CCR
    #: denominator and thereby the absolute data volume of a target CCR:
    #: with 4 ops/µs, the paper's CCR range [0.775, 4.6] sweeps SPE buffer
    #: footprints from comfortable to local-store-breaking, reproducing the
    #: §6.4.3 mechanism ("hard to distribute tasks among SPEs").
    ops_per_us: float = 4.0
    #: peek values drawn uniformly from this bag (multiplicity = weight).
    peek_choices: Sequence[int] = (0, 0, 0, 0, 1, 1, 2)
    #: Probability a task is stateful (mirrors the published graph labels).
    stateful_prob: float = 0.25
    #: Relative payload weight of an edge (log-uniform range); the absolute
    #: scale is set by the target CCR.
    edge_weight_range: tuple = (0.25, 4.0)
    #: Bytes read from main memory per instance by source tasks (stream
    #: input) and written by sink tasks (stream output), as a fraction of
    #: the mean edge payload.
    io_fraction: float = 1.0

    def __post_init__(self) -> None:
        lo, hi = self.wppe_range
        if not 0 < lo <= hi:
            raise GeneratorError("wppe_range must be positive and ordered")
        lo, hi = self.spe_ratio_range
        if not 0 < lo <= hi:
            raise GeneratorError("spe_ratio_range must be positive and ordered")
        if self.ops_per_us <= 0:
            raise GeneratorError("ops_per_us must be positive")
        if not self.peek_choices:
            raise GeneratorError("peek_choices must be non-empty")
        if not 0 <= self.stateful_prob <= 1:
            raise GeneratorError("stateful_prob must be in [0, 1]")


def _log_uniform(rng: random.Random, lo: float, hi: float) -> float:
    if lo == hi:
        return lo
    return math.exp(rng.uniform(math.log(lo), math.log(hi)))


def assign_costs(
    topology: DagTopology,
    ccr: float,
    seed: int = 0,
    model: Optional[CostModel] = None,
    name: str = "random",
) -> StreamGraph:
    """Turn a topology into a full :class:`StreamGraph` with target ``ccr``."""
    if ccr < 0:
        raise GeneratorError("ccr must be non-negative")
    model = model or CostModel()
    rng = random.Random(seed)
    graph = StreamGraph(name)

    task_names = {}
    total_ops = 0.0
    for layer in topology.layers:
        for tid in layer:
            task_names[tid] = f"T{tid + 1}"
    # Draw compute costs first: the CCR denominator depends on them.
    specs = {}
    for layer in topology.layers:
        for tid in layer:
            wppe = _log_uniform(rng, *model.wppe_range)
            ratio = _log_uniform(rng, *model.spe_ratio_range)
            specs[tid] = {
                "wppe": wppe,
                "wspe": wppe * ratio,
                "peek": rng.choice(model.peek_choices),
                "stateful": rng.random() < model.stateful_prob,
                "ops": wppe * model.ops_per_us,
            }
            total_ops += wppe * model.ops_per_us

    # Edge payloads: weights then exact scaling to the requested CCR.
    weights = {
        (src, dst): _log_uniform(rng, *model.edge_weight_range)
        for (src, dst) in topology.edges
    }
    total_weight = sum(weights.values())
    target_bytes = ccr * total_ops * ELEMENT_BYTES
    byte_scale = target_bytes / total_weight if total_weight else 0.0

    mean_payload = byte_scale * (
        total_weight / len(weights) if weights else 0.0
    )

    for layer in topology.layers:
        for tid in layer:
            spec = specs[tid]
            is_source = not any(dst == tid for (_s, dst) in topology.edges)
            is_sink = not any(src == tid for (src, _d) in topology.edges)
            graph.add_task(
                Task(
                    name=task_names[tid],
                    wppe=spec["wppe"],
                    wspe=spec["wspe"],
                    peek=spec["peek"],
                    stateful=spec["stateful"],
                    ops=spec["ops"],
                    read=model.io_fraction * mean_payload if is_source else 0.0,
                    write=model.io_fraction * mean_payload if is_sink else 0.0,
                )
            )
    for (src, dst) in topology.edges:
        graph.add_edge(
            DataEdge(task_names[src], task_names[dst], weights[(src, dst)] * byte_scale)
        )
    graph.validate()
    return graph


def rescale_ccr(
    graph: StreamGraph, target_ccr: float, name: Optional[str] = None
) -> StreamGraph:
    """A copy of ``graph`` with payloads scaled to hit ``target_ccr`` exactly.

    This is how the paper derives its 6 CCR variants of each random graph:
    same topology and compute costs, scaled communication volume.
    """
    if target_ccr < 0:
        raise GeneratorError("target_ccr must be non-negative")
    current = graph_ccr(graph)
    if current == 0:
        if target_ccr == 0:
            return graph.copy(name)
        raise GeneratorError("cannot rescale a graph with no communication")
    factor = target_ccr / current
    out = graph.scaled(
        data_factor=factor, name=name or f"{graph.name}@ccr{target_ccr:g}"
    )
    # Memory I/O is communication too: scale it with the payloads.
    for task in list(out.tasks()):
        if task.read or task.write:
            out.replace_task(
                Task(
                    name=task.name,
                    wppe=task.wppe,
                    wspe=task.wspe,
                    read=task.read * factor,
                    write=task.write * factor,
                    peek=task.peek,
                    stateful=task.stateful,
                    ops=task.ops,
                )
            )
    return out
