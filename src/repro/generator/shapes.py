"""Deterministic classic topologies: chain, fork-join, diamond, butterfly.

These complement the random DagGen graphs: the paper's third application is
a plain 50-task chain (Fig. 2a generalised), and the regular shapes give
the test-suite graphs whose optimal mappings are known by inspection.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import GeneratorError
from .daggen import DagTopology

__all__ = ["chain", "fork_join", "diamond", "butterfly"]


def chain(n_tasks: int) -> DagTopology:
    """A linear pipeline ``T1 -> T2 -> ... -> Tn`` (Fig. 2a)."""
    if n_tasks < 1:
        raise GeneratorError("n_tasks must be >= 1")
    layers = [[i] for i in range(n_tasks)]
    edges = [(i, i + 1) for i in range(n_tasks - 1)]
    return DagTopology(layers=layers, edges=edges)


def fork_join(n_branches: int, branch_length: int = 1) -> DagTopology:
    """One source fanning out to ``n_branches`` parallel chains, then a sink."""
    if n_branches < 1 or branch_length < 1:
        raise GeneratorError("n_branches and branch_length must be >= 1")
    layers: List[List[int]] = [[0]]
    edges: List[Tuple[int, int]] = []
    next_id = 1
    branch_ends = []
    columns = [[] for _ in range(branch_length)]
    for _branch in range(n_branches):
        prev = 0
        for step in range(branch_length):
            node = next_id
            next_id += 1
            columns[step].append(node)
            edges.append((prev, node))
            prev = node
        branch_ends.append(prev)
    layers.extend(columns)
    sink = next_id
    layers.append([sink])
    for end in branch_ends:
        edges.append((end, sink))
    return DagTopology(layers=layers, edges=edges)


def diamond(width: int) -> DagTopology:
    """Source -> ``width`` parallel tasks -> sink (Fig. 2b's core motif)."""
    return fork_join(width, branch_length=1)


def butterfly(stages: int, width: int) -> DagTopology:
    """``stages`` fully-connected layers of ``width`` tasks (FFT-like)."""
    if stages < 1 or width < 1:
        raise GeneratorError("stages and width must be >= 1")
    layers = [
        list(range(stage * width, (stage + 1) * width))
        for stage in range(stages)
    ]
    edges = [
        (a, b)
        for stage in range(stages - 1)
        for a in layers[stage]
        for b in layers[stage + 1]
    ]
    return DagTopology(layers=layers, edges=edges)
