"""Workload generation: DagGen-style random DAGs, classic shapes, costs.

* :func:`random_topology` — the DagGen parameter scheme (fat/regularity/
  density/jump) used by the paper's §6.2 applications;
* :func:`chain` / :func:`fork_join` / :func:`diamond` / :func:`butterfly`;
* :func:`assign_costs` / :func:`rescale_ccr` — cost + CCR calibration;
* :mod:`repro.generator.paper_graphs` — the three graphs of Fig. 5 with
  their six CCR variants.
"""

from .costs import CostModel, assign_costs, rescale_ccr
from .daggen import DagTopology, random_topology
from .paper_graphs import (
    BASE_CCR,
    PAPER_CCRS,
    ccr_variants,
    paper_suite,
    random_graph_1,
    random_graph_2,
    random_graph_3,
)
from .shapes import butterfly, chain, diamond, fork_join

__all__ = [
    "CostModel",
    "assign_costs",
    "rescale_ccr",
    "DagTopology",
    "random_topology",
    "BASE_CCR",
    "PAPER_CCRS",
    "ccr_variants",
    "paper_suite",
    "random_graph_1",
    "random_graph_2",
    "random_graph_3",
    "butterfly",
    "chain",
    "diamond",
    "fork_join",
]
