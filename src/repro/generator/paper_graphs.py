"""The three experiment task graphs of §6.2, regenerated.

The paper evaluates on three DagGen graphs (Fig. 5):

* **random graph 1** — 50 tasks, mostly sequential with occasional short
  branches (Fig. 5a is a near-chain with a handful of parallel sections);
* **random graph 2** — 94 tasks, wider and denser (Fig. 5b);
* **random graph 3** — a simple chain of 50 tasks.

The exact instances are unpublished, so we regenerate statistically
similar graphs from fixed seeds (stable across runs and platforms) and six
CCR variants of each, spanning the paper's range 0.775 … 4.6.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.stream_graph import StreamGraph
from .costs import assign_costs, rescale_ccr
from .daggen import random_topology
from .shapes import chain

__all__ = [
    "PAPER_CCRS",
    "BASE_CCR",
    "random_graph_1",
    "random_graph_2",
    "random_graph_3",
    "paper_suite",
    "ccr_variants",
]

#: The six CCR variants of §6.2: 0.775 (compute-intensive) … 4.6
#: (communication-intensive).  The paper lists only the extremes; we space
#: the intermediate points evenly.
PAPER_CCRS: Tuple[float, ...] = (0.775, 1.54, 2.305, 3.07, 3.835, 4.6)

#: The CCR used by the Fig. 6 and Fig. 7 experiments.
BASE_CCR: float = 0.775


def random_graph_1(ccr: float = BASE_CCR, seed: int = 11) -> StreamGraph:
    """50 tasks, chain-like with short parallel branches (Fig. 5a)."""
    topology = random_topology(
        n_tasks=50, fat=0.28, regularity=0.4, density=0.4, jump=2, seed=seed
    )
    graph = assign_costs(topology, ccr=ccr, seed=seed, name="random-graph-1")
    return graph


def random_graph_2(ccr: float = BASE_CCR, seed: int = 22) -> StreamGraph:
    """94 tasks, wider and denser (Fig. 5b)."""
    topology = random_topology(
        n_tasks=94, fat=0.45, regularity=0.5, density=0.18, jump=2, seed=seed
    )
    return assign_costs(topology, ccr=ccr, seed=seed, name="random-graph-2")


def random_graph_3(ccr: float = BASE_CCR, seed: int = 33) -> StreamGraph:
    """A simple chain of 50 tasks (§6.2)."""
    topology = chain(50)
    return assign_costs(topology, ccr=ccr, seed=seed, name="random-graph-3")


def paper_suite(ccr: float = BASE_CCR) -> List[StreamGraph]:
    """The three graphs at a common CCR, in paper order."""
    return [random_graph_1(ccr), random_graph_2(ccr), random_graph_3(ccr)]


def ccr_variants(which: int = 1) -> Dict[float, StreamGraph]:
    """All six CCR variants of graph ``which`` (1, 2 or 3), §6.4.3 style.

    Variants share topology and compute costs; only communication volume
    changes, via :func:`repro.generator.costs.rescale_ccr`.
    """
    base = {1: random_graph_1, 2: random_graph_2, 3: random_graph_3}[which](
        ccr=PAPER_CCRS[0]
    )
    return {
        target: rescale_ccr(base, target) for target in PAPER_CCRS
    }
