"""A reference branch-and-bound MILP solver on top of ``linprog``.

This is the textbook algorithm CPLEX/HiGHS refine: solve the LP relaxation,
pick a fractional integer variable, branch on ``floor``/``ceil``, prune by
bound.  It exists to (a) cross-check the HiGHS backend on small models in
the test suite and (b) document that no solver magic is required for the
paper's formulation — only patience.

Not intended for the full-size experiment graphs (use
:func:`repro.lp.scipy_backend.solve` there).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import InfeasibleModelError, SolverError, UnboundedModelError
from .model import Model
from .scipy_backend import Solution, _build_arrays

__all__ = ["solve_branch_bound", "BranchBoundStats"]

_INT_TOL = 1e-6


@dataclass
class BranchBoundStats:
    """Search statistics of one branch-and-bound run."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    incumbents: int = 0
    best_bound: float = -math.inf
    log: List[str] = field(default_factory=list)


def _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, lb, ub):
    """LP relaxation with given variable bounds; returns (status, x, fun)."""
    bounds = list(zip(lb, ub))
    result = linprog(
        c,
        A_ub=A_ub if A_ub.shape[0] else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=A_eq if A_eq.shape[0] else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    return result.status, result.x, result.fun


def _most_fractional(x: np.ndarray, integer_indices: np.ndarray) -> Optional[int]:
    """Index of the integer variable whose value is closest to 0.5 mod 1."""
    if not integer_indices.size:
        return None
    fractional = x[integer_indices] - np.floor(x[integer_indices])
    distance = np.abs(fractional - 0.5)
    # Variables already integral have distance 0.5 - tolerance handling below.
    candidates = np.where(
        (fractional > _INT_TOL) & (fractional < 1 - _INT_TOL)
    )[0]
    if candidates.size == 0:
        return None
    best = candidates[np.argmin(distance[candidates])]
    return int(integer_indices[best])


def solve_branch_bound(
    model: Model,
    mip_rel_gap: float = 0.0,
    max_nodes: int = 100_000,
    time_limit: Optional[float] = None,
) -> Tuple[Solution, BranchBoundStats]:
    """Solve ``model`` by branch-and-bound; returns (solution, stats).

    Raises :class:`InfeasibleModelError` when no integer-feasible point
    exists and :class:`SolverError` when limits are hit with no incumbent.
    """
    c, A_ub, b_ub, A_eq, b_eq, lb0, ub0, integrality = _build_arrays(model)
    integer_indices = np.where(integrality > 0)[0]
    stats = BranchBoundStats()
    start = time.perf_counter()

    # Root relaxation.
    status, x, fun = _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, lb0, ub0)
    if status == 2:
        raise InfeasibleModelError(f"model {model.name!r} is infeasible")
    if status == 3:
        raise UnboundedModelError(f"model {model.name!r} is unbounded")
    if status != 0:
        raise SolverError(f"root relaxation failed with status {status}")

    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    # Depth-first stack of (bound_estimate, lb, ub).
    stack: List[Tuple[float, np.ndarray, np.ndarray]] = [(fun, lb0, ub0)]

    while stack:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            break
        if stats.nodes_explored >= max_nodes:
            break
        parent_bound, lb, ub = stack.pop()
        if parent_bound >= best_obj - abs(best_obj) * mip_rel_gap - 1e-12:
            stats.nodes_pruned += 1
            continue
        status, x, fun = _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, lb, ub)
        stats.nodes_explored += 1
        if status != 0:  # infeasible or numerically hopeless subproblem
            stats.nodes_pruned += 1
            continue
        if fun >= best_obj - abs(best_obj) * mip_rel_gap - 1e-12:
            stats.nodes_pruned += 1
            continue
        branch_var = _most_fractional(x, integer_indices)
        if branch_var is None:
            # Integer feasible: round the integer coordinates clean.
            x = x.copy()
            x[integer_indices] = np.round(x[integer_indices])
            if fun < best_obj:
                best_obj = fun
                best_x = x
                stats.incumbents += 1
                stats.log.append(
                    f"node {stats.nodes_explored}: incumbent {best_obj:.6g}"
                )
            continue
        value = x[branch_var]
        floor_val = math.floor(value)
        # "ceil" child first so the DFS explores the rounded-up branch last
        # (stack order): floor branch tends to reach feasibility sooner.
        ub_left = ub.copy()
        ub_left[branch_var] = floor_val
        lb_right = lb.copy()
        lb_right[branch_var] = floor_val + 1
        stack.append((fun, lb_right, ub))
        stack.append((fun, lb, ub_left))

    if best_x is None:
        if stats.nodes_explored >= max_nodes:
            raise SolverError(
                f"branch-and-bound hit the {max_nodes}-node limit with no incumbent"
            )
        raise InfeasibleModelError(
            f"model {model.name!r} has no integer-feasible point"
        )

    objective = best_obj + model.objective.constant
    if model.sense == "max":
        objective = -best_obj + model.objective.constant
    stats.best_bound = best_obj
    solution = Solution(
        status="optimal",
        objective=objective,
        values=best_x,
        solve_time=time.perf_counter() - start,
        mip_gap=None,
        n_nodes=stats.nodes_explored,
    )
    return solution, stats
