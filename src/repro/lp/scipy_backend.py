"""Compile :class:`repro.lp.model.Model` to ``scipy.optimize.milp`` (HiGHS).

HiGHS plays the role of ILOG CPLEX in the paper: it solves the §5 mixed
linear program exactly, and — like the paper's setup — can be told to stop
at a 5 % relative MIP gap (``mip_rel_gap=0.05``) to cut solve times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import InfeasibleModelError, SolverError, UnboundedModelError
from .model import LinExpr, Model, Var

__all__ = ["Solution", "solve"]


@dataclass(frozen=True)
class Solution:
    """Result of an LP/MILP solve."""

    status: str  # "optimal" (or gap-optimal for MIPs with a gap setting)
    objective: float
    values: np.ndarray
    solve_time: float
    mip_gap: Optional[float] = None
    n_nodes: Optional[int] = None

    def value(self, item: Union[Var, LinExpr]) -> float:
        """Value of a variable or expression in this solution."""
        if isinstance(item, Var):
            return float(self.values[item.index])
        if isinstance(item, LinExpr):
            return float(item.value(self.values))
        raise TypeError(f"cannot evaluate {type(item).__name__}")

    def var_dict(self, model: Model) -> Dict[str, float]:
        """All variable values keyed by name (diagnostics)."""
        return {v.name: float(self.values[v.index]) for v in model.variables}


def _build_arrays(model: Model):
    """Split the model into (c, A_ub, b_ub, A_eq, b_eq, bounds, integrality)."""
    n = model.n_vars
    if model.objective is None:
        raise SolverError(f"model {model.name!r} has no objective")
    c = np.zeros(n)
    for idx, coeff in model.objective.terms.items():
        c[idx] = coeff
    if model.sense == "max":
        c = -c

    rows_ub, cols_ub, vals_ub, b_ub = [], [], [], []
    rows_eq, cols_eq, vals_eq, b_eq = [], [], [], []
    for constraint in model.constraints:
        if constraint.sense == "<=":
            row = len(b_ub)
            for idx, coeff in constraint.expr.terms.items():
                rows_ub.append(row)
                cols_ub.append(idx)
                vals_ub.append(coeff)
            b_ub.append(-constraint.expr.constant)
        else:
            row = len(b_eq)
            for idx, coeff in constraint.expr.terms.items():
                rows_eq.append(row)
                cols_eq.append(idx)
                vals_eq.append(coeff)
            b_eq.append(-constraint.expr.constant)

    A_ub = sparse.csr_matrix(
        (vals_ub, (rows_ub, cols_ub)), shape=(len(b_ub), n)
    )
    A_eq = sparse.csr_matrix(
        (vals_eq, (rows_eq, cols_eq)), shape=(len(b_eq), n)
    )
    lb = np.array([v.lb for v in model.variables])
    ub = np.array([v.ub for v in model.variables])
    integrality = np.array(
        [1 if v.integer else 0 for v in model.variables], dtype=np.uint8
    )
    return (
        c,
        A_ub,
        np.asarray(b_ub, dtype=float),
        A_eq,
        np.asarray(b_eq, dtype=float),
        lb,
        ub,
        integrality,
    )


def solve(
    model: Model,
    mip_rel_gap: Optional[float] = None,
    time_limit: Optional[float] = None,
    relax_integrality: bool = False,
) -> Solution:
    """Solve ``model`` with HiGHS via :func:`scipy.optimize.milp`.

    Parameters
    ----------
    mip_rel_gap:
        Relative MIP gap at which the branch-and-bound may stop — the paper
        uses 5 % with CPLEX (§6).  ``None`` solves to proven optimality.
    time_limit:
        Wall-clock limit in seconds.
    relax_integrality:
        Solve the LP relaxation instead (used by diagnostics and tests).

    Raises
    ------
    InfeasibleModelError, UnboundedModelError, SolverError
    """
    c, A_ub, b_ub, A_eq, b_eq, lb, ub, integrality = _build_arrays(model)
    if relax_integrality:
        integrality = np.zeros_like(integrality)

    constraints = []
    if b_ub.size:
        constraints.append(LinearConstraint(A_ub, -np.inf, b_ub))
    if b_eq.size:
        constraints.append(LinearConstraint(A_eq, b_eq, b_eq))

    options: Dict[str, float] = {}
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    start = time.perf_counter()
    result = milp(
        c=c,
        constraints=constraints,
        bounds=Bounds(lb, ub),
        integrality=integrality,
        options=options or None,
    )
    elapsed = time.perf_counter() - start

    # scipy milp statuses: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.status == 2:
        raise InfeasibleModelError(f"model {model.name!r} is infeasible")
    if result.status == 3:
        raise UnboundedModelError(f"model {model.name!r} is unbounded")
    if result.x is None:
        raise SolverError(
            f"model {model.name!r}: solver returned no solution "
            f"(status {result.status}: {result.message})"
        )

    objective = float(result.fun)
    if model.sense == "max":
        objective = -objective
    objective += model.objective.constant  # milp reports c.x without it
    gap = getattr(result, "mip_gap", None)
    return Solution(
        status="optimal" if result.status == 0 else "limit",
        objective=objective,
        values=np.asarray(result.x, dtype=float),
        solve_time=elapsed,
        mip_gap=None if gap is None else float(gap),
        n_nodes=getattr(result, "mip_node_count", None),
    )
