"""A small LP/MILP modelling layer.

The MILP of §5 is much easier to audit when written as named variables and
inequalities instead of raw coefficient matrices.  This module provides just
enough of a modelling language for that:

>>> m = Model("demo")
>>> x = m.add_var("x", lb=0, ub=4)
>>> y = m.add_var("y", integer=True, lb=0, ub=10)
>>> m.add_constraint(2 * x + y <= 8, name="cap")
>>> m.minimize(-x - 3 * y)

Models are backend-agnostic; :mod:`repro.lp.scipy_backend` compiles them to
``scipy.optimize.milp`` (HiGHS) and :mod:`repro.lp.branch_bound` is a
pure-Python reference solver used for cross-checking.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import SolverError

__all__ = ["Var", "LinExpr", "Constraint", "Model", "lpsum"]

Number = Union[int, float]


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Optional[Dict[int, float]] = None, constant: float = 0.0):
        self.terms: Dict[int, float] = terms if terms is not None else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------- #

    @staticmethod
    def _as_expr(value: Union["LinExpr", "Var", Number]) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return LinExpr({value.index: 1.0})
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic ------------------------------------------------------ #

    def __add__(self, other) -> "LinExpr":
        other = self._as_expr(other)
        out = self.copy()
        for idx, coeff in other.terms.items():
            out.terms[idx] = out.terms.get(idx, 0.0) + coeff
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({i: -c for i, c in self.terms.items()}, -self.constant)

    def __sub__(self, other) -> "LinExpr":
        return self + (-self._as_expr(other))

    def __rsub__(self, other) -> "LinExpr":
        return self._as_expr(other) + (-self)

    def __mul__(self, factor) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        return LinExpr(
            {i: c * factor for i, c in self.terms.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, factor) -> "LinExpr":
        return self * (1.0 / factor)

    # -- relational operators build constraints --------------------------- #

    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._as_expr(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self._as_expr(other) - self, "<=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - self._as_expr(other), "==")

    __hash__ = None  # type: ignore[assignment]

    def value(self, solution_values: Sequence[float]) -> float:
        """Evaluate the expression on a solution vector."""
        return self.constant + sum(
            coeff * solution_values[idx] for idx, coeff in self.terms.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c:+g}*v{i}" for i, c in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Var:
    """A decision variable; arithmetic promotes it to :class:`LinExpr`."""

    __slots__ = ("name", "index", "lb", "ub", "integer")

    def __init__(self, name: str, index: int, lb: float, ub: float, integer: bool):
        self.name = name
        self.index = index
        self.lb = lb
        self.ub = ub
        self.integer = integer

    def _expr(self) -> LinExpr:
        return LinExpr({self.index: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return LinExpr._as_expr(other) - self._expr()

    def __neg__(self):
        return -self._expr()

    def __mul__(self, factor):
        return self._expr() * factor

    __rmul__ = __mul__

    def __truediv__(self, factor):
        return self._expr() / factor

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self._expr() == other

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        marker = "int" if self.integer else "cont"
        return f"Var({self.name}, {marker}, [{self.lb}, {self.ub}])"


class Constraint:
    """A normalised constraint ``expr <= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = ""):
        if sense not in ("<=", "=="):
            raise SolverError(f"unsupported constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def violation(self, solution_values: Sequence[float]) -> float:
        """How far the constraint is violated at a point (0 if satisfied)."""
        value = self.expr.value(solution_values)
        if self.sense == "<=":
            return max(0.0, value)
        return abs(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} 0"


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: Optional[LinExpr] = None
        self.sense: str = "min"

    # ------------------------------------------------------------------ #

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
    ) -> Var:
        if lb > ub:
            raise SolverError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Var(name, len(self.variables), float(lb), float(ub), integer)
        self.variables.append(var)
        return var

    def add_binary(self, name: str) -> Var:
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects a Constraint (use <=, >= or ==); "
                f"got {type(constraint).__name__} — a bare bool usually means "
                "both sides were numbers"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: Union[LinExpr, Var]) -> None:
        self.objective = LinExpr._as_expr(expr)
        self.sense = "min"

    def maximize(self, expr: Union[LinExpr, Var]) -> None:
        self.objective = LinExpr._as_expr(expr)
        self.sense = "max"

    # ------------------------------------------------------------------ #

    @property
    def n_vars(self) -> int:
        return len(self.variables)

    @property
    def n_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.integer)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    def is_mip(self) -> bool:
        return self.n_integer_vars > 0

    def stats(self) -> str:
        return (
            f"{self.name}: {self.n_vars} vars "
            f"({self.n_integer_vars} integer), {self.n_constraints} constraints"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Model({self.stats()})"


def lpsum(items: Iterable[Union[LinExpr, Var, Number]]) -> LinExpr:
    """Sum an iterable of variables/expressions into one :class:`LinExpr`.

    Builds the result in-place, avoiding the quadratic blow-up of
    ``sum(...)`` on large models.
    """
    out = LinExpr()
    for item in items:
        expr = LinExpr._as_expr(item)
        for idx, coeff in expr.terms.items():
            out.terms[idx] = out.terms.get(idx, 0.0) + coeff
        out.constant += expr.constant
    return out
