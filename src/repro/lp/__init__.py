"""LP/MILP substrate: modelling layer + HiGHS backend + reference B&B.

* :class:`Model`, :class:`Var`, :class:`LinExpr`, :func:`lpsum` — build
  mixed-integer linear programs declaratively;
* :func:`solve` — compile to ``scipy.optimize.milp`` (HiGHS), the stand-in
  for the paper's CPLEX;
* :func:`solve_branch_bound` — pure-Python branch-and-bound used for
  cross-validation on small models.
"""

from .branch_bound import BranchBoundStats, solve_branch_bound
from .model import Constraint, LinExpr, Model, Var, lpsum
from .scipy_backend import Solution, solve

__all__ = [
    "BranchBoundStats",
    "solve_branch_bound",
    "Constraint",
    "LinExpr",
    "Model",
    "Var",
    "lpsum",
    "Solution",
    "solve",
]
