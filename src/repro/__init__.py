"""repro — Scheduling complex streaming applications on the Cell processor.

A faithful, self-contained reproduction of Gallet, Jacquelin & Marchal
(LIP RR-2009-29 / IPDPS-HeteroPar 2010): steady-state throughput
maximisation of streaming task graphs on the heterogeneous Cell BE.

Quickstart::

    from repro import CellPlatform, solve_optimal_mapping
    from repro.generator import random_graph_1

    graph = random_graph_1()                  # 50-task DagGen app, CCR 0.775
    platform = CellPlatform.qs22()            # 1 PPE + 8 SPEs
    result = solve_optimal_mapping(graph, platform)
    print(result.report())

Subpackages
-----------
``repro.platform``      Cell BE model (PPE/SPE, EIB interfaces, DMA, stores)
``repro.graph``         streaming task graphs (tasks, data edges, CCR)
``repro.generator``     DagGen-style workloads + the paper's three graphs
``repro.apps``          realistic example applications (audio encoder, ...)
``repro.steady_state``  firstPeriod, buffers, analytic throughput, schedules
``repro.lp``            LP/MILP modelling layer + HiGHS backend + B&B
``repro.milp``          the paper's optimal-mapping MILP (§5)
``repro.heuristics``    GreedyMem / GreedyCpu (§6.3) + extensions
``repro.simulator``     discrete-event Cell simulator (the hardware stand-in)
``repro.complexity``    NP-completeness reduction (Thm 1), FPTAS, brute force
``repro.experiments``   harnesses regenerating every figure/table of §6
``repro.runtime``       online scheduling: admission control, migration
                        budgets, SPE failure handling (beyond the paper)
"""

from .errors import (
    CycleError,
    GraphError,
    InfeasibleMappingError,
    InfeasibleModelError,
    MappingError,
    PlatformError,
    ReproError,
    SimulationError,
    SolverError,
)
from .graph import (
    DataEdge,
    StreamGraph,
    Task,
    Workload,
    ccr,
    graph_stats,
)
from .heuristics import greedy_cpu, greedy_mem
from .milp import PAPER_MIP_GAP, MilpResult, solve_optimal_mapping
from .platform import CellPlatform, DmaCosts, PEKind
from .steady_state import (
    Mapping,
    analyze,
    build_schedule,
    first_periods,
    speedup,
    throughput,
)

__version__ = "1.0.0"

__all__ = [
    "CycleError",
    "GraphError",
    "InfeasibleMappingError",
    "InfeasibleModelError",
    "MappingError",
    "PlatformError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "DataEdge",
    "StreamGraph",
    "Task",
    "Workload",
    "ccr",
    "graph_stats",
    "greedy_cpu",
    "greedy_mem",
    "PAPER_MIP_GAP",
    "MilpResult",
    "solve_optimal_mapping",
    "CellPlatform",
    "DmaCosts",
    "PEKind",
    "Mapping",
    "analyze",
    "build_schedule",
    "first_periods",
    "speedup",
    "throughput",
    "__version__",
]
