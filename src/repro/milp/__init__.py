"""Optimal mapping through mixed linear programming (paper §5).

* :func:`build_formulation` — constraints (1a)–(1k) as a :class:`repro.lp.Model`;
* :func:`solve_optimal_mapping` — the headline algorithm (HiGHS, 5 % gap);
* :data:`PAPER_MIP_GAP` — the paper's CPLEX gap setting.
"""

from .formulation import MilpFormulation, build_formulation, ppe_only_period
from .solve import PAPER_MIP_GAP, MilpResult, solve_optimal_mapping

__all__ = [
    "MilpFormulation",
    "build_formulation",
    "ppe_only_period",
    "PAPER_MIP_GAP",
    "MilpResult",
    "solve_optimal_mapping",
]
