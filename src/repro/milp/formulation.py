"""The mixed linear program of §5, constraints (1a)–(1k).

Variables
---------
* ``alpha[k,i] ∈ {0,1}`` — task ``T_k`` is mapped on PE ``i``;
* ``beta[k,l,i,j] ∈ [0,1]`` — data ``D(k,l)`` is transferred from PE ``i``
  to PE ``j`` (``i == j`` means both endpoints share a PE);
* ``T ≥ 0`` — the period, minimised.

β-relaxation
------------
The paper declares β integer.  With α binary, constraints (1c)+(1d) force β
to the integral product ``alpha[k,i]·alpha[l,j]`` anyway: (1d) zeroes every
row of β except the one where ``T_k`` runs, (1b) caps that row's sum at 1,
and (1c) demands the column where ``T_l`` runs to receive at least 1.  We
therefore declare β continuous by default, shrinking the binaries from
``O(|E|·n²)`` to ``K·n``; ``integral_beta=True`` restores the paper's
literal formulation for the ablation benchmark.

Constraint map (paper → method)
-------------------------------
==========  ====================================================
(1a)        variable domains (``add_binary`` / bounds)
(1b)        ``_each_task_mapped_once``
(1c),(1d)   ``_link_alpha_beta``
(1e),(1f)   ``_compute_within_period``
(1g),(1h)   ``_communication_within_period``
(1i)        ``_buffers_fit_local_store``
(1j),(1k)   ``_dma_queue_limits``
==========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graph.stream_graph import StreamGraph
from ..lp.model import Model, Var, lpsum
from ..platform.cell import CellPlatform
from ..steady_state.periods import buffer_requirements

__all__ = ["MilpFormulation", "build_formulation", "ppe_only_period"]


def ppe_only_period(graph: StreamGraph, platform: CellPlatform) -> float:
    """Period of the always-feasible all-on-PPE mapping (upper bound on T)."""
    compute = sum(t.wppe for t in graph.tasks())
    reads = sum(t.read for t in graph.tasks()) / platform.bw
    writes = sum(t.write for t in graph.tasks()) / platform.bw
    return max(compute, reads, writes)


@dataclass
class MilpFormulation:
    """The built model plus the variable handles needed to read it back."""

    model: Model
    graph: StreamGraph
    platform: CellPlatform
    alpha: Dict[Tuple[str, int], Var]
    beta: Dict[Tuple[str, str, int, int], Var]
    T: Var

    def mapping_from_values(self, values) -> Dict[str, int]:
        """Decode α into a task→PE dictionary (argmax per task)."""
        assignment: Dict[str, int] = {}
        for task in self.graph.task_names():
            best_pe, best_val = 0, -1.0
            for pe in range(self.platform.n_pes):
                val = values[self.alpha[(task, pe)].index]
                if val > best_val:
                    best_pe, best_val = pe, val
            assignment[task] = best_pe
        return assignment


def build_formulation(
    graph: StreamGraph,
    platform: CellPlatform,
    integral_beta: bool = False,
    strengthen: bool = True,
    symmetry_breaking: bool = False,
    period_upper_bound: Optional[float] = None,
) -> MilpFormulation:
    """Build the §5 MILP for ``graph`` on ``platform``.

    ``strengthen`` adds the (S1) valid lower bound on ``T`` — free and
    optimum-preserving.  ``symmetry_breaking`` adds the (S2) lexicographic
    SPE-load ordering; it is also optimum-preserving but measurably *slows
    down* HiGHS (whose internal symmetry handling is better), so it is off
    by default and kept for the ablation benchmark.

    ``period_upper_bound`` tightens the domain of ``T``; pass the period
    of any known feasible mapping (e.g. a greedy heuristic) — the optimum
    can only be at most that, so the bound is optimum-preserving.
    """
    graph.validate()
    model = Model(f"cell-mapping[{graph.name}]")
    n = platform.n_pes
    tasks = graph.task_names()
    edges = [(e.src, e.dst, e.data) for e in graph.edges()]

    t_upper = ppe_only_period(graph, platform)
    if period_upper_bound is not None:
        # Tiny head-room so the incumbent itself stays strictly feasible
        # under floating-point round-off.
        t_upper = min(t_upper, period_upper_bound * (1 + 1e-9))
    T = model.add_var("T", lb=0.0, ub=t_upper)

    alpha: Dict[Tuple[str, int], Var] = {}
    for k in tasks:
        for i in range(n):
            alpha[(k, i)] = model.add_binary(f"alpha[{k},{i}]")

    beta: Dict[Tuple[str, str, int, int], Var] = {}
    for (k, l, _data) in edges:  # noqa: E741 — the paper's D(k,l)
        for i in range(n):
            for j in range(n):
                name = f"beta[{k}->{l},{i},{j}]"
                beta[(k, l, i, j)] = (
                    model.add_binary(name)
                    if integral_beta
                    else model.add_var(name, lb=0.0, ub=1.0)
                )

    form = MilpFormulation(model, graph, platform, alpha, beta, T)
    _each_task_mapped_once(form)
    _link_alpha_beta(form)
    _compute_within_period(form)
    _communication_within_period(form)
    _buffers_fit_local_store(form)
    _dma_queue_limits(form)
    if platform.n_cells > 1:
        _intercell_links_within_period(form)
    if strengthen:
        _period_lower_bound(form)
    if symmetry_breaking:
        _spe_symmetry_breaking(form)
    model.minimize(T)
    return form


# --------------------------------------------------------------------- #
# Constraint builders


def _each_task_mapped_once(f: MilpFormulation) -> None:
    """(1b): every task runs on exactly one PE."""
    n = f.platform.n_pes
    for k in f.graph.task_names():
        f.model.add_constraint(
            lpsum(f.alpha[(k, i)] for i in range(n)) == 1,
            name=f"(1b)[{k}]",
        )


def _link_alpha_beta(f: MilpFormulation) -> None:
    """(1c)/(1d): transfers start where the producer runs and reach the consumer."""
    n = f.platform.n_pes
    for edge in f.graph.edges():
        k, l = edge.src, edge.dst  # noqa: E741 — the paper's D(k,l)
        for j in range(n):
            f.model.add_constraint(
                lpsum(f.beta[(k, l, i, j)] for i in range(n)) >= f.alpha[(l, j)],
                name=f"(1c)[{k}->{l},{j}]",
            )
        for i in range(n):
            f.model.add_constraint(
                lpsum(f.beta[(k, l, i, j)] for j in range(n)) <= f.alpha[(k, i)],
                name=f"(1d)[{k}->{l},{i}]",
            )


def _compute_within_period(f: MilpFormulation) -> None:
    """(1e)/(1f): per-PE compute occupation fits in one period."""
    for i in range(f.platform.n_pes):
        kind_is_ppe = f.platform.is_ppe(i)
        load = lpsum(
            f.alpha[(t.name, i)] * (t.wppe if kind_is_ppe else t.wspe)
            for t in f.graph.tasks()
        )
        tag = "(1e)" if kind_is_ppe else "(1f)"
        f.model.add_constraint(
            load <= f.T, name=f"{tag}[{f.platform.pe_name(i)}]"
        )


def _communication_within_period(f: MilpFormulation) -> None:
    """(1g)/(1h): per-interface in/out bytes fit in ``T × bw``.

    Memory reads/writes count against the same interfaces as inter-PE
    transfers (§2.1); same-PE β terms (``i == j``) are excluded.
    """
    n = f.platform.n_pes
    bw = f.platform.bw
    for i in range(n):
        incoming = lpsum(
            f.alpha[(t.name, i)] * t.read for t in f.graph.tasks()
        ) + lpsum(
            f.beta[(e.src, e.dst, j, i)] * e.data
            for e in f.graph.edges()
            for j in range(n)
            if j != i
        )
        f.model.add_constraint(
            incoming <= f.T * bw, name=f"(1g)[{f.platform.pe_name(i)}]"
        )
        outgoing = lpsum(
            f.alpha[(t.name, i)] * t.write for t in f.graph.tasks()
        ) + lpsum(
            f.beta[(e.src, e.dst, i, j)] * e.data
            for e in f.graph.edges()
            for j in range(n)
            if j != i
        )
        f.model.add_constraint(
            outgoing <= f.T * bw, name=f"(1h)[{f.platform.pe_name(i)}]"
        )


def _buffers_fit_local_store(f: MilpFormulation) -> None:
    """(1i): input+output buffers of the tasks on each SPE fit its store."""
    need = buffer_requirements(f.graph)
    budget = f.platform.buffer_budget
    for i in f.platform.spe_indices:
        f.model.add_constraint(
            lpsum(
                f.alpha[(t, i)] * need[t] for t in f.graph.task_names()
            )
            <= budget,
            name=f"(1i)[{f.platform.pe_name(i)}]",
        )


def _period_lower_bound(f: MilpFormulation) -> None:
    """(S1) — constant, optimum-preserving lower bounds on ``T``.

    The period is at least the best-class time of the slowest single task
    (each task occupies one PE for that long) and at least the total
    best-class work averaged over all PEs.
    """
    tasks = list(f.graph.tasks())
    if not tasks:
        return
    single = max(min(t.wppe, t.wspe) for t in tasks)
    total = sum(min(t.wppe, t.wspe) for t in tasks)
    lower = max(single, total / f.platform.n_pes)
    f.model.add_constraint(f.T >= lower, name="(S1)[T-lb]")


def _spe_symmetry_breaking(f: MilpFormulation) -> None:
    """(S2) — lexicographic symmetry breaking among each Cell's SPEs.

    The SPEs of one Cell are interchangeable (identical compute, store,
    DMA and bandwidth constraints), so demanding non-increasing compute
    loads along their indices preserves at least one optimal solution.
    Benchmarking shows HiGHS's built-in symmetry handling does better on
    these instances, so the cut is opt-in (ablation material).
    """
    tasks = list(f.graph.tasks())
    by_cell = {}
    for i in f.platform.spe_indices:
        by_cell.setdefault(f.platform.cell_of(i), []).append(i)
    for _cell, spes in by_cell.items():
        for i, j in zip(spes, spes[1:]):
            load_i = lpsum(
                f.alpha[(t.name, i)] * t.wspe for t in tasks
            )
            load_j = lpsum(
                f.alpha[(t.name, j)] * t.wspe for t in tasks
            )
            f.model.add_constraint(
                load_j <= load_i, name=f"(S2)[{f.platform.pe_name(j)}]"
            )


def _intercell_links_within_period(f: MilpFormulation) -> None:
    """(X1): inter-Cell traffic fits the BIF link (future-work extension).

    For every ordered Cell pair ``(c, c')``, the bytes of all transfers
    whose producer sits on chip ``c`` and consumer on chip ``c'`` must move
    within ``T × bif_bw`` — the directed FlexIO/BIF link is one more
    bounded-multiport resource.
    """
    n = f.platform.n_pes
    cells = range(f.platform.n_cells)
    cell = [f.platform.cell_of(i) for i in range(n)]
    for c_src in cells:
        for c_dst in cells:
            if c_src == c_dst:
                continue
            traffic = lpsum(
                f.beta[(e.src, e.dst, i, j)] * e.data
                for e in f.graph.edges()
                for i in range(n)
                if cell[i] == c_src
                for j in range(n)
                if cell[j] == c_dst
            )
            f.model.add_constraint(
                traffic <= f.T * f.platform.bif_bw,
                name=f"(X1)[{c_src}->{c_dst}]",
            )


def _dma_queue_limits(f: MilpFormulation) -> None:
    """(1j)/(1k): at most 16 data received per SPE, 8 sent to PPEs per SPE."""
    n = f.platform.n_pes
    for j in f.platform.spe_indices:
        f.model.add_constraint(
            lpsum(
                f.beta[(e.src, e.dst, i, j)]
                for e in f.graph.edges()
                for i in range(n)
                if i != j
            )
            <= f.platform.dma_in_slots,
            name=f"(1j)[{f.platform.pe_name(j)}]",
        )
    for i in f.platform.spe_indices:
        f.model.add_constraint(
            lpsum(
                f.beta[(e.src, e.dst, i, j)]
                for e in f.graph.edges()
                for j in f.platform.ppe_indices
            )
            <= f.platform.dma_proxy_slots,
            name=f"(1k)[{f.platform.pe_name(i)}]",
        )
