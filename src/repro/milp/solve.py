"""Solve the §5 MILP and decode the optimal mapping.

``solve_optimal_mapping`` is the paper's headline algorithm: build
constraints (1a)–(1k), hand them to the MILP solver with a 5 % relative gap
(the paper's CPLEX setting), and read the mapping back from α.  Theorem 2:
the optimum of the linear program is the maximal achievable throughput over
all mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SolverError
from ..graph.stream_graph import StreamGraph
from ..lp.branch_bound import solve_branch_bound
from ..lp.scipy_backend import Solution, solve
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..steady_state.throughput import analyze
from .formulation import MilpFormulation, build_formulation

__all__ = ["MilpResult", "solve_optimal_mapping", "PAPER_MIP_GAP"]


def _heuristic_upper_bound(graph: StreamGraph, platform: CellPlatform):
    """Period of the best feasible §6.3-style heuristic mapping, or None.

    Any feasible mapping's period upper-bounds the optimum, so handing it
    to the solver as the domain of ``T`` is optimum-preserving and lets
    branch-and-bound prune from the first node.
    """
    from ..heuristics import critical_path_mapping, greedy_cpu, greedy_mem

    best = None
    for heuristic in (greedy_cpu, greedy_mem, critical_path_mapping):
        try:
            analysis = analyze(heuristic(graph, platform))
        except Exception:
            continue
        if analysis.feasible and (best is None or analysis.period < best):
            best = analysis.period
    return best

#: The relative MIP gap the paper configures in CPLEX (§6).
PAPER_MIP_GAP: float = 0.05


@dataclass(frozen=True)
class MilpResult:
    """Outcome of an optimal-mapping solve."""

    mapping: Mapping
    #: Period reported by the solver (the T variable), µs.
    solver_period: float
    #: Period of the decoded mapping re-derived by the analytic model, µs.
    period: float
    solution: Solution
    formulation: MilpFormulation

    @property
    def throughput(self) -> float:
        """Analytic throughput of the decoded mapping, instances/µs."""
        return float("inf") if self.period == 0 else 1.0 / self.period

    @property
    def solve_time(self) -> float:
        return self.solution.solve_time

    def report(self) -> str:
        return (
            f"MILP mapping for {self.mapping.graph.name!r}: "
            f"T={self.period:.3f} µs "
            f"({self.throughput * 1e6:.2f} instances/s), "
            f"solver T={self.solver_period:.3f}, "
            f"solved in {self.solve_time:.2f}s "
            f"[{self.formulation.model.stats()}]"
        )


def solve_optimal_mapping(
    graph: StreamGraph,
    platform: CellPlatform,
    mip_rel_gap: Optional[float] = PAPER_MIP_GAP,
    time_limit: Optional[float] = None,
    integral_beta: bool = False,
    strengthen: bool = True,
    backend: str = "scipy",
) -> MilpResult:
    """Compute a (gap-)optimal mapping of ``graph`` on ``platform``.

    Parameters
    ----------
    mip_rel_gap:
        Relative optimality gap at which the solver may stop; the paper
        uses 0.05.  Pass ``None`` for proven optimality.
    integral_beta:
        Use the paper's literal formulation with binary β (slower —
        ablation only); the default relies on the β-relaxation being exact.
    strengthen:
        Add optimum-preserving accelerations: cuts (T lower bounds, SPE
        symmetry breaking) and a T upper bound seeded from the best
        feasible heuristic mapping.  Disable for the paper-literal
        formulation.
    backend:
        ``"scipy"`` (HiGHS — default) or ``"branch-bound"`` (the pure
        Python reference solver; small graphs only).
    """
    period_upper_bound = _heuristic_upper_bound(graph, platform) if strengthen else None
    formulation = build_formulation(
        graph,
        platform,
        integral_beta=integral_beta,
        strengthen=strengthen,
        period_upper_bound=period_upper_bound,
    )
    if backend == "scipy":
        solution = solve(
            formulation.model,
            mip_rel_gap=mip_rel_gap,
            time_limit=time_limit,
        )
    elif backend == "branch-bound":
        solution, _stats = solve_branch_bound(
            formulation.model,
            mip_rel_gap=mip_rel_gap or 0.0,
            time_limit=time_limit,
        )
    else:
        raise SolverError(f"unknown backend {backend!r}")

    assignment = formulation.mapping_from_values(solution.values)
    mapping = Mapping(graph, platform, assignment)
    analysis = analyze(mapping)
    if not analysis.feasible:
        # Should be impossible: α integral ⇒ decoded mapping satisfies (1i)-(1k).
        raise SolverError(
            "decoded MILP mapping violates hard constraints: "
            + "; ".join(str(v) for v in analysis.violations)
        )
    return MilpResult(
        mapping=mapping,
        solver_period=solution.value(formulation.T),
        period=analysis.period,
        solution=solution,
        formulation=formulation,
    )
