"""The two reference heuristics of §6.3: GREEDYMEM and GREEDYCPU.

Both walk the tasks once in topological order and never reconsider a
placement.  They focus on the SPEs' scarce local store — the paper notes
memory is "one of the most significant factors for performance" — and, for
GREEDYCPU, on the compute load.  Neither reasons about data transfers or
DMA queue limits, which is precisely why the paper's MILP outperforms them.

* **GREEDYMEM** — among the SPEs with enough free memory for the task and
  its buffers, pick the one with the least loaded memory; if none fits,
  put the task on the PPE.
* **GREEDYCPU** — among *all* PEs (PPE included) with enough memory, pick
  the one with the smallest current computation load.
"""

from __future__ import annotations

from typing import Dict

from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..steady_state.periods import buffer_requirements

__all__ = ["greedy_mem", "greedy_cpu"]


def greedy_mem(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    """GREEDYMEM (§6.3): balance SPE memory, overflow to the PPE."""
    need = buffer_requirements(graph)
    budget = platform.buffer_budget
    mem_used: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    assignment: Dict[str, int] = {}
    for name in graph.topological_order():
        requirement = need[name]
        candidates = [
            spe for spe in platform.spe_indices
            if mem_used[spe] + requirement <= budget
        ]
        if candidates:
            target = min(candidates, key=lambda spe: (mem_used[spe], spe))
            mem_used[target] += requirement
            assignment[name] = target
        else:
            assignment[name] = 0  # the PPE (paper platforms have one)
    return Mapping(graph, platform, assignment)


def greedy_cpu(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    """GREEDYCPU (§6.3): balance compute load among memory-feasible PEs."""
    need = buffer_requirements(graph)
    budget = platform.buffer_budget
    mem_used: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    cpu_load: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    assignment: Dict[str, int] = {}
    for name in graph.topological_order():
        task = graph.task(name)
        requirement = need[name]
        candidates = [
            pe for pe in range(platform.n_pes)
            if platform.is_ppe(pe) or mem_used[pe] + requirement <= budget
        ]
        target = min(candidates, key=lambda pe: (cpu_load[pe], pe))
        cpu_load[target] += task.cost_on(platform.kind(target))
        if platform.is_spe(target):
            mem_used[target] += requirement
        assignment[name] = target
    return Mapping(graph, platform, assignment)
