"""Mapping heuristics beyond the paper's two baselines.

The paper's conclusion calls for "involved mapping heuristics which
approach the optimal throughput"; these are our take on that future work:

* :func:`critical_path_mapping` — HEFT-flavoured list scheduling adapted to
  steady state: tasks in decreasing upward rank, each placed on the PE
  minimising the resulting period, subject to the hard constraints;
* :func:`local_search` — steepest-descent move/swap refinement of any
  starting mapping under the analytic period;
* :func:`random_mapping` — feasibility-aware random mapping (baseline and
  test fixture).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..errors import MappingError
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..steady_state.periods import buffer_requirements
from ..steady_state.throughput import analyze

__all__ = ["critical_path_mapping", "local_search", "random_mapping"]


def _upward_rank(graph: StreamGraph) -> Dict[str, float]:
    """HEFT upward rank with mean compute costs (communication excluded —
    on the Cell the per-edge transfer time is negligible next to compute)."""
    rank: Dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        task = graph.task(name)
        mean_cost = 0.5 * (task.wppe + task.wspe)
        rank[name] = mean_cost + max(
            (rank[s] for s in graph.successors(name)), default=0.0
        )
    return rank


def critical_path_mapping(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    """List-schedule tasks by upward rank, greedily minimising the period.

    For each task (most critical first), try every PE that keeps the hard
    constraints satisfiable and keep the placement whose *resulting partial
    period* — max over PE compute loads and interface loads so far — is
    smallest.  Unlike GREEDYCPU this accounts for the unrelated costs and
    the communication the placement creates.
    """
    need = buffer_requirements(graph)
    budget = platform.buffer_budget
    order = sorted(
        graph.task_names(), key=lambda t: -_upward_rank(graph)[t]
    )
    mem_used: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    compute: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    comm_in: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    comm_out: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    dma_in: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    dma_proxy: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    assignment: Dict[str, int] = {}

    def placement_cost(name: str, pe: int) -> Optional[float]:
        """Partial period if ``name`` goes on ``pe``; None if infeasible."""
        task = graph.task(name)
        if platform.is_spe(pe):
            if mem_used[pe] + need[name] > budget:
                return None
            new_dma_in = dma_in[pe]
            new_dma_proxy = dma_proxy[pe]
            for e in graph.in_edges(name):
                src_pe = assignment.get(e.src)
                if src_pe is not None and src_pe != pe:
                    new_dma_in += 1
            for e in graph.out_edges(name):
                dst_pe = assignment.get(e.dst)
                if dst_pe is not None and dst_pe != pe and platform.is_ppe(dst_pe):
                    new_dma_proxy += 1
            if new_dma_in > platform.dma_in_slots:
                return None
            if new_dma_proxy > platform.dma_proxy_slots:
                return None
        new_compute = compute[pe] + task.cost_on(platform.kind(pe))
        in_bytes = task.read
        out_bytes = task.write
        for e in graph.in_edges(name):
            src_pe = assignment.get(e.src)
            if src_pe is not None and src_pe != pe:
                in_bytes += e.data
        for e in graph.out_edges(name):
            dst_pe = assignment.get(e.dst)
            if dst_pe is not None and dst_pe != pe:
                out_bytes += e.data
        new_in = comm_in[pe] + in_bytes / platform.bw
        new_out = comm_out[pe] + out_bytes / platform.bw
        partial = max(new_compute, new_in, new_out)
        others = max(
            (
                max(compute[q], comm_in[q], comm_out[q])
                for q in range(platform.n_pes)
                if q != pe
            ),
            default=0.0,
        )
        return max(partial, others)

    for name in order:
        best_pe, best_cost = None, None
        for pe in range(platform.n_pes):
            cost = placement_cost(name, pe)
            if cost is not None and (best_cost is None or cost < best_cost):
                best_pe, best_cost = pe, cost
        if best_pe is None:  # PPE is always feasible, so never happens
            raise MappingError(f"no feasible PE for task {name!r}")
        task = graph.task(name)
        assignment[name] = best_pe
        compute[best_pe] += task.cost_on(platform.kind(best_pe))
        comm_in[best_pe] += task.read / platform.bw
        comm_out[best_pe] += task.write / platform.bw
        if platform.is_spe(best_pe):
            mem_used[best_pe] += need[name]
        for e in graph.in_edges(name):
            src_pe = assignment.get(e.src)
            if src_pe is not None and src_pe != best_pe:
                comm_in[best_pe] += e.data / platform.bw
                comm_out[src_pe] += e.data / platform.bw
                if platform.is_spe(best_pe):
                    dma_in[best_pe] += 1
                if platform.is_spe(src_pe) and platform.is_ppe(best_pe):
                    dma_proxy[src_pe] += 1
        for e in graph.out_edges(name):
            dst_pe = assignment.get(e.dst)
            if dst_pe is not None and dst_pe != best_pe:
                comm_out[best_pe] += e.data / platform.bw
                comm_in[dst_pe] += e.data / platform.bw
                if platform.is_spe(dst_pe):
                    dma_in[dst_pe] += 1
                if platform.is_spe(best_pe) and platform.is_ppe(dst_pe):
                    dma_proxy[best_pe] += 1
    return Mapping(graph, platform, assignment)


def local_search(
    mapping: Mapping,
    max_rounds: int = 50,
    try_swaps: bool = True,
) -> Mapping:
    """Steepest-descent refinement of ``mapping`` under the analytic period.

    Each round evaluates every single-task move (and optionally every
    task-pair swap) and applies the best strictly-improving *feasible* one;
    stops at a local optimum or after ``max_rounds``.
    """
    current = mapping
    current_analysis = analyze(current)
    current_period = (
        current_analysis.period if current_analysis.feasible else float("inf")
    )
    platform = mapping.platform
    names = mapping.graph.task_names()

    for _ in range(max_rounds):
        best_candidate = None
        best_period = current_period
        for name in names:
            origin = current.pe_of(name)
            for pe in range(platform.n_pes):
                if pe == origin:
                    continue
                candidate = current.with_assignment(name, pe)
                analysis = analyze(candidate)
                if analysis.feasible and analysis.period < best_period:
                    best_candidate, best_period = candidate, analysis.period
        if try_swaps:
            for a_idx in range(len(names)):
                for b_idx in range(a_idx + 1, len(names)):
                    a, b = names[a_idx], names[b_idx]
                    pe_a, pe_b = current.pe_of(a), current.pe_of(b)
                    if pe_a == pe_b:
                        continue
                    candidate = current.with_assignment(a, pe_b).with_assignment(b, pe_a)
                    analysis = analyze(candidate)
                    if analysis.feasible and analysis.period < best_period:
                        best_candidate, best_period = candidate, analysis.period
        if best_candidate is None:
            break
        current, current_period = best_candidate, best_period
    return current


def random_mapping(
    graph: StreamGraph,
    platform: CellPlatform,
    seed: int = 0,
    require_feasible: bool = True,
    max_attempts: int = 1000,
) -> Mapping:
    """A uniform random mapping; optionally rejection-sampled to feasibility."""
    rng = random.Random(seed)
    names = graph.task_names()
    for _ in range(max_attempts):
        assignment = {
            name: rng.randrange(platform.n_pes) for name in names
        }
        mapping = Mapping(graph, platform, assignment)
        if not require_feasible or analyze(mapping).feasible:
            return mapping
    # Fall back to the always-feasible PPE-only mapping.
    return Mapping.all_on_ppe(graph, platform)
