"""Mapping heuristics beyond the paper's two baselines.

The paper's conclusion calls for "involved mapping heuristics which
approach the optimal throughput"; these are our take on that future work:

* :func:`critical_path_mapping` — HEFT-flavoured list scheduling adapted to
  steady state: tasks in decreasing upward rank, each placed on the PE
  minimising the resulting period, subject to the hard constraints;
* :func:`local_search` — steepest-descent move/swap refinement of any
  starting mapping under the analytic period, evaluated incrementally by
  :class:`~repro.steady_state.delta.DeltaAnalyzer` (O(deg) per candidate
  instead of a full O(V+E) ``analyze`` pass);
* :func:`simulated_annealing` / :func:`tabu_search` — metaheuristics that
  only become tractable with delta evaluation: thousands of candidate
  moves per run, each scored in O(deg);

All full-neighbourhood scans (``local_search`` moves and swaps, every
``tabu_search`` round, :func:`budgeted_descent`) go through the delta
engine's **whole-neighbourhood** batch API — ``evaluate_all_moves`` /
``evaluate_swaps`` / ``best_move`` — so under the numpy kernel backend
each round is a handful of dense matrix passes instead of a Python loop
over candidates; the GA scores random immigrants and whole generations
through the population-level ``score_assignments`` /
``evaluate_assignments`` pass the same way.  ``simulated_annealing``
proposes one random candidate at a time, so its ``evaluate_move`` calls
hit the scalar kernel with a single-target sweep.  Every entry point
accepts ``backend`` (``"python"`` | ``"numpy"`` | ``None`` for
auto-detection, see :func:`repro.steady_state.resolve_backend`) and
returns the same mapping under either backend.
* :func:`genetic_algorithm` — population search over feasible mappings:
  PE-assignment crossover and delta-scored mutation on *cloned*
  :class:`DeltaAnalyzer` states, so offspring are evaluated incrementally
  instead of re-analysed from scratch;
* :func:`random_mapping` — feasibility-aware random mapping (baseline and
  test fixture).

Every search heuristic accepts ``elide_local_comm`` /
``merge_same_pe_buffers`` and then optimises under the corresponding
mapping-dependent buffer model (the paper's future-work optimisations),
evaluated incrementally by the same delta engine.

Every search heuristic also accepts ``objective`` (``"period"`` —
default — ``"weighted"`` or ``"max_stretch"``, see
:mod:`repro.steady_state.objective`): on a multi-application
:class:`~repro.graph.workload.Workload` composite the candidates are
ranked by that objective instead of the raw shared period, while
feasibility (the hard (1i)–(1k) constraints) is judged identically.  On
plain single-application graphs all objectives collapse to the period.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..errors import MappingError
from ..graph.stream_graph import StreamGraph
from ..obs.tracing import span as _span
from ..platform.cell import CellPlatform
from ..steady_state.delta import ClonePool, DeltaAnalyzer
from ..steady_state.mapping import Mapping
from ..steady_state.objective import make_objective
from ..steady_state.periods import buffer_requirements
from ..steady_state.throughput import PeriodAnalysis, analyze
from .greedy import greedy_cpu, greedy_mem

__all__ = [
    "budgeted_descent",
    "critical_path_mapping",
    "genetic_algorithm",
    "local_search",
    "simulated_annealing",
    "tabu_search",
    "random_mapping",
]

#: How many accepted metaheuristic moves between O(V+E) re-anchoring
#: rebuilds of the incremental state (squashes float drift, see delta.py).
_RESYNC_EVERY = 256


def _upward_rank(graph: StreamGraph) -> Dict[str, float]:
    """HEFT upward rank with mean compute costs (communication excluded —
    on the Cell the per-edge transfer time is negligible next to compute)."""
    rank: Dict[str, float] = {}
    for name in reversed(graph.topological_order()):
        task = graph.task(name)
        mean_cost = 0.5 * (task.wppe + task.wspe)
        rank[name] = mean_cost + max(
            (rank[s] for s in graph.successors(name)), default=0.0
        )
    return rank


def critical_path_mapping(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    """List-schedule tasks by upward rank, greedily minimising the period.

    For each task (most critical first), try every PE that keeps the hard
    constraints satisfiable and keep the placement whose *resulting partial
    period* — max over PE compute loads and interface loads so far — is
    smallest.  Unlike GREEDYCPU this accounts for the unrelated costs and
    the communication the placement creates.
    """
    need = buffer_requirements(graph)
    budget = platform.buffer_budget
    rank = _upward_rank(graph)
    order = sorted(graph.task_names(), key=lambda t: -rank[t])
    mem_used: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    compute: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    comm_in: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    comm_out: Dict[int, float] = {i: 0.0 for i in range(platform.n_pes)}
    dma_in: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    dma_proxy: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    assignment: Dict[str, int] = {}

    def placement_cost(name: str, pe: int) -> Optional[float]:
        """Partial period if ``name`` goes on ``pe``; None if infeasible."""
        task = graph.task(name)
        if platform.is_spe(pe):
            if mem_used[pe] + need[name] > budget:
                return None
            new_dma_in = dma_in[pe]
            new_dma_proxy = dma_proxy[pe]
            for e in graph.in_edges(name):
                src_pe = assignment.get(e.src)
                if src_pe is not None and src_pe != pe:
                    new_dma_in += 1
            for e in graph.out_edges(name):
                dst_pe = assignment.get(e.dst)
                if dst_pe is not None and dst_pe != pe and platform.is_ppe(dst_pe):
                    new_dma_proxy += 1
            if new_dma_in > platform.dma_in_slots:
                return None
            if new_dma_proxy > platform.dma_proxy_slots:
                return None
        new_compute = compute[pe] + task.cost_on(platform.kind(pe))
        in_bytes = task.read
        out_bytes = task.write
        for e in graph.in_edges(name):
            src_pe = assignment.get(e.src)
            if src_pe is not None and src_pe != pe:
                in_bytes += e.data
        for e in graph.out_edges(name):
            dst_pe = assignment.get(e.dst)
            if dst_pe is not None and dst_pe != pe:
                out_bytes += e.data
        new_in = comm_in[pe] + in_bytes / platform.bw
        new_out = comm_out[pe] + out_bytes / platform.bw
        partial = max(new_compute, new_in, new_out)
        others = max(
            (
                max(compute[q], comm_in[q], comm_out[q])
                for q in range(platform.n_pes)
                if q != pe
            ),
            default=0.0,
        )
        return max(partial, others)

    for name in order:
        best_pe, best_cost = None, None
        for pe in range(platform.n_pes):
            cost = placement_cost(name, pe)
            if cost is not None and (best_cost is None or cost < best_cost):
                best_pe, best_cost = pe, cost
        if best_pe is None:  # PPE is always feasible, so never happens
            raise MappingError(f"no feasible PE for task {name!r}")
        task = graph.task(name)
        assignment[name] = best_pe
        compute[best_pe] += task.cost_on(platform.kind(best_pe))
        comm_in[best_pe] += task.read / platform.bw
        comm_out[best_pe] += task.write / platform.bw
        if platform.is_spe(best_pe):
            mem_used[best_pe] += need[name]
        for e in graph.in_edges(name):
            src_pe = assignment.get(e.src)
            if src_pe is not None and src_pe != best_pe:
                comm_in[best_pe] += e.data / platform.bw
                comm_out[src_pe] += e.data / platform.bw
                if platform.is_spe(best_pe):
                    dma_in[best_pe] += 1
                if platform.is_spe(src_pe) and platform.is_ppe(best_pe):
                    dma_proxy[src_pe] += 1
        for e in graph.out_edges(name):
            dst_pe = assignment.get(e.dst)
            if dst_pe is not None and dst_pe != best_pe:
                comm_out[best_pe] += e.data / platform.bw
                comm_in[dst_pe] += e.data / platform.bw
                if platform.is_spe(dst_pe):
                    dma_in[dst_pe] += 1
                if platform.is_spe(best_pe) and platform.is_ppe(dst_pe):
                    dma_proxy[best_pe] += 1
    return Mapping(graph, platform, assignment)


def _analysis_value(objective, analysis: PeriodAnalysis) -> float:
    """Objective value of a full ``analyze()`` result (reference path)."""
    return objective.value(analysis.period, analysis.app_periods)


def local_search(
    mapping: Mapping,
    max_rounds: int = 50,
    try_swaps: bool = True,
    use_delta: bool = True,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
    objective: str = "period",
    backend: Optional[str] = None,
) -> Mapping:
    """Steepest-descent refinement of ``mapping`` under ``objective``.

    Each round evaluates every single-task move (and optionally every
    task-pair swap) and applies the best strictly-improving *feasible* one;
    stops at a local optimum or after ``max_rounds``.

    With ``use_delta=True`` (default) candidates are scored incrementally
    by :class:`DeltaAnalyzer` in O(deg(task)) each; ``use_delta=False``
    keeps the original full-``analyze`` evaluation (O(V+E) per candidate)
    as a reference implementation for tests and benchmarks.  Both paths
    visit candidates in the same order; their scores agree exactly for
    integer-valued costs and to within one ulp otherwise (see delta.py),
    so the returned mappings match unless two candidates tie that
    tightly — in which case the resulting periods are equal to ulps.

    ``elide_local_comm`` / ``merge_same_pe_buffers`` switch both paths to
    the corresponding mapping-dependent buffer model; ``objective``
    switches the ranking on workload composites (see the module
    docstring); ``backend`` selects the delta engine's kernel backend
    (the result is backend-independent).
    """
    obj = make_objective(objective, mapping.graph)
    if not use_delta:
        return _local_search_full(
            mapping, max_rounds, try_swaps,
            elide_local_comm, merge_same_pe_buffers, obj,
        )

    state = DeltaAnalyzer(
        mapping,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
        backend=backend,
    )
    current_value = state.evaluate(obj).value if state.feasible else float("inf")
    platform = mapping.platform
    names = mapping.graph.task_names()
    n_pes = platform.n_pes

    for rnd in range(max_rounds):
        with _span("strategy:local_search.round", round=rnd):
            best: Optional[Tuple[str, ...]] = None
            best_value = current_value
            # One dense pass over the whole move neighbourhood (every
            # task × every PE): a single masked cost-matrix kernel call
            # under the numpy backend, per-task batched sweeps under
            # the scalar one.
            all_scores = state.evaluate_all_moves(objective=obj)
            for i, name in enumerate(names):
                origin = state.pe_of(name)
                scores = all_scores[i]
                for pe in range(n_pes):
                    if pe == origin:
                        continue
                    score = scores[pe]
                    if score.feasible and score.value < best_value:
                        best, best_value = ("move", name, pe), score.value
            if try_swaps:
                # Same deal for the swap neighbourhood: all distinct-PE
                # pairs scored by one pairwise kernel pass, in the exact
                # (a_idx < b_idx) visit order of the reference loops.
                pairs = [
                    (names[a_idx], names[b_idx])
                    for a_idx in range(len(names))
                    for b_idx in range(a_idx + 1, len(names))
                    if state.pe_of(names[a_idx]) != state.pe_of(names[b_idx])
                ]
                for pair, score in zip(
                    pairs, state.evaluate_swaps(pairs, obj)
                ):
                    if score.feasible and score.value < best_value:
                        best, best_value = ("swap", *pair), score.value
            if best is None:
                break
            if best[0] == "move":
                state.apply_move(best[1], int(best[2]))
            else:
                state.apply_swap(best[1], best[2])
            # One O(V+E) rebuild per round: re-anchors the incremental
            # sums so the scores of the next round match a fresh
            # analyze() exactly.
            state.resync()
            current_value = (
                state.evaluate(obj).value if state.feasible else float("inf")
            )
    return state.mapping()


def _local_search_full(
    mapping: Mapping,
    max_rounds: int,
    try_swaps: bool,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
    obj=None,
) -> Mapping:
    """Reference steepest descent: full ``analyze`` per candidate (seed code)."""
    if obj is None:
        obj = make_objective("period", mapping.graph)
    flags = dict(
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    )
    current = mapping
    current_analysis = analyze(current, **flags)
    current_value = (
        _analysis_value(obj, current_analysis)
        if current_analysis.feasible
        else float("inf")
    )
    platform = mapping.platform
    names = mapping.graph.task_names()

    for _ in range(max_rounds):
        best_candidate = None
        best_value = current_value
        for name in names:
            origin = current.pe_of(name)
            for pe in range(platform.n_pes):
                if pe == origin:
                    continue
                candidate = current.with_assignment(name, pe)
                analysis = analyze(candidate, **flags)
                value = _analysis_value(obj, analysis)
                if analysis.feasible and value < best_value:
                    best_candidate, best_value = candidate, value
        if try_swaps:
            for a_idx in range(len(names)):
                for b_idx in range(a_idx + 1, len(names)):
                    a, b = names[a_idx], names[b_idx]
                    pe_a, pe_b = current.pe_of(a), current.pe_of(b)
                    if pe_a == pe_b:
                        continue
                    candidate = current.with_assignment(
                        a, pe_b
                    ).with_assignment(b, pe_a)
                    analysis = analyze(candidate, **flags)
                    value = _analysis_value(obj, analysis)
                    if analysis.feasible and value < best_value:
                        best_candidate, best_value = candidate, value
        if best_candidate is None:
            break
        current, current_value = best_candidate, best_value
    return current


def budgeted_descent(
    state,
    objective=None,
    budget: int = 1,
    pes: Optional[List[int]] = None,
    period_cap: float = math.inf,
) -> int:
    """Steepest descent with an explicit move budget — in place.

    The remapping primitive of the online runtime
    (:mod:`repro.runtime.scheduler`), exposed here because it is a
    general neighbourhood-search building block: apply at most
    ``budget`` strictly-improving feasible single-task moves to
    ``state`` (a :class:`DeltaAnalyzer` or anything with its evaluation
    surface), each chosen as the best ``(objective value, period)`` over
    the whole move neighbourhood.  Unlike :func:`local_search` it
    mutates the given state, counts every applied move against the
    budget (each move is one task *migration* — a real reconfiguration
    cost online), and restricts candidate target PEs to ``pes``
    (default: all — pass the live subset to respect failed SPEs).

    Moves never violate hard constraints, and never push the period
    above ``period_cap`` unless the state is already past the cap — then
    any period-reducing move is allowed (the repair descent after an SPE
    failure).  ``objective`` is an objective *instance* (see
    :func:`repro.steady_state.objective.make_objective`) or ``None`` for
    the plain period.  Returns the number of moves applied.
    """
    if budget <= 0:
        return 0
    names = state.graph.task_names()
    if pes is None:
        pes = list(range(state.platform.n_pes))
    moves = 0
    while moves < budget:
        # One batched neighbourhood scan per migration: `best_move`
        # shares the per-task precomputation across all target PEs and
        # applies the exact historical candidate ranking (strict
        # (value, period) improvement, earliest tie wins).
        found = state.best_move(
            names, pes, objective, period_cap=period_cap
        )
        if found is None:
            break
        state.apply_move(found[0], found[1])
        moves += 1
    return moves


def _feasible_start(
    graph: StreamGraph,
    platform: CellPlatform,
    start: Optional[Mapping],
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
) -> Mapping:
    """A feasible starting point: the given one, critical-path, or PPE-only.

    Feasibility is judged under the requested buffer model; the PPE-only
    fallback hosts no SPE buffers, so it is feasible under every model.
    """
    if start is None:
        start = critical_path_mapping(graph, platform)
    feasible = analyze(
        start,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    ).feasible
    if not feasible:
        start = Mapping.all_on_ppe(graph, platform)
    return start


def simulated_annealing(
    graph: StreamGraph,
    platform: CellPlatform,
    start: Optional[Mapping] = None,
    seed: int = 0,
    iterations: Optional[int] = None,
    initial_temperature: Optional[float] = None,
    swap_prob: float = 0.25,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
    objective: str = "period",
    backend: Optional[str] = None,
) -> Mapping:
    """Metropolis search over feasible mappings under ``objective``.

    Random single-task moves (and, with probability ``swap_prob``,
    task-pair swaps) are scored by :class:`DeltaAnalyzer`; improving
    candidates are always accepted, worsening ones with probability
    ``exp(-Δvalue/temp)`` under a geometric cooling schedule.  Infeasible
    candidates are rejected outright, and the best *feasible* state seen
    is returned — starting from a feasible mapping (``start`` if feasible,
    else the always-feasible PPE-only mapping), so the result is never
    infeasible.  Feasibility follows the buffer model selected by
    ``elide_local_comm`` / ``merge_same_pe_buffers``; candidate ranking
    follows ``objective`` (see the module docstring).
    """
    rng = random.Random(seed)
    obj = make_objective(objective, graph)
    start = _feasible_start(
        graph, platform, start, elide_local_comm, merge_same_pe_buffers
    )
    state = DeltaAnalyzer(
        start,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
        backend=backend,
    )
    names = graph.task_names()
    n_pes = platform.n_pes
    if n_pes < 2 or len(names) < 1:
        return start
    n_iter = iterations if iterations is not None else max(1500, 60 * len(names))

    current = state.evaluate(obj).value
    best_assignment = state.assignment()
    best_value = current
    # Clamp away zero/negative temperatures: 0 would divide by zero in the
    # Metropolis test and negatives would invert it; 1e-9 µs is cold enough
    # to behave as pure greedy acceptance.
    temperature = max(
        initial_temperature
        if initial_temperature is not None
        else 0.05 * current,
        1e-9,
    )
    # Geometric schedule reaching 0.1 % of the initial temperature.
    alpha = (1e-3) ** (1.0 / max(n_iter, 1))
    applied = 0

    # One span over the whole anneal: per-iteration spans (thousands of
    # ~10 µs proposals) would dominate the trace; proposal counts land
    # in the moves/swaps-scored metrics instead.
    with _span("strategy:simulated_annealing", iterations=n_iter):
        for _ in range(n_iter):
            if len(names) >= 2 and rng.random() < swap_prob:
                a, b = rng.sample(names, 2)
                if state.pe_of(a) == state.pe_of(b):
                    temperature *= alpha
                    continue
                score = state.evaluate_swap(a, b, obj)
                candidate = ("swap", a, b)
            else:
                name = names[rng.randrange(len(names))]
                pe = rng.randrange(n_pes)
                if pe == state.pe_of(name):
                    temperature *= alpha
                    continue
                score = state.evaluate_move(name, pe, obj)
                candidate = ("move", name, pe)
            if score.feasible:
                delta_t = score.value - current
                if delta_t <= 0 or rng.random() < math.exp(
                    -delta_t / temperature
                ):
                    if candidate[0] == "move":
                        state.apply_move(candidate[1], int(candidate[2]))
                    else:
                        state.apply_swap(candidate[1], candidate[2])
                    applied += 1
                    if applied % _RESYNC_EVERY == 0:
                        state.resync()
                    current = state.evaluate(obj).value
                    if current < best_value:
                        best_value = current
                        best_assignment = state.assignment()
            temperature *= alpha
    return Mapping(graph, platform, best_assignment)


def tabu_search(
    graph: StreamGraph,
    platform: CellPlatform,
    start: Optional[Mapping] = None,
    seed: int = 0,
    rounds: Optional[int] = None,
    tenure: Optional[int] = None,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
    objective: str = "period",
    backend: Optional[str] = None,
) -> Mapping:
    """Tabu search over single-task moves under ``objective``.

    Each round scores the full move neighbourhood with
    :class:`DeltaAnalyzer` and applies the best feasible move — even a
    worsening one, which lets the search climb out of the local optima
    where :func:`local_search` stops.  Recently moved tasks are tabu for
    ``tenure`` rounds unless the move beats the best value seen so far
    (aspiration).  Starts feasible and only ever visits feasible states,
    so the returned mapping is never infeasible.  Feasibility follows the
    buffer model selected by ``elide_local_comm`` /
    ``merge_same_pe_buffers``; candidate ranking follows ``objective``.
    """
    rng = random.Random(seed)
    obj = make_objective(objective, graph)
    start = _feasible_start(
        graph, platform, start, elide_local_comm, merge_same_pe_buffers
    )
    state = DeltaAnalyzer(
        start,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
        backend=backend,
    )
    names = graph.task_names()
    n_pes = platform.n_pes
    if n_pes < 2 or len(names) < 1:
        return start
    n_rounds = rounds if rounds is not None else max(40, 2 * len(names))
    tabu_tenure = tenure if tenure is not None else max(4, len(names) // 4)

    tabu_until: Dict[str, int] = {}
    best_assignment = state.assignment()
    best_value = state.evaluate(obj).value
    applied = 0

    for rnd in range(n_rounds):
        with _span("strategy:tabu_search.round", round=rnd):
            scan = list(names)
            rng.shuffle(scan)  # deterministic per seed; diversifies ties
            best_move: Optional[Tuple[str, int]] = None
            best_move_value = float("inf")
            # The whole round's neighbourhood in one dense pass, rows in
            # the shuffled scan order so tie wins match the per-task
            # loops.
            all_scores = state.evaluate_all_moves(scan, objective=obj)
            for i, name in enumerate(scan):
                origin = state.pe_of(name)
                is_tabu = tabu_until.get(name, 0) > rnd
                scores = all_scores[i]
                for pe in range(n_pes):
                    if pe == origin:
                        continue
                    score = scores[pe]
                    if not score.feasible:
                        continue
                    if is_tabu and score.value >= best_value:
                        continue  # tabu, and no aspiration
                    if score.value < best_move_value:
                        best_move, best_move_value = (name, pe), score.value
            if best_move is None:
                break  # neighbourhood exhausted (tabu and non-aspiring)
            name, pe = best_move
            state.apply_move(name, pe)
            applied += 1
            if applied % _RESYNC_EVERY == 0:
                state.resync()
            tabu_until[name] = rnd + 1 + tabu_tenure
            value = state.evaluate(obj).value
            if value < best_value:
                best_value = value
                best_assignment = state.assignment()
    return Mapping(graph, platform, best_assignment)


def genetic_algorithm(
    graph: StreamGraph,
    platform: CellPlatform,
    start: Optional[Mapping] = None,
    seed: int = 0,
    generations: Optional[int] = None,
    population_size: Optional[int] = None,
    elite: int = 2,
    crossover_prob: float = 0.9,
    mutation_prob: float = 0.4,
    tournament: int = 3,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
    objective: str = "period",
    backend: Optional[str] = None,
) -> Mapping:
    """Population search over *feasible* mappings under ``objective``.

    The genome is the task → PE assignment vector.  Every individual is
    held as a :class:`DeltaAnalyzer`, so the genetic operators are cheap:

    * **crossover** — clone one parent, inherit a random subset of the
      PEs where the other parent differs, scored as one bulk
      :meth:`~DeltaAnalyzer.score_changes`; if the blend is infeasible it
      is repaired by re-applying the inherited genes one by one, keeping
      only those that stay feasible (delta-scored repair);
    * **mutation** — move a random task to a delta-scored feasible PE
      (greedy-best half the time, uniform otherwise), O(deg) per try;
    * **selection** — size-``tournament`` tournaments on the period, with
      the ``elite`` best individuals cloned unchanged into the next
      generation.

    Random-immigrant seeding and each generation's fitness ranking go
    through the population-level ``score_assignments`` /
    ``evaluate_assignments`` batch (one dense pass over K candidate
    mappings under the numpy kernel backend, selected by ``backend``);
    a per-generation cache keeps the tournament/sort lookups O(1).

    The population is seeded with the feasible members of {``start`` (or
    the critical-path mapping), GREEDYCPU, GREEDYMEM} plus random feasible
    immigrants, so the search starts from diverse, constraint-respecting
    stock.  Every individual visited is feasible, the best-ever assignment
    is tracked across generations, and the search is fully deterministic
    for a given ``seed``.  Feasibility follows the buffer model selected
    by ``elide_local_comm`` / ``merge_same_pe_buffers``; fitness follows
    ``objective`` (see the module docstring).
    """
    rng = random.Random(seed)
    obj = make_objective(objective, graph)
    flags = dict(
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    )
    dflags = dict(flags, backend=backend)
    start = _feasible_start(
        graph, platform, start, elide_local_comm, merge_same_pe_buffers
    )
    names = graph.task_names()
    n_pes = platform.n_pes
    if n_pes < 2 or not names:
        return start
    pop_size = population_size or min(24, max(8, 4 + len(names) // 2))
    n_generations = (
        generations if generations is not None else max(15, len(names))
    )
    n_elite = max(1, min(elite, pop_size - 1))

    population: List[DeltaAnalyzer] = [DeltaAnalyzer(start, **dflags)]
    # All population-batch scoring runs against this never-mutated state;
    # the change sets always cover every task, so its own assignment is
    # irrelevant to the scores.
    scorer = population[0]
    for builder in (greedy_cpu, greedy_mem, critical_path_mapping):
        if len(population) >= pop_size:
            break
        try:
            candidate = DeltaAnalyzer(builder(graph, platform), **dflags)
        except MappingError:
            continue
        if candidate.feasible:
            population.append(candidate)
    attempts = 0
    max_attempts = 20 * pop_size
    while len(population) < pop_size and attempts < max_attempts:
        # Draw a batch of immigrants and score them in one population
        # pass; analyzers are built only for the feasible draws.  The
        # batch never exceeds the open slots, so the rng draw sequence
        # matches the historical one-at-a-time loop exactly.
        batch = min(pop_size - len(population), max_attempts - attempts)
        draws = [
            {name: rng.randrange(n_pes) for name in names}
            for _ in range(batch)
        ]
        attempts += batch
        for assignment, verdict in zip(draws, scorer.score_assignments(draws)):
            if verdict.feasible:
                population.append(
                    DeltaAnalyzer(Mapping(graph, platform, assignment), **dflags)
                )

    # Retired generations are recycled through in-place state copies
    # (one native call per clone under the cython backend) instead of
    # allocating a fresh analyzer per offspring.
    pool = ClonePool()

    fitness_cache: Dict[int, float] = {}

    if obj.needs_app_periods:
        def batch_fitness(states: List[DeltaAnalyzer]) -> List[float]:
            scores = scorer.evaluate_assignments(
                [st.assignment() for st in states], obj
            )
            return [score.value for score in scores]

        def fitness(state: DeltaAnalyzer) -> float:
            value = fitness_cache.get(id(state))
            return state.evaluate(obj).value if value is None else value
    else:  # period objective: skip the ObjectiveScore plumbing
        def batch_fitness(states: List[DeltaAnalyzer]) -> List[float]:
            scores = scorer.score_assignments(
                [st.assignment() for st in states]
            )
            return [score.period for score in scores]

        def fitness(state: DeltaAnalyzer) -> float:
            value = fitness_cache.get(id(state))
            return state.period() if value is None else value

    def mutate(state: DeltaAnalyzer, n_moves: int) -> None:
        for _ in range(n_moves):
            name = names[rng.randrange(len(names))]
            origin = state.pe_of(name)
            verdicts = state.evaluate_moves(name, objective=obj)  # batched
            feasible: List[Tuple[int, float]] = []
            for pe in range(n_pes):
                if pe == origin:
                    continue
                verdict = verdicts[pe]
                if verdict.feasible:
                    feasible.append((pe, verdict.value))
            if not feasible:
                continue
            if rng.random() < 0.5:
                target = min(feasible, key=lambda item: item[1])[0]
            else:
                target = feasible[rng.randrange(len(feasible))][0]
            state.apply_move(name, target)

    # Tight platforms can leave no feasible immigrants beyond the seeds;
    # pad the population with mutated clones (mutation preserves
    # feasibility, so the invariant holds).
    while len(population) < pop_size:
        parent = population[rng.randrange(len(population))]
        child = pool.clone(parent)
        mutate(child, 2)
        population.append(child)

    def select() -> DeltaAnalyzer:
        best = population[rng.randrange(len(population))]
        for _ in range(max(1, tournament) - 1):
            rival = population[rng.randrange(len(population))]
            if fitness(rival) < fitness(best):
                best = rival
        return best

    def crossover(a: DeltaAnalyzer, b: DeltaAnalyzer) -> DeltaAnalyzer:
        child = pool.clone(a)
        inherited = {
            name: b.pe_of(name)
            for name in names
            if a.pe_of(name) != b.pe_of(name) and rng.random() < 0.5
        }
        if not inherited:
            return child
        if child.try_apply_changes(inherited).feasible:
            return child
        for name, pe in inherited.items():  # delta-scored repair
            if child.score_move(name, pe).feasible:
                child.apply_move(name, pe)
        return child

    best_assignment = start.to_dict()
    best_value = math.inf

    def track(states: List[DeltaAnalyzer]) -> None:
        """Batch-score a fresh generation, refresh the fitness cache and
        the best-ever assignment."""
        nonlocal best_assignment, best_value
        values = batch_fitness(states)
        fitness_cache.clear()
        for state, value in zip(states, values):
            fitness_cache[id(state)] = value
            if value < best_value:
                best_value = value
                best_assignment = state.assignment()

    track(population)
    for _generation in range(n_generations):
        with _span("strategy:genetic_algorithm.generation", gen=_generation):
            population.sort(key=fitness)
            offspring = [pool.clone(population[i]) for i in range(n_elite)]
            while len(offspring) < pop_size:
                parent = select()
                if rng.random() < crossover_prob:
                    child = crossover(parent, select())
                else:
                    child = pool.clone(parent)
                if rng.random() < mutation_prob:
                    mutate(child, 1 + rng.randrange(2))
                offspring.append(child)
            # The outgoing generation feeds the free-list (never the
            # shared batch scorer — its id may outlive the cleared
            # fitness cache).
            for state in population:
                if state is not scorer:
                    pool.retire(state)
            population = offspring
            track(population)

    best = Mapping(graph, platform, best_assignment)
    # Guard against ulp-level drift on non-integer graphs misjudging
    # feasibility: re-check with the reference model before returning.
    if not analyze(best, **flags).feasible:
        return start
    return best


def random_mapping(
    graph: StreamGraph,
    platform: CellPlatform,
    seed: int = 0,
    require_feasible: bool = True,
    max_attempts: int = 1000,
) -> Mapping:
    """A uniform random mapping; optionally rejection-sampled to feasibility."""
    rng = random.Random(seed)
    names = graph.task_names()
    for _ in range(max_attempts):
        assignment = {
            name: rng.randrange(platform.n_pes) for name in names
        }
        mapping = Mapping(graph, platform, assignment)
        if not require_feasible or analyze(mapping).feasible:
            return mapping
    # Fall back to the always-feasible PPE-only mapping.
    return Mapping.all_on_ppe(graph, platform)
