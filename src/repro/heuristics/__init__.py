"""Mapping heuristics: the paper's baselines (§6.3) and extensions.

* :func:`greedy_mem`, :func:`greedy_cpu` — the paper's GREEDYMEM/GREEDYCPU;
* :func:`critical_path_mapping` — HEFT-style list scheduling (future work);
* :func:`local_search` — move/swap refinement of any mapping, delta-evaluated;
* :func:`simulated_annealing`, :func:`tabu_search` — metaheuristics built on
  the incremental :class:`~repro.steady_state.delta.DeltaAnalyzer`;
* :func:`genetic_algorithm` — population search with PE-assignment
  crossover and delta-scored mutation on cloned analyzer states;
* :func:`budgeted_descent` — steepest descent with an explicit move
  budget: the online runtime's remapping primitive;
* :func:`random_mapping` — feasible random baseline.
"""

from .extra import (
    budgeted_descent,
    critical_path_mapping,
    genetic_algorithm,
    local_search,
    random_mapping,
    simulated_annealing,
    tabu_search,
)
from .greedy import greedy_cpu, greedy_mem

__all__ = [
    "budgeted_descent",
    "critical_path_mapping",
    "genetic_algorithm",
    "local_search",
    "random_mapping",
    "simulated_annealing",
    "tabu_search",
    "greedy_cpu",
    "greedy_mem",
]
