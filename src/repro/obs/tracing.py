"""Span tracing: Chrome trace-event JSON from ``with span(...)`` blocks.

A :class:`Tracer` collects *complete* trace events (``"ph": "X"`` —
one dict per span with a start timestamp and a duration, both in
microseconds) in the format `chrome://tracing` and Perfetto load
directly.  Spans wrap the coarse units of work: strategy rounds, dense
kernel batch passes, apply/resync re-anchors and each online-runtime
event — granularities of microseconds to milliseconds, so the trace
stays small and the per-span overhead (two ``perf_counter`` calls and
one dict) is invisible next to the work it brackets.

Like the metrics registry, tracing is off by default and ≈ free when
off: :func:`span` returns a shared no-op context manager unless a
tracer is installed (:func:`start`, or ``REPRO_TRACE=1`` in the
environment).  Spans are passive — no randomness, no mutation of the
traced state — so enabling tracing never changes results.

Worker spans from a parallel sweep merge naturally: every event
carries its producing process id, so the parent just concatenates the
workers' event lists (:meth:`Tracer.absorb`) and Perfetto renders one
track per process.
"""

from __future__ import annotations

import json
import os
import threading
from time import perf_counter
from typing import Dict, List, Optional

__all__ = ["Tracer", "TRACER", "active", "span", "start", "stop"]


class _Span:
    """One timed block; append-on-exit so nesting needs no stack."""

    __slots__ = ("_tracer", "_name", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, args: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = perf_counter()
        tracer = self._tracer
        event = {
            "name": self._name,
            "ph": "X",
            "ts": (self._t0 - tracer.epoch) * 1e6,
            "dur": (t1 - self._t0) * 1e6,
            "pid": tracer.pid,
            "tid": threading.get_ident() & 0x7FFFFFFF,
            "cat": self._name.partition(":")[0],
        }
        if self._args:
            event["args"] = self._args
        tracer.events.append(event)


class _NullSpan:
    """The shared disabled-mode span: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events for one process.

    ``epoch`` anchors timestamps: spans report microseconds since the
    tracer was created, so a parent and its pool workers (each with
    their own epoch) render as parallel tracks starting near zero.
    """

    __slots__ = ("events", "epoch", "pid")

    def __init__(self) -> None:
        self.events: List[Dict] = []
        self.epoch = perf_counter()
        self.pid = os.getpid()

    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args)

    def absorb(self, events: List[Dict]) -> None:
        """Append another tracer's exported events (sweep workers)."""
        self.events.extend(events)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The collected spans as a Chrome trace-event JSON document."""
        return json.dumps(
            {"traceEvents": self.events, "displayTimeUnit": "ms"},
            indent=indent,
        )


#: The active tracer, or ``None`` when tracing is disabled.
TRACER: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    return TRACER


def start(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process's active tracer.

    Idempotent without arguments; passing ``tracer`` installs that
    instance.
    """
    global TRACER
    if tracer is not None:
        TRACER = tracer
    elif TRACER is None:
        TRACER = Tracer()
    return TRACER


def stop() -> Optional[Tracer]:
    """Uninstall and return the active tracer (``None`` if none was)."""
    global TRACER
    tracer, TRACER = TRACER, None
    return tracer


def span(name: str, **args):
    """A context-manager timer: records one trace event when enabled.

    The instrumentation entry point — ``with span("strategy:tabu",
    round=3): ...``.  When tracing is disabled this returns a shared
    no-op, so call sites need no conditional of their own.
    """
    tracer = TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


if os.environ.get("REPRO_TRACE", "").lower() not in ("", "0", "false"):
    start()
