"""Process-local metrics registry: counters, gauges, histograms.

Instrumentation across the delta kernels, the metaheuristics and the
online runtime funnels into one :class:`MetricsRegistry` per process.
The design contract, enforced by ``tests/test_obs.py`` and the nightly
overhead guard in ``benchmarks/bench_kernel.py``:

* **Disabled ≈ free.**  The registry is off by default; every
  instrumented hot path reads the module global :data:`REGISTRY` once
  and branches on ``None`` — no object allocation, no dict lookup, no
  call.  Enable with :func:`enable` (or ``REPRO_METRICS=1`` in the
  environment, read at import).
* **Passive.**  Recording a counter or a latency sample never consumes
  randomness, never touches float state of the thing being measured —
  enabling metrics cannot change a mapping, a seeded strategy's
  decisions, or ``snapshot()``/``analyze()`` bit-identity.
* **Mergeable.**  :meth:`MetricsRegistry.snapshot` is a plain picklable
  dict and :meth:`MetricsRegistry.merge` folds one snapshot into
  another, so ``experiments/parallel`` sweep workers ship their
  registries back to the parent (see
  :func:`repro.experiments.parallel.run_sweep_telemetry`) and the
  parent reports a single merged view.  Counter totals and histogram
  *counts* are deterministic (they count decisions, not wall time), so
  serial == parallel extends to telemetry; histogram bucket
  distributions and sums record wall-clock latencies and are the only
  non-deterministic entries.

Named metrics (the fixed vocabulary the instrumented layers emit):

==============================  =========================================
``moves_scored``                single-task move candidates scored
``swaps_scored``                task-pair swap candidates scored
``bulk_changes``                bulk change-sets / assignments scored
``resyncs``                     O(V+E) state re-anchors
``backend_dispatches.<name>``   analyzer constructions per kernel backend
``clone_pool_hits/misses``      ClonePool free-list recycles vs fresh clones
``admissions.<verdict>``        online admissions: accepted|rejected|shed
``retry_queue_depth``           gauge: deferred-admission queue depth
``brownout_transitions``        brownout mode enters + exits
``admission_latency``           histogram: per-arrival decision seconds
``repair_latency``              histogram: departure/recovery/perturb events
``evacuation_latency``          histogram: failure-evacuation events
==============================  =========================================
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "active",
    "disable",
    "enable",
    "enabled",
]

#: Fixed latency buckets (seconds): 10 µs … 10 s in decade-thirds, the
#: range spanning a single kernel sweep up to a full re-optimisation
#: pass.  Fixed (not adaptive) so merged histograms from different
#: workers are bucket-compatible by construction.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``buckets`` are upper bounds; a sample lands in the first bucket
    whose bound is >= the value, or in the overflow slot past the last
    bound.  ``count`` is deterministic for deterministic workloads
    (it counts observations); ``sum``/``min``/``max`` and the bucket
    distribution record wall-clock values.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError(
                f"histogram buckets must be sorted and non-empty "
                f"(got {buckets!r})"
            )
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile by interpolation inside buckets.

        The estimate interpolates linearly within the bucket holding
        the ``q``-th sample (bucket lower bound → upper bound), then
        clamps to the exact ``min``/``max`` sidecars so the extremes
        never overshoot the observed range.  0.0 for an empty
        histogram.  This is the service experiment's p50/p99 source —
        deterministic given the bucket counts, which are themselves
        deterministic only for deterministic workloads (latency buckets
        are wall-clock).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1] (got {q!r})")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            if self.counts[i] and cumulative + self.counts[i] >= rank:
                fraction = (rank - cumulative) / self.counts[i]
                value = lower + fraction * (bound - lower)
                return min(max(value, self.min), self.max)
            cumulative += self.counts[i]
            lower = bound
        return self.max

    def to_dict(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class MetricsRegistry:
    """One process's metric state: plain dicts, no locks, no threads.

    All instrumented layers run single-threaded per process (the sweep
    runner fans across *processes*), so increments are plain ``+=`` on
    dict slots — the cheapest thing Python can do per sample.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -------------------------------------------------------------- #
    # Recording

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -------------------------------------------------------------- #
    # Snapshot / merge (the sweep-worker shipping protocol)

    def snapshot(self) -> Dict:
        """The registry as a plain picklable/JSON-able dict."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict()
                for name, hist in self.histograms.items()
            },
        }

    def merge(self, snapshot: Dict) -> "MetricsRegistry":
        """Fold one :meth:`snapshot` into this registry, in place.

        Counters and histogram counts/sums add; gauges keep the last
        merged value (they are point-in-time readings); min/max widen.
        Histograms merge bucket-by-bucket — every producer uses the
        same fixed bounds, and mismatched bounds raise rather than
        silently misfile samples.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(payload["buckets"])
            if list(hist.buckets) != list(payload["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket mismatch on merge: "
                    f"{hist.buckets} vs {payload['buckets']}"
                )
            for i, c in enumerate(payload["counts"]):
                hist.counts[i] += c
            hist.count += payload["count"]
            hist.sum += payload["sum"]
            if payload["count"]:
                hist.min = min(hist.min, payload["min"])
                hist.max = max(hist.max, payload["max"])
        return self

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )


#: The active registry, or ``None`` when metrics are disabled.  Hot
#: paths read this module global directly (via :func:`active` at the
#: boundary layers, or ``metrics.REGISTRY`` where the extra call would
#: show up) — when ``None``, instrumentation is a load + branch.
REGISTRY: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The enabled registry, or ``None`` — the instrumentation gate."""
    return REGISTRY


def enabled() -> bool:
    return REGISTRY is not None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process's active registry.

    Idempotent without arguments: re-enabling keeps the existing
    registry and its counts.  Passing ``registry`` installs that
    instance (the sweep wrapper uses this to give each point a fresh
    one).
    """
    global REGISTRY
    if registry is not None:
        REGISTRY = registry
    elif REGISTRY is None:
        REGISTRY = MetricsRegistry()
    return REGISTRY


def disable() -> None:
    """Drop the active registry; instrumentation reverts to no-ops."""
    global REGISTRY
    REGISTRY = None


if os.environ.get("REPRO_METRICS", "").lower() not in ("", "0", "false"):
    enable()
