"""Observability: metrics registry, span tracing, structured logging.

Three small, independent, all-off-by-default facilities (see the
README's "Observability" section for the walkthrough):

* :mod:`repro.obs.metrics` — process-local counters, gauges and
  fixed-bucket latency histograms with a picklable
  ``snapshot()``/``merge()`` protocol so parallel-sweep workers ship
  their registries back to the parent.  Enable with
  :func:`enable_metrics` or ``REPRO_METRICS=1``.
* :mod:`repro.obs.tracing` — a ``with span(...)`` timer emitting
  Chrome trace-event JSON (Perfetto / ``chrome://tracing`` loadable).
  Enable with :func:`start_tracing` or ``REPRO_TRACE=1``.
* :mod:`repro.obs.logging` — one structured-logging config
  (``REPRO_LOG=json|text``).

The shared contract: instrumentation off is ≈ free (a global load and
a branch per instrumented call), and instrumentation on is *passive* —
it never consumes randomness or perturbs the measured computation, so
mappings, seeded strategies and ``RuntimeReport`` decisions are
bit-identical with and without it.
"""

from .logging import configure as configure_logging
from .logging import get_logger
from .metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    disable as disable_metrics,
    enable as enable_metrics,
    enabled as metrics_enabled,
)
from .metrics import active as active_metrics
from .tracing import (
    Tracer,
    span,
    start as start_tracing,
    stop as stop_tracing,
)
from .tracing import active as active_tracer

__all__ = [
    "LATENCY_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "configure_logging",
    "disable_metrics",
    "enable_metrics",
    "get_logger",
    "metrics_enabled",
    "span",
    "start_tracing",
    "stop_tracing",
]
