"""Opt-in structured logging: one config, selected by ``REPRO_LOG``.

The library is silent by default (loggers propagate to the root with no
handler of their own — standard library-citizen behaviour).  Setting
``REPRO_LOG=text`` or ``REPRO_LOG=json`` in the environment, or calling
:func:`configure` directly, attaches a single stderr handler to the
``repro`` logger tree:

* ``text`` — conventional ``time level logger: message`` lines;
* ``json`` — one JSON object per line (``ts``/``level``/``logger``/
  ``msg`` plus any ``extra={...}`` fields), ready for ``jq`` or a log
  shipper.

Instrumented layers obtain loggers via :func:`get_logger` and guard
per-event records with ``isEnabledFor``, so an unconfigured run pays
one boolean check per log site and allocates nothing.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Optional

__all__ = ["configure", "get_logger"]

_STANDARD_ATTRS = frozenset(
    logging.LogRecord(
        "", logging.INFO, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class _JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` kwargs become fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure(
    mode: Optional[str] = None, level: int = logging.INFO
) -> Optional[logging.Logger]:
    """Attach the structured stderr handler to the ``repro`` logger.

    ``mode`` defaults to the ``REPRO_LOG`` environment variable; with
    neither set this is a no-op returning ``None`` (the library stays
    silent).  Idempotent: reconfiguring replaces the previously
    attached handler instead of stacking duplicates.
    """
    if mode is None:
        mode = os.environ.get("REPRO_LOG", "")
    mode = mode.strip().lower()
    if not mode:
        return None
    if mode not in ("json", "text"):
        raise ValueError(
            f"REPRO_LOG must be 'json' or 'text' (got {mode!r})"
        )
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_obs = True
    if mode == "json":
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


if os.environ.get("REPRO_LOG", "").strip():
    configure()
