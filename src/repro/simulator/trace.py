"""Simulation results: throughput traces and summary statistics.

The paper's Fig. 6 plots the *achieved throughput as a function of the
number of processed instances* — a running-rate curve that ramps up while
the pipeline fills and settles at steady state.  :class:`SimulationResult`
reconstructs exactly that curve from per-instance completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..steady_state.mapping import Mapping
from ..steady_state.throughput import analyze
from .config import SimConfig

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Outcome of one simulated stream execution."""

    mapping: Mapping
    config: SimConfig
    n_instances: int
    #: Completion time (µs) of each stream instance at the last sink.
    completion_times: List[float]
    #: Time of the very last event (trailing memory writes included).
    end_time: float
    pe_busy: Dict[str, float]
    pe_overhead: Dict[str, float]
    pe_activations: Dict[str, int]
    #: (pe, task, instance, start, end) activations when
    #: ``SimConfig.trace_activity`` is on; empty otherwise.
    activity: List[Tuple[int, str, int, float, float]] = field(
        default_factory=list
    )
    _analysis: object = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Headline numbers

    @property
    def makespan(self) -> float:
        """Time (µs) until the last instance left the pipeline."""
        return self.completion_times[-1] if self.completion_times else 0.0

    @property
    def throughput(self) -> float:
        """Overall achieved throughput, instances/µs (ramp-up included)."""
        return self.n_instances / self.makespan if self.makespan else float("inf")

    def steady_state_throughput(self, skip_fraction: float = 0.25) -> float:
        """Throughput over the middle of the stream — the Fig. 6 plateau.

        Both ends of the stream are transient: the ramp-up while the
        pipeline fills (≈ the max ``firstPeriod``, the paper's "steady
        state after ~1000 instances") and the *drain*, where upstream tasks
        have finished and the remaining instances flush faster than the
        steady rate.  We therefore rate the band
        ``[skip_fraction, 1 - skip_fraction]`` of the instances.
        """
        times = self.completion_times
        if len(times) < 2:
            return self.throughput
        lo = int(len(times) * skip_fraction)
        hi = max(lo + 1, len(times) - 1 - int(len(times) * skip_fraction))
        hi = min(hi, len(times) - 1)
        span = times[hi] - times[lo]
        return (hi - lo) / span if span > 0 else float("inf")

    # ------------------------------------------------------------------ #
    # Comparisons with the analytic model

    @property
    def analysis(self):
        if self._analysis is None:
            object.__setattr__(self, "_analysis", analyze(self.mapping))
        return self._analysis

    @property
    def predicted_throughput(self) -> float:
        """The analytic (LP-model) throughput of the same mapping."""
        return self.analysis.throughput

    def efficiency(self) -> float:
        """Measured steady-state throughput over predicted (§6.4.1 ≈ 95 %)."""
        predicted = self.predicted_throughput
        if predicted == 0:
            return float("inf")
        return self.steady_state_throughput() / predicted

    # ------------------------------------------------------------------ #
    # Fig. 6 curve

    def throughput_curve(
        self, window: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Achieved throughput as a function of instances processed (Fig. 6).

        With ``window=None`` (default) this is the paper's metric — the
        *cumulative* rate ``instances / elapsed``, which ramps up while the
        pipeline fills and converges to the steady state.  A positive
        ``window`` gives the instantaneous rate over the last ``window``
        instances instead (noisier, useful for diagnosing stalls).

        Returns ``(instances_processed, rate)`` points (rate in
        instances/µs).
        """
        times = self.completion_times
        points: List[Tuple[int, float]] = []
        if window is None:
            for i, t in enumerate(times):
                if t > 0:
                    points.append((i + 1, (i + 1) / t))
            return points
        for i in range(1, len(times)):
            j = max(0, i - window)
            span = times[i] - times[j]
            if span > 0:
                points.append((i + 1, (i - j) / span))
        return points

    def utilisation(self) -> Dict[str, float]:
        """Busy fraction of each PE over the whole run (diagnostics)."""
        span = self.end_time or 1.0
        return {
            name: (self.pe_busy[name] + self.pe_overhead.get(name, 0.0)) / span
            for name in self.pe_busy
        }

    def activity_text(
        self, t_start: float = 0.0, t_end: float = float("inf"), width: int = 72
    ) -> str:
        """ASCII Gantt of traced activations in ``[t_start, t_end]``.

        Requires the run to have used ``SimConfig(trace_activity=True)``.
        """
        if not self.activity:
            return "(no activity trace; run with SimConfig(trace_activity=True))"
        window = [
            a for a in self.activity if a[4] >= t_start and a[3] <= t_end
        ]
        if not window:
            return "(no activity in the requested window)"
        lo = min(a[3] for a in window)
        hi = max(a[4] for a in window)
        span = hi - lo or 1.0
        per_pe: Dict[int, List] = {}
        for pe, task, instance, start, end in window:
            per_pe.setdefault(pe, []).append((task, instance, start, end))
        platform = self.mapping.platform
        lines = [f"activity {lo:.1f} .. {hi:.1f} µs"]
        for pe in sorted(per_pe):
            row = [" "] * width
            for task, _inst, start, end in per_pe[pe]:
                a = int((start - lo) / span * (width - 1))
                b = max(a + 1, int((end - lo) / span * (width - 1)))
                marker = task[-1] if task else "#"
                for col in range(a, min(b, width)):
                    row[col] = marker
            lines.append(f"{platform.pe_name(pe):>6} |{''.join(row)}|")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable digest of the run."""
        lines = [
            f"simulated {self.n_instances} instances of "
            f"{self.mapping.graph.name!r} in {self.makespan / 1e6:.4f} s",
            f"  overall throughput : {self.throughput * 1e6:10.2f} instances/s",
            "  steady-state       : "
            f"{self.steady_state_throughput() * 1e6:10.2f} instances/s",
            "  model prediction   : "
            f"{self.predicted_throughput * 1e6:10.2f} instances/s",
            f"  efficiency         : {self.efficiency() * 100:10.1f} %",
        ]
        for name, frac in sorted(self.utilisation().items()):
            if self.pe_activations.get(name):
                lines.append(f"  {name:>6} busy {frac * 100:5.1f} %")
        return "\n".join(lines)
