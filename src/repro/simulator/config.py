"""Simulation configuration knobs.

The defaults reproduce the paper's runtime (§6.1): receiver-driven DMA with
queue limits enforced, bounded-multiport bandwidth sharing, and realistic
per-DMA/per-activation overheads that account for the ≈5 % gap between the
model's throughput and the measured one (§6.4.1).  Every knob exists to
support an ablation called out in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..platform.dma import DmaCosts

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the discrete-event Cell simulator.

    Attributes
    ----------
    dma:
        Per-DMA overheads (issue/completion/signal/latency).  Use
        :meth:`DmaCosts.free` to match the analytic model exactly,
        :meth:`DmaCosts.realistic` for hardware-like overheads.
    scheduler_overhead:
        µs of bookkeeping per task activation — the cost of one turn of the
        Fig. 4 select/check loop of the paper's runtime.
    enforce_dma_slots:
        Throttle concurrent DMAs to 16 per receiving SPE and 8 per
        SPE-to-PPE proxy queue (§2.1).  Disabling is an ablation.
    count_memory_dma:
        Whether SPE main-memory reads/writes occupy MFC queue slots too.
        The paper's LP counts only inter-PE data (default False).
    serial_comm:
        Replace bounded-multiport sharing with one-transfer-at-a-time
        interfaces (model-accuracy ablation).
    enforce_eib:
        Cap the summed rate of all flows at the EIB ring bandwidth.  The
        paper argues this never binds (8 × 25 GB/s = 200 GB/s); the flag
        lets tests verify that claim.
    mem_write_window:
        Outstanding main-memory writes a task may have in flight before it
        stalls (double-buffering by default).
    trace_instances:
        Record per-instance completion times (needed for Fig. 6 curves).
    trace_activity:
        Record every task activation interval (pe, task, instance, start,
        end) — memory-hungry on long streams, great for debugging and
        Gantt rendering.
    max_events:
        Safety valve against runaway simulations.
    """

    dma: DmaCosts = field(default_factory=DmaCosts.free)
    scheduler_overhead: float = 0.0
    enforce_dma_slots: bool = True
    count_memory_dma: bool = False
    serial_comm: bool = False
    enforce_eib: bool = False
    mem_write_window: int = 2
    trace_instances: bool = True
    trace_activity: bool = False
    max_events: int = 200_000_000

    def __post_init__(self) -> None:
        if self.scheduler_overhead < 0:
            raise SimulationError("scheduler_overhead must be non-negative")
        if self.mem_write_window < 1:
            raise SimulationError("mem_write_window must be >= 1")
        if self.max_events < 1:
            raise SimulationError("max_events must be >= 1")

    @classmethod
    def ideal(cls) -> "SimConfig":
        """Zero overheads — the simulator should match the analytic model."""
        return cls(dma=DmaCosts.free(), scheduler_overhead=0.0)

    @classmethod
    def realistic(cls) -> "SimConfig":
        """Hardware-like overheads calibrated for the ≈95 % ratio of §6.4.1.

        ``scheduler_overhead`` covers one turn of the Fig. 4 loop: task
        selection, resource checks and the synchronisation the paper blames
        for its model-vs-hardware gap.
        """
        return cls(dma=DmaCosts.realistic(), scheduler_overhead=20.0)
