"""Discrete-event simulator of a mapped streaming application on the Cell.

This is the repository's stand-in for the paper's PlayStation 3 / QS22
hardware.  It executes the runtime of §6.1 faithfully:

* each PE runs the Fig. 4 state machine — select a runnable task
  (round-robin), wait for resources (input instances including peek,
  output buffer slots), process, signal;
* all inter-PE data is pulled by the consumer through DMA gets, with the
  MFC queue limits of §2.1 (16 gets per SPE, 8 PPE-issued proxy gets per
  SPE) throttling concurrency;
* transfers share interface bandwidth under the bounded-multiport model
  (max-min fair fluid flows, see :mod:`repro.simulator.flows`);
* main-memory reads/writes are transfers to the unconstrained MEM endpoint
  through the PE's own interface, as in the paper's model;
* configurable per-DMA and per-activation overheads reproduce the gap
  between model and hardware reported in §6.4.1.

Events are (time, seq, kind, payload) tuples in a binary heap; fluid-flow
completions use epoch tokens for lazy invalidation when rates change.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SimulationError
from ..steady_state.mapping import Mapping
from ..steady_state.periods import first_periods
from .config import SimConfig
from .flows import FlowNetwork
from .state import EdgeKind, EdgeRuntime, PEState, TaskRuntime
from .trace import SimulationResult

__all__ = ["Simulator", "simulate"]

_TASK_DONE = 0
_FLOW_START = 1  # DMA latency elapsed: the fluid flow begins
_FLOW_DONE = 2


class Simulator:
    """Simulate ``n_instances`` of the stream under a fixed mapping."""

    def __init__(self, mapping: Mapping, config: Optional[SimConfig] = None) -> None:
        self.mapping = mapping
        self.config = config or SimConfig()
        self.platform = mapping.platform
        self.graph = mapping.graph
        self.now = 0.0
        self._seq = 0
        self._events: List[Tuple[float, int, int, object]] = []
        self._build_network()
        self._build_state()

    # ------------------------------------------------------------------ #
    # Construction

    def _build_network(self) -> None:
        capacity = {}
        for pe in range(self.platform.n_pes):
            capacity[("out", pe)] = self.platform.bw
            capacity[("in", pe)] = self.platform.bw
        # Multi-Cell platforms: one directed BIF link port per chip pair.
        for c_src in range(self.platform.n_cells):
            for c_dst in range(self.platform.n_cells):
                if c_src != c_dst:
                    capacity[("bif", c_src, c_dst)] = self.platform.bif_bw
        self.net = FlowNetwork(
            capacity,
            eib_bw=self.platform.eib_bw if self.config.enforce_eib else None,
            serial=self.config.serial_comm,
        )

    def _build_state(self) -> None:
        mapping, platform, graph = self.mapping, self.platform, self.graph
        fp = first_periods(graph)
        self.pes: List[PEState] = [
            PEState(
                index=i,
                name=platform.pe_name(i),
                is_spe=platform.is_spe(i),
            )
            for i in range(platform.n_pes)
        ]
        self.tasks: Dict[str, TaskRuntime] = {}
        sinks = set(graph.sinks())
        for name in graph.topological_order():
            task = graph.task(name)
            pe = mapping.pe_of(name)
            runtime = TaskRuntime(
                name=name,
                pe=pe,
                cost=task.cost_on(platform.kind(pe)),
                peek=task.peek,
                is_sink=name in sinks,
            )
            self.tasks[name] = runtime
            self.pes[pe].tasks.append(runtime)

        self.edges: List[EdgeRuntime] = []
        for edge in graph.edges():
            src_pe = mapping.pe_of(edge.src)
            dst_pe = mapping.pe_of(edge.dst)
            window = fp[edge.dst] - fp[edge.src]
            runtime = EdgeRuntime(
                key=edge.key,
                kind=EdgeKind.LOCAL if src_pe == dst_pe else EdgeKind.REMOTE,
                src_pe=src_pe,
                dst_pe=dst_pe,
                data=edge.data,
                window=window,
                peek=graph.task(edge.dst).peek,
            )
            self.edges.append(runtime)
            self.tasks[edge.src].out_edges.append(runtime)
            self.tasks[edge.dst].in_edges.append(runtime)

        for task in graph.tasks():
            pe = mapping.pe_of(task.name)
            if task.read > 0:
                runtime = EdgeRuntime(
                    key=("MEM", task.name),
                    kind=EdgeKind.MEM_READ,
                    src_pe=None,
                    dst_pe=pe,
                    data=task.read,
                    window=2,
                    peek=0,
                )
                self.edges.append(runtime)
                self.tasks[task.name].in_edges.append(runtime)
            if task.write > 0:
                runtime = EdgeRuntime(
                    key=(task.name, "MEM"),
                    kind=EdgeKind.MEM_WRITE,
                    src_pe=pe,
                    dst_pe=None,
                    data=task.write,
                    window=self.config.mem_write_window,
                    peek=0,
                )
                self.edges.append(runtime)
                self.tasks[task.name].out_edges.append(runtime)

    # ------------------------------------------------------------------ #
    # Event plumbing

    def _push(self, time: float, kind: int, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, payload))

    def _reschedule_flows(self) -> None:
        """Reallocate rates and re-push completion events (epoch-tagged).

        A flow whose remaining bytes already reached zero (it finished at
        the exact same instant as the event being processed) completes
        *now*: the allocator gives it no rate, so it would otherwise never
        receive a completion event.
        """
        self.net.allocate()
        for flow in self.net.flows.values():
            if flow.remaining <= 1e-9:
                self._push(self.now, _FLOW_DONE, (flow.flow_id, flow.epoch))
            elif flow.rate > 0:
                finish = self.now + flow.remaining / flow.rate
                self._push(finish, _FLOW_DONE, (flow.flow_id, flow.epoch))

    # ------------------------------------------------------------------ #
    # DMA slot accounting

    def _dma_slot_free(self, edge: EdgeRuntime) -> bool:
        if not self.config.enforce_dma_slots:
            return True
        if edge.kind == EdgeKind.REMOTE:
            dst, src = edge.dst_pe, edge.src_pe
            assert dst is not None and src is not None
            if self.platform.is_spe(dst):
                return self.pes[dst].mfc_in_flight < self.platform.dma_in_slots
            if self.platform.is_spe(src):  # SPE -> PPE proxy get
                return self.pes[src].proxy_in_flight < self.platform.dma_proxy_slots
            return True  # PPE -> PPE memcpy
        if not self.config.count_memory_dma:
            return True
        owner = edge.dst_pe if edge.kind == EdgeKind.MEM_READ else edge.src_pe
        assert owner is not None
        if self.platform.is_spe(owner):
            return self.pes[owner].mfc_in_flight < self.platform.dma_in_slots
        return True

    def _dma_slot_take(self, edge: EdgeRuntime) -> None:
        if not self.config.enforce_dma_slots:
            return
        if edge.kind == EdgeKind.REMOTE:
            dst, src = edge.dst_pe, edge.src_pe
            assert dst is not None and src is not None
            if self.platform.is_spe(dst):
                self.pes[dst].mfc_in_flight += 1
            elif self.platform.is_spe(src):
                self.pes[src].proxy_in_flight += 1
            return
        if not self.config.count_memory_dma:
            return
        owner = edge.dst_pe if edge.kind == EdgeKind.MEM_READ else edge.src_pe
        assert owner is not None
        if self.platform.is_spe(owner):
            self.pes[owner].mfc_in_flight += 1

    def _dma_slot_release(self, edge: EdgeRuntime) -> None:
        if not self.config.enforce_dma_slots:
            return
        if edge.kind == EdgeKind.REMOTE:
            dst, src = edge.dst_pe, edge.src_pe
            assert dst is not None and src is not None
            if self.platform.is_spe(dst):
                self.pes[dst].mfc_in_flight -= 1
            elif self.platform.is_spe(src):
                self.pes[src].proxy_in_flight -= 1
            return
        if not self.config.count_memory_dma:
            return
        owner = edge.dst_pe if edge.kind == EdgeKind.MEM_READ else edge.src_pe
        assert owner is not None
        if self.platform.is_spe(owner):
            self.pes[owner].mfc_in_flight -= 1

    def _issuer_pe(self, edge: EdgeRuntime) -> Optional[int]:
        """PE whose compute is interrupted to issue/poll this DMA (§4.1)."""
        if edge.kind == EdgeKind.REMOTE:
            dst = edge.dst_pe
            assert dst is not None
            return dst  # receiver-driven gets
        if edge.kind == EdgeKind.MEM_READ:
            return edge.dst_pe
        return edge.src_pe

    # ------------------------------------------------------------------ #
    # Transfer pump (the communication phase of Fig. 4)

    def _pump_edges(self) -> bool:
        """Issue every DMA whose conditions hold (communication phase).

        Returns True when a fluid flow started *now* (zero-latency path),
        i.e. when rates must be reallocated.
        """
        started = False
        for edge in self.edges:
            if not edge.wants_transfer(self.n_instances):
                continue
            if not self._dma_slot_free(edge):
                continue
            self._dma_slot_take(edge)
            edge.in_flight += 1
            issuer = self._issuer_pe(edge)
            if issuer is not None:
                self.pes[issuer].overhead_debt += self.config.dma.issue_overhead
            if self.config.dma.latency > 0:
                self._push(
                    self.now + self.config.dma.latency, _FLOW_START, edge
                )
            else:
                self._start_flow(edge)
                started = True
        return started

    def _start_flow(self, edge: EdgeRuntime) -> None:
        src_port = None if edge.src_pe is None else ("out", edge.src_pe)
        dst_port = None if edge.dst_pe is None else ("in", edge.dst_pe)
        extra = ()
        if (
            edge.src_pe is not None
            and edge.dst_pe is not None
            and self.platform.n_cells > 1
            and self.platform.is_cross_cell(edge.src_pe, edge.dst_pe)
        ):
            extra = (
                (
                    "bif",
                    self.platform.cell_of(edge.src_pe),
                    self.platform.cell_of(edge.dst_pe),
                ),
            )
        self.net.start_flow(
            src_port, dst_port, edge.data, tag=edge, extra_ports=extra
        )

    # ------------------------------------------------------------------ #
    # Compute scheduling (the computation phase of Fig. 4)

    def _schedule_pe(self, pe: PEState) -> None:
        """If idle, pick the next runnable task round-robin and start it."""
        if pe.busy or not pe.tasks:
            return
        n = len(pe.tasks)
        for offset in range(n):
            task = pe.tasks[(pe.rr_next + offset) % n]
            if task.ready(self.n_instances, self.config.mem_write_window):
                pe.rr_next = (pe.rr_next + offset + 1) % n
                overhead = pe.overhead_debt + self.config.scheduler_overhead
                pe.overhead_debt = 0.0
                pe.overhead_time += overhead
                pe.busy_time += task.cost
                pe.activations += 1
                pe.busy = True
                finish = self.now + overhead + task.cost
                if self.config.trace_activity:
                    self.activity.append(
                        (pe.index, task.name, task.next_instance,
                         self.now + overhead, finish)
                    )
                self._push(finish, _TASK_DONE, task)
                return

    # ------------------------------------------------------------------ #
    # Event handlers

    def _on_task_done(self, task: TaskRuntime, touched: Set[int]) -> None:
        pe = self.pes[task.pe]
        pe.busy = False
        instance = task.next_instance
        task.next_instance += 1
        for edge in task.out_edges:
            edge.produced += 1
            if edge.kind == EdgeKind.LOCAL:
                assert edge.dst_pe is not None
                touched.add(edge.dst_pe)
            elif edge.kind == EdgeKind.REMOTE:
                pe.overhead_debt += self.config.dma.signal_overhead
                assert edge.dst_pe is not None
                touched.add(edge.dst_pe)
        for edge in task.in_edges:
            edge.consumed += 1
            if edge.kind == EdgeKind.LOCAL and edge.src_pe is not None:
                touched.add(edge.src_pe)
        touched.add(task.pe)
        if task.is_sink:
            self._sink_done[instance] += 1
            if self._sink_done[instance] == self._n_sinks:
                self.completion_times[instance] = self.now
                self.completed = instance + 1

    def _on_flow_done(self, edge: EdgeRuntime, touched: Set[int]) -> None:
        edge.arrived += 1
        edge.in_flight -= 1
        self._dma_slot_release(edge)
        issuer = self._issuer_pe(edge)
        if issuer is not None:
            self.pes[issuer].overhead_debt += self.config.dma.completion_overhead
            touched.add(issuer)
        if edge.src_pe is not None:
            touched.add(edge.src_pe)  # sender out-buffer unlocked
        if edge.dst_pe is not None:
            touched.add(edge.dst_pe)  # new input data

    # ------------------------------------------------------------------ #
    # Main loop

    def run(self, n_instances: int) -> SimulationResult:
        """Process ``n_instances`` of the stream; returns the result trace."""
        if n_instances < 1:
            raise SimulationError("n_instances must be >= 1")
        self.n_instances = n_instances
        sinks = [t for t in self.tasks.values() if t.is_sink]
        self._n_sinks = len(sinks)
        self._sink_done = [0] * n_instances
        self.completion_times: List[Optional[float]] = [None] * n_instances
        self.completed = 0
        #: (pe, task, instance, start, end) activations, if traced.
        self.activity: List[Tuple[int, str, int, float, float]] = []

        # Kick-off: pump initial memory reads and start source tasks.
        started = self._pump_edges()
        for pe in self.pes:
            self._schedule_pe(pe)
        if started:
            self._reschedule_flows()

        events_handled = 0
        while self._events:
            events_handled += 1
            if events_handled > self.config.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.config.max_events}; "
                    "likely a pathological configuration"
                )
            time, _seq, kind, payload = heapq.heappop(self._events)
            if kind == _FLOW_DONE:
                flow_id, epoch = payload  # type: ignore[misc]
                flow = self.net.flows.get(flow_id)
                if flow is None or flow.epoch != epoch:
                    continue  # stale event from a superseded allocation
            if time < self.now - 1e-9:
                raise SimulationError(
                    f"event time {time} precedes current time {self.now}"
                )
            self.net.advance(max(0.0, time - self.now))
            self.now = max(self.now, time)

            touched = set()
            flows_dirty = False
            if kind == _TASK_DONE:
                self._on_task_done(payload, touched)  # type: ignore[arg-type]
            elif kind == _FLOW_START:
                self._start_flow(payload)  # type: ignore[arg-type]
                flows_dirty = True
            else:  # _FLOW_DONE
                flow = self.net.finish_flow(flow_id)  # type: ignore[possibly-undefined]
                self._on_flow_done(flow.tag, touched)  # type: ignore[arg-type]
                flows_dirty = True

            if self._pump_edges():
                flows_dirty = True
            for pe_index in touched:
                self._schedule_pe(self.pes[pe_index])
            if flows_dirty:
                self._reschedule_flows()

        self._check_final_state()
        return SimulationResult(
            mapping=self.mapping,
            config=self.config,
            n_instances=n_instances,
            completion_times=[t for t in self.completion_times if t is not None],
            end_time=self.now,
            pe_busy={p.name: p.busy_time for p in self.pes},
            pe_overhead={p.name: p.overhead_time for p in self.pes},
            pe_activations={p.name: p.activations for p in self.pes},
            activity=self.activity,
        )

    def _check_final_state(self) -> None:
        """Conservation invariants: everything produced, shipped, consumed."""
        for task in self.tasks.values():
            if task.next_instance != self.n_instances:
                raise SimulationError(
                    f"deadlock/starvation: task {task.name!r} stopped at "
                    f"instance {task.next_instance}/{self.n_instances}"
                )
        for edge in self.edges:
            if edge.kind == EdgeKind.MEM_READ:
                continue  # reads may legitimately stop once consumers finish
            if edge.produced != self.n_instances:
                raise SimulationError(
                    f"edge {edge.key}: produced {edge.produced} != {self.n_instances}"
                )
            if edge.kind in (EdgeKind.REMOTE, EdgeKind.MEM_WRITE):
                if edge.arrived != edge.produced:
                    raise SimulationError(
                        f"edge {edge.key}: {edge.produced - edge.arrived} "
                        "instances never arrived"
                    )
        if self.net.flows:
            raise SimulationError(
                f"{len(self.net.flows)} flows still active at end of stream"
            )


def simulate(
    mapping: Mapping,
    n_instances: int,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(mapping, config).run(n_instances)
