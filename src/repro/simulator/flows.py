"""Bounded-multiport bandwidth sharing for the Cell simulator.

The paper models every PE interface as bidirectional bounded-multiport: any
number of transfers may progress concurrently as long as the summed rates
through each interface direction stay below ``bw`` (§2.1).  The classic
fluid realisation of that model is **max-min fairness** (progressive
filling): repeatedly find the most contended port, give its flows their
fair share, freeze them, and continue with the residual capacities.

Ports are ``("out", pe)`` / ``("in", pe)``; main memory is the unconstrained
endpoint ``None`` (the paper does not model the memory controller as a
bottleneck).  An optional aggregate EIB port reproduces the ring's 200 GB/s
cap for ablation, and ``serial=True`` degrades the model to
one-transfer-at-a-time per interface (store-and-forward comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["Flow", "FlowNetwork"]

Port = Tuple[str, int]  # ("out"|"in", pe index)

#: Shared pseudo-port representing the EIB ring (used when eib_bw is set).
_EIB_PORT: Hashable = ("eib", -1)


@dataclass
class Flow:
    """One in-flight transfer between two interface ports."""

    flow_id: int
    src_port: Optional[Port]  # None = main memory (unconstrained)
    dst_port: Optional[Port]
    remaining: float  # bytes left to move
    rate: float = 0.0  # bytes/µs, assigned by the allocator
    #: Event-invalidation token: bumped whenever the rate changes.
    epoch: int = 0
    #: Arbitrary payload for the engine (edge key, instance...).
    tag: object = None
    #: FIFO rank used by the serial allocator.
    arrival_order: int = field(default=0)
    #: Additional shared ports the flow traverses (e.g. the inter-Cell BIF
    #: link); each must respect its capacity like the endpoint interfaces.
    extra_ports: Tuple[Hashable, ...] = ()


class FlowNetwork:
    """Tracks active flows and assigns max-min fair rates."""

    def __init__(
        self,
        port_capacity: Dict[Port, float],
        eib_bw: Optional[float] = None,
        serial: bool = False,
    ) -> None:
        if any(c <= 0 for c in port_capacity.values()):
            raise SimulationError("port capacities must be positive")
        self.port_capacity = dict(port_capacity)
        self.eib_bw = eib_bw
        self.serial = serial
        self.flows: Dict[int, Flow] = {}
        self._next_id = 0
        self._arrival_counter = 0

    # ------------------------------------------------------------------ #

    def start_flow(
        self,
        src_port: Optional[Port],
        dst_port: Optional[Port],
        size: float,
        tag: object = None,
        extra_ports: Tuple[Hashable, ...] = (),
    ) -> Flow:
        """Register a transfer of ``size`` bytes; rates must be reallocated."""
        for port in (src_port, dst_port, *extra_ports):
            if port is not None and port not in self.port_capacity:
                raise SimulationError(f"unknown port {port!r}")
        flow = Flow(
            flow_id=self._next_id,
            src_port=src_port,
            dst_port=dst_port,
            remaining=max(size, 0.0),
            tag=tag,
            arrival_order=self._arrival_counter,
            extra_ports=tuple(extra_ports),
        )
        self._next_id += 1
        self._arrival_counter += 1
        self.flows[flow.flow_id] = flow
        return flow

    def finish_flow(self, flow_id: int) -> Flow:
        """Remove a completed flow; rates must be reallocated."""
        try:
            return self.flows.pop(flow_id)
        except KeyError:
            raise SimulationError(f"unknown flow {flow_id}") from None

    def advance(self, dt: float) -> None:
        """Progress every active flow by ``dt`` µs at its current rate."""
        if dt < 0:
            raise SimulationError(f"time went backwards (dt={dt})")
        for flow in self.flows.values():
            flow.remaining = max(0.0, flow.remaining - flow.rate * dt)

    # ------------------------------------------------------------------ #

    def _ports_of(self, flow: Flow) -> List[Hashable]:
        ports: List[Hashable] = []
        if flow.src_port is not None:
            ports.append(flow.src_port)
        if flow.dst_port is not None:
            ports.append(flow.dst_port)
        ports.extend(flow.extra_ports)
        if self.eib_bw is not None:
            ports.append(_EIB_PORT)
        return ports

    def allocate(self) -> None:
        """(Re)assign rates to all active flows and bump their epochs."""
        if self.serial:
            self._allocate_serial()
        else:
            self._allocate_maxmin()
        for flow in self.flows.values():
            flow.epoch += 1

    def _capacity(self, port: Hashable) -> float:
        if port == _EIB_PORT:
            assert self.eib_bw is not None
            return self.eib_bw
        return self.port_capacity[port]

    def _allocate_maxmin(self) -> None:
        """Progressive filling: saturate the tightest port, freeze, repeat."""
        active = {fid for fid, f in self.flows.items() if f.remaining > 0}
        for fid, flow in self.flows.items():
            flow.rate = 0.0
        residual: Dict[Hashable, float] = {}
        port_flows: Dict[Hashable, set] = {}
        for fid in active:
            for port in self._ports_of(self.flows[fid]):
                port_flows.setdefault(port, set()).add(fid)
                residual.setdefault(port, self._capacity(port))

        while active:
            # Fair share currently offered by each port still serving flows.
            best_port, best_share = None, float("inf")
            for port, fids in port_flows.items():
                live = fids & active
                if not live:
                    continue
                share = residual[port] / len(live)
                if share < best_share:
                    best_port, best_share = port, share
            if best_port is None:
                # No constrained port touches the remaining flows (memory to
                # memory): they are rate-unlimited in the model; give them
                # the largest port capacity as a finite stand-in.
                fallback = max(self.port_capacity.values(), default=1.0)
                for fid in active:
                    self.flows[fid].rate = fallback
                break
            saturated = port_flows[best_port] & active
            for fid in saturated:
                flow = self.flows[fid]
                flow.rate = best_share
                for port in self._ports_of(flow):
                    residual[port] -= best_share
            active -= saturated

    def _allocate_serial(self) -> None:
        """One transfer at a time per port, FIFO — store-and-forward mode."""
        for flow in self.flows.values():
            flow.rate = 0.0
        busy: set = set()
        ordered = sorted(
            (f for f in self.flows.values() if f.remaining > 0),
            key=lambda f: f.arrival_order,
        )
        for flow in ordered:
            ports = self._ports_of(flow)
            if any(p in busy for p in ports):
                continue
            flow.rate = min(self._capacity(p) for p in ports) if ports else (
                max(self.port_capacity.values(), default=1.0)
            )
            busy.update(ports)

    # ------------------------------------------------------------------ #

    def utilisation(self) -> Dict[Hashable, float]:
        """Current rate through each port (diagnostics/tests)."""
        usage: Dict[Hashable, float] = {}
        for flow in self.flows.values():
            for port in self._ports_of(flow):
                usage[port] = usage.get(port, 0.0) + flow.rate
        return usage

    def check_capacities(self, tolerance: float = 1e-6) -> None:
        """Raise if any port is driven above its capacity (invariant)."""
        for port, used in self.utilisation().items():
            cap = self._capacity(port)
            if used > cap * (1 + tolerance):
                raise SimulationError(
                    f"port {port!r} over capacity: {used:g} > {cap:g}"
                )
