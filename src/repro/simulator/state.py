"""Runtime state containers of the Cell simulator.

These mirror the paper's runtime (§6.1): every data dependency gets an
output buffer on the producer side and an input buffer on the consumer
side, sized by the §4.2 window; cross-PE data moves by receiver-issued DMA
gets; main-memory traffic is modelled as virtual edges to/from the
unconstrained ``MEM`` endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["EdgeKind", "EdgeRuntime", "TaskRuntime", "PEState"]


class EdgeKind:
    """How an edge is realised at runtime."""

    LOCAL = "local"  # endpoints share a PE: buffer hand-off, no transfer
    REMOTE = "remote"  # inter-PE DMA (mfc_get / proxy get / memcpy)
    MEM_READ = "mem_read"  # main memory -> task, per instance
    MEM_WRITE = "mem_write"  # task -> main memory, per instance


@dataclass
class EdgeRuntime:
    """Flow-control counters of one (possibly virtual) edge.

    Counter semantics (all monotone, in instance units):

    * ``produced`` — instances the producer has written to its out-buffer;
    * ``arrived``  — instances fully landed in the consumer's in-buffer;
    * ``consumed`` — instances released by the consumer;
    * ``in_flight`` — DMA transfers currently queued or moving.

    Invariants: ``consumed ≤ arrived ≤ arrived + in_flight ≤ produced`` for
    real edges; the sender's out-buffer holds ``produced - arrived``
    instances (DMA completion unlocks it, §6.1) and the receiver's
    in-buffer holds ``arrived - consumed``.
    """

    key: Tuple[str, str]
    kind: str
    src_pe: Optional[int]  # None for MEM_READ
    dst_pe: Optional[int]  # None for MEM_WRITE
    data: float  # bytes per instance
    window: int  # buffer capacity in instances (§4.2)
    peek: int  # look-ahead of the consumer
    produced: int = 0
    arrived: int = 0
    consumed: int = 0
    in_flight: int = 0

    # -- producer side ---------------------------------------------------- #

    def can_produce(self, mem_write_window: int) -> bool:
        """Is there a free slot for one more produced instance?"""
        if self.kind == EdgeKind.LOCAL:
            return self.produced - self.consumed < self.window
        if self.kind == EdgeKind.MEM_WRITE:
            return self.produced - self.arrived < mem_write_window
        # REMOTE: the sender buffer is unlocked only when data has arrived.
        return self.produced - self.arrived < self.window

    # -- consumer side ---------------------------------------------------- #

    def available(self) -> int:
        """Instances visible to the consumer."""
        if self.kind == EdgeKind.LOCAL:
            return self.produced
        return self.arrived

    def input_ready(self, instance: int, last_instance: int) -> bool:
        """Can the consumer process ``instance`` (peek included)?

        Near the end of the stream the look-ahead truncates: the consumer
        of instance ``i`` waits for instances ``i .. min(i+peek, last)``.
        """
        needed = min(instance + self.peek, last_instance)
        return self.available() >= needed + 1

    # -- transfer side ----------------------------------------------------- #

    def wants_transfer(self, total_instances: int) -> bool:
        """Does this edge have a transfer ready to be issued?"""
        if self.kind == EdgeKind.LOCAL:
            return False
        if self.in_flight > 0:
            # One get per data at a time, as in the paper's runtime.
            return False
        if self.kind == EdgeKind.MEM_READ:
            # The stream in memory is always available.
            if self.arrived >= total_instances:
                return False
            return self.arrived + self.in_flight - self.consumed < self.window
        if self.kind == EdgeKind.MEM_WRITE:
            return self.produced > self.arrived + self.in_flight
        # REMOTE
        if self.produced <= self.arrived + self.in_flight:
            return False  # nothing new to ship
        return self.arrived + self.in_flight - self.consumed < self.window


@dataclass
class TaskRuntime:
    """Per-task progress and its incident runtime edges."""

    name: str
    pe: int
    cost: float  # µs per instance on its PE
    peek: int
    is_sink: bool
    next_instance: int = 0
    in_edges: List[EdgeRuntime] = field(default_factory=list)
    out_edges: List[EdgeRuntime] = field(default_factory=list)

    def ready(self, total_instances: int, mem_write_window: int) -> bool:
        """The Fig. 4 'wait for resources' predicate for the next instance."""
        i = self.next_instance
        if i >= total_instances:
            return False
        last = total_instances - 1
        for edge in self.in_edges:
            if not edge.input_ready(i, last):
                return False
        for edge in self.out_edges:
            if not edge.can_produce(mem_write_window):
                return False
        return True


@dataclass
class PEState:
    """Per-PE compute state: one instance executes at a time."""

    index: int
    name: str
    is_spe: bool
    tasks: List[TaskRuntime] = field(default_factory=list)
    busy: bool = False
    #: Round-robin pointer into ``tasks`` (Fig. 4 'select a task').
    rr_next: int = 0
    #: µs of DMA bookkeeping to charge before the next task activation.
    overhead_debt: float = 0.0
    #: Accumulated statistics.
    busy_time: float = 0.0
    overhead_time: float = 0.0
    activations: int = 0
    #: Concurrent DMA gets issued by this SPE (MFC queue, cap 16).
    mfc_in_flight: int = 0
    #: Concurrent PPE-issued gets on this SPE (proxy queue, cap 8).
    proxy_in_flight: int = 0
