"""Discrete-event Cell BE simulator — the repository's hardware stand-in.

* :func:`simulate` / :class:`Simulator` — run a mapped stream (Fig. 4 runtime);
* :class:`SimConfig` — overheads and ablation switches;
* :class:`SimulationResult` — throughput curves and efficiency vs the model;
* :class:`FlowNetwork` — bounded-multiport max-min fair bandwidth sharing.
"""

from .config import SimConfig
from .engine import Simulator, simulate
from .flows import Flow, FlowNetwork
from .trace import SimulationResult

__all__ = [
    "SimConfig",
    "Simulator",
    "simulate",
    "Flow",
    "FlowNetwork",
    "SimulationResult",
]
