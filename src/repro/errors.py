"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so user
code can catch a single base class.  Sub-classes are grouped by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PlatformError",
    "GraphError",
    "CycleError",
    "WorkloadError",
    "MappingError",
    "InfeasibleMappingError",
    "KernelBackendError",
    "ObjectiveError",
    "SolverError",
    "InfeasibleModelError",
    "UnboundedModelError",
    "SimulationError",
    "GeneratorError",
    "ExperimentError",
    "UsageError",
    "OnlineSchedulingError",
    "JournalError",
    "CheckpointError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` library."""


class PlatformError(ReproError):
    """Invalid platform description (bad bandwidth, negative core counts...)."""


class GraphError(ReproError):
    """Invalid streaming task graph (unknown task, duplicate edge...)."""


class CycleError(GraphError):
    """The task graph contains a cycle and therefore is not a DAG."""


class WorkloadError(GraphError):
    """Invalid multi-application workload (duplicate app, bad weight...)."""


class MappingError(ReproError):
    """A mapping is malformed (task missing, unknown processing element...)."""


class ObjectiveError(ReproError):
    """Unknown or misconfigured scheduling objective."""


class KernelBackendError(ReproError):
    """Unknown or unavailable delta-kernel backend.

    Raised when ``REPRO_KERNEL_BACKEND`` (or an explicit ``backend=``
    argument) names a backend the library does not know, or requests
    ``numpy`` in an environment where numpy cannot be imported."""


class InfeasibleMappingError(MappingError):
    """A mapping violates a hard platform constraint (memory or DMA slots)."""


class SolverError(ReproError):
    """The LP/MILP backend failed (numerical trouble, unexpected status)."""


class InfeasibleModelError(SolverError):
    """The LP/MILP model admits no feasible point."""


class UnboundedModelError(SolverError):
    """The LP/MILP model is unbounded in the optimisation direction."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class GeneratorError(ReproError):
    """Invalid parameters passed to a workload generator."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class UsageError(ExperimentError):
    """The user's invocation is self-contradictory (e.g. duplicate apps).

    Subclasses :class:`ExperimentError` so existing ``except`` clauses and
    the CLI's error printing keep working; the distinct type lets front
    ends tell "you asked for something impossible" apart from "the harness
    is misconfigured"."""


class OnlineSchedulingError(ReproError):
    """The online scheduling runtime was driven inconsistently
    (malformed event timeline, failing an unknown or already-failed SPE...)."""


class JournalError(OnlineSchedulingError):
    """A write-ahead event journal is unreadable or inconsistent.

    Raised for corruption that recovery must *not* paper over: a bad or
    missing header, a malformed record before the final line, or
    out-of-order record indices.  A torn final line (the mid-write-crash
    signature) is explicitly **not** an error — recovery truncates it."""


class CheckpointError(OnlineSchedulingError):
    """A scheduler state checkpoint is unreadable, malformed, or does
    not match the journal it is being recovered against."""


class ServiceError(OnlineSchedulingError):
    """The scheduler service was driven inconsistently
    (started twice, submitted to after shutdown, bad configuration...)."""
