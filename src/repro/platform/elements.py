"""Processing elements of the Cell platform model.

The paper (§2.1) abstracts the Cell BE as a collection of *processing
elements* (PEs): PPE cores (general-purpose, transparent access to main
memory) and SPE cores (vector cores with a 256 kB local store reachable only
through DMA).  Every PE owns a bidirectional communication interface with
bandwidth ``bw`` in each direction — the only contention point of the model.

Units across the library: time in microseconds (µs), data in bytes,
bandwidth in bytes/µs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PEKind", "ProcessingElement", "CommInterface"]


class PEKind(enum.Enum):
    """The two classes of cores of the Cell BE (unrelated-machines model)."""

    PPE = "PPE"
    SPE = "SPE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class CommInterface:
    """A bidirectional bounded-multiport communication interface.

    ``bw_in``/``bw_out`` bound the *sum* of the bandwidths of concurrent
    incoming (resp. outgoing) transfers, matching the paper's
    bounded-multiport model with linear cost.
    """

    bw_in: float
    bw_out: float

    def __post_init__(self) -> None:
        if self.bw_in <= 0 or self.bw_out <= 0:
            raise ValueError("interface bandwidths must be positive")


@dataclass(frozen=True)
class ProcessingElement:
    """One core of the platform.

    Attributes
    ----------
    index:
        Global index of the PE.  Following the paper's convention, PPEs come
        first (``0 .. nP-1``) and SPEs afterwards (``nP .. nP+nS-1``).
    kind:
        :class:`PEKind.PPE` or :class:`PEKind.SPE`.
    interface:
        The bounded-multiport communication interface of this PE.
    """

    index: int
    kind: PEKind
    interface: CommInterface

    @property
    def is_spe(self) -> bool:
        return self.kind is PEKind.SPE

    @property
    def is_ppe(self) -> bool:
        return self.kind is PEKind.PPE

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``PPE0`` or ``SPE3``."""
        return f"{self.kind.value}{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
