"""DMA model of the Cell BE.

§2.1 and §4.1 of the paper describe three hard facts about DMA on the Cell:

* every SPE owns a Memory Flow Controller (MFC) whose command queue holds at
  most **16** simultaneous DMA commands issued by the SPE itself — in the
  scheduler all inter-PE data is *pulled* by the receiver, so this bounds
  the number of distinct data an SPE may **receive** per period;
* the *proxy* command queue of an SPE (commands issued on its behalf by
  PPEs) holds at most **8** entries — this bounds the number of distinct
  data an SPE may **send to PPEs** per period;
* SPEs are not multi-threaded: issuing/polling a DMA interrupts computation
  for a short, constant time.

The constants live here so the MILP formulation, the mapping validity
checker and the simulator all share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SPE_MFC_QUEUE_SLOTS",
    "SPE_PROXY_QUEUE_SLOTS",
    "DmaCosts",
]

#: Maximum simultaneous DMA commands issued *by* an SPE (its MFC queue).
SPE_MFC_QUEUE_SLOTS: int = 16

#: Maximum simultaneous DMA commands issued by PPEs *on* an SPE (proxy queue).
SPE_PROXY_QUEUE_SLOTS: int = 8


@dataclass(frozen=True)
class DmaCosts:
    """Runtime overheads of DMA handling, used by the simulator.

    These model the sources of the ≈5 % gap between the analytic throughput
    and the hardware throughput reported in §6.4.1: issuing a ``Get``,
    polling completion, and the synchronisation signalling of new data.

    Attributes
    ----------
    issue_overhead:
        Compute time (µs) stolen from the receiving PE to issue one DMA.
    completion_overhead:
        Compute time (µs) stolen to detect completion and unlock the
        sender's output buffer.
    signal_overhead:
        Time (µs) to signal availability of a newly produced data to each
        dependent PE.
    latency:
        Fixed start-up latency (µs) added to every transfer on top of the
        bandwidth term (size / bw).
    """

    issue_overhead: float = 0.0
    completion_overhead: float = 0.0
    signal_overhead: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        for field in (
            "issue_overhead", "completion_overhead", "signal_overhead", "latency"
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    @classmethod
    def free(cls) -> "DmaCosts":
        """Zero-overhead DMA — simulator matches the analytic model exactly."""
        return cls()

    @classmethod
    def realistic(cls) -> "DmaCosts":
        """Overheads calibrated to reproduce the paper's ≈95 % ratio (§6.4.1).

        The absolute values are large for raw MFC operations but include
        the framework costs the paper attributes to its runtime (status
        polling, buffer bookkeeping, signalling dependent PEs), which
        dominate raw DMA issue latency.
        """
        return cls(
            issue_overhead=3.0,
            completion_overhead=2.0,
            signal_overhead=2.0,
            latency=2.0,
        )
