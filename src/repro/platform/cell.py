"""The Cell BE platform model (§2.1 of the paper).

A :class:`CellPlatform` bundles the processing elements, the per-interface
bandwidth of the bounded-multiport model, the SPE local-store budget and the
DMA queue limits.  Two presets mirror the hardware used in the paper's
evaluation: the Sony PlayStation 3 (1 PPE + 6 usable SPEs) and the IBM QS22
blade restricted to one Cell (1 PPE + 8 SPEs), the configuration all
experiments of §6 use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from ..errors import PlatformError
from .dma import SPE_MFC_QUEUE_SLOTS, SPE_PROXY_QUEUE_SLOTS
from .elements import CommInterface, PEKind, ProcessingElement

__all__ = [
    "CellPlatform",
    "BYTES_PER_KB",
    "LOCAL_STORE_BYTES",
    "DEFAULT_CODE_BYTES",
    "INTERFACE_BW",
    "EIB_BW",
]

BYTES_PER_KB: int = 1024

#: SPE local store size: 256 kB.
LOCAL_STORE_BYTES: int = 256 * BYTES_PER_KB

#: Default size of the replicated application code + runtime in each local
#: store.  The paper replicates the whole application code in every SPE but
#: does not publish its size; 64 kB is representative of their framework and
#: leaves 192 kB for stream buffers.  Configurable per platform.
DEFAULT_CODE_BYTES: int = 64 * BYTES_PER_KB

#: Per-direction bandwidth of each EIB interface: 25 GB/s = 25 000 bytes/µs.
INTERFACE_BW: float = 25_000.0

#: Aggregated EIB ring bandwidth: 200 GB/s = 200 000 bytes/µs.  The paper
#: assumes the ring itself is never the bottleneck (8 interfaces × 25 GB/s);
#: the simulator can optionally enforce it for ablation.
EIB_BW: float = 200_000.0

#: Per-direction bandwidth of the coherent FlexIO/BIF link between the two
#: Cells of a QS22 blade: ≈20 GB/s = 20 000 bytes/µs.  Only used by
#: multi-Cell platforms (the paper's future-work configuration).
BIF_BW: float = 20_000.0


@dataclass(frozen=True)
class CellPlatform:
    """A (possibly multi-) Cell platform in the paper's theoretical model.

    Attributes
    ----------
    n_ppe, n_spe:
        Number of PPE and SPE cores.  PEs are globally indexed with PPEs
        first: ``PE_0 .. PE_{nP-1}`` are PPEs, ``PE_{nP} .. PE_{nP+nS-1}``
        are SPEs (paper convention).
    bw:
        Per-direction bandwidth of every PE interface, in bytes/µs.
    eib_bw:
        Aggregated ring bandwidth in bytes/µs (informational by default).
    local_store:
        SPE local store size in bytes.
    code_size:
        Bytes of each local store consumed by the replicated code; the
        buffer budget of an SPE is ``local_store - code_size``.
    dma_in_slots:
        Max distinct data an SPE can receive per period (MFC queue, 16).
    dma_proxy_slots:
        Max distinct data an SPE can send to PPEs per period (proxy queue, 8).
    """

    n_ppe: int = 1
    n_spe: int = 8
    bw: float = INTERFACE_BW
    eib_bw: float = EIB_BW
    local_store: int = LOCAL_STORE_BYTES
    code_size: int = DEFAULT_CODE_BYTES
    dma_in_slots: int = SPE_MFC_QUEUE_SLOTS
    dma_proxy_slots: int = SPE_PROXY_QUEUE_SLOTS
    #: Number of Cell chips.  PEs are partitioned evenly: one PPE and
    #: ``n_spe / n_cells`` SPEs per chip.  Transfers between chips cross
    #: the FlexIO/BIF link of bandwidth ``bif_bw`` per direction — the
    #: paper's future-work extension ("use both Cell processors of the
    #: QS22").
    n_cells: int = 1
    bif_bw: float = BIF_BW
    name: str = field(default="cell", compare=False)

    def __post_init__(self) -> None:
        if self.n_ppe < 1:
            raise PlatformError("a Cell platform needs at least one PPE")
        if self.n_spe < 0:
            raise PlatformError("n_spe must be non-negative")
        if self.bw <= 0 or self.eib_bw <= 0:
            raise PlatformError("bandwidths must be positive")
        if self.local_store <= 0:
            raise PlatformError("local_store must be positive")
        if not 0 <= self.code_size < self.local_store:
            raise PlatformError(
                "code_size must satisfy 0 <= code_size < local_store "
                f"(got {self.code_size} vs {self.local_store})"
            )
        if self.dma_in_slots < 1 or self.dma_proxy_slots < 1:
            raise PlatformError("DMA queue sizes must be at least 1")
        if self.n_cells < 1:
            raise PlatformError("n_cells must be at least 1")
        if self.bif_bw <= 0:
            raise PlatformError("bif_bw must be positive")
        if self.n_ppe % self.n_cells or self.n_spe % self.n_cells:
            raise PlatformError(
                f"PPEs ({self.n_ppe}) and SPEs ({self.n_spe}) must divide "
                f"evenly across {self.n_cells} Cells"
            )

    # ------------------------------------------------------------------ #
    # Presets

    @classmethod
    def playstation3(cls, **overrides) -> "CellPlatform":
        """Sony PlayStation 3: one Cell with 6 usable SPEs (§6)."""
        params = dict(n_ppe=1, n_spe=6, name="ps3")
        params.update(overrides)
        return cls(**params)

    @classmethod
    def qs22(cls, **overrides) -> "CellPlatform":
        """IBM QS22 restricted to one Cell: 1 PPE + 8 SPEs (§6).

        The paper's experiments use a single Cell of the dual-Cell blade;
        scheduling across both Cells is explicitly left as future work.
        """
        params = dict(n_ppe=1, n_spe=8, name="qs22")
        params.update(overrides)
        return cls(**params)

    @classmethod
    def qs22_dual(cls, **overrides) -> "CellPlatform":
        """Both Cells of the QS22: 2 PPEs + 16 SPEs over the BIF link.

        The paper leaves this configuration as future work; the extension
        adds the inter-Cell link as one more bounded-multiport resource
        (see DESIGN.md §5).
        """
        params = dict(n_ppe=2, n_spe=16, n_cells=2, name="qs22-dual")
        params.update(overrides)
        return cls(**params)

    def with_spes(self, n_spe: int) -> "CellPlatform":
        """A copy of this platform restricted to ``n_spe`` SPEs.

        Used by the Fig. 7 sweep over the number of SPEs made available to
        the scheduler.
        """
        return replace(self, n_spe=n_spe)

    # ------------------------------------------------------------------ #
    # Indexing helpers (paper convention: PPEs first, then SPEs)

    @property
    def n_pes(self) -> int:
        """Total number of processing elements ``n = nP + nS``."""
        return self.n_ppe + self.n_spe

    @property
    def ppe_indices(self) -> range:
        return range(0, self.n_ppe)

    @property
    def spe_indices(self) -> range:
        return range(self.n_ppe, self.n_pes)

    def is_ppe(self, index: int) -> bool:
        self._check_index(index)
        return index < self.n_ppe

    def is_spe(self, index: int) -> bool:
        return not self.is_ppe(index)

    def kind(self, index: int) -> PEKind:
        return PEKind.PPE if self.is_ppe(index) else PEKind.SPE

    def pe(self, index: int) -> ProcessingElement:
        """The :class:`ProcessingElement` with global index ``index``."""
        self._check_index(index)
        return ProcessingElement(
            index=index,
            kind=self.kind(index),
            interface=CommInterface(bw_in=self.bw, bw_out=self.bw),
        )

    def pes(self) -> Iterator[ProcessingElement]:
        """Iterate over all PEs, PPEs first."""
        for i in range(self.n_pes):
            yield self.pe(i)

    def pe_name(self, index: int) -> str:
        """Paper-style name: ``PPE0``, ``SPE0`` .. ``SPE{nS-1}``."""
        self._check_index(index)
        if self.is_ppe(index):
            return f"PPE{index}"
        return f"SPE{index - self.n_ppe}"

    @property
    def buffer_budget(self) -> int:
        """Bytes available for stream buffers in each SPE local store."""
        return self.local_store - self.code_size

    # ------------------------------------------------------------------ #
    # Multi-Cell topology (future-work extension)

    def cell_of(self, index: int) -> int:
        """Which Cell chip hosts PE ``index`` (0 on single-Cell platforms).

        PPE ``i`` belongs to chip ``i // (nP / n_cells)``; SPEs are split
        into equal consecutive groups.
        """
        self._check_index(index)
        if self.n_cells == 1:
            return 0
        if self.is_ppe(index):
            return index // (self.n_ppe // self.n_cells)
        return (index - self.n_ppe) // (self.n_spe // self.n_cells)

    def is_cross_cell(self, pe_a: int, pe_b: int) -> bool:
        """Whether a transfer between the two PEs crosses the BIF link."""
        return self.cell_of(pe_a) != self.cell_of(pe_b)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_pes:
            raise PlatformError(
                f"PE index {index} out of range [0, {self.n_pes})"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CellPlatform({self.name}: {self.n_ppe} PPE + {self.n_spe} SPE, "
            f"bw={self.bw:g} B/µs, LS={self.local_store} B)"
        )
