"""Cell BE platform substrate (paper §2.1).

Public names:

* :class:`CellPlatform` — the platform model with :meth:`~CellPlatform.playstation3`
  and :meth:`~CellPlatform.qs22` presets;
* :class:`ProcessingElement`, :class:`PEKind`, :class:`CommInterface`;
* :class:`DmaCosts` and the DMA queue constants;
* :func:`diagnose_fit` / :func:`check_platform` sanity helpers.
"""

from .cell import (
    BYTES_PER_KB,
    DEFAULT_CODE_BYTES,
    EIB_BW,
    INTERFACE_BW,
    LOCAL_STORE_BYTES,
    CellPlatform,
)
from .dma import SPE_MFC_QUEUE_SLOTS, SPE_PROXY_QUEUE_SLOTS, DmaCosts
from .elements import CommInterface, PEKind, ProcessingElement
from .validate import check_platform, diagnose_fit

__all__ = [
    "BYTES_PER_KB",
    "DEFAULT_CODE_BYTES",
    "EIB_BW",
    "INTERFACE_BW",
    "LOCAL_STORE_BYTES",
    "CellPlatform",
    "SPE_MFC_QUEUE_SLOTS",
    "SPE_PROXY_QUEUE_SLOTS",
    "DmaCosts",
    "CommInterface",
    "PEKind",
    "ProcessingElement",
    "check_platform",
    "diagnose_fit",
]
