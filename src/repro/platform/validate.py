"""Sanity checks tying platforms to applications.

These helpers catch configuration errors early (e.g. a task graph whose
single smallest buffer already exceeds an SPE local store) with messages
that point at the offending task or edge, instead of letting the MILP come
back "infeasible" with no explanation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import PlatformError
from .cell import CellPlatform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.stream_graph import StreamGraph

__all__ = ["check_platform", "diagnose_fit"]


def check_platform(platform: CellPlatform) -> None:
    """Re-validate a platform (useful after manual ``dataclasses.replace``)."""
    # The dataclass __post_init__ performs the real checks; reconstructing
    # triggers them on current field values.
    CellPlatform(
        n_ppe=platform.n_ppe,
        n_spe=platform.n_spe,
        bw=platform.bw,
        eib_bw=platform.eib_bw,
        local_store=platform.local_store,
        code_size=platform.code_size,
        dma_in_slots=platform.dma_in_slots,
        dma_proxy_slots=platform.dma_proxy_slots,
    )


def diagnose_fit(graph: "StreamGraph", platform: CellPlatform) -> List[str]:
    """Return human-readable warnings about tasks that can never fit an SPE.

    A task whose input+output buffers exceed the SPE buffer budget is
    PPE-only; that is legal (the PPE has no store limit) but often
    unintentional, so we surface it.  Raises :class:`PlatformError` if the
    platform has SPEs but *no* task fits on any SPE — the MILP would then
    degenerate to the PPE-only mapping.
    """
    from ..steady_state.periods import buffer_requirements

    warnings: List[str] = []
    if platform.n_spe == 0:
        return warnings
    budget = platform.buffer_budget
    need = buffer_requirements(graph)
    none_fit = True
    for task in graph.tasks():
        requirement = need[task.name]
        if requirement > budget:
            warnings.append(
                f"task {task.name!r} needs {requirement} B of buffers, more "
                f"than the SPE budget of {budget} B: it is PPE-only"
            )
        else:
            none_fit = False
    if none_fit:
        raise PlatformError(
            "no task of the graph fits in an SPE local store; the mapping "
            "problem degenerates to PPE-only (check data sizes / code_size)"
        )
    return warnings
