"""Seeded scenario generation for the online scheduling runtime.

:class:`ScenarioGenerator` turns a seed into a deterministic event
timeline: Poisson-ish application arrivals (exponential inter-arrival
gaps, mean ``mean_service / load`` — so ``load`` is the offered number
of concurrently-resident applications, Little's law), exponential
service times (each arrival is paired with its departure), and SPE
failure injection (each failure paired with a recovery after an
exponential downtime, on distinct SPEs so windows may overlap safely).

Beyond the stationary Poisson default, ``arrival_pattern`` modulates the
arrival process: ``"bursty"`` compresses every ``burst_size``-th run of
inter-arrival gaps by ``burst_factor`` (flash crowds separated by lulls,
same mean offered load), and ``"diurnal"`` modulates the instantaneous
arrival rate sinusoidally over ``diurnal_period`` (daily traffic cycles,
thinning-free via per-gap rate evaluation).  Correlated *failure* bursts
and cost-perturbation windows live one layer up, in
:class:`~repro.runtime.faults.FaultInjector`, which layers them onto any
generated timeline.

Arriving applications are drawn from the ``builders`` registry (the
realistic ``repro.apps`` workloads by default), get a weight from
``weight_choices`` and, with probability ``target_probability``, a QoS
target period: the graph's mapping-independent lower bound (the largest
``min(wppe, wspe)`` over its tasks — some PE must pay at least that)
times a slack factor drawn from ``target_slack``.  Tight slacks make
admission control bite; loose slacks wave everything through.

Everything is driven by one ``random.Random(seed)`` in a fixed order,
so a ``(seed, load, n_events)`` triple always produces the identical
timeline — the reproducibility anchor of the online experiment sweep.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import audio_encoder, crypto_pipeline, video_pipeline
from ..errors import GeneratorError
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from .events import AppArrival, AppDeparture, Event, SpeFailure, SpeRecovery

__all__ = ["DEFAULT_BUILDERS", "ScenarioGenerator"]

#: Default application pool: the three realistic workloads.
DEFAULT_BUILDERS: Dict[str, Callable[[], StreamGraph]] = {
    "audio_encoder": audio_encoder,
    "video_pipeline": video_pipeline,
    "crypto_pipeline": crypto_pipeline,
}


def solo_period_bound(graph: StreamGraph) -> float:
    """Mapping-independent lower bound on any achievable period.

    The largest ``min(wppe, wspe)`` over the graph's tasks: whichever PE
    hosts the critical task pays at least that per instance.  Clamped
    away from zero (a graph may be free on one PE kind) exactly like
    ``objective.reference_periods``, so derived QoS targets stay valid
    positive periods.
    """
    bound = max(min(t.wppe, t.wspe) for t in graph.tasks())
    return max(bound, 1e-9)


class ScenarioGenerator:
    """Deterministic event-timeline generator (see the module docstring).

    Parameters
    ----------
    platform:
        Supplies the SPE indices failures may hit (no SPEs → no
        failures are generated regardless of ``n_failures``).
    seed:
        Drives every random draw; equal seeds give equal timelines.
    load:
        Offered concurrency: the expected number of resident
        applications (arrival rate × mean service time).
    mean_service:
        Mean application lifetime, in the timeline's wall-clock units.
    target_probability / target_slack:
        Probability an arrival declares a QoS target, and the uniform
        slack-factor range applied to the graph's period lower bound.
    weight_choices:
        Pool of throughput weights (drop priority: lowest goes first).
    n_failures:
        SPE failure/recovery pairs to inject, each on a distinct SPE.
    mean_downtime:
        Mean failure duration (defaults to ``mean_service``; must be
        positive when given).
    arrival_pattern:
        ``"poisson"`` (stationary, the default), ``"bursty"`` (arrivals
        clumped in runs of ``burst_size``, intra-burst gaps compressed
        by ``burst_factor`` with the burst leader's gap stretched to
        keep the mean offered load), or ``"diurnal"`` (instantaneous
        arrival rate modulated by ``1 + diurnal_amplitude ·
        sin(2πt/diurnal_period)``).
    """

    ARRIVAL_PATTERNS = ("poisson", "bursty", "diurnal")

    def __init__(
        self,
        platform: CellPlatform,
        seed: int = 0,
        load: float = 2.0,
        builders: Optional[Dict[str, Callable[[], StreamGraph]]] = None,
        mean_service: float = 40.0,
        target_probability: float = 0.7,
        target_slack: Tuple[float, float] = (2.0, 8.0),
        weight_choices: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
        n_failures: int = 1,
        mean_downtime: Optional[float] = None,
        arrival_pattern: str = "poisson",
        burst_factor: float = 4.0,
        burst_size: int = 3,
        diurnal_period: float = 120.0,
        diurnal_amplitude: float = 0.8,
    ) -> None:
        if load <= 0:
            raise GeneratorError(f"load must be positive (got {load!r})")
        if mean_service <= 0:
            raise GeneratorError(
                f"mean_service must be positive (got {mean_service!r})"
            )
        if not builders and builders is not None:
            raise GeneratorError("builders must not be empty")
        if n_failures < 0:
            raise GeneratorError(
                f"n_failures must be non-negative (got {n_failures!r})"
            )
        if not 0.0 <= target_probability <= 1.0:
            raise GeneratorError(
                "target_probability must be within [0, 1] "
                f"(got {target_probability!r})"
            )
        lo, hi = target_slack
        if lo <= 0 or hi < lo:
            raise GeneratorError(
                f"target_slack must be 0 < lo <= hi (got {target_slack!r})"
            )
        if not weight_choices:
            raise GeneratorError("weight_choices must not be empty")
        if mean_downtime is not None and mean_downtime <= 0:
            # Caught up front: a non-positive mean would only blow up
            # inside expovariate() halfway through generate().
            raise GeneratorError(
                f"mean_downtime must be positive (got {mean_downtime!r})"
            )
        if arrival_pattern not in self.ARRIVAL_PATTERNS:
            raise GeneratorError(
                f"unknown arrival_pattern {arrival_pattern!r}; choose one "
                f"of {self.ARRIVAL_PATTERNS}"
            )
        if burst_factor < 1.0:
            raise GeneratorError(
                f"burst_factor must be at least 1 (got {burst_factor!r})"
            )
        if burst_size < 1:
            raise GeneratorError(
                f"burst_size must be at least 1 (got {burst_size!r})"
            )
        if diurnal_period <= 0:
            raise GeneratorError(
                f"diurnal_period must be positive (got {diurnal_period!r})"
            )
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise GeneratorError(
                "diurnal_amplitude must be within [0, 1) so the rate stays "
                f"positive (got {diurnal_amplitude!r})"
            )
        self.platform = platform
        self.seed = int(seed)
        self.load = float(load)
        self.builders = dict(builders) if builders is not None else dict(
            DEFAULT_BUILDERS
        )
        self.mean_service = float(mean_service)
        self.target_probability = float(target_probability)
        self.target_slack = (float(lo), float(hi))
        self.weight_choices = tuple(weight_choices)
        self.n_failures = int(n_failures)
        self.mean_downtime = float(
            mean_downtime if mean_downtime is not None else mean_service
        )
        self.arrival_pattern = arrival_pattern
        self.burst_factor = float(burst_factor)
        self.burst_size = int(burst_size)
        self.diurnal_period = float(diurnal_period)
        self.diurnal_amplitude = float(diurnal_amplitude)

    def _arrival_gap(self, rng: random.Random, i: int, clock: float) -> float:
        """The ``i``-th inter-arrival gap, per ``arrival_pattern``.

        Always exactly one ``expovariate`` draw, so the ``"poisson"``
        default reproduces the pre-pattern draw order bit-for-bit and
        every pattern consumes the same amount of randomness.
        """
        rate = self.load / self.mean_service
        if self.arrival_pattern == "diurnal":
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * clock / self.diurnal_period
            )
        gap = rng.expovariate(rate)
        if self.arrival_pattern == "bursty":
            if i % self.burst_size:
                gap /= self.burst_factor  # inside a burst: compressed
            else:
                # Burst leader: stretched to compensate the members'
                # compression, keeping the mean offered load unchanged.
                gap *= 1.0 + (self.burst_size - 1) * (
                    1.0 - 1.0 / self.burst_factor
                )
        return gap

    def generate(self, n_events: int = 24) -> List[Event]:
        """A time-sorted timeline of exactly ``n_events`` events.

        Budgeting: each failure consumes two slots (failure + recovery),
        the rest go to arrival/departure pairs — plus one unpaired
        arrival when the remainder is odd.  At least one arrival is
        always generated, so ``n_events`` must be ≥ 2.
        """
        if n_events < 2:
            raise GeneratorError(
                f"n_events must be at least 2 (got {n_events!r})"
            )
        rng = random.Random(self.seed)
        spes = list(self.platform.spe_indices)
        n_failures = min(self.n_failures, len(spes), (n_events - 2) // 2)
        budget = n_events - 2 * n_failures
        n_pairs, lone = divmod(budget, 2)

        events: List[Event] = []
        kinds = sorted(self.builders)
        clock = 0.0
        horizon = 0.0
        for i in range(n_pairs + lone):
            clock += self._arrival_gap(rng, i, clock)
            kind = kinds[rng.randrange(len(kinds))]
            graph = self.builders[kind]()
            weight = self.weight_choices[
                rng.randrange(len(self.weight_choices))
            ]
            target = None
            if rng.random() < self.target_probability:
                target = solo_period_bound(graph) * rng.uniform(
                    *self.target_slack
                )
            events.append(
                AppArrival(
                    time=clock,
                    name=f"{kind}#{i:03d}",
                    graph=graph,
                    weight=weight,
                    target_period=target,
                    app_kind=kind,
                )
            )
            horizon = max(horizon, clock)
            if i < n_pairs:
                departure = clock + rng.expovariate(1.0 / self.mean_service)
                events.append(AppDeparture(time=departure, name=f"{kind}#{i:03d}"))
                horizon = max(horizon, departure)

        if n_failures:
            failed_spes = rng.sample(spes, n_failures)
            for spe in failed_spes:
                fail_at = rng.uniform(0.0, horizon or 1.0)
                downtime = rng.expovariate(1.0 / self.mean_downtime)
                events.append(SpeFailure(time=fail_at, spe=spe))
                events.append(SpeRecovery(time=fail_at + downtime, spe=spe))

        events.sort(key=lambda e: e.time)  # stable: generation order breaks ties
        return events
