"""The event vocabulary of the online scheduling runtime.

The paper (and PRs 0–3) schedule a *fixed* workload offline.  A real Cell
deployment faces a dynamic mix: streaming applications arrive and finish,
and SPEs fail and come back.  The runtime models that as a deterministic
timeline of four event kinds consumed by
:class:`~repro.runtime.scheduler.OnlineScheduler`:

* :class:`AppArrival` — a new application asks to be admitted, carrying
  its task graph, its throughput weight and an optional QoS target
  period;
* :class:`AppDeparture` — a resident application's stream ends and its
  resources are freed;
* :class:`SpeFailure` — an SPE drops out of service; every task it hosts
  must be evacuated;
* :class:`SpeRecovery` — a failed SPE returns to service.

Events are plain frozen dataclasses ordered by ``time`` (µs of wall
clock — distinct from the µs-per-instance steady-state period).  The
scheduler only requires the timeline to be time-sorted;
:func:`validate_timeline` checks that plus per-event sanity so a
malformed scenario fails loudly before any state mutates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from ..errors import OnlineSchedulingError
from ..graph.stream_graph import StreamGraph

__all__ = [
    "AppArrival",
    "AppDeparture",
    "SpeFailure",
    "SpeRecovery",
    "Event",
    "validate_timeline",
]


@dataclass(frozen=True)
class AppArrival:
    """An application requests admission at ``time``.

    ``name`` must be unique among resident applications (scenario
    generators suffix a sequence number); ``app_kind`` records which
    builder produced the graph, for reporting only.
    """

    time: float
    name: str
    graph: StreamGraph
    weight: float = 1.0
    target_period: Optional[float] = None
    app_kind: str = ""

    event_type = "arrival"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class AppDeparture:
    """The stream of application ``name`` ends at ``time``.

    Departures of applications that were never admitted (rejected at
    arrival, or dropped after an SPE failure) are recorded as no-ops, so
    a generator may emit arrival/departure pairs unconditionally.
    """

    time: float
    name: str

    event_type = "departure"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class SpeFailure:
    """SPE with global PE index ``spe`` drops out of service at ``time``."""

    time: float
    spe: int

    event_type = "failure"

    @property
    def subject(self) -> str:
        return f"PE{self.spe}"


@dataclass(frozen=True)
class SpeRecovery:
    """SPE with global PE index ``spe`` returns to service at ``time``."""

    time: float
    spe: int

    event_type = "recovery"

    @property
    def subject(self) -> str:
        return f"PE{self.spe}"


Event = Union[AppArrival, AppDeparture, SpeFailure, SpeRecovery]

_EVENT_TYPES = (AppArrival, AppDeparture, SpeFailure, SpeRecovery)


def validate_timeline(events: Iterable[Event]) -> List[Event]:
    """Check a timeline is well-formed; returns it as a list.

    Raises :class:`OnlineSchedulingError` on unknown event objects,
    negative times, or out-of-order times.  Per-event semantic checks
    (unknown SPE index, duplicate resident name...) are the scheduler's
    job — they depend on its state.
    """
    timeline = list(events)
    last = 0.0
    for i, event in enumerate(timeline):
        if not isinstance(event, _EVENT_TYPES):
            raise OnlineSchedulingError(
                f"timeline entry {i} is not a runtime event: {event!r}"
            )
        if event.time < 0:
            raise OnlineSchedulingError(
                f"timeline entry {i} has negative time {event.time!r}"
            )
        if event.time < last:
            raise OnlineSchedulingError(
                f"timeline entry {i} goes back in time "
                f"({event.time:g} after {last:g}); sort events by time"
            )
        last = event.time
    return timeline
