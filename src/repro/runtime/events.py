"""The event vocabulary of the online scheduling runtime.

The paper (and PRs 0–3) schedule a *fixed* workload offline.  A real Cell
deployment faces a dynamic mix: streaming applications arrive and finish,
SPEs fail and come back, and the world's costs drift.  The runtime models
that as a deterministic timeline of six event kinds consumed by
:class:`~repro.runtime.scheduler.OnlineScheduler`:

* :class:`AppArrival` — a new application asks to be admitted, carrying
  its task graph, its throughput weight and an optional QoS target
  period;
* :class:`AppDeparture` — a resident application's stream ends and its
  resources are freed;
* :class:`SpeFailure` — an SPE drops out of service; every task it hosts
  must be evacuated;
* :class:`SpeRecovery` — a failed SPE returns to service;
* :class:`CostPerturbation` — a transient stress window opens: every
  resident (and subsequently arriving) application's compute costs are
  scaled by ``compute_scale`` and every link rate (interface and BIF
  bandwidth) by ``bw_scale``;
* :class:`CostRestore` — the active perturbation window closes and the
  exact pre-perturbation costs return (originals are restored by
  reference, never by dividing — no float drift).

Events are plain frozen dataclasses ordered by ``time`` (µs of wall
clock — distinct from the µs-per-instance steady-state period).  The
scheduler only requires the timeline to be time-sorted;
:func:`validate_timeline` checks that plus per-event sanity so a
malformed scenario fails loudly before any state mutates.  The full
event/time semantics contract (monotonicity, interval semantics, what is
dt-invariant) is written out in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from ..errors import OnlineSchedulingError
from ..graph.stream_graph import StreamGraph

__all__ = [
    "AppArrival",
    "AppDeparture",
    "SpeFailure",
    "SpeRecovery",
    "CostPerturbation",
    "CostRestore",
    "Event",
    "validate_timeline",
]


@dataclass(frozen=True)
class AppArrival:
    """An application requests admission at ``time``.

    ``name`` must be unique among resident applications (scenario
    generators suffix a sequence number); ``app_kind`` records which
    builder produced the graph, for reporting only.
    """

    time: float
    name: str
    graph: StreamGraph
    weight: float = 1.0
    target_period: Optional[float] = None
    app_kind: str = ""

    event_type = "arrival"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class AppDeparture:
    """The stream of application ``name`` ends at ``time``.

    Departures of applications that were never admitted (rejected at
    arrival, or dropped after an SPE failure) are recorded as no-ops, so
    a generator may emit arrival/departure pairs unconditionally.
    """

    time: float
    name: str

    event_type = "departure"

    @property
    def subject(self) -> str:
        return self.name


@dataclass(frozen=True)
class SpeFailure:
    """SPE with global PE index ``spe`` drops out of service at ``time``."""

    time: float
    spe: int

    event_type = "failure"

    @property
    def subject(self) -> str:
        return f"PE{self.spe}"


@dataclass(frozen=True)
class SpeRecovery:
    """SPE with global PE index ``spe`` returns to service at ``time``."""

    time: float
    spe: int

    event_type = "recovery"

    @property
    def subject(self) -> str:
        return f"PE{self.spe}"


@dataclass(frozen=True)
class CostPerturbation:
    """A transient cost-stress window opens at ``time``.

    ``compute_scale`` multiplies every resident task's ``wppe``/``wspe``
    (values > 1 model slowdown: thermal throttling, contention);
    ``bw_scale`` multiplies every link rate (values < 1 model degraded
    interconnect).  Windows must not overlap: a second perturbation
    before the matching :class:`CostRestore` is a timeline error.
    """

    time: float
    compute_scale: float = 1.0
    bw_scale: float = 1.0

    event_type = "perturb"

    def __post_init__(self) -> None:
        if self.compute_scale <= 0 or self.bw_scale <= 0:
            raise OnlineSchedulingError(
                f"perturbation scales must be positive (got "
                f"compute_scale={self.compute_scale!r}, "
                f"bw_scale={self.bw_scale!r})"
            )

    @property
    def subject(self) -> str:
        return f"x{self.compute_scale:g}/x{self.bw_scale:g}"


@dataclass(frozen=True)
class CostRestore:
    """The active perturbation window closes at ``time``."""

    time: float

    event_type = "restore"

    @property
    def subject(self) -> str:
        return "costs"


Event = Union[
    AppArrival,
    AppDeparture,
    SpeFailure,
    SpeRecovery,
    CostPerturbation,
    CostRestore,
]

_EVENT_TYPES = (
    AppArrival,
    AppDeparture,
    SpeFailure,
    SpeRecovery,
    CostPerturbation,
    CostRestore,
)


def validate_timeline(events: Iterable[Event]) -> List[Event]:
    """Check a timeline is well-formed; returns it as a list.

    Raises :class:`OnlineSchedulingError` on unknown event objects,
    negative times, out-of-order times, or unbalanced perturbation
    windows (a :class:`CostPerturbation` while one is already open, or a
    :class:`CostRestore` with none open — a pure timeline-shape property,
    unlike state-dependent checks).  Per-event semantic checks (unknown
    SPE index, duplicate resident name...) are the scheduler's job —
    they depend on its state.
    """
    timeline = list(events)
    last = 0.0
    perturbed = False
    for i, event in enumerate(timeline):
        if not isinstance(event, _EVENT_TYPES):
            raise OnlineSchedulingError(
                f"timeline entry {i} is not a runtime event: {event!r}"
            )
        if event.time < 0:
            raise OnlineSchedulingError(
                f"timeline entry {i} has negative time {event.time!r}"
            )
        if event.time < last:
            raise OnlineSchedulingError(
                f"timeline entry {i} goes back in time "
                f"({event.time:g} after {last:g}); sort events by time"
            )
        last = event.time
        if isinstance(event, CostPerturbation):
            if perturbed:
                raise OnlineSchedulingError(
                    f"timeline entry {i} opens a perturbation window while "
                    "one is already open; windows must not overlap"
                )
            perturbed = True
        elif isinstance(event, CostRestore):
            if not perturbed:
                raise OnlineSchedulingError(
                    f"timeline entry {i} restores costs with no perturbation "
                    "window open"
                )
            perturbed = False
    return timeline
