"""Online scheduling runtime (beyond the paper: dynamic workloads).

The offline layers map a fixed workload once; this subsystem keeps a
platform's mapping alive while applications arrive and depart and SPEs
fail and recover:

* :mod:`~repro.runtime.events` — the event vocabulary
  (:class:`AppArrival`, :class:`AppDeparture`, :class:`SpeFailure`,
  :class:`SpeRecovery`) and timeline validation;
* :mod:`~repro.runtime.scheduler` — :class:`OnlineScheduler`: admission
  control by delta-scored incremental insertion, departure
  re-optimisation within an explicit migration budget, failure
  evacuation with lowest-weight load shedding;
* :mod:`~repro.runtime.scenario` — :class:`ScenarioGenerator`: seeded
  Poisson-ish arrival/departure/failure timelines over the realistic
  applications;
* :mod:`~repro.runtime.report` — :class:`RuntimeReport`: the
  JSON-round-trippable per-event audit trail and its aggregate metrics.

The experiment driver lives in :mod:`repro.experiments.online`
(``repro-experiment online`` on the command line).
"""

from .events import (
    AppArrival,
    AppDeparture,
    Event,
    SpeFailure,
    SpeRecovery,
    validate_timeline,
)
from .report import EventRecord, RuntimeReport
from .scenario import DEFAULT_BUILDERS, ScenarioGenerator, solo_period_bound
from .scheduler import OnlineScheduler

__all__ = [
    "AppArrival",
    "AppDeparture",
    "Event",
    "SpeFailure",
    "SpeRecovery",
    "validate_timeline",
    "EventRecord",
    "RuntimeReport",
    "DEFAULT_BUILDERS",
    "ScenarioGenerator",
    "solo_period_bound",
    "OnlineScheduler",
]
