"""Online scheduling runtime (beyond the paper: dynamic workloads).

The offline layers map a fixed workload once; this subsystem keeps a
platform's mapping alive while applications arrive and depart, SPEs
fail and recover, and costs drift:

* :mod:`~repro.runtime.events` — the event vocabulary
  (:class:`AppArrival`, :class:`AppDeparture`, :class:`SpeFailure`,
  :class:`SpeRecovery`, :class:`CostPerturbation`, :class:`CostRestore`)
  and timeline validation;
* :mod:`~repro.runtime.scheduler` — :class:`OnlineScheduler`: admission
  control by delta-scored incremental insertion, departure
  re-optimisation within an explicit migration budget, failure
  evacuation with policy-driven load shedding (:data:`SHED_POLICIES`),
  deferred-admission retries with exponential backoff, and brownout
  (degraded) mode under low capacity;
* :mod:`~repro.runtime.scenario` — :class:`ScenarioGenerator`: seeded
  arrival/departure/failure timelines (Poisson, bursty or diurnal
  arrivals) over the realistic applications;
* :mod:`~repro.runtime.faults` — :class:`FaultInjector`: correlated
  failure bursts, whole-Cell outages, cost-perturbation windows, and
  JSON timeline save/replay; its module docstring is the written
  event/time semantics contract;
* :mod:`~repro.runtime.report` — :class:`RuntimeReport`: the
  JSON-round-trippable per-event audit trail, its aggregate metrics and
  the robustness metrics (period quantiles, QoS violation rate,
  time-in-degraded-mode, availability, shed/retry counts);
* :mod:`~repro.runtime.journal` — :class:`EventJournal`: the fsync'd
  JSONL write-ahead journal of committed events, with torn-tail repair;
* :mod:`~repro.runtime.checkpoint` — :class:`DurableScheduler` and the
  atomic checkpoint files: kill at any committed-event boundary,
  recover, replay the journal, and the report is bit-identical;
* :mod:`~repro.runtime.service` — :class:`SchedulerService`: the
  long-running asyncio serving loop with bounded queueing, watermark
  backpressure, per-request deadlines, admission batching and the
  ``/stats`` endpoint.

The experiment drivers live in :mod:`repro.experiments.online` and
:mod:`repro.experiments.service` (``repro-experiment online|service``
and ``repro-serve`` on the command line).
"""

from .events import (
    AppArrival,
    AppDeparture,
    CostPerturbation,
    CostRestore,
    Event,
    SpeFailure,
    SpeRecovery,
    validate_timeline,
)
from .checkpoint import (
    DurableScheduler,
    read_checkpoint,
    scheduler_from_config,
    write_checkpoint,
)
from .faults import (
    FaultInjector,
    event_from_dict,
    event_to_dict,
    load_timeline,
    save_timeline,
    timeline_dumps,
    timeline_from_dict,
    timeline_loads,
    timeline_to_dict,
)
from .journal import EventJournal
from .report import EventRecord, RuntimeReport
from .scenario import DEFAULT_BUILDERS, ScenarioGenerator, solo_period_bound
from .scheduler import SHED_POLICIES, OnlineScheduler
from .service import SchedulerService, ServiceResponse, play

__all__ = [
    "AppArrival",
    "AppDeparture",
    "CostPerturbation",
    "CostRestore",
    "Event",
    "SpeFailure",
    "SpeRecovery",
    "validate_timeline",
    "FaultInjector",
    "event_to_dict",
    "event_from_dict",
    "timeline_to_dict",
    "timeline_from_dict",
    "timeline_dumps",
    "timeline_loads",
    "save_timeline",
    "load_timeline",
    "EventRecord",
    "RuntimeReport",
    "DEFAULT_BUILDERS",
    "ScenarioGenerator",
    "solo_period_bound",
    "SHED_POLICIES",
    "OnlineScheduler",
    "EventJournal",
    "DurableScheduler",
    "write_checkpoint",
    "read_checkpoint",
    "scheduler_from_config",
    "SchedulerService",
    "ServiceResponse",
    "play",
]
