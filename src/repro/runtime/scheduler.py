"""Event-driven online scheduler: admission, remapping, failure handling.

The offline layers (PRs 0–3) map a *known* workload once.
:class:`OnlineScheduler` keeps a :class:`~repro.graph.workload.Workload`
and its mapping alive across a timeline of
:mod:`~repro.runtime.events`, with three policies (Benoit et al.,
*Resource Allocation for Multiple Concurrent In-Network
Stream-Processing Applications*, motivates the admission setting;
*Multi-criteria scheduling of pipeline workflows* the period-versus-
reconfiguration-cost trade):

**Admission control** (:class:`AppArrival`).  The arriving application
is tentatively added to the workload and its tasks are placed by
*delta-scored incremental insertion*: a fresh
:class:`~repro.steady_state.delta.DeltaAnalyzer` is built once over the
new composite (new tasks parked on the always-feasible PPE haven), then
**cloned** per candidate insertion order, and every candidate placement
is scored by ``evaluate_move`` in O(deg) — never a full ``analyze()``
per candidate.  The best feasible result is admitted iff it also meets
every resident QoS target: in the lock-step steady state every
application advances once per shared period, so the QoS test is *shared
period ≤ each declared target*.  Rejected applications leave no trace.

**Departure re-optimisation** (:class:`AppDeparture`).  The departing
application's load is freed and the surviving mapping is re-optimised by
steepest-descent delta-scored moves **within a migration budget** — each
move is one task migration (a real reconfiguration cost on the Cell:
draining the task's buffers and re-loading its code on another PE), so
the budget makes remapping cost explicit.  Moves never violate hard
constraints or resident targets.

**Failure handling** (:class:`SpeFailure` / :class:`SpeRecovery`).  All
tasks on a failed SPE are evacuated in one bulk move to the PPE haven —
always hard-feasible, since a PPE has no store/DMA limits and evacuating
cannot raise any other SPE's constraint counts — then re-placed on live
PEs by the same delta-scored insertion.  If the shrunken platform cannot
meet the resident targets even after a budgeted remap, the scheduler
sheds load: a victim chosen by the pluggable **shed policy**
(:data:`SHED_POLICIES`: ``lowest-weight`` default, ``highest-stretch``,
``newest-first``) is dropped and the check repeats.  Recovery re-runs
the budgeted remapping so load can spread back onto the returned SPE.

**Graceful degradation.**  Three opt-in mechanisms soften the hard
gates under stress:

* *deferred admission* — with ``retry_limit > 0``, a rejected arrival
  (infeasible or target-missed, not duplicate-named) is queued and
  retried with exponential backoff (``retry_backoff · 2^attempt`` after
  each rejection); retries fire from :meth:`process` before the next
  timeline event, are recorded with event kind ``"retry"`` at their due
  time, and a departure of a still-queued application cancels its
  retries;
* *brownout mode* — with ``brownout_threshold > 0``, the scheduler
  enters degraded mode whenever the live-SPE fraction drops below the
  threshold: the QoS gate relaxes to weighted best-effort (admission
  and shedding check hard feasibility only, declared targets may be
  missed), and recovery that lifts capacity back above the threshold
  exits brownout and re-enforces the full gate — repairing, then
  shedding by policy, until every resident target is met again;
* *cost perturbation windows* (:class:`CostPerturbation` /
  :class:`CostRestore`) — resident (and arriving) graphs are swapped
  for ``scaled()`` copies and the platform for a bandwidth-scaled copy;
  the original objects are kept and swapped back at restore, so
  post-window costs are bit-identical to pre-window costs (no float
  drift).

Every committed (post-event) state is hard-feasible — and meets all
resident targets outside brownout — and the analyzer is re-anchored
(``resync``) at each commit, so its ``snapshot()`` is bit-identical to
a fresh ``analyze()`` of the surviving workload in every buffer-model
mode (during a perturbation window: against the scaled graphs and
platform, i.e. ``scheduler.platform``).  The full event/time semantics
contract lives in :mod:`repro.runtime.faults`.

``use_delta=False`` swaps the incremental engine for
:class:`_ReferenceState`, which evaluates every candidate with a full
``analyze()`` — the slow reference path used by the equivalence tests
and the ≥5× speed-up guard in ``benchmarks/bench_online.py``.
"""

from __future__ import annotations

import logging
import math
from dataclasses import asdict, dataclass, field, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import (
    MappingError,
    ObjectiveError,
    OnlineSchedulingError,
    ReproError,
)
from ..graph import io as graph_io
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..obs.logging import get_logger
from ..graph.stream_graph import StreamGraph
from ..graph.workload import Workload
from ..heuristics import budgeted_descent
from ..platform.cell import CellPlatform
from ..steady_state.backend import resolve_backend
from ..steady_state.delta import DeltaAnalyzer, ObjectiveScore
from ..steady_state.mapping import Mapping
from ..steady_state.objective import OBJECTIVES, make_objective
from ..steady_state.throughput import PeriodAnalysis, analyze
from .events import (
    AppArrival,
    AppDeparture,
    CostPerturbation,
    CostRestore,
    Event,
    SpeFailure,
    SpeRecovery,
    validate_timeline,
)
from .report import EventRecord, RuntimeReport
from .scenario import solo_period_bound

__all__ = ["OnlineScheduler", "SHED_POLICIES", "STATE_SCHEMA"]

#: Schema version of :meth:`OnlineScheduler.snapshot_state` payloads.
STATE_SCHEMA = 1

_LOG = get_logger("runtime")


def _score_analysis(analysis: PeriodAnalysis, objective) -> ObjectiveScore:
    """An :class:`ObjectiveScore` from a full analysis (reference path).

    Mirrors ``DeltaAnalyzer._evaluate`` so the two paths rank candidates
    by the exact same values.
    """
    if objective is None or not getattr(objective, "needs_app_periods", False):
        value = (
            analysis.period
            if objective is None
            else objective.value(analysis.period, None)
        )
    else:
        value = objective.value(analysis.period, analysis.app_periods)
    return ObjectiveScore(
        value=value,
        period=analysis.period,
        feasible=analysis.feasible,
        n_violations=len(analysis.violations),
    )


class _ReferenceState:
    """Full-``analyze()`` stand-in for :class:`DeltaAnalyzer`.

    Implements exactly the evaluation surface the scheduler uses, with
    every query answered by a fresh O(V+E) analysis of the whole mapping
    — the reference the delta path is checked (and benchmarked) against.
    """

    def __init__(
        self,
        mapping: Mapping,
        elide_local_comm: bool = False,
        merge_same_pe_buffers: bool = False,
    ) -> None:
        self.graph = mapping.graph
        self.platform = mapping.platform
        self.elide_local_comm = bool(elide_local_comm)
        self.merge_same_pe_buffers = bool(merge_same_pe_buffers)
        self._assign: Dict[str, int] = mapping.to_dict()

    def _analyze(self, assign: Dict[str, int]) -> PeriodAnalysis:
        return analyze(
            Mapping(self.graph, self.platform, assign),
            elide_local_comm=self.elide_local_comm,
            merge_same_pe_buffers=self.merge_same_pe_buffers,
        )

    def pe_of(self, task: str) -> int:
        try:
            return self._assign[task]
        except KeyError:
            raise MappingError(f"task {task!r} is not mapped") from None

    def assignment(self) -> Dict[str, int]:
        return dict(self._assign)

    def tasks_on(self, pe: int) -> List[str]:
        if not 0 <= pe < self.platform.n_pes:
            raise MappingError(
                f"invalid PE {pe!r} (platform has {self.platform.n_pes} PEs)"
            )
        return [name for name, host in self._assign.items() if host == pe]

    def mapping(self) -> Mapping:
        return Mapping(self.graph, self.platform, self._assign)

    def snapshot(self) -> PeriodAnalysis:
        return self._analyze(self._assign)

    def period(self) -> float:
        return self.snapshot().period

    @property
    def feasible(self) -> bool:
        return self.snapshot().feasible

    def evaluate(self, objective=None) -> ObjectiveScore:
        return _score_analysis(self.snapshot(), objective)

    def evaluate_move(self, task: str, pe: int, objective=None) -> ObjectiveScore:
        candidate = dict(self._assign)
        candidate[task] = pe
        return _score_analysis(self._analyze(candidate), objective)

    def evaluate_moves(
        self,
        task: str,
        pes: Optional[Sequence[int]] = None,
        objective=None,
    ) -> List[ObjectiveScore]:
        """Reference mirror of the delta engine's batched sweep.

        One full ``analyze()`` per candidate — no shared precomputation
        to exploit here, but the surface matches so the scheduler and
        ``budgeted_descent`` run unchanged on either engine.
        """
        if pes is None:
            pes = range(self.platform.n_pes)
        return [self.evaluate_move(task, pe, objective) for pe in pes]

    def best_move(
        self,
        tasks: Optional[Sequence[str]] = None,
        pes: Optional[Sequence[int]] = None,
        objective=None,
        period_cap: float = math.inf,
    ) -> Optional[Tuple[str, int, ObjectiveScore]]:
        """Reference mirror of :meth:`DeltaAnalyzer.best_move`."""
        current = self.evaluate(objective)
        if tasks is None:
            tasks = self.graph.task_names()
        if pes is None:
            pes = range(self.platform.n_pes)
        best: Optional[Tuple[str, int, ObjectiveScore]] = None
        best_key = (current.value, current.period)
        for name in tasks:
            origin = self.pe_of(name)
            for pe in pes:
                if pe == origin:
                    continue
                score = self.evaluate_move(name, pe, objective)
                if not score.feasible:
                    continue
                if score.period > period_cap and score.period >= current.period:
                    continue
                key = (score.value, score.period)
                if key < best_key:
                    best, best_key = (name, pe, score), key
        return best

    def apply_move(self, task: str, pe: int) -> None:
        self.pe_of(task)  # raises on unknown tasks, like the delta engine
        self._assign[task] = pe

    def apply_changes(self, changes: Dict[str, int]) -> None:
        for task, pe in changes.items():
            self.apply_move(task, pe)

    def clone(self) -> "_ReferenceState":
        return _ReferenceState(
            self.mapping(),
            elide_local_comm=self.elide_local_comm,
            merge_same_pe_buffers=self.merge_same_pe_buffers,
        )

    def resync(self) -> None:  # always exact — nothing to re-anchor
        pass


#: Either evaluation engine; the scheduler only uses the shared surface.
_State = Union[DeltaAnalyzer, _ReferenceState]


# ---------------------------------------------------------------------- #
# Shed policies: who goes first when the platform cannot carry everyone.
# Each policy maps (scheduler, state) -> the victim application's name;
# the workload is guaranteed non-empty when a policy is consulted.


def _shed_lowest_weight(sched: "OnlineScheduler", state: _State) -> str:
    """Lowest throughput weight goes first (ties: earliest resident)."""
    return min(
        enumerate(sched.workload),
        key=lambda pair: (pair[1].weight, pair[0]),
    )[1].name


def _shed_highest_stretch(sched: "OnlineScheduler", state: _State) -> str:
    """Worst period-versus-reference ratio goes first.

    Each application's reference is its declared target period, or the
    graph's mapping-independent period lower bound when it declared
    none — the same reference the ``max_stretch`` objective uses.  The
    shared period divided by the reference is the application's
    stretch; the most-stretched (ties: earliest resident) is shed, on
    the reasoning that it is the furthest from useful service anyway.
    """
    period = state.period()

    def stretch(pair):
        index, app = pair
        ref = (
            app.target_period
            if app.target_period is not None
            else solo_period_bound(app.graph)
        )
        return (period / ref, -index)

    return max(enumerate(sched.workload), key=stretch)[1].name


def _shed_newest_first(sched: "OnlineScheduler", state: _State) -> str:
    """Most recently admitted goes first (LIFO: protect seniority)."""
    return list(sched.workload)[-1].name


#: Pluggable shed policies for degradation handling (``shed_policy=``).
SHED_POLICIES: Dict[str, Callable[["OnlineScheduler", _State], str]] = {
    "lowest-weight": _shed_lowest_weight,
    "highest-stretch": _shed_highest_stretch,
    "newest-first": _shed_newest_first,
}


@dataclass
class _PendingRetry:
    """One queued deferred-admission attempt."""

    due: float
    seq: int  # enqueue order: the due-time tie-breaker
    event: AppArrival  # the original arrival (unscaled graph)
    attempt: int  # 1-based attempt number this firing represents


@dataclass
class _ActivePerturbation:
    """Bookkeeping of the open cost-perturbation window.

    ``saved`` maps each resident application to its *original* graph
    object; restore swaps these back by reference (bit-identical costs,
    no divide-back drift).  Applications that depart or are shed during
    the window are evicted from the map.
    """

    event: CostPerturbation
    base_platform: CellPlatform
    saved: Dict[str, StreamGraph] = field(default_factory=dict)


class OnlineScheduler:
    """Online admission, remapping and failure handling for one platform.

    Parameters
    ----------
    platform:
        The (fixed) Cell platform.  PE 0 is a PPE by the paper's indexing
        convention; it doubles as the always-feasible evacuation haven.
    objective:
        Objective ranking candidate placements and remapping moves
        (``period`` | ``weighted`` | ``max_stretch``, see
        :mod:`repro.steady_state.objective`).
    migration_budget:
        Maximum number of task migrations per departure/recovery
        re-optimisation pass (and per repair attempt after a failure).
        0 disables re-optimisation entirely.
    elide_local_comm / merge_same_pe_buffers:
        Buffer-model flags, threaded through to the evaluation engine
        exactly as in the offline heuristics.
    use_delta:
        ``True`` (default): incremental :class:`DeltaAnalyzer`
        evaluation.  ``False``: the full-``analyze()`` reference path.
    backend:
        Kernel backend for the delta engine (``"python"`` | ``"numpy"``
        | ``None`` for auto-detection, see
        :func:`repro.steady_state.resolve_backend`).  Ignored under
        ``use_delta=False``.
    shed_policy:
        Victim selection when load must be dropped (:data:`SHED_POLICIES`:
        ``lowest-weight`` | ``highest-stretch`` | ``newest-first``).
    retry_limit / retry_backoff:
        Deferred admission: up to ``retry_limit`` retries per rejected
        arrival, the ``k``-th (0-based) ``retry_backoff · 2^k`` after
        its rejection.  ``retry_limit=0`` (default) disables the queue.
    brownout_threshold:
        Live-SPE fraction below which the scheduler enters brownout
        (degraded) mode; ``0.0`` (default) never browns out.
    """

    def __init__(
        self,
        platform: CellPlatform,
        objective: str = "period",
        migration_budget: int = 4,
        elide_local_comm: bool = False,
        merge_same_pe_buffers: bool = False,
        use_delta: bool = True,
        backend: Optional[str] = None,
        name: str = "online",
        shed_policy: str = "lowest-weight",
        retry_limit: int = 0,
        retry_backoff: float = 8.0,
        brownout_threshold: float = 0.0,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ObjectiveError(
                f"unknown objective {objective!r}; "
                f"pick from {', '.join(OBJECTIVES)}"
            )
        if migration_budget < 0:
            raise OnlineSchedulingError(
                f"migration_budget must be non-negative "
                f"(got {migration_budget!r})"
            )
        if shed_policy not in SHED_POLICIES:
            raise OnlineSchedulingError(
                f"unknown shed_policy {shed_policy!r}; "
                f"pick from {', '.join(SHED_POLICIES)}"
            )
        if retry_limit < 0:
            raise OnlineSchedulingError(
                f"retry_limit must be non-negative (got {retry_limit!r})"
            )
        if retry_backoff <= 0:
            raise OnlineSchedulingError(
                f"retry_backoff must be positive (got {retry_backoff!r})"
            )
        if not 0.0 <= brownout_threshold <= 1.0:
            raise OnlineSchedulingError(
                "brownout_threshold must be within [0, 1] "
                f"(got {brownout_threshold!r})"
            )
        #: The platform in effect — swapped for a bandwidth-scaled copy
        #: inside a perturbation window, swapped back at restore.
        self.platform = platform
        self.objective = objective
        self.migration_budget = int(migration_budget)
        self.elide_local_comm = bool(elide_local_comm)
        self.merge_same_pe_buffers = bool(merge_same_pe_buffers)
        self.use_delta = bool(use_delta)
        self.backend = backend
        self.workload = Workload(name)
        #: The PPE that absorbs evacuations and parks unplaced tasks: a
        #: PPE has no local-store or DMA-queue constraints, so hosting
        #: anything there is always hard-feasible.
        self._haven = 0
        assert platform.is_ppe(self._haven)
        self.shed_policy = shed_policy
        self.retry_limit = int(retry_limit)
        self.retry_backoff = float(retry_backoff)
        self.brownout_threshold = float(brownout_threshold)
        self._failed: set = set()
        self._assign: Dict[str, int] = {}
        self._state: Optional[_State] = None
        self._obj = None
        self._records: List[EventRecord] = []
        self._time = 0.0
        self._pending: List[_PendingRetry] = []
        self._retry_seq = 0
        self._perturbation: Optional[_ActivePerturbation] = None
        self._degraded = False
        #: Decision-clock start of the event being handled; ``None``
        #: while instrumentation is off, so uninstrumented runs record
        #: ``decision_latency == 0.0`` and stay byte-deterministic.
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def state(self) -> Optional[_State]:
        """The committed evaluation state (``None`` while idle)."""
        return self._state

    @property
    def time(self) -> float:
        return self._time

    @property
    def failed_spes(self) -> frozenset:
        return frozenset(self._failed)

    @property
    def degraded(self) -> bool:
        """Whether the scheduler is currently in brownout mode."""
        return self._degraded

    @property
    def perturbed(self) -> bool:
        """Whether a cost-perturbation window is currently open."""
        return self._perturbation is not None

    @property
    def pending_retries(self) -> Tuple[Tuple[float, str, int], ...]:
        """Queued deferred admissions as ``(due, name, attempt)`` triples.

        Retries fire from :meth:`process` before the next timeline
        event; entries still queued when the timeline ends simply never
        fire (the run is over).
        """
        return tuple(
            (p.due, p.event.name, p.attempt)
            for p in sorted(self._pending, key=lambda p: (p.due, p.seq))
        )

    def assignment(self) -> Dict[str, int]:
        """The committed composite-task → PE assignment."""
        return dict(self._assign)

    def mapping(self) -> Optional[Mapping]:
        return self._state.mapping() if self._state is not None else None

    def snapshot(self) -> Optional[PeriodAnalysis]:
        return self._state.snapshot() if self._state is not None else None

    @property
    def kernel_backend(self) -> str:
        """Resolved evaluation-engine name for reporting.

        ``"reference"`` under ``use_delta=False`` (the full-``analyze()``
        path has no kernel); otherwise the backend the delta engine
        resolves to ("python" | "numpy" | "cython").
        """
        if not self.use_delta:
            return "reference"
        return resolve_backend(self.backend)

    def report(self) -> RuntimeReport:
        return RuntimeReport(
            platform=self.platform.name,
            objective=self.objective,
            migration_budget=self.migration_budget,
            records=list(self._records),
            kernel_backend=self.kernel_backend,
        )

    # ------------------------------------------------------------------ #
    # Durability: state capture / restore (the checkpoint layer's hooks)

    def config(self) -> Dict:
        """The constructor configuration as a JSON-able dict.

        Everything a fresh, equivalent scheduler needs — the *base*
        (unperturbed) platform's full field set, the objective, budget,
        buffer-model flags and degradation knobs.  Evaluation-engine
        choices (``use_delta``/``backend``) are deliberately excluded:
        they never influence a decision (backend interchangeability is a
        repo invariant), so recovery is free to pick any engine.
        """
        base = (
            self._perturbation.base_platform
            if self._perturbation is not None
            else self.platform
        )
        return {
            "platform": asdict(base),
            "objective": self.objective,
            "migration_budget": self.migration_budget,
            "elide_local_comm": self.elide_local_comm,
            "merge_same_pe_buffers": self.merge_same_pe_buffers,
            "name": self.workload.name,
            "shed_policy": self.shed_policy,
            "retry_limit": self.retry_limit,
            "retry_backoff": self.retry_backoff,
            "brownout_threshold": self.brownout_threshold,
        }

    def snapshot_state(self) -> Dict:
        """JSON-able capture of every committed decision input.

        The payload holds the clock, the resident workload with its
        graphs (inside a perturbation window these are the *scaled*
        copies — what the next decision actually sees), the committed
        assignment, the failed-SPE set, the brownout flag, the
        deferred-admission retry queue, the open perturbation window
        (parameters plus the saved original graphs), and the full record
        history.  ``json.dump`` round-trips floats exactly (repr-based),
        so :meth:`restore_state` on the parsed payload reproduces the
        committed state bit for bit — the checkpoint/recovery
        equivalence the chaos harness asserts.
        """
        perturbation = None
        if self._perturbation is not None:
            perturbation = {
                "time": self._perturbation.event.time,
                "compute_scale": self._perturbation.event.compute_scale,
                "bw_scale": self._perturbation.event.bw_scale,
                "saved": [
                    {"name": name, "graph": graph_io.to_dict(graph)}
                    for name, graph in self._perturbation.saved.items()
                ],
            }
        return {
            "schema": STATE_SCHEMA,
            "time": self._time,
            "apps": [
                {
                    "name": app.name,
                    "graph": graph_io.to_dict(app.graph),
                    "weight": app.weight,
                    "target_period": app.target_period,
                }
                for app in self.workload
            ],
            "assignment": dict(self._assign),
            "failed_spes": sorted(self._failed),
            "degraded": self._degraded,
            "retry_seq": self._retry_seq,
            "pending": [
                {
                    "due": p.due,
                    "seq": p.seq,
                    "attempt": p.attempt,
                    "arrival": {
                        "time": p.event.time,
                        "name": p.event.name,
                        "graph": graph_io.to_dict(p.event.graph),
                        "weight": p.event.weight,
                        "target_period": p.event.target_period,
                        "app_kind": p.event.app_kind,
                    },
                }
                for p in self._pending
            ],
            "perturbation": perturbation,
            "records": [r.to_dict() for r in self._records],
        }

    def restore_state(self, payload: Dict) -> None:
        """Reinstate a :meth:`snapshot_state` capture on this scheduler.

        The scheduler must have been constructed with the same
        configuration the capture was taken under (see :meth:`config`);
        any prior state on this instance is discarded.  Inside a
        restored perturbation window the scaled platform is recomputed
        from the base platform with the same float operations the live
        path used — bit-identical, because float multiplication is
        deterministic — and the saved original graphs are reinstated so
        a later :class:`CostRestore` is exact.
        """
        if payload.get("schema") != STATE_SCHEMA:
            raise OnlineSchedulingError(
                f"unsupported scheduler state schema "
                f"{payload.get('schema')!r} (this build reads "
                f"{STATE_SCHEMA})"
            )
        base = (
            self._perturbation.base_platform
            if self._perturbation is not None
            else self.platform
        )
        try:
            workload = Workload(self.workload.name)
            for spec in payload["apps"]:
                workload.add_app(
                    str(spec["name"]),
                    graph_io.from_dict(spec["graph"]),
                    weight=float(spec["weight"]),
                    target_period=(
                        None
                        if spec["target_period"] is None
                        else float(spec["target_period"])
                    ),
                )
            pending = [
                _PendingRetry(
                    due=float(spec["due"]),
                    seq=int(spec["seq"]),
                    attempt=int(spec["attempt"]),
                    event=AppArrival(
                        time=float(spec["arrival"]["time"]),
                        name=str(spec["arrival"]["name"]),
                        graph=graph_io.from_dict(spec["arrival"]["graph"]),
                        weight=float(spec["arrival"]["weight"]),
                        target_period=(
                            None
                            if spec["arrival"]["target_period"] is None
                            else float(spec["arrival"]["target_period"])
                        ),
                        app_kind=str(spec["arrival"]["app_kind"]),
                    ),
                )
                for spec in payload["pending"]
            ]
            records = [EventRecord.from_dict(r) for r in payload["records"]]
            assignment = {
                str(task): int(pe)
                for task, pe in payload["assignment"].items()
            }
            failed = {int(spe) for spe in payload["failed_spes"]}
            degraded = bool(payload["degraded"])
            retry_seq = int(payload["retry_seq"])
            time = float(payload["time"])
            pert_spec = payload["perturbation"]
            perturbation = None
            if pert_spec is not None:
                perturbation = _ActivePerturbation(
                    event=CostPerturbation(
                        time=float(pert_spec["time"]),
                        compute_scale=float(pert_spec["compute_scale"]),
                        bw_scale=float(pert_spec["bw_scale"]),
                    ),
                    base_platform=base,
                    saved={
                        str(entry["name"]): graph_io.from_dict(entry["graph"])
                        for entry in pert_spec["saved"]
                    },
                )
        except OnlineSchedulingError:
            raise
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise OnlineSchedulingError(
                f"malformed scheduler state payload: {exc}"
            ) from exc
        for spe in failed:
            if not 0 <= spe < base.n_pes or not base.is_spe(spe):
                raise OnlineSchedulingError(
                    f"state payload fails PE {spe!r}, which is not an SPE "
                    f"of {base.name}"
                )
        self.workload = workload
        self._failed = failed
        self._degraded = degraded
        self._retry_seq = retry_seq
        self._pending = pending
        self._records = records
        self._time = time
        self._perturbation = perturbation
        if perturbation is None:
            self.platform = base
        else:
            event = perturbation.event
            self.platform = replace(
                base,
                bw=base.bw * event.bw_scale,
                eib_bw=base.eib_bw * event.bw_scale,
                bif_bw=base.bif_bw * event.bw_scale,
            )
        self._t0 = None
        try:
            state = self._rebuild(assignment)
        except KeyError as exc:
            raise OnlineSchedulingError(
                f"state payload assignment is missing task {exc}"
            ) from None
        self._commit(state)

    # ------------------------------------------------------------------ #
    # Event consumption

    def run(self, events: Sequence[Event]) -> RuntimeReport:
        """Consume a whole timeline and return the report."""
        for event in validate_timeline(events):
            self.process(event)
        return self.report()

    def process(self, event: Event) -> EventRecord:
        """Consume one event; returns its outcome record.

        Deferred-admission retries that fell due before ``event.time``
        fire first (in due order, each recorded at its own due time),
        so the record stream stays time-monotone.
        """
        if event.time < self._time:
            raise OnlineSchedulingError(
                f"event at t={event.time:g} arrives after the scheduler "
                f"reached t={self._time:g}; feed events in time order"
            )
        self._drain_retries(event.time)
        self._time = event.time
        self._t0 = (
            perf_counter()
            if _metrics.REGISTRY is not None or _tracing.TRACER is not None
            else None
        )
        with _tracing.span(
            "runtime:" + event.event_type, subject=event.subject
        ):
            if isinstance(event, AppArrival):
                return self._on_arrival(event)
            if isinstance(event, AppDeparture):
                return self._on_departure(event)
            if isinstance(event, SpeFailure):
                return self._on_failure(event)
            if isinstance(event, SpeRecovery):
                return self._on_recovery(event)
            if isinstance(event, CostPerturbation):
                return self._on_perturb(event)
            if isinstance(event, CostRestore):
                return self._on_restore(event)
            raise OnlineSchedulingError(f"unknown event {event!r}")

    def _drain_retries(self, upto: float) -> None:
        """Fire every queued retry due at or before ``upto``, in due order."""
        while self._pending:
            self._pending.sort(key=lambda p: (p.due, p.seq))
            head = self._pending[0]
            if head.due > upto:
                break
            self._pending.pop(0)
            self._time = head.due  # due > its rejection time: monotone
            self._t0 = (
                perf_counter()
                if _metrics.REGISTRY is not None
                or _tracing.TRACER is not None
                else None
            )
            with _tracing.span("runtime:retry", subject=head.event.name):
                self._on_arrival(
                    replace(head.event, time=head.due),
                    attempt=head.attempt,
                    kind="retry",
                )

    # ------------------------------------------------------------------ #
    # Shared machinery

    def _make_state(self, mapping: Mapping) -> _State:
        if self.use_delta:
            return DeltaAnalyzer(
                mapping,
                elide_local_comm=self.elide_local_comm,
                merge_same_pe_buffers=self.merge_same_pe_buffers,
                backend=self.backend,
            )
        return _ReferenceState(
            mapping,
            elide_local_comm=self.elide_local_comm,
            merge_same_pe_buffers=self.merge_same_pe_buffers,
        )

    def _live_pes(self) -> List[int]:
        """All PPEs plus the SPEs currently in service."""
        return [
            pe
            for pe in range(self.platform.n_pes)
            if not (self.platform.is_spe(pe) and pe in self._failed)
        ]

    def _target_cap(self) -> float:
        """The tightest declared target among resident applications."""
        targets = [
            app.target_period
            for app in self.workload
            if app.target_period is not None
        ]
        return min(targets) if targets else math.inf

    def _violated_targets(self, state: _State) -> List[str]:
        """Resident apps whose declared target the shared period misses."""
        period = state.period()
        return [
            app.name
            for app in self.workload
            if app.target_period is not None and period > app.target_period
        ]

    def _ok(self, state: _State) -> bool:
        """The committed-state gate: what every event must restore.

        Hard feasibility always; declared QoS targets only outside
        brownout (degraded mode is weighted best-effort by design).
        """
        if not state.feasible:
            return False
        return self._degraded or not self._violated_targets(state)

    def _live_spe_fraction(self) -> float:
        """Fraction of the platform's SPEs currently in service."""
        total = self.platform.n_spe
        if not total:
            return 1.0
        return (total - len(self._failed)) / total

    def _update_degraded(self) -> Tuple[bool, bool]:
        """Refresh brownout mode from live capacity; returns (was, now)."""
        was = self._degraded
        self._degraded = self._live_spe_fraction() < self.brownout_threshold
        return was, self._degraded

    def _enforce(
        self, state: Optional[_State]
    ) -> Tuple[Optional[_State], int, List[str]]:
        """Repair-then-shed until the committed gate passes.

        Budgeted remapping first; when that is not enough, the shed
        policy picks a victim, the victim is dropped, and the loop
        repeats on the rebuilt state.  Returns the surviving state
        (``None`` when everything was shed), the migrations spent and
        the victims in drop order.
        """
        migrations = 0
        dropped: List[str] = []
        while state is not None and not self._ok(state):
            migrations += self._reoptimize(
                state, self._obj, self.migration_budget
            )
            if self._ok(state):
                break
            victim = SHED_POLICIES[self.shed_policy](self, state)
            self.workload.remove_app(victim)
            if self._perturbation is not None:
                self._perturbation.saved.pop(victim, None)
            dropped.append(victim)
            state = self._rebuild(state.assignment())
        return state, migrations, dropped

    def _insert_tasks(self, state: _State, tasks: Sequence[str], obj) -> None:
        """Greedy delta-scored placement of ``tasks``, one at a time.

        Each task's live-PE candidates go through one
        :meth:`~DeltaAnalyzer.best_move` neighbourhood scan (shared
        precomputation on the delta engine, O(deg + n_live) per task
        instead of a delta per candidate); the task moves to the live PE
        minimising ``(objective value, period)`` over the feasible
        candidates, staying put on ties.
        """
        live = self._live_pes()
        for name in tasks:
            found = state.best_move([name], live, obj)
            if found is not None:
                state.apply_move(found[0], found[1])

    def _reoptimize(self, state: _State, obj, budget: int) -> int:
        """Budgeted steepest-descent remapping on the live PEs.

        Delegates to :func:`repro.heuristics.budgeted_descent`: each
        applied move is one task migration, moves stay hard-feasible and
        never push the shared period past the tightest resident target
        (unless the state is already past it — the failure-repair
        descent).  Returns the number of migrations performed.
        """
        return budgeted_descent(
            state,
            objective=obj,
            budget=budget,
            pes=self._live_pes(),
            period_cap=self._target_cap(),
        )

    def _rebuild(self, assign: Dict[str, int]) -> Optional[_State]:
        """A fresh state over the current workload's composite.

        ``assign`` provides the PEs of every surviving task (extra
        entries — departed or dropped apps — are ignored).  Also refreshes
        the cached objective, which is composite-bound.
        """
        if not len(self.workload):
            self._obj = None
            return None
        composite = self.workload.compile()
        surviving = {t: assign[t] for t in composite.task_names()}
        self._obj = make_objective(self.objective, composite)
        return self._make_state(Mapping(composite, self.platform, surviving))

    def _commit(self, state: Optional[_State]) -> None:
        if state is not None:
            state.resync()  # re-anchor: snapshot == fresh analyze, bit for bit
        self._state = state
        self._assign = state.assignment() if state is not None else {}

    def _record(
        self,
        event: Event,
        accepted: Optional[bool] = None,
        reason: str = "",
        migrations: int = 0,
        dropped: Tuple[str, ...] = (),
        kind: Optional[str] = None,
    ) -> EventRecord:
        state = self._state
        if state is None:
            period, value, feasible = 0.0, 0.0, True
            misses = 0
            app_periods: Tuple[Tuple[str, float], ...] = ()
        else:
            score = state.evaluate(self._obj)
            period, value, feasible = score.period, score.value, score.feasible
            misses = len(self._violated_targets(state))
            per_app = getattr(state.snapshot(), "app_periods", None) or {}
            app_periods = tuple(sorted(per_app.items()))
        latency = 0.0
        if self._t0 is not None:
            latency = perf_counter() - self._t0
            self._t0 = None
        record = EventRecord(
            seq=len(self._records),
            time=event.time,
            event=kind or event.event_type,
            subject=event.subject,
            accepted=accepted,
            reason=reason,
            migrations=migrations,
            dropped=dropped,
            period=period,
            value=value,
            feasible=feasible,
            n_apps=len(self.workload),
            n_tasks=len(self._assign),
            degraded=self._degraded,
            target_misses=misses,
            app_periods=app_periods,
            decision_latency=latency,
        )
        self._records.append(record)
        reg = _metrics.REGISTRY
        if reg is not None:
            if accepted is True:
                reg.inc("admissions.accepted")
            elif accepted is False:
                reg.inc("admissions.rejected")
            if dropped:
                reg.inc("admissions.shed", len(dropped))
            if reason in ("brownout-enter", "brownout-exit"):
                reg.inc("brownout_transitions")
            reg.set_gauge("retry_queue_depth", float(len(self._pending)))
            if latency > 0.0:
                if record.event in ("arrival", "retry"):
                    reg.observe("admission_latency", latency)
                elif record.event == "failure":
                    reg.observe("evacuation_latency", latency)
                else:
                    reg.observe("repair_latency", latency)
        if _LOG.isEnabledFor(logging.INFO):
            _LOG.info(
                "t=%g %s %s: %s",
                record.time,
                record.event,
                record.subject,
                reason
                or ("accepted" if accepted else "ok"),
                extra={
                    "event_kind": record.event,
                    "subject": record.subject,
                    "accepted": record.accepted,
                    "period": record.period,
                    "n_apps": record.n_apps,
                    "migrations": record.migrations,
                    "dropped": list(record.dropped),
                    "degraded": record.degraded,
                },
            )
        return record

    # ------------------------------------------------------------------ #
    # Event handlers

    def _maybe_retry(self, event: AppArrival, attempt: int, reason: str) -> str:
        """Queue the next deferred-admission attempt; returns the reason.

        ``attempt`` is how many attempts have now failed; the next one
        fires ``retry_backoff · 2^(attempt-1)`` after this rejection
        (strictly later than now — the retry records stay monotone).
        """
        if not self.retry_limit or attempt > self.retry_limit:
            return reason
        due = self._time + self.retry_backoff * (2.0 ** (attempt - 1))
        self._pending.append(
            _PendingRetry(
                due=due, seq=self._retry_seq, event=event, attempt=attempt + 1
            )
        )
        self._retry_seq += 1
        return reason + ";retry-queued"

    def _on_arrival(
        self,
        event: AppArrival,
        attempt: int = 1,
        kind: Optional[str] = None,
    ) -> EventRecord:
        if event.name in self.workload:
            return self._record(
                event, accepted=False, reason="duplicate-name", kind=kind
            )
        graph = event.graph
        if self._perturbation is not None:
            # Admission under an open window sees the stressed costs; the
            # original graph is saved on admission so restore is exact.
            graph = graph.scaled(self._perturbation.event.compute_scale)
        self.workload.add_app(
            event.name,
            graph,
            weight=event.weight,
            target_period=event.target_period,
        )
        composite = self.workload.compile()
        obj = make_objective(self.objective, composite)
        new_tasks = list(composite.app_tasks[event.name])

        # One analyzer build over the new composite (new tasks parked on
        # the PPE haven keep it exactly as feasible as the committed
        # state), then a clone per insertion order — candidate placements
        # are delta-scored, never re-analysed.
        assign = dict(self._assign)
        for task in new_tasks:
            assign[task] = self._haven
        base = self._make_state(Mapping(composite, self.platform, assign))
        heaviest_first = sorted(  # heaviest-first (SPE cost), name-stable
            new_tasks,
            key=lambda t: (-composite.task(t).wspe, t),
        )
        orders = (
            (new_tasks,)  # member order; skip an identical second pass
            if heaviest_first == new_tasks
            else (new_tasks, heaviest_first)
        )
        best_state: Optional[_State] = None
        best_key = None
        for order in orders:
            trial = base.clone()
            self._insert_tasks(trial, order, obj)
            score = trial.evaluate(obj)
            key = (not trial.feasible, score.value, score.period)
            if best_key is None or key < best_key:
                best_state, best_key = trial, key
        assert best_state is not None

        if not best_state.feasible:
            self.workload.remove_app(event.name)
            return self._record(
                event,
                accepted=False,
                reason=self._maybe_retry(event, attempt, "infeasible"),
                kind=kind,
            )
        migrations = 0
        # Brownout admission is weighted best-effort: feasibility only.
        violated = [] if self._degraded else self._violated_targets(best_state)
        if violated:
            # Pure insertion missed a target: try remapping resident
            # tasks too, within the migration budget, before giving up.
            migrations = self._reoptimize(
                best_state, obj, self.migration_budget
            )
            violated = self._violated_targets(best_state)
        if violated:
            self.workload.remove_app(event.name)
            return self._record(
                event,
                accepted=False,
                reason=self._maybe_retry(
                    event, attempt, "target-missed:" + ",".join(violated)
                ),
                kind=kind,
            )
        if self._perturbation is not None:
            self._perturbation.saved[event.name] = event.graph
        self._obj = obj
        self._commit(best_state)
        return self._record(
            event, accepted=True, migrations=migrations, kind=kind
        )

    def _on_departure(self, event: AppDeparture) -> EventRecord:
        if event.name not in self.workload:
            if any(p.event.name == event.name for p in self._pending):
                # The stream ended while its admission was still queued:
                # retrying it would admit a departed application.
                self._pending = [
                    p for p in self._pending if p.event.name != event.name
                ]
                return self._record(event, reason="retry-cancelled")
            # Rejected at arrival or dropped after a failure: a no-op.
            return self._record(event, reason="not-resident")
        self.workload.remove_app(event.name)
        if self._perturbation is not None:
            self._perturbation.saved.pop(event.name, None)
        state = self._rebuild(self._assign)
        migrations = 0
        if state is not None:
            migrations = self._reoptimize(
                state, self._obj, self.migration_budget
            )
        self._commit(state)
        return self._record(event, migrations=migrations)

    def _on_failure(self, event: SpeFailure) -> EventRecord:
        spe = event.spe
        if not 0 <= spe < self.platform.n_pes or not self.platform.is_spe(spe):
            raise OnlineSchedulingError(
                f"cannot fail PE {spe!r}: not an SPE of {self.platform.name}"
            )
        if spe in self._failed:
            raise OnlineSchedulingError(
                f"SPE {spe} is already failed (no recovery seen since)"
            )
        self._failed.add(spe)
        was, now = self._update_degraded()
        reason = "brownout-enter" if now and not was else ""
        state = self._state
        migrations = 0
        dropped: List[str] = []
        if state is not None:
            # The evacuation list comes from the engine's per-PE
            # membership sets — O(tasks on the dead SPE), not an O(V)
            # scan over the whole composite.
            evacuees = state.tasks_on(spe)
            if evacuees:
                # Bulk move to the PPE haven: always hard-feasible, and
                # cannot raise any surviving SPE's constraint counts.
                state.apply_changes({task: self._haven for task in evacuees})
                migrations += len(evacuees)
                self._insert_tasks(state, evacuees, self._obj)
            # Shed load until the shrunken platform passes the gate
            # again: budgeted repair first, policy-picked drops when
            # repair is not enough.
            state, migrations_, dropped = self._enforce(state)
            migrations += migrations_
            self._commit(state)
        return self._record(
            event, migrations=migrations, dropped=tuple(dropped),
            reason=reason,
        )

    def _on_recovery(self, event: SpeRecovery) -> EventRecord:
        spe = event.spe
        if spe not in self._failed:
            raise OnlineSchedulingError(
                f"SPE {spe!r} is not failed; cannot recover it"
            )
        self._failed.discard(spe)
        was, now = self._update_degraded()
        reason = "brownout-exit" if was and not now else ""
        migrations = 0
        dropped: Tuple[str, ...] = ()
        state = self._state
        if state is not None:
            migrations = self._reoptimize(
                state, self._obj, self.migration_budget
            )
            if was and not now:
                # Leaving brownout: the full QoS gate applies again —
                # repair, then shed by policy, until targets are met.
                state, migrations_, dropped_ = self._enforce(state)
                migrations += migrations_
                dropped = tuple(dropped_)
            self._commit(state)
        return self._record(
            event, migrations=migrations, dropped=dropped, reason=reason
        )

    def _on_perturb(self, event: CostPerturbation) -> EventRecord:
        if self._perturbation is not None:
            raise OnlineSchedulingError(
                "a perturbation window is already open; restore costs "
                "before opening another"
            )
        self._perturbation = _ActivePerturbation(
            event=event,
            base_platform=self.platform,
            saved={app.name: app.graph for app in self.workload},
        )
        # Bandwidth degradation scales every link rate of the platform
        # copy; compute slowdown scales each member graph's task costs.
        self.platform = replace(
            self.platform,
            bw=self.platform.bw * event.bw_scale,
            eib_bw=self.platform.eib_bw * event.bw_scale,
            bif_bw=self.platform.bif_bw * event.bw_scale,
        )
        migrations = 0
        dropped: List[str] = []
        if len(self.workload):
            for name, graph in self._perturbation.saved.items():
                self.workload.replace_graph(
                    name, graph.scaled(event.compute_scale)
                )
            state = self._rebuild(self._assign)
            state, migrations, dropped = self._enforce(state)
            self._commit(state)
        return self._record(
            event, migrations=migrations, dropped=tuple(dropped)
        )

    def _on_restore(self, event: CostRestore) -> EventRecord:
        pert = self._perturbation
        if pert is None:
            raise OnlineSchedulingError(
                "no perturbation window is open; nothing to restore"
            )
        self._perturbation = None
        self.platform = pert.base_platform  # the very object: exact restore
        migrations = 0
        dropped: List[str] = []
        if len(self.workload):
            for name, graph in pert.saved.items():
                if name in self.workload:
                    self.workload.replace_graph(name, graph)
            state = self._rebuild(self._assign)
            state, migrations, dropped = self._enforce(state)
            self._commit(state)
        return self._record(
            event, migrations=migrations, dropped=tuple(dropped)
        )
