"""Runtime timeline reporting: one record per consumed event.

:class:`RuntimeReport` is the audit trail of an
:class:`~repro.runtime.scheduler.OnlineScheduler` run — what arrived,
what was admitted or rejected (and why), how many tasks migrated, which
applications were dropped after a failure, and the post-event period and
objective value.  It is a plain-data object: JSON round-trippable
(:meth:`RuntimeReport.to_json` / :meth:`RuntimeReport.from_json`) so a
run can be archived and replayed/diffed without re-executing the
scheduler, and the aggregate metrics the online experiment sweeps
(acceptance rate, mean period, migration count) are derived properties.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import OnlineSchedulingError

__all__ = ["EventRecord", "RuntimeReport"]


@dataclass(frozen=True)
class EventRecord:
    """Outcome of one timeline event.

    ``accepted`` is three-valued: ``True``/``False`` for arrivals,
    ``None`` for every other event kind.  ``period``/``value``/
    ``feasible`` describe the committed post-event state (0.0/0.0/True
    when no application is resident).
    """

    seq: int
    time: float
    event: str  # "arrival" | "departure" | "failure" | "recovery"
    subject: str  # application name or PE name
    accepted: Optional[bool]
    reason: str  # rejection reason or informational note
    migrations: int
    dropped: Tuple[str, ...]
    period: float
    value: float
    feasible: bool
    n_apps: int
    n_tasks: int

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["dropped"] = list(self.dropped)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "EventRecord":
        try:
            return cls(
                seq=int(payload["seq"]),
                time=float(payload["time"]),
                event=str(payload["event"]),
                subject=str(payload["subject"]),
                accepted=(
                    None
                    if payload["accepted"] is None
                    else bool(payload["accepted"])
                ),
                reason=str(payload["reason"]),
                migrations=int(payload["migrations"]),
                dropped=tuple(payload["dropped"]),
                period=float(payload["period"]),
                value=float(payload["value"]),
                feasible=bool(payload["feasible"]),
                n_apps=int(payload["n_apps"]),
                n_tasks=int(payload["n_tasks"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise OnlineSchedulingError(
                f"malformed event record payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class RuntimeReport:
    """The full, ordered timeline of one online scheduling run."""

    platform: str
    objective: str
    migration_budget: int
    records: List[EventRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Aggregates (the online experiment's figure axes)

    @property
    def n_events(self) -> int:
        return len(self.records)

    @property
    def n_arrivals(self) -> int:
        return sum(1 for r in self.records if r.event == "arrival")

    @property
    def n_accepted(self) -> int:
        return sum(1 for r in self.records if r.accepted is True)

    @property
    def acceptance_rate(self) -> float:
        """Admitted arrivals over all arrivals (1.0 when none arrived)."""
        arrivals = self.n_arrivals
        return self.n_accepted / arrivals if arrivals else 1.0

    @property
    def mean_period(self) -> float:
        """Mean post-event shared period over the non-idle states."""
        busy = [r.period for r in self.records if r.n_apps > 0]
        return sum(busy) / len(busy) if busy else 0.0

    @property
    def total_migrations(self) -> int:
        return sum(r.migrations for r in self.records)

    @property
    def dropped_apps(self) -> Tuple[str, ...]:
        """Applications dropped by failure handling, in drop order."""
        out: List[str] = []
        for record in self.records:
            out.extend(record.dropped)
        return tuple(out)

    @property
    def all_feasible(self) -> bool:
        return all(r.feasible for r in self.records)

    # ------------------------------------------------------------------ #
    # Serialization (replay/diff without re-running the scheduler)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "platform": self.platform,
                "objective": self.objective,
                "migration_budget": self.migration_budget,
                "records": [r.to_dict() for r in self.records],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "RuntimeReport":
        try:
            payload = json.loads(text)
            records = [
                EventRecord.from_dict(entry) for entry in payload["records"]
            ]
            return cls(
                platform=str(payload["platform"]),
                objective=str(payload["objective"]),
                migration_budget=int(payload["migration_budget"]),
                records=records,
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise OnlineSchedulingError(
                f"malformed runtime report payload: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #

    def table(self) -> str:
        """Human-readable timeline (CLI/notebook friendly)."""
        rows = [
            f"Online run on {self.platform} [objective: {self.objective}, "
            f"migration budget: {self.migration_budget}]",
            "  seq      time  event      subject              outcome      "
            "migr    period  apps",
        ]
        for r in self.records:
            if r.accepted is True:
                outcome = "admitted"
            elif r.accepted is False:
                outcome = "rejected"
            else:
                outcome = "-"
            detail = f" ({r.reason})" if r.reason else ""
            drop = f" drop:{','.join(r.dropped)}" if r.dropped else ""
            rows.append(
                f"  {r.seq:3d}  {r.time:8.1f}  {r.event:<9}  "
                f"{r.subject:<19}  {outcome:<9}  {r.migrations:4d}  "
                f"{r.period:8.2f}  {r.n_apps:4d}{detail}{drop}"
            )
        rows.append(
            f"  => acceptance {self.n_accepted}/{self.n_arrivals} "
            f"({100.0 * self.acceptance_rate:.0f}%), "
            f"mean period {self.mean_period:.2f} µs, "
            f"{self.total_migrations} migrations, "
            f"{len(self.dropped_apps)} dropped"
        )
        return "\n".join(rows)
