"""Runtime timeline reporting: one record per consumed event.

:class:`RuntimeReport` is the audit trail of an
:class:`~repro.runtime.scheduler.OnlineScheduler` run — what arrived,
what was admitted or rejected (and why), how many tasks migrated, which
applications were dropped after a failure, and the post-event period and
objective value.  It is a plain-data object: JSON round-trippable
(:meth:`RuntimeReport.to_json` / :meth:`RuntimeReport.from_json`) so a
run can be archived and replayed/diffed without re-executing the
scheduler, and the aggregate metrics the online experiment sweeps
(acceptance rate, mean period, migration count) are derived properties.

Duration-weighted aggregates follow the runtime's **interval
semantics** (the contract in :mod:`repro.runtime.faults`): record ``i``
describes the committed state over ``[t_i, t_{i+1})``, so time-in-
degraded-mode, the QoS violation rate and availability integrate each
record's flags over the gap to the *next* record — the final record
extends to its own time and contributes zero measure.  Event-count
aggregates (acceptance rate, shed/retry counts) are dt-invariant;
duration aggregates are exactly the ones that are not.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import OnlineSchedulingError

__all__ = ["EventRecord", "RuntimeReport"]


@dataclass(frozen=True)
class EventRecord:
    """Outcome of one timeline event.

    ``accepted`` is three-valued: ``True``/``False`` for arrivals (and
    deferred-admission ``retry`` attempts), ``None`` for every other
    event kind.  ``period``/``value``/``feasible`` describe the
    committed post-event state (0.0/0.0/True when no application is
    resident).  ``degraded`` flags brownout mode, ``target_misses``
    counts resident applications whose declared QoS target the shared
    period misses (only non-zero in degraded mode — full-service states
    always meet every target), and ``app_periods`` carries the per-app
    periods of the committed state for quantile aggregation.

    ``decision_latency`` is the wall-clock seconds the scheduler spent
    deciding this event, measured only while instrumentation is on
    (:mod:`repro.obs`) and 0.0 otherwise.  It is telemetry, not state:
    ``compare=False`` keeps it out of record equality, so two runs of
    the same seed compare equal record for record whether or not either
    was instrumented.
    """

    seq: int
    time: float
    event: str  # "arrival" | "departure" | "failure" | "recovery"
    #          # | "perturb" | "restore" | "retry"
    subject: str  # application name or PE name
    accepted: Optional[bool]
    reason: str  # rejection reason or informational note
    migrations: int
    dropped: Tuple[str, ...]
    period: float
    value: float
    feasible: bool
    n_apps: int
    n_tasks: int
    degraded: bool = False
    target_misses: int = 0
    app_periods: Tuple[Tuple[str, float], ...] = ()
    decision_latency: float = field(default=0.0, compare=False)

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["dropped"] = list(self.dropped)
        payload["app_periods"] = [
            [name, period] for name, period in self.app_periods
        ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "EventRecord":
        try:
            return cls(
                seq=int(payload["seq"]),
                time=float(payload["time"]),
                event=str(payload["event"]),
                subject=str(payload["subject"]),
                accepted=(
                    None
                    if payload["accepted"] is None
                    else bool(payload["accepted"])
                ),
                reason=str(payload["reason"]),
                migrations=int(payload["migrations"]),
                dropped=tuple(payload["dropped"]),
                period=float(payload["period"]),
                value=float(payload["value"]),
                feasible=bool(payload["feasible"]),
                n_apps=int(payload["n_apps"]),
                n_tasks=int(payload["n_tasks"]),
                # Robustness fields: absent in pre-fault-injection
                # archives, which load with the benign defaults.
                degraded=bool(payload.get("degraded", False)),
                target_misses=int(payload.get("target_misses", 0)),
                app_periods=tuple(
                    (str(name), float(period))
                    for name, period in payload.get("app_periods", [])
                ),
                # Telemetry field: absent in pre-instrumentation (PR 6)
                # archives, which load with no latency recorded.
                decision_latency=float(payload.get("decision_latency", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise OnlineSchedulingError(
                f"malformed event record payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class RuntimeReport:
    """The full, ordered timeline of one online scheduling run."""

    platform: str
    objective: str
    migration_budget: int
    records: List[EventRecord] = field(default_factory=list)
    #: Resolved kernel backend name of the run's evaluation engine
    #: ("python" | "numpy" | "cython", or "reference" for the
    #: full-``analyze()`` path).  "" in archives predating the field.
    kernel_backend: str = ""

    # ------------------------------------------------------------------ #
    # Aggregates (the online experiment's figure axes)

    @property
    def n_events(self) -> int:
        return len(self.records)

    @property
    def n_arrivals(self) -> int:
        return sum(1 for r in self.records if r.event == "arrival")

    @property
    def n_accepted(self) -> int:
        return sum(1 for r in self.records if r.accepted is True)

    @property
    def acceptance_rate(self) -> float:
        """Admitted arrivals over all arrivals (1.0 when none arrived)."""
        arrivals = self.n_arrivals
        return self.n_accepted / arrivals if arrivals else 1.0

    @property
    def mean_period(self) -> float:
        """Mean post-event shared period over the non-idle states."""
        busy = [r.period for r in self.records if r.n_apps > 0]
        return sum(busy) / len(busy) if busy else 0.0

    @property
    def total_migrations(self) -> int:
        return sum(r.migrations for r in self.records)

    @property
    def dropped_apps(self) -> Tuple[str, ...]:
        """Applications dropped by failure handling, in drop order."""
        out: List[str] = []
        for record in self.records:
            out.extend(record.dropped)
        return tuple(out)

    @property
    def all_feasible(self) -> bool:
        return all(r.feasible for r in self.records)

    # ------------------------------------------------------------------ #
    # Robustness metrics (duration-weighted ones use interval semantics)

    @staticmethod
    def _quantile(values: List[float], q: float) -> float:
        """Linear-interpolation quantile of ``values`` (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise OnlineSchedulingError(
                f"quantile must be within [0, 1] (got {q!r})"
            )
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])

    def period_quantile(self, q: float) -> float:
        """Quantile of the post-event shared period over non-idle states."""
        return self._quantile(
            [r.period for r in self.records if r.n_apps > 0], q
        )

    @property
    def period_p50(self) -> float:
        return self.period_quantile(0.5)

    @property
    def period_p99(self) -> float:
        return self.period_quantile(0.99)

    def app_period_quantiles(
        self, q: float = 0.5
    ) -> Dict[str, float]:
        """Per-application period quantile over the states it was resident.

        Aggregates each record's ``app_periods`` (the per-app period of
        the committed state), so an application's tail latency is
        visible even when the shared period is dominated by others.
        """
        samples: Dict[str, List[float]] = {}
        for record in self.records:
            for name, period in record.app_periods:
                samples.setdefault(name, []).append(period)
        return {
            name: self._quantile(values, q)
            for name, values in samples.items()
        }

    def _span_where(self, flag) -> float:
        """Total duration of intervals whose *leading* record sets ``flag``.

        Interval semantics: record ``i`` rules ``[t_i, t_{i+1})``; the
        final record contributes zero measure.
        """
        return sum(
            self.records[i + 1].time - self.records[i].time
            for i in range(len(self.records) - 1)
            if flag(self.records[i])
        )

    @property
    def span(self) -> float:
        """Wall-clock extent of the run (first to last record)."""
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].time - self.records[0].time

    @property
    def time_in_degraded(self) -> float:
        """Total wall-clock time spent in brownout (degraded) mode."""
        return self._span_where(lambda r: r.degraded)

    @property
    def degraded_fraction(self) -> float:
        """Degraded time over the run's span (0.0 for degenerate spans)."""
        span = self.span
        return self.time_in_degraded / span if span else 0.0

    @property
    def qos_violation_rate(self) -> float:
        """Fraction of the span with at least one missed QoS target."""
        span = self.span
        if not span:
            return 0.0
        return self._span_where(lambda r: r.target_misses > 0) / span

    @property
    def availability(self) -> float:
        """Fraction of the span at full service.

        Full service = not in brownout and every resident QoS target
        met; the complement is the degraded-or-violating measure.  1.0
        for degenerate spans (nothing happened, nothing was missed).
        """
        span = self.span
        if not span:
            return 1.0
        lost = self._span_where(lambda r: r.degraded or r.target_misses > 0)
        return 1.0 - lost / span

    @property
    def shed_count(self) -> int:
        """Applications shed (dropped) by degradation handling."""
        return len(self.dropped_apps)

    @property
    def n_retries(self) -> int:
        """Deferred-admission retry attempts fired from the queue."""
        return sum(1 for r in self.records if r.event == "retry")

    @property
    def n_retry_admitted(self) -> int:
        return sum(
            1
            for r in self.records
            if r.event == "retry" and r.accepted is True
        )

    @property
    def mean_decision_latency(self) -> float:
        """Mean recorded per-event decision seconds (0.0 uninstrumented)."""
        samples = [
            r.decision_latency
            for r in self.records
            if r.decision_latency > 0.0
        ]
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def mean_admission_latency(self) -> float:
        """Mean decision seconds over arrival/retry events.

        Non-zero only for instrumented runs (``repro.obs`` metrics or
        tracing enabled while the scheduler ran) — the online sweep's
        admission-latency column.
        """
        samples = [
            r.decision_latency
            for r in self.records
            if r.event in ("arrival", "retry") and r.decision_latency > 0.0
        ]
        return sum(samples) / len(samples) if samples else 0.0

    # ------------------------------------------------------------------ #
    # Serialization (replay/diff without re-running the scheduler)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "platform": self.platform,
                "objective": self.objective,
                "migration_budget": self.migration_budget,
                "kernel_backend": self.kernel_backend,
                "records": [r.to_dict() for r in self.records],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "RuntimeReport":
        try:
            payload = json.loads(text)
            records = [
                EventRecord.from_dict(entry) for entry in payload["records"]
            ]
            return cls(
                platform=str(payload["platform"]),
                objective=str(payload["objective"]),
                migration_budget=int(payload["migration_budget"]),
                records=records,
                # Absent in archives predating backend surfacing.
                kernel_backend=str(payload.get("kernel_backend", "")),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise OnlineSchedulingError(
                f"malformed runtime report payload: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #

    def table(self) -> str:
        """Human-readable timeline (CLI/notebook friendly)."""
        engine = (
            f", kernel: {self.kernel_backend}" if self.kernel_backend else ""
        )
        rows = [
            f"Online run on {self.platform} [objective: {self.objective}, "
            f"migration budget: {self.migration_budget}{engine}]",
            "  seq      time  event      subject              outcome      "
            "migr    period  apps",
        ]
        for r in self.records:
            if r.accepted is True:
                outcome = "admitted"
            elif r.accepted is False:
                outcome = "rejected"
            else:
                outcome = "-"
            detail = f" ({r.reason})" if r.reason else ""
            drop = f" drop:{','.join(r.dropped)}" if r.dropped else ""
            mode = " [degraded]" if r.degraded else ""
            rows.append(
                f"  {r.seq:3d}  {r.time:8.1f}  {r.event:<9}  "
                f"{r.subject:<19}  {outcome:<9}  {r.migrations:4d}  "
                f"{r.period:8.2f}  {r.n_apps:4d}{mode}{detail}{drop}"
            )
        rows.append(
            f"  => acceptance {self.n_accepted}/{self.n_arrivals} "
            f"({100.0 * self.acceptance_rate:.0f}%), "
            f"mean period {self.mean_period:.2f} µs, "
            f"{self.total_migrations} migrations, "
            f"{len(self.dropped_apps)} dropped"
        )
        rows.append(
            f"  => robustness: period p50/p99 {self.period_p50:.2f}/"
            f"{self.period_p99:.2f} µs, QoS violation rate "
            f"{100.0 * self.qos_violation_rate:.0f}%, degraded "
            f"{100.0 * self.degraded_fraction:.0f}% of span, availability "
            f"{100.0 * self.availability:.0f}%, {self.shed_count} shed, "
            f"{self.n_retry_admitted}/{self.n_retries} retries admitted"
        )
        return "\n".join(rows)
