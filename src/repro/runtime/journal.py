"""Write-ahead event journal: fsync'd JSONL, one record per committed event.

:class:`EventJournal` is the durability half of the scheduler service's
crash story (the other half is :mod:`repro.runtime.checkpoint`).  The
file layout is deliberately primitive — a header line followed by one
compact JSON line per event::

    {"journal": 1, "config": {...} | null}
    {"idx": 0, "event": {"type": "arrival", ...}}
    {"idx": 1, "event": {"type": "failure", ...}}
    ...

* **Schema-versioned.**  The header carries the journal schema and,
  optionally, the owning scheduler's :meth:`~repro.runtime.scheduler.
  OnlineScheduler.config` echo, so a journal alone (no checkpoint) is
  enough to rebuild an equivalent scheduler and replay from event 0.
* **Committed events only.**  :class:`~repro.runtime.checkpoint.
  DurableScheduler` appends an event *after* the scheduler commits it
  and fsyncs *before* acknowledging it, so an acknowledged event is
  never lost and a replayed journal never contains an event the
  scheduler refused — replaying can never fail where the original run
  succeeded.
* **Torn tails are repaired, not fatal.**  A crash mid-``write`` leaves
  a partial final line.  :meth:`EventJournal.read` reports it,
  :meth:`EventJournal.repair` truncates the file back to the last
  complete record, and opening a journal for appending repairs
  automatically.  Anything worse — a malformed record *before* the
  final line, a bad header, out-of-order indices — raises
  :class:`~repro.errors.JournalError`: that is corruption recovery must
  not paper over.

Record indices are the replay cursor: checkpoints store how many events
were applied (``n_applied``), and recovery replays exactly the records
with ``idx >= n_applied`` (see :func:`repro.runtime.checkpoint.
DurableScheduler.recover`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import JournalError, OnlineSchedulingError
from .events import Event
from .faults import event_from_dict, event_to_dict

__all__ = ["EventJournal", "JOURNAL_SCHEMA"]

#: Schema version written into (and required of) journal headers.
JOURNAL_SCHEMA = 1

#: One parsed journal entry: ``(idx, event)``.
Entry = Tuple[int, Event]


def _parse_line(text: str, lineno: int) -> Dict[str, Any]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JournalError(
            f"journal line {lineno} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise JournalError(
            f"journal line {lineno} is not a JSON object "
            f"(got {type(payload).__name__})"
        )
    return payload


def _scan(raw: bytes) -> Tuple[Optional[Dict], List[Entry], int]:
    """Parse journal bytes; returns ``(config, entries, good_bytes)``.

    ``good_bytes`` is the byte length of the valid prefix — equal to
    ``len(raw)`` when the journal is clean, shorter when the final line
    is torn (unparseable or missing its terminator *and* unparseable).
    A final line that parses but lacks its ``\\n`` is a complete record
    whose terminator was lost — it is accepted, and the missing newline
    is the only thing repair rewrites.
    """
    config: Optional[Dict] = None
    entries: List[Entry] = []
    have_header = False
    good = 0
    offset = 0
    lineno = 0
    for line in raw.splitlines(keepends=True):
        lineno += 1
        start, offset = offset, offset + len(line)
        complete = line.endswith(b"\n")
        text = line.decode("utf-8", errors="replace").rstrip("\r\n")
        last = offset == len(raw)
        try:
            payload = _parse_line(text, lineno)
            if not have_header:
                if payload.get("journal") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"unsupported journal schema "
                        f"{payload.get('journal')!r} (this build reads "
                        f"{JOURNAL_SCHEMA})"
                    )
                config = payload.get("config")
                have_header = True
            else:
                idx = int(payload["idx"])
                expect = entries[-1][0] + 1 if entries else 0
                if idx != expect:
                    raise JournalError(
                        f"journal line {lineno} has idx {idx!r}, "
                        f"expected {expect} (records must be contiguous "
                        f"from 0)"
                    )
                entries.append((idx, event_from_dict(payload["event"])))
        except (
            OnlineSchedulingError,  # includes JournalError
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            if last and not complete:
                # Torn tail: the mid-write-crash signature.  Everything
                # before this line is intact.
                return config, entries, good
            if isinstance(exc, JournalError):
                raise
            raise JournalError(
                f"journal line {lineno} is malformed: {exc}"
            ) from exc
        good = offset
    return config, entries, good


class EventJournal:
    """Append-only JSONL journal of committed runtime events.

    Parameters
    ----------
    path:
        The journal file.  ``fresh=True`` (re)creates it with a new
        header; ``fresh=False`` opens an existing journal for appending,
        repairing a torn tail first, and appends continue at the next
        record index.  A missing file is always created fresh.
    config:
        Optional scheduler :meth:`~repro.runtime.scheduler.
        OnlineScheduler.config` echo for the header of a fresh journal
        (ignored when appending to an existing one — the stored header
        wins).
    fsync:
        ``True`` (default) fsyncs after the header and after every
        appended record — the durability contract.  ``False`` skips the
        fsync (tests and throwaway sweeps) but still flushes, so the
        file is consistent on clean close.
    """

    def __init__(
        self,
        path: Union[str, Path],
        config: Optional[Dict] = None,
        fsync: bool = True,
        fresh: bool = True,
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.config = config
        self.next_idx = 0
        if not fresh and self.path.exists() and self.path.stat().st_size:
            stored, entries, _ = self.repair(self.path)
            self.config = stored
            self.next_idx = entries[-1][0] + 1 if entries else 0
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write({"journal": JOURNAL_SCHEMA, "config": self.config})

    # ------------------------------------------------------------------ #
    # Writing

    def _write(self, payload: Dict) -> None:
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append(self, event: Event) -> int:
        """Durably append one committed event; returns its record index."""
        if self._fh.closed:
            raise JournalError(
                f"journal {str(self.path)!r} is closed; cannot append"
            )
        idx = self.next_idx
        self._write({"idx": idx, "event": event_to_dict(event)})
        self.next_idx = idx + 1
        return idx

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Reading / recovery

    @staticmethod
    def read(
        path: Union[str, Path],
    ) -> Tuple[Optional[Dict], List[Entry], bool]:
        """Parse a journal; returns ``(config, entries, torn)``.

        Read-only validation: ``torn`` flags a partial final line
        (ignored — its record never committed), while corruption
        anywhere else raises :class:`~repro.errors.JournalError`.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {str(path)!r}: {exc}"
            ) from exc
        if not raw:
            raise JournalError(f"journal {str(path)!r} is empty (no header)")
        config, entries, good = _scan(raw)
        return config, entries, good < len(raw)

    @staticmethod
    def repair(
        path: Union[str, Path],
    ) -> Tuple[Optional[Dict], List[Entry], bool]:
        """:meth:`read`, truncating a torn tail in place when found.

        Returns ``(config, entries, truncated)``; after it returns the
        file on disk holds exactly ``entries`` and ends at a record
        boundary, so appending can resume safely.
        """
        path = Path(path)
        config, entries, torn = EventJournal.read(path)
        raw = path.read_bytes()
        if torn:
            _, _, good = _scan(raw)
            with open(path, "r+b") as fh:
                fh.truncate(good)
                fh.flush()
                os.fsync(fh.fileno())
        elif raw and not raw.endswith(b"\n"):
            # Complete final record that lost only its terminator: put
            # the newline back so appends land on a fresh line.
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
        return config, entries, torn
