"""Long-running asyncio scheduler service: the ROADMAP serving loop.

:class:`SchedulerService` wraps an
:class:`~repro.runtime.scheduler.OnlineScheduler` behind an async
submit/response surface with explicit overload protection, optional
durability, and a stats endpoint:

* **Bounded queue + backpressure.**  Requests beyond ``max_queue`` are
  rejected outright (``"queue-full"``); crossing the high watermark
  flips the service into *shedding* mode, where new submissions are
  rejected (``"backpressure"``) until the queue drains below the low
  watermark — hysteresis, so overload sheds in runs instead of
  flapping per request.
* **Per-request deadlines.**  A request whose deadline passes — still
  queued or not — resolves with ``"deadline-exceeded"`` at the deadline
  instead of hanging; nothing ever blocks past its timeout.
* **Admission batching.**  The serving loop drains up to
  ``admission_batch`` requests per iteration, yielding to the event
  loop between batches — batching amortises loop overhead, the yield
  keeps the loop responsive (and lets deadline timers fire).
* **Durability.**  With ``journal_path`` set, events run through a
  :class:`~repro.runtime.checkpoint.DurableScheduler`: each committed
  event is journaled (fsync before the response resolves) and
  checkpointed every ``checkpoint_every`` events, so a killed service
  recovers to the exact committed state (see
  :meth:`~repro.runtime.checkpoint.DurableScheduler.recover`).
* **Observability.**  :meth:`stats` is always live (plain counters);
  when the :mod:`repro.obs` registry is enabled the service also feeds
  it (``service.*`` counters, queue-depth gauge, ``service_latency``
  histogram) on top of the scheduler's own admission metrics.
  :meth:`serve_stats` exports everything over a minimal HTTP endpoint
  (``/stats``, ``/metrics``, ``/healthz``) with no extra dependencies.

Scheduler-level rejections (infeasible, target-missed, duplicate-name)
are *successful* service responses — ``status="ok"`` with the record
carrying the admission verdict.  ``status="rejected"`` is reserved for
the overload path (the request never reached the scheduler), and
``status="error"`` for requests the scheduler refused as inconsistent
(e.g. out-of-time-order events); neither is journaled.

Retry-with-backoff for rejected admissions is the scheduler's own PR 6
deferred-admission machinery (``retry_limit``/``retry_backoff`` on the
wrapped scheduler) — the service adds nothing on top, it just keeps the
event clock moving so due retries fire.

:func:`play` is the canonical load driver (experiments, benchmarks,
CLI): it submits a timeline in order, interleaving with the serving
loop, and returns every response — offline equivalence (service run ==
``scheduler.run(events)``) holds whenever nothing is shed.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import OnlineSchedulingError, ServiceError
from ..obs import metrics as _metrics
from ..obs.logging import get_logger
from .checkpoint import DurableScheduler
from .events import Event
from .report import EventRecord, RuntimeReport
from .scheduler import OnlineScheduler

__all__ = ["SchedulerService", "ServiceResponse", "play"]

_LOG = get_logger("service")


@dataclass(frozen=True)
class ServiceResponse:
    """Outcome of one submitted event.

    ``status`` is ``"ok"`` (the scheduler processed the event — the
    record carries the admission verdict), ``"rejected"`` (overload
    protection turned the request away: ``reason`` is ``"queue-full"``,
    ``"backpressure"``, ``"deadline-exceeded"`` or ``"shutdown"``), or
    ``"error"`` (the scheduler refused the event as inconsistent).
    ``latency`` is wall-clock seconds from submission to resolution —
    telemetry, excluded from equality like
    :attr:`~repro.runtime.report.EventRecord.decision_latency`.
    """

    status: str
    reason: str = ""
    record: Optional[EventRecord] = None
    latency: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class _Request:
    event: Event
    future: "asyncio.Future[ServiceResponse]"
    enqueued: float
    deadline: Optional[float]
    timer: Optional[asyncio.TimerHandle] = None


class SchedulerService:
    """Async serving loop around one scheduler (see module docstring).

    Parameters
    ----------
    scheduler:
        The wrapped :class:`~repro.runtime.scheduler.OnlineScheduler`.
    admission_batch:
        Requests drained per serving-loop iteration (≥ 1).
    max_queue:
        Hard queue bound; submissions beyond it get ``"queue-full"``.
    high_watermark / low_watermark:
        Shedding hysteresis thresholds.  Defaults: ¾ of ``max_queue``
        and half of the high watermark.  ``high_watermark=None`` with an
        explicit ``max_queue`` keeps the defaults; pass
        ``high_watermark=max_queue`` to disable early shedding and rely
        on the hard bound alone.
    default_timeout:
        Deadline (seconds from submission) applied when ``submit`` gets
        no explicit timeout; ``None`` or ``math.inf`` means no deadline.
    journal_path / checkpoint_path / checkpoint_every / fsync:
        Durability wiring, forwarded to
        :class:`~repro.runtime.checkpoint.DurableScheduler`.  Without a
        ``journal_path`` the service runs in-memory only.
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        admission_batch: int = 4,
        max_queue: int = 256,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        default_timeout: Optional[float] = None,
        journal_path=None,
        checkpoint_path=None,
        checkpoint_every: int = 0,
        fsync: bool = True,
    ) -> None:
        if admission_batch < 1:
            raise ServiceError(
                f"admission_batch must be >= 1 (got {admission_batch!r})"
            )
        if max_queue < 1:
            raise ServiceError(
                f"max_queue must be >= 1 (got {max_queue!r})"
            )
        if high_watermark is None:
            high_watermark = max(1, (3 * max_queue) // 4)
        if not 1 <= high_watermark <= max_queue:
            raise ServiceError(
                f"high_watermark must be within [1, max_queue] "
                f"(got {high_watermark!r} with max_queue={max_queue})"
            )
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if not 0 <= low_watermark < high_watermark:
            raise ServiceError(
                f"low_watermark must be within [0, high_watermark) "
                f"(got {low_watermark!r} with "
                f"high_watermark={high_watermark})"
            )
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive (got {default_timeout!r})"
            )
        self.scheduler = scheduler
        self.admission_batch = int(admission_batch)
        self.max_queue = int(max_queue)
        self.high_watermark = int(high_watermark)
        self.low_watermark = int(low_watermark)
        self.default_timeout = default_timeout
        self._engine: Union[OnlineScheduler, DurableScheduler] = scheduler
        if journal_path is not None:
            self._engine = DurableScheduler(
                scheduler,
                journal_path,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                fsync=fsync,
            )
        elif checkpoint_path is not None:
            raise ServiceError(
                "checkpoint_path requires journal_path (checkpoints are "
                "replay cursors into the journal)"
            )
        self._queue: List[_Request] = []
        self._wake = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional[asyncio.Task] = None
        self._accepting = True
        self._shedding = False
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "processed": 0,
            "errors": 0,
            "rejected_queue_full": 0,
            "rejected_backpressure": 0,
            "rejected_deadline": 0,
            "rejected_shutdown": 0,
            "batches": 0,
            "max_depth": 0,
            "shed_entries": 0,
        }

    # ------------------------------------------------------------------ #
    # Introspection

    @property
    def durable(self) -> bool:
        return isinstance(self._engine, DurableScheduler)

    @property
    def running(self) -> bool:
        """Whether the serving loop is live (started and not stopped)."""
        return self._task is not None and not self._task.done()

    @property
    def depth(self) -> int:
        """Current queue depth (expired-but-unpopped requests included)."""
        return len(self._queue)

    @property
    def shedding(self) -> bool:
        """Whether backpressure shedding is currently engaged."""
        return self._shedding

    def report(self) -> RuntimeReport:
        return self.scheduler.report()

    def stats(self) -> Dict:
        """Live service counters plus scheduler aggregates (JSON-able)."""
        report = self.report()
        return {
            **self._stats,
            "depth": len(self._queue),
            "shedding": self._shedding,
            "accepting": self._accepting,
            "durable": self.durable,
            "scheduler": {
                "events": report.n_events,
                "arrivals": report.n_arrivals,
                "accepted": report.n_accepted,
                "acceptance_rate": report.acceptance_rate,
                "shed_count": report.shed_count,
                "retries": report.n_retries,
                "degraded": self.scheduler.degraded,
                "time": self.scheduler.time,
                "kernel_backend": self.scheduler.kernel_backend,
            },
        }

    # ------------------------------------------------------------------ #
    # Lifecycle

    async def start(self) -> None:
        """Start the serving loop (idempotent restart is an error)."""
        if self._task is not None:
            raise ServiceError("service already started")
        self._loop = asyncio.get_running_loop()
        self._task = asyncio.create_task(self._serve(), name="repro-serve")

    async def stop(self, drain: bool = True) -> RuntimeReport:
        """Stop the loop; returns the final report.

        ``drain=True`` (graceful) processes everything already queued
        before stopping; ``drain=False`` rejects the queue with
        ``"shutdown"``.  Either way new submissions are refused from
        this call on, a final checkpoint is written and the journal is
        closed when the service is durable.
        """
        self._accepting = False
        if not drain:
            for request in self._queue:
                self._resolve(
                    request, ServiceResponse("rejected", "shutdown")
                )
                self._stats["rejected_shutdown"] += 1
            self._queue.clear()
            self._update_shedding()
        if self._task is not None:
            self._wake.set()
            await self._task
            self._task = None
        if isinstance(self._engine, DurableScheduler):
            self._engine.close()
        return self.report()

    # ------------------------------------------------------------------ #
    # Submission

    async def submit(
        self,
        event: Event,
        timeout: Optional[float] = None,
    ) -> ServiceResponse:
        """Queue one event; resolves with its :class:`ServiceResponse`.

        ``timeout`` (seconds, default :attr:`default_timeout`) bounds
        the wait: a request still unresolved at its deadline resolves
        ``"rejected"/"deadline-exceeded"`` right then — it never hangs.
        Submissions are accepted before :meth:`start`; they queue until
        the loop runs.
        """
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        if not self._accepting:
            self._count_reject("shutdown")
            return ServiceResponse("rejected", "shutdown")
        self._stats["submitted"] += 1
        if len(self._queue) >= self.max_queue:
            self._count_reject("queue-full")
            return ServiceResponse("rejected", "queue-full")
        if self._shedding:
            self._count_reject("backpressure")
            return ServiceResponse("rejected", "backpressure")
        if timeout is None:
            timeout = self.default_timeout
        now = loop.time()
        deadline = (
            now + timeout
            if timeout is not None and math.isfinite(timeout)
            else None
        )
        request = _Request(
            event=event,
            future=loop.create_future(),
            enqueued=now,
            deadline=deadline,
        )
        if deadline is not None:
            request.timer = loop.call_at(deadline, self._expire, request)
        self._queue.append(request)
        depth = len(self._queue)
        if depth > self._stats["max_depth"]:
            self._stats["max_depth"] = depth
        self._update_shedding()
        self._wake.set()
        return await request.future

    def _count_reject(self, reason: str) -> None:
        key = "rejected_" + reason.replace("-", "_")
        if reason == "deadline-exceeded":
            key = "rejected_deadline"
        elif reason == "queue-full":
            key = "rejected_queue_full"
        self._stats[key] = self._stats.get(key, 0) + 1
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("service.rejected." + reason)
        _LOG.debug("request rejected: %s", reason)

    def _update_shedding(self) -> None:
        depth = len(self._queue)
        if not self._shedding and depth >= self.high_watermark:
            self._shedding = True
            self._stats["shed_entries"] += 1
            reg = _metrics.REGISTRY
            if reg is not None:
                reg.inc("service.shed_entries")
            _LOG.warning(
                "backpressure engaged: depth %d >= high watermark %d",
                depth,
                self.high_watermark,
            )
        elif self._shedding and depth <= self.low_watermark:
            self._shedding = False
            _LOG.info(
                "backpressure released: depth %d <= low watermark %d",
                depth,
                self.low_watermark,
            )

    def _resolve(self, request: _Request, response: ServiceResponse) -> None:
        if request.timer is not None:
            request.timer.cancel()
            request.timer = None
        if not request.future.done():
            request.future.set_result(response)

    def _expire(self, request: _Request) -> None:
        """Deadline timer callback: resolve a still-queued request now.

        The request object stays in the queue until the serving loop
        pops (and then skips) it — O(1) here, and the depth accounting
        errs on the safe (higher) side until then.
        """
        if not request.future.done():
            assert self._loop is not None
            latency = self._loop.time() - request.enqueued
            self._resolve(
                request,
                ServiceResponse(
                    "rejected", "deadline-exceeded", latency=latency
                ),
            )
            self._count_reject("deadline-exceeded")

    # ------------------------------------------------------------------ #
    # Serving loop

    async def _serve(self) -> None:
        assert self._loop is not None
        while True:
            if not self._queue:
                if not self._accepting:
                    return
                self._wake.clear()
                # Re-check after clear: a submit between the check and
                # the clear must not be lost.
                if not self._queue and self._accepting:
                    await self._wake.wait()
                continue
            batch = self._queue[: self.admission_batch]
            del self._queue[: self.admission_batch]
            self._update_shedding()
            self._stats["batches"] += 1
            for request in batch:
                self._process(request)
            # Yield between batches: deadline timers and new submissions
            # get the loop even under a saturating backlog.
            await asyncio.sleep(0)

    def _process(self, request: _Request) -> None:
        assert self._loop is not None
        if request.future.done():
            return  # expired at its deadline while queued
        now = self._loop.time()
        if request.deadline is not None and now >= request.deadline:
            self._expire(request)
            return
        try:
            record = self._engine.process(request.event)
        except OnlineSchedulingError as exc:
            self._stats["errors"] += 1
            reg = _metrics.REGISTRY
            if reg is not None:
                reg.inc("service.errors")
            self._resolve(
                request,
                ServiceResponse(
                    "error",
                    str(exc),
                    latency=self._loop.time() - request.enqueued,
                ),
            )
            return
        latency = self._loop.time() - request.enqueued
        self._stats["processed"] += 1
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("service.processed")
            reg.set_gauge("service_queue_depth", float(len(self._queue)))
            reg.observe("service_latency", latency)
        self._resolve(
            request,
            ServiceResponse(
                "ok", record.reason, record=record, latency=latency
            ),
        )

    # ------------------------------------------------------------------ #
    # Stats endpoint

    async def serve_stats(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[asyncio.AbstractServer, int]:
        """Serve ``/stats``, ``/metrics`` and ``/healthz`` over HTTP.

        A dependency-free ``asyncio.start_server`` endpoint: GET paths
        answer JSON (``/metrics`` is the :mod:`repro.obs` registry
        snapshot, ``{}`` while metrics are disabled).  Returns the
        server and its bound port (``port=0`` picks a free one); the
        caller closes the server.
        """
        server = await asyncio.start_server(self._handle_http, host, port)
        bound = server.sockets[0].getsockname()[1]
        return server, bound

    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers; the endpoint is GET-only
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            status = "200 OK"
            if path in ("/", "/stats"):
                body = json.dumps(self.stats(), sort_keys=True)
            elif path == "/metrics":
                reg = _metrics.REGISTRY
                body = json.dumps(
                    reg.snapshot() if reg is not None else {}, sort_keys=True
                )
            elif path == "/healthz":
                body = json.dumps(
                    {"ok": self.running, "accepting": self._accepting}
                )
            else:
                status = "404 Not Found"
                body = json.dumps({"error": f"unknown path {path}"})
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        finally:
            writer.close()


async def play(
    service: SchedulerService,
    events: Sequence[Event],
    timeout: Optional[float] = None,
) -> List[ServiceResponse]:
    """Submit a timeline through a started service, in order.

    Each event's submission task is created before the next event is
    offered and the driver yields to the loop between submissions, so
    events enter the queue in timeline order while the serving loop
    runs concurrently — the async load-generator shape the experiments,
    benchmarks and CLI all share.  Returns one response per event, in
    timeline order.
    """
    pending = [
        asyncio.ensure_future(service.submit(event, timeout=timeout))
        for event in events
    ]
    # ensure_future queues the coroutines in order; submissions enqueue
    # in that same order on the first loop pass.
    return list(await asyncio.gather(*pending))
