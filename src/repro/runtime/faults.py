"""Fault injection for the online runtime: correlated failures, cost
perturbation windows, and JSON timeline save/replay.

:class:`~repro.runtime.scenario.ScenarioGenerator` produces the gentle
world — independent single-SPE failures, exact costs.
:class:`FaultInjector` layers the harsh one on top of any timeline:

* **correlated failure bursts** — a burst fails one seed SPE and then
  *cascades*: with probability ``correlation`` another live SPE joins
  the burst (repeated, so the burst size is geometric in the
  correlation parameter), each cascade member failing a short lag after
  the previous one — the power-rail/thermal-domain failure mode where
  one fault takes neighbours down with it;
* **whole-Cell outages** — with probability ``whole_cell_probability`` a
  burst takes down *every* SPE of one randomly chosen Cell chip at
  once (the platform's :meth:`~repro.platform.cell.CellPlatform.cell_of`
  topology), the blade-level failure mode of multi-Cell platforms;
* **cost perturbation windows** — paired
  :class:`~repro.runtime.events.CostPerturbation` /
  :class:`~repro.runtime.events.CostRestore` events scaling compute
  costs and link rates for a bounded interval (windows never overlap).

Everything is driven by one ``random.Random(seed)`` in a fixed order, so
``FaultInjector(platform, seed).inject(timeline, ...)`` is deterministic
per ``(seed, timeline, parameters)`` — the reproducibility anchor of the
chaos harness.  Injected outage windows never overlap per SPE (an SPE
only fails while it is up), so the merged timeline always passes
:func:`~repro.runtime.events.validate_timeline` and the scheduler's own
per-event checks.

JSON save/replay
----------------

:func:`save_timeline` / :func:`load_timeline` (and the string/dict level
``timeline_dumps`` / ``timeline_loads`` / ``timeline_to_dict`` /
``timeline_from_dict``) archive a full event timeline — arrival graphs
included, via :mod:`repro.graph.io` — so a generated-and-injected
scenario can be replayed bit-for-bit later (``repro-experiment online
--timeline saved.json``) without re-running the generator.

Event/time semantics contract
-----------------------------

The runtime's notion of time obeys five rules; the chaos harness
(``tests/test_chaos.py``) property-tests each of them:

1. **Monotone clock.**  ``OnlineScheduler.time`` never decreases: events
   must be fed in non-decreasing ``time`` order, and every emitted
   :class:`~repro.runtime.report.EventRecord` (including deferred-retry
   records, stamped at their *due* time) carries a time no earlier than
   the previous record's.
2. **Interval semantics.**  A record describes the committed state over
   the half-open interval ``[its time, next record's time)``.  Duration
   aggregates (time in degraded mode, availability) integrate over
   those intervals; the state after the final record extends to the
   final record's time, i.e. contributes zero measure.
3. **Event atomicity.**  All consequences of one event — evacuation,
   budgeted repair, shedding, brownout entry/exit — commit at that
   event's timestamp.  Time does not pass *during* an event.
4. **dt-invariance.**  Decisions depend only on event *order* and the
   committed state, never on the wall-clock gaps between events:
   translating or uniformly stretching every timestamp (and retry
   backoff) changes no admission, placement, shedding or brownout
   decision — only the timestamps and duration-weighted aggregates.

   *The retry due-time carve-out* — the one time-derived decision in
   the runtime.  A rejected arrival's ``k``-th retry (1-based) fires at

       ``due = rejection_time + retry_backoff · 2^(k-1)``

   so due times are *absolute* timestamps computed from the backoff
   knob, not from event order.  Stretching the timeline by ``s``
   **without** scaling ``retry_backoff`` therefore moves each retry
   relative to the surrounding events (a retry that used to fire
   before the next arrival may now fire after it), which can change
   the decision sequence itself — dt-invariance holds only when the
   backoff is stretched along with the timestamps, in which case every
   due time scales exactly (``s·t + (s·b)·2^(k-1) = s·(t + b·2^(k-1))``,
   exact in floats for power-of-two ``s``).
   ``tests/test_chaos.py::TestRetryDueTimeCarveOut`` pins both halves:
   the due-time formula itself, and scaled-backoff equivariance versus
   unscaled-backoff divergence.
5. **Pairing.**  ``SpeFailure``/``SpeRecovery`` and
   ``CostPerturbation``/``CostRestore`` come in ordered pairs: an SPE
   fails only while up and recovers only while down; perturbation
   windows never nest or overlap.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import GeneratorError, OnlineSchedulingError
from ..graph import io as graph_io
from ..platform.cell import CellPlatform
from .events import (
    AppArrival,
    AppDeparture,
    CostPerturbation,
    CostRestore,
    Event,
    SpeFailure,
    SpeRecovery,
    validate_timeline,
)

__all__ = [
    "FaultInjector",
    "event_to_dict",
    "event_from_dict",
    "timeline_to_dict",
    "timeline_from_dict",
    "timeline_dumps",
    "timeline_loads",
    "save_timeline",
    "load_timeline",
]

_SCHEMA_VERSION = 1


class FaultInjector:
    """Seeded correlated-failure and cost-perturbation injection.

    Parameters
    ----------
    platform:
        Supplies the SPE indices and the Cell topology bursts may hit.
    seed:
        Drives every random draw; equal seeds give equal injections.
    correlation:
        Cascade probability in ``[0, 1)``: after each burst member,
        another live SPE joins with this probability (burst size is
        geometric), so ``0.0`` degenerates to independent single-SPE
        failures.
    whole_cell_probability:
        Probability in ``[0, 1]`` that a burst is a whole-Cell outage
        (every SPE of one chip) instead of a cascade.
    mean_downtime:
        Mean outage duration per failed SPE (exponential).
    cascade_lag:
        Mean lag between consecutive members of one cascade
        (exponential; whole-Cell outages hit all members at the same
        instant).
    compute_scale / bw_scale:
        Uniform ranges the perturbation window scales are drawn from
        (compute slowdown ≥ is typical with lo ≥ 1; bandwidth
        degradation with hi ≤ 1).
    mean_perturbation:
        Mean perturbation window length (exponential).
    """

    def __init__(
        self,
        platform: CellPlatform,
        seed: int = 0,
        correlation: float = 0.4,
        whole_cell_probability: float = 0.0,
        mean_downtime: float = 25.0,
        cascade_lag: float = 1.0,
        compute_scale: Tuple[float, float] = (1.25, 2.5),
        bw_scale: Tuple[float, float] = (0.4, 1.0),
        mean_perturbation: float = 20.0,
    ) -> None:
        if not 0.0 <= correlation < 1.0:
            raise GeneratorError(
                f"correlation must be within [0, 1) so cascades terminate "
                f"(got {correlation!r})"
            )
        if not 0.0 <= whole_cell_probability <= 1.0:
            raise GeneratorError(
                "whole_cell_probability must be within [0, 1] "
                f"(got {whole_cell_probability!r})"
            )
        if mean_downtime <= 0:
            raise GeneratorError(
                f"mean_downtime must be positive (got {mean_downtime!r})"
            )
        if cascade_lag <= 0:
            raise GeneratorError(
                f"cascade_lag must be positive (got {cascade_lag!r})"
            )
        if mean_perturbation <= 0:
            raise GeneratorError(
                f"mean_perturbation must be positive (got {mean_perturbation!r})"
            )
        for label, (lo, hi) in (
            ("compute_scale", compute_scale),
            ("bw_scale", bw_scale),
        ):
            if lo <= 0 or hi < lo:
                raise GeneratorError(
                    f"{label} must be 0 < lo <= hi (got {(lo, hi)!r})"
                )
        self.platform = platform
        self.seed = int(seed)
        self.correlation = float(correlation)
        self.whole_cell_probability = float(whole_cell_probability)
        self.mean_downtime = float(mean_downtime)
        self.cascade_lag = float(cascade_lag)
        self.compute_scale = (float(compute_scale[0]), float(compute_scale[1]))
        self.bw_scale = (float(bw_scale[0]), float(bw_scale[1]))
        self.mean_perturbation = float(mean_perturbation)

    # ------------------------------------------------------------------ #

    def inject(
        self,
        timeline: Sequence[Event],
        n_bursts: int = 1,
        n_perturbations: int = 0,
    ) -> List[Event]:
        """Merge fault events into ``timeline``; returns a valid timeline.

        ``n_bursts`` correlated failure bursts and ``n_perturbations``
        cost-perturbation windows are placed uniformly over the base
        timeline's horizon.  Bursts never double-fail an SPE (a member
        whose new outage window would overlap one of its existing ones
        is skipped), and perturbation windows are placed back to back
        without overlap, so the merged timeline always validates.
        """
        if n_bursts < 0 or n_perturbations < 0:
            raise GeneratorError(
                "n_bursts and n_perturbations must be non-negative "
                f"(got {n_bursts!r}, {n_perturbations!r})"
            )
        base = validate_timeline(timeline)
        rng = Random(self.seed)
        horizon = max((e.time for e in base), default=0.0) or 1.0
        faults: List[Event] = []
        # Per-SPE outage windows already allocated (base timeline included,
        # so injection composes with generator-produced failures).
        outages: Dict[int, List[Tuple[float, float]]] = {}
        open_failure: Dict[int, float] = {}
        for event in base:
            if isinstance(event, SpeFailure):
                open_failure[event.spe] = event.time
            elif isinstance(event, SpeRecovery):
                start = open_failure.pop(event.spe, event.time)
                outages.setdefault(event.spe, []).append((start, event.time))
        for spe, start in open_failure.items():
            outages.setdefault(spe, []).append((start, math.inf))

        for burst_at in sorted(rng.uniform(0.0, horizon) for _ in range(n_bursts)):
            faults.extend(self._burst(rng, burst_at, outages))
        faults.extend(self._perturbations(rng, horizon, n_perturbations))

        merged = sorted(base + faults, key=lambda e: e.time)
        return validate_timeline(merged)

    # ------------------------------------------------------------------ #
    # Internals

    def _free(
        self,
        outages: Dict[int, List[Tuple[float, float]]],
        spe: int,
        start: float,
        end: float,
    ) -> bool:
        """Whether SPE ``spe`` is up throughout ``[start, end]``."""
        return all(
            end < lo or start > hi for lo, hi in outages.get(spe, ())
        )

    def _fail(
        self,
        rng: Random,
        spe: int,
        at: float,
        outages: Dict[int, List[Tuple[float, float]]],
    ) -> List[Event]:
        """One failure/recovery pair, or nothing when the window clashes."""
        downtime = rng.expovariate(1.0 / self.mean_downtime)
        if not self._free(outages, spe, at, at + downtime):
            return []
        outages.setdefault(spe, []).append((at, at + downtime))
        return [
            SpeFailure(time=at, spe=spe),
            SpeRecovery(time=at + downtime, spe=spe),
        ]

    def _burst(
        self,
        rng: Random,
        at: float,
        outages: Dict[int, List[Tuple[float, float]]],
    ) -> List[Event]:
        """One correlated burst starting at ``at``."""
        spes = list(self.platform.spe_indices)
        if not spes:
            return []
        events: List[Event] = []
        if (
            self.platform.n_cells > 1
            and rng.random() < self.whole_cell_probability
        ):
            # Whole-Cell outage: every SPE of one chip, same instant.
            cell = rng.randrange(self.platform.n_cells)
            for spe in spes:
                if self.platform.cell_of(spe) == cell:
                    events.extend(self._fail(rng, spe, at, outages))
            return events
        # Cascade: seed member, then geometric spread with a short lag.
        members: List[int] = []
        clock = at
        while True:
            candidates = [s for s in spes if s not in members]
            if not candidates:
                break
            spe = candidates[rng.randrange(len(candidates))]
            members.append(spe)
            events.extend(self._fail(rng, spe, clock, outages))
            if rng.random() >= self.correlation:
                break
            clock += rng.expovariate(1.0 / self.cascade_lag)
        return events

    def _perturbations(
        self, rng: Random, horizon: float, count: int
    ) -> List[Event]:
        """``count`` non-overlapping perturbation windows over the horizon."""
        events: List[Event] = []
        starts = sorted(rng.uniform(0.0, horizon) for _ in range(count))
        for i, start in enumerate(starts):
            duration = rng.expovariate(1.0 / self.mean_perturbation)
            end = start + duration
            if i + 1 < len(starts) and end >= starts[i + 1]:
                # Truncate so the next window opens on closed costs.
                end = start + 0.5 * (starts[i + 1] - start)
            events.append(
                CostPerturbation(
                    time=start,
                    compute_scale=rng.uniform(*self.compute_scale),
                    bw_scale=rng.uniform(*self.bw_scale),
                )
            )
            events.append(CostRestore(time=end))
        return events


# ---------------------------------------------------------------------- #
# JSON timeline save/replay


def event_to_dict(event: Event) -> Dict[str, Any]:
    """JSON-serialisable form of one event (arrival graphs embedded).

    The per-record unit the write-ahead journal
    (:mod:`repro.runtime.journal`) appends; :func:`timeline_to_dict` is
    this over a whole validated timeline.
    """
    if isinstance(event, AppArrival):
        return {
            "type": "arrival",
            "time": event.time,
            "name": event.name,
            "graph": graph_io.to_dict(event.graph),
            "weight": event.weight,
            "target_period": event.target_period,
            "app_kind": event.app_kind,
        }
    if isinstance(event, AppDeparture):
        return {"type": "departure", "time": event.time, "name": event.name}
    if isinstance(event, SpeFailure):
        return {"type": "failure", "time": event.time, "spe": event.spe}
    if isinstance(event, SpeRecovery):
        return {"type": "recovery", "time": event.time, "spe": event.spe}
    if isinstance(event, CostPerturbation):
        return {
            "type": "perturb",
            "time": event.time,
            "compute_scale": event.compute_scale,
            "bw_scale": event.bw_scale,
        }
    if isinstance(event, CostRestore):
        return {"type": "restore", "time": event.time}
    raise OnlineSchedulingError(f"unknown event {event!r}")


def event_from_dict(entry: Dict[str, Any]) -> Event:
    """Rebuild one event from :func:`event_to_dict` output."""
    try:
        kind = entry["type"]
        time = float(entry["time"])
        if kind == "arrival":
            return AppArrival(
                time=time,
                name=str(entry["name"]),
                graph=graph_io.from_dict(entry["graph"]),
                weight=float(entry.get("weight", 1.0)),
                target_period=(
                    None
                    if entry.get("target_period") is None
                    else float(entry["target_period"])
                ),
                app_kind=str(entry.get("app_kind", "")),
            )
        if kind == "departure":
            return AppDeparture(time=time, name=str(entry["name"]))
        if kind == "failure":
            return SpeFailure(time=time, spe=int(entry["spe"]))
        if kind == "recovery":
            return SpeRecovery(time=time, spe=int(entry["spe"]))
        if kind == "perturb":
            return CostPerturbation(
                time=time,
                compute_scale=float(entry.get("compute_scale", 1.0)),
                bw_scale=float(entry.get("bw_scale", 1.0)),
            )
        if kind == "restore":
            return CostRestore(time=time)
        raise OnlineSchedulingError(f"unknown timeline event type {kind!r}")
    except OnlineSchedulingError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise OnlineSchedulingError(
            f"malformed timeline event payload: {exc}"
        ) from exc


def timeline_to_dict(events: Sequence[Event]) -> Dict[str, Any]:
    """JSON-serialisable form of a timeline (arrival graphs embedded)."""
    return {
        "schema": _SCHEMA_VERSION,
        "events": [event_to_dict(e) for e in validate_timeline(events)],
    }


def timeline_from_dict(payload: Dict[str, Any]) -> List[Event]:
    """Rebuild a validated timeline from :func:`timeline_to_dict` output."""
    try:
        events = [event_from_dict(entry) for entry in payload["events"]]
    except OnlineSchedulingError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise OnlineSchedulingError(
            f"malformed timeline payload: {exc}"
        ) from exc
    return validate_timeline(events)


def timeline_dumps(events: Sequence[Event], indent: Optional[int] = 2) -> str:
    """Serialise a timeline to a JSON string."""
    return json.dumps(timeline_to_dict(events), indent=indent)


def timeline_loads(text: str) -> List[Event]:
    """Parse a timeline from JSON text produced by :func:`timeline_dumps`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise OnlineSchedulingError(
            f"malformed timeline payload: {exc}"
        ) from exc
    return timeline_from_dict(payload)


def save_timeline(events: Sequence[Event], path: Union[str, Path]) -> Path:
    """Write a timeline as JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(timeline_dumps(events))
    return path


def load_timeline(path: Union[str, Path]) -> List[Event]:
    """Read a timeline from a JSON file written by :func:`save_timeline`."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise OnlineSchedulingError(
            f"cannot read timeline file {str(path)!r}: {exc}"
        ) from exc
    return timeline_loads(text)
