"""Scheduler state checkpointing and crash recovery.

The durability contract (asserted per seed by ``tests/test_chaos.py``'s
crash-recovery leg, in all four buffer modes and under every kernel
backend): kill a :class:`DurableScheduler` at *any* committed-event
boundary, :meth:`DurableScheduler.recover` from the checkpoint plus the
journal, replay the rest of the timeline, and the final
:class:`~repro.runtime.report.RuntimeReport` is **bit-identical** to the
uninterrupted run.  Three properties make that hold:

* the scheduler is deterministic per (config, event sequence) — the
  repo's standing serial==parallel invariant;
* :meth:`OnlineScheduler.snapshot_state` captures every decision input,
  records included, and JSON round-trips floats exactly;
* the journal holds every committed event, so replaying records
  ``n_applied..`` from a checkpoint at boundary ``n_applied`` walks the
  identical event sequence.

Checkpoints are single JSON files written atomically (temp file +
fsync + ``os.replace``), so a crash mid-checkpoint leaves the previous
checkpoint intact, never a half-written one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..errors import CheckpointError, OnlineSchedulingError, ReproError
from ..platform.cell import CellPlatform
from .events import Event, validate_timeline
from .journal import EventJournal
from .report import EventRecord, RuntimeReport
from .scheduler import STATE_SCHEMA, OnlineScheduler

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DurableScheduler",
    "read_checkpoint",
    "scheduler_from_config",
    "write_checkpoint",
]

#: Schema version of checkpoint files.
CHECKPOINT_SCHEMA = 1


def write_checkpoint(
    scheduler: OnlineScheduler,
    path: Union[str, Path],
    n_applied: int,
    fsync: bool = True,
) -> Path:
    """Atomically write ``scheduler``'s state to ``path``.

    ``n_applied`` is the journal replay cursor: how many journal records
    the captured state has consumed.  The write goes to a sibling temp
    file, is flushed (and fsync'd unless ``fsync=False``), then
    ``os.replace``d over ``path`` — the checkpoint on disk is always
    either the old one or the new one, never a torn hybrid.
    """
    if n_applied < 0:
        raise CheckpointError(
            f"n_applied must be non-negative (got {n_applied!r})"
        )
    path = Path(path)
    payload = {
        "checkpoint": CHECKPOINT_SCHEMA,
        "n_applied": int(n_applied),
        "config": scheduler.config(),
        "state": scheduler.snapshot_state(),
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(path: Union[str, Path]) -> Dict:
    """Parse and shape-check a checkpoint written by :func:`write_checkpoint`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {str(path)!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {str(path)!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("checkpoint") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema in {str(path)!r} "
            f"(this build reads {CHECKPOINT_SCHEMA})"
        )
    for key in ("n_applied", "config", "state"):
        if key not in payload:
            raise CheckpointError(
                f"checkpoint {str(path)!r} is missing {key!r}"
            )
    if payload["state"].get("schema") != STATE_SCHEMA:
        raise CheckpointError(
            f"checkpoint {str(path)!r} carries state schema "
            f"{payload['state'].get('schema')!r} (this build reads "
            f"{STATE_SCHEMA})"
        )
    return payload


def scheduler_from_config(
    config: Dict,
    use_delta: bool = True,
    backend: Optional[str] = None,
) -> OnlineScheduler:
    """A fresh scheduler from a :meth:`OnlineScheduler.config` echo.

    ``use_delta``/``backend`` pick the evaluation engine — they are not
    part of the config echo because they never influence a decision
    (backend interchangeability), so recovery may run on any engine.
    """
    try:
        platform = CellPlatform(**config["platform"])
        return OnlineScheduler(
            platform,
            objective=str(config["objective"]),
            migration_budget=int(config["migration_budget"]),
            elide_local_comm=bool(config["elide_local_comm"]),
            merge_same_pe_buffers=bool(config["merge_same_pe_buffers"]),
            use_delta=use_delta,
            backend=backend,
            name=str(config["name"]),
            shed_policy=str(config["shed_policy"]),
            retry_limit=int(config["retry_limit"]),
            retry_backoff=float(config["retry_backoff"]),
            brownout_threshold=float(config["brownout_threshold"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed scheduler config echo: {exc}"
        ) from exc


class DurableScheduler:
    """An :class:`OnlineScheduler` with a journal and checkpoints.

    Wraps a scheduler so every committed event is durably journaled
    (fsync before acknowledgement) and, every ``checkpoint_every``
    events, the full scheduler state is checkpointed atomically.
    :meth:`recover` rebuilds the wrapper after a crash: restore the
    checkpoint (or replay from scratch off the journal header's config),
    replay the journal records past the checkpoint cursor, and resume
    appending — the report after the full timeline is bit-identical to
    an uninterrupted run.

    Parameters
    ----------
    scheduler:
        The scheduler to wrap (fresh, or restored by :meth:`recover`).
    journal:
        Journal file path (a fresh journal is created) or an
        already-open :class:`~repro.runtime.journal.EventJournal` (the
        recovery path hands over the repaired, append-positioned one).
    checkpoint_path:
        Where checkpoints go; ``None`` disables checkpointing (the
        journal alone still recovers, by full replay).
    checkpoint_every:
        Checkpoint after every N committed events; 0 only checkpoints
        on :meth:`close`.
    fsync:
        Forwarded to a journal created from a path, and to checkpoint
        writes.
    """

    def __init__(
        self,
        scheduler: OnlineScheduler,
        journal: Union[str, Path, EventJournal],
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        fsync: bool = True,
        n_applied: int = 0,
    ) -> None:
        if checkpoint_every < 0:
            raise CheckpointError(
                f"checkpoint_every must be non-negative "
                f"(got {checkpoint_every!r})"
            )
        self.scheduler = scheduler
        if isinstance(journal, EventJournal):
            self.journal = journal
        else:
            self.journal = EventJournal(
                journal, config=scheduler.config(), fsync=fsync
            )
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = int(checkpoint_every)
        self.fsync = bool(fsync)
        self.n_applied = int(n_applied)

    # ------------------------------------------------------------------ #

    def process(self, event: Event) -> EventRecord:
        """Commit one event: apply, journal durably, maybe checkpoint.

        The journal append happens after the scheduler commits (so a
        refused event is never journaled) and before this method
        returns (so an acknowledged event is never lost) — kill the
        process at any point and recovery lands on a committed-event
        boundary.
        """
        record = self.scheduler.process(event)
        self.journal.append(event)
        self.n_applied += 1
        if (
            self.checkpoint_path is not None
            and self.checkpoint_every
            and self.n_applied % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return record

    def run(self, events: Sequence[Event]) -> RuntimeReport:
        """Consume a whole timeline durably; returns the report."""
        for event in validate_timeline(events):
            self.process(event)
        return self.report()

    def checkpoint(self) -> Optional[Path]:
        """Write a checkpoint now (no-op without a checkpoint path)."""
        if self.checkpoint_path is None:
            return None
        return write_checkpoint(
            self.scheduler,
            self.checkpoint_path,
            self.n_applied,
            fsync=self.fsync,
        )

    def report(self) -> RuntimeReport:
        return self.scheduler.report()

    def close(self) -> None:
        """Final checkpoint (if configured) and journal close."""
        if not self.journal.closed:
            self.checkpoint()
        self.journal.close()

    def __enter__(self) -> "DurableScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    @classmethod
    def recover(
        cls,
        journal_path: Union[str, Path],
        checkpoint_path: Optional[Union[str, Path]] = None,
        use_delta: bool = True,
        backend: Optional[str] = None,
        checkpoint_every: int = 0,
        fsync: bool = True,
    ) -> "DurableScheduler":
        """Rebuild a durable scheduler from its journal (+ checkpoint).

        Repairs a torn journal tail, restores the checkpoint when one
        exists (falling back to a fresh scheduler from the journal
        header's config echo), replays every journal record at or past
        the checkpoint's cursor, and returns a wrapper positioned to
        continue the timeline exactly where the crash cut it off.
        """
        config, entries, _ = EventJournal.repair(journal_path)
        start = 0
        scheduler: Optional[OnlineScheduler] = None
        if checkpoint_path is not None and Path(checkpoint_path).exists():
            payload = read_checkpoint(checkpoint_path)
            scheduler = scheduler_from_config(
                payload["config"], use_delta=use_delta, backend=backend
            )
            try:
                scheduler.restore_state(payload["state"])
            except OnlineSchedulingError as exc:
                raise CheckpointError(
                    f"cannot restore checkpoint "
                    f"{str(checkpoint_path)!r}: {exc}"
                ) from exc
            start = int(payload["n_applied"])
            last = entries[-1][0] + 1 if entries else 0
            if start > last:
                raise CheckpointError(
                    f"checkpoint {str(checkpoint_path)!r} claims "
                    f"{start} applied events but the journal holds {last}"
                )
        if scheduler is None:
            if config is None:
                raise CheckpointError(
                    f"journal {str(journal_path)!r} carries no config echo "
                    "and no checkpoint was given; cannot rebuild the "
                    "scheduler"
                )
            scheduler = scheduler_from_config(
                config, use_delta=use_delta, backend=backend
            )
        for idx, event in entries:
            if idx < start:
                continue
            try:
                scheduler.process(event)
            except ReproError as exc:
                raise CheckpointError(
                    f"journal replay failed at record {idx}: {exc}"
                ) from exc
        journal = EventJournal(journal_path, fsync=fsync, fresh=False)
        return cls(
            scheduler,
            journal,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            fsync=fsync,
            n_applied=max(start, entries[-1][0] + 1 if entries else 0),
        )
