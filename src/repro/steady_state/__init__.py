"""Steady-state scheduling core (paper §3–§4).

* :class:`Mapping` — task→PE assignment, the optimisation object;
* :func:`first_periods` / :func:`buffer_sizes` / :func:`buffer_requirements`
  — the §4.2 timing and memory model;
* :func:`analyze` / :func:`throughput` / :func:`speedup` — analytic period,
  feasibility and throughput of a mapping;
* :class:`DeltaAnalyzer` — incremental O(deg) re-evaluation of moves/swaps
  (the engine behind the neighbourhood-search heuristics), with batched
  ``score_moves`` / ``evaluate_moves`` / ``best_move`` neighbourhood
  scoring;
* :class:`CompiledGraph` / :func:`compile_graph` — the memoized
  integer-indexed graph arrays (CSR adjacency, flat cost tables) the
  delta engine runs on;
* :func:`resolve_backend` / :func:`available_backends` /
  :func:`numpy_available` / :func:`cython_available` — kernel-backend
  selection (scalar reference kernel, vectorized numpy kernels, or the
  compiled extension; ``REPRO_KERNEL_BACKEND``);
* :class:`ClonePool` — free-list of analyzer clones recycled through
  in-place state copies (the GA's allocation-free generations);
* :mod:`~repro.steady_state.objective` — pluggable scheduling objectives
  (shared period, weighted per-app periods, max stretch) for
  multi-application workloads;
* :class:`PeriodicSchedule` — the explicit periodic schedule (Fig. 3).
"""

from .backend import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    NO_EXTENSION_ENV_VAR,
    available_backends,
    cython_available,
    numpy_available,
    resolve_backend,
)
from .compiled import CompiledGraph, compile_graph
from .delta import ClonePool, DeltaAnalyzer, MoveScore, ObjectiveScore
from .mapping import Mapping
from .objective import OBJECTIVES, make_objective
from .periods import (
    buffer_requirements,
    buffer_sizes,
    first_periods,
    spe_buffer_load,
)
from .schedule import (
    ComputeEvent,
    PeriodicSchedule,
    TransferEvent,
    build_schedule,
)
from .throughput import (
    PeriodAnalysis,
    ResourceLoad,
    Violation,
    analyze,
    assert_feasible,
    period,
    speedup,
    throughput,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "KERNEL_BACKENDS",
    "NO_EXTENSION_ENV_VAR",
    "available_backends",
    "cython_available",
    "numpy_available",
    "resolve_backend",
    "CompiledGraph",
    "compile_graph",
    "ClonePool",
    "DeltaAnalyzer",
    "MoveScore",
    "ObjectiveScore",
    "OBJECTIVES",
    "make_objective",
    "Mapping",
    "buffer_requirements",
    "buffer_sizes",
    "first_periods",
    "spe_buffer_load",
    "ComputeEvent",
    "PeriodicSchedule",
    "TransferEvent",
    "build_schedule",
    "PeriodAnalysis",
    "ResourceLoad",
    "Violation",
    "analyze",
    "assert_feasible",
    "period",
    "speedup",
    "throughput",
]
