"""Analytic steady-state period, throughput and feasibility of a mapping.

This is the evaluation side of the paper's model: given a mapping, the
period ``T`` is the maximum occupation time over all resources —

* compute time of each PE (constraints (1e)/(1f)),
* incoming and outgoing communication time of each PE interface, memory
  reads/writes included (constraints (1g)/(1h)),

and the mapping is *feasible* iff every SPE's buffers fit its local store
(1i) and the DMA queue limits hold ((1j)/(1k)).  The throughput of the
induced periodic schedule is ``ρ = 1/T`` (§3.1).

On a multi-application :class:`~repro.graph.workload.CompositeGraph`
(see :class:`~repro.graph.workload.Workload`) the same pass additionally
reports :attr:`PeriodAnalysis.app_periods`: for each member application,
the period it would achieve under the same mapping *without* the other
applications' load — its own resource occupation alone.  The shared
period never beats any per-app period, and the ratio
``period / app_periods[a]`` is application ``a``'s *stretch*, the
quantity the ``max_stretch`` objective minimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InfeasibleMappingError
from .mapping import Mapping
from .periods import buffer_requirements

__all__ = [
    "ResourceLoad",
    "LinkLoad",
    "Violation",
    "PeriodAnalysis",
    "analyze",
    "period",
    "throughput",
    "speedup",
    "assert_feasible",
]


@dataclass(frozen=True)
class ResourceLoad:
    """Occupation time (µs/instance) of one PE's three resources."""

    pe: int
    pe_name: str
    compute: float
    comm_in: float
    comm_out: float

    @property
    def busiest(self) -> Tuple[str, float]:
        """The resource bounding this PE and its occupation time."""
        loads = (
            ("compute", self.compute),
            ("comm_in", self.comm_in),
            ("comm_out", self.comm_out),
        )
        return max(loads, key=lambda kv: kv[1])


@dataclass(frozen=True)
class Violation:
    """One violated hard constraint of a mapping."""

    constraint: str  # "memory", "dma_in" or "dma_proxy"
    pe: int
    pe_name: str
    actual: float
    limit: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.constraint} violated on {self.pe_name}: "
            f"{self.actual:g} > {self.limit:g}"
        )


@dataclass(frozen=True)
class LinkLoad:
    """Occupation time (µs/instance) of one inter-Cell BIF link direction."""

    src_cell: int
    dst_cell: int
    time: float


@dataclass(frozen=True)
class PeriodAnalysis:
    """Full steady-state analysis of a mapping."""

    mapping: Mapping
    loads: List[ResourceLoad]
    buffer_bytes: Dict[int, float]
    dma_in: Dict[int, int]
    dma_proxy: Dict[int, int]
    violations: List[Violation] = field(default_factory=list)
    #: Inter-Cell link occupation (multi-Cell platforms only).
    link_loads: List[LinkLoad] = field(default_factory=list)
    #: Per-application periods (multi-application composite graphs only):
    #: each application's own resource occupation under this mapping,
    #: ignoring the other applications' load.  Empty for plain graphs.
    app_periods: Dict[str, float] = field(default_factory=dict)

    @property
    def period(self) -> float:
        """The period ``T``: maximum occupation time over all resources."""
        worst_pe = max(
            max(load.compute, load.comm_in, load.comm_out)
            for load in self.loads
        )
        worst_link = max((link.time for link in self.link_loads), default=0.0)
        return max(worst_pe, worst_link)

    @property
    def throughput(self) -> float:
        """Steady-state throughput ``ρ = 1/T`` in instances/µs."""
        t = self.period
        return float("inf") if t == 0 else 1.0 / t

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def bottleneck(self) -> Tuple[str, str]:
        """``(pe_name, resource)`` of the binding resource."""
        worst = max(
            self.loads,
            key=lambda load: max(load.compute, load.comm_in, load.comm_out),
        )
        return worst.pe_name, worst.busiest[0]

    def report(self) -> str:
        """Multi-line textual breakdown (for CLI/examples)."""
        lines = [
            f"period T = {self.period:.3f} µs  "
            f"(throughput {self.throughput * 1e6:.2f} instances/s)",
            f"bottleneck: {self.bottleneck[0]} ({self.bottleneck[1]})",
        ]
        for app, app_period in self.app_periods.items():
            stretch = (
                self.period / app_period if app_period > 0 else float("inf")
            )
            lines.append(
                f"  app {app:>12}: alone {app_period:9.3f} µs  "
                f"stretch {stretch:6.2f}"
            )
        for load in self.loads:
            tasks = self.mapping.tasks_on(load.pe)
            if not tasks and load.compute == 0 and load.comm_in == 0:
                continue
            lines.append(
                f"  {load.pe_name:>6}: compute {load.compute:9.3f}  "
                f"in {load.comm_in:8.3f}  out {load.comm_out:8.3f}  "
                f"({len(tasks)} tasks)"
            )
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        return "\n".join(lines)


def analyze(
    mapping: Mapping,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
) -> PeriodAnalysis:
    """Compute the :class:`PeriodAnalysis` of ``mapping`` (paper model)."""
    graph, platform = mapping.graph, mapping.platform
    n = platform.n_pes

    compute = [0.0] * n
    in_bytes = [0.0] * n
    out_bytes = [0.0] * n

    # Multi-application composites additionally get per-app occupation
    # sums (same accumulation order as the global sums, so the delta
    # engine can reproduce them bit for bit).
    app_of = getattr(graph, "app_of", None) or None
    app_compute: Dict[str, List[float]] = {}
    app_in: Dict[str, List[float]] = {}
    app_out: Dict[str, List[float]] = {}
    app_link: Dict[Tuple[str, Tuple[int, int]], float] = {}
    if app_of is not None:
        for app in getattr(graph, "app_names", ()):
            app_compute[app] = [0.0] * n
            app_in[app] = [0.0] * n
            app_out[app] = [0.0] * n

    for task in graph.tasks():
        pe = mapping.pe_of(task.name)
        cost = task.cost_on(platform.kind(pe))
        compute[pe] += cost
        in_bytes[pe] += task.read
        out_bytes[pe] += task.write
        if app_of is not None:
            app = app_of[task.name]
            app_compute[app][pe] += cost
            app_in[app][pe] += task.read
            app_out[app][pe] += task.write

    dma_in: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    dma_proxy: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    link_bytes: Dict[Tuple[int, int], float] = {}

    for edge in graph.edges():
        src_pe = mapping.pe_of(edge.src)
        dst_pe = mapping.pe_of(edge.dst)
        if src_pe == dst_pe:
            continue
        out_bytes[src_pe] += edge.data
        in_bytes[dst_pe] += edge.data
        if app_of is not None:
            app = app_of[edge.src]  # endpoints always share the app
            app_out[app][src_pe] += edge.data
            app_in[app][dst_pe] += edge.data
        if platform.is_spe(dst_pe):
            dma_in[dst_pe] += 1
        if platform.is_spe(src_pe) and platform.is_ppe(dst_pe):
            dma_proxy[src_pe] += 1
        if platform.n_cells > 1 and platform.is_cross_cell(src_pe, dst_pe):
            key = (platform.cell_of(src_pe), platform.cell_of(dst_pe))
            link_bytes[key] = link_bytes.get(key, 0.0) + edge.data
            if app_of is not None:
                akey = (app_of[edge.src], key)
                app_link[akey] = app_link.get(akey, 0.0) + edge.data

    loads = [
        ResourceLoad(
            pe=i,
            pe_name=platform.pe_name(i),
            compute=compute[i],
            comm_in=in_bytes[i] / platform.bw,
            comm_out=out_bytes[i] / platform.bw,
        )
        for i in range(n)
    ]

    buffers = buffer_requirements(
        graph,
        mapping if (elide_local_comm or merge_same_pe_buffers) else None,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    )
    buffer_bytes: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    for name, pe in mapping.items():
        if platform.is_spe(pe):
            buffer_bytes[pe] += buffers[name]

    violations: List[Violation] = []
    for spe in platform.spe_indices:
        pe_name = platform.pe_name(spe)
        if buffer_bytes[spe] > platform.buffer_budget:
            violations.append(
                Violation(
                    "memory", spe, pe_name, buffer_bytes[spe], platform.buffer_budget
                )
            )
        if dma_in[spe] > platform.dma_in_slots:
            violations.append(
                Violation("dma_in", spe, pe_name, dma_in[spe], platform.dma_in_slots)
            )
        if dma_proxy[spe] > platform.dma_proxy_slots:
            violations.append(
                Violation(
                    "dma_proxy", spe, pe_name, dma_proxy[spe], platform.dma_proxy_slots
                )
            )

    link_loads = [
        LinkLoad(src_cell=src, dst_cell=dst, time=bytes_ / platform.bif_bw)
        for (src, dst), bytes_ in sorted(link_bytes.items())
    ]

    app_periods: Dict[str, float] = {}
    if app_of is not None:
        app_periods = app_periods_from_loads(
            getattr(graph, "app_names", ()),
            app_compute,
            app_in,
            app_out,
            app_link,
            platform.bw,
            platform.bif_bw,
        )

    return PeriodAnalysis(
        mapping=mapping,
        loads=loads,
        buffer_bytes=buffer_bytes,
        dma_in=dma_in,
        dma_proxy=dma_proxy,
        violations=violations,
        link_loads=link_loads,
        app_periods=app_periods,
    )


def app_periods_from_loads(
    app_names,
    app_compute: Dict[str, List[float]],
    app_in: Dict[str, List[float]],
    app_out: Dict[str, List[float]],
    app_link: Dict[Tuple[str, Tuple[int, int]], float],
    bw: float,
    bif_bw: float,
) -> Dict[str, float]:
    """Per-application periods from per-app occupation sums.

    Shared between :func:`analyze` and ``DeltaAnalyzer.snapshot()`` so
    the two compute the final maxima through the exact same float
    expressions (the sums they start from are maintained to be equal).
    """
    out: Dict[str, float] = {}
    for app in app_names:
        compute, in_b, out_b = app_compute[app], app_in[app], app_out[app]
        worst = 0.0
        for pe in range(len(compute)):
            value = max(compute[pe], in_b[pe] / bw, out_b[pe] / bw)
            if value > worst:
                worst = value
        out[app] = worst
    for (app, _key), bytes_ in app_link.items():
        time = bytes_ / bif_bw
        if time > out[app]:
            out[app] = time
    return out


def period(mapping: Mapping, **kwargs) -> float:
    """The period ``T`` (µs) of the steady-state schedule of ``mapping``."""
    return analyze(mapping, **kwargs).period


def throughput(mapping: Mapping, **kwargs) -> float:
    """Steady-state throughput ``ρ = 1/T`` (instances/µs)."""
    return analyze(mapping, **kwargs).throughput


def speedup(mapping: Mapping, reference: Optional[Mapping] = None) -> float:
    """Throughput of ``mapping`` normalised to the PPE-only mapping (§6.4)."""
    if reference is None:
        reference = Mapping.all_on_ppe(mapping.graph, mapping.platform)
    return throughput(mapping) / throughput(reference)


def assert_feasible(mapping: Mapping, **kwargs) -> PeriodAnalysis:
    """Analyse and raise :class:`InfeasibleMappingError` on any violation."""
    analysis = analyze(mapping, **kwargs)
    if not analysis.feasible:
        detail = "; ".join(str(v) for v in analysis.violations)
        raise InfeasibleMappingError(f"infeasible mapping: {detail}")
    return analysis
