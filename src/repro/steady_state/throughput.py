"""Analytic steady-state period, throughput and feasibility of a mapping.

This is the evaluation side of the paper's model: given a mapping, the
period ``T`` is the maximum occupation time over all resources —

* compute time of each PE (constraints (1e)/(1f)),
* incoming and outgoing communication time of each PE interface, memory
  reads/writes included (constraints (1g)/(1h)),

and the mapping is *feasible* iff every SPE's buffers fit its local store
(1i) and the DMA queue limits hold ((1j)/(1k)).  The throughput of the
induced periodic schedule is ``ρ = 1/T`` (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InfeasibleMappingError
from .mapping import Mapping
from .periods import buffer_requirements

__all__ = [
    "ResourceLoad",
    "LinkLoad",
    "Violation",
    "PeriodAnalysis",
    "analyze",
    "period",
    "throughput",
    "speedup",
    "assert_feasible",
]


@dataclass(frozen=True)
class ResourceLoad:
    """Occupation time (µs/instance) of one PE's three resources."""

    pe: int
    pe_name: str
    compute: float
    comm_in: float
    comm_out: float

    @property
    def busiest(self) -> Tuple[str, float]:
        """The resource bounding this PE and its occupation time."""
        loads = (
            ("compute", self.compute),
            ("comm_in", self.comm_in),
            ("comm_out", self.comm_out),
        )
        return max(loads, key=lambda kv: kv[1])


@dataclass(frozen=True)
class Violation:
    """One violated hard constraint of a mapping."""

    constraint: str  # "memory", "dma_in" or "dma_proxy"
    pe: int
    pe_name: str
    actual: float
    limit: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.constraint} violated on {self.pe_name}: "
            f"{self.actual:g} > {self.limit:g}"
        )


@dataclass(frozen=True)
class LinkLoad:
    """Occupation time (µs/instance) of one inter-Cell BIF link direction."""

    src_cell: int
    dst_cell: int
    time: float


@dataclass(frozen=True)
class PeriodAnalysis:
    """Full steady-state analysis of a mapping."""

    mapping: Mapping
    loads: List[ResourceLoad]
    buffer_bytes: Dict[int, float]
    dma_in: Dict[int, int]
    dma_proxy: Dict[int, int]
    violations: List[Violation] = field(default_factory=list)
    #: Inter-Cell link occupation (multi-Cell platforms only).
    link_loads: List[LinkLoad] = field(default_factory=list)

    @property
    def period(self) -> float:
        """The period ``T``: maximum occupation time over all resources."""
        worst_pe = max(
            max(load.compute, load.comm_in, load.comm_out)
            for load in self.loads
        )
        worst_link = max((link.time for link in self.link_loads), default=0.0)
        return max(worst_pe, worst_link)

    @property
    def throughput(self) -> float:
        """Steady-state throughput ``ρ = 1/T`` in instances/µs."""
        t = self.period
        return float("inf") if t == 0 else 1.0 / t

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def bottleneck(self) -> Tuple[str, str]:
        """``(pe_name, resource)`` of the binding resource."""
        worst = max(
            self.loads,
            key=lambda load: max(load.compute, load.comm_in, load.comm_out),
        )
        return worst.pe_name, worst.busiest[0]

    def report(self) -> str:
        """Multi-line textual breakdown (for CLI/examples)."""
        lines = [
            f"period T = {self.period:.3f} µs  "
            f"(throughput {self.throughput * 1e6:.2f} instances/s)",
            f"bottleneck: {self.bottleneck[0]} ({self.bottleneck[1]})",
        ]
        for load in self.loads:
            tasks = self.mapping.tasks_on(load.pe)
            if not tasks and load.compute == 0 and load.comm_in == 0:
                continue
            lines.append(
                f"  {load.pe_name:>6}: compute {load.compute:9.3f}  "
                f"in {load.comm_in:8.3f}  out {load.comm_out:8.3f}  "
                f"({len(tasks)} tasks)"
            )
        for violation in self.violations:
            lines.append(f"  !! {violation}")
        return "\n".join(lines)


def analyze(
    mapping: Mapping,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
) -> PeriodAnalysis:
    """Compute the :class:`PeriodAnalysis` of ``mapping`` (paper model)."""
    graph, platform = mapping.graph, mapping.platform
    n = platform.n_pes

    compute = [0.0] * n
    in_bytes = [0.0] * n
    out_bytes = [0.0] * n

    for task in graph.tasks():
        pe = mapping.pe_of(task.name)
        compute[pe] += task.cost_on(platform.kind(pe))
        in_bytes[pe] += task.read
        out_bytes[pe] += task.write

    dma_in: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    dma_proxy: Dict[int, int] = {i: 0 for i in platform.spe_indices}
    link_bytes: Dict[Tuple[int, int], float] = {}

    for edge in graph.edges():
        src_pe = mapping.pe_of(edge.src)
        dst_pe = mapping.pe_of(edge.dst)
        if src_pe == dst_pe:
            continue
        out_bytes[src_pe] += edge.data
        in_bytes[dst_pe] += edge.data
        if platform.is_spe(dst_pe):
            dma_in[dst_pe] += 1
        if platform.is_spe(src_pe) and platform.is_ppe(dst_pe):
            dma_proxy[src_pe] += 1
        if platform.n_cells > 1 and platform.is_cross_cell(src_pe, dst_pe):
            key = (platform.cell_of(src_pe), platform.cell_of(dst_pe))
            link_bytes[key] = link_bytes.get(key, 0.0) + edge.data

    loads = [
        ResourceLoad(
            pe=i,
            pe_name=platform.pe_name(i),
            compute=compute[i],
            comm_in=in_bytes[i] / platform.bw,
            comm_out=out_bytes[i] / platform.bw,
        )
        for i in range(n)
    ]

    buffers = buffer_requirements(
        graph,
        mapping if (elide_local_comm or merge_same_pe_buffers) else None,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    )
    buffer_bytes: Dict[int, float] = {i: 0.0 for i in platform.spe_indices}
    for name, pe in mapping.items():
        if platform.is_spe(pe):
            buffer_bytes[pe] += buffers[name]

    violations: List[Violation] = []
    for spe in platform.spe_indices:
        pe_name = platform.pe_name(spe)
        if buffer_bytes[spe] > platform.buffer_budget:
            violations.append(
                Violation(
                    "memory", spe, pe_name, buffer_bytes[spe], platform.buffer_budget
                )
            )
        if dma_in[spe] > platform.dma_in_slots:
            violations.append(
                Violation("dma_in", spe, pe_name, dma_in[spe], platform.dma_in_slots)
            )
        if dma_proxy[spe] > platform.dma_proxy_slots:
            violations.append(
                Violation(
                    "dma_proxy", spe, pe_name, dma_proxy[spe], platform.dma_proxy_slots
                )
            )

    link_loads = [
        LinkLoad(src_cell=src, dst_cell=dst, time=bytes_ / platform.bif_bw)
        for (src, dst), bytes_ in sorted(link_bytes.items())
    ]

    return PeriodAnalysis(
        mapping=mapping,
        loads=loads,
        buffer_bytes=buffer_bytes,
        dma_in=dma_in,
        dma_proxy=dma_proxy,
        violations=violations,
        link_loads=link_loads,
    )


def period(mapping: Mapping, **kwargs) -> float:
    """The period ``T`` (µs) of the steady-state schedule of ``mapping``."""
    return analyze(mapping, **kwargs).period


def throughput(mapping: Mapping, **kwargs) -> float:
    """Steady-state throughput ``ρ = 1/T`` (instances/µs)."""
    return analyze(mapping, **kwargs).throughput


def speedup(mapping: Mapping, reference: Optional[Mapping] = None) -> float:
    """Throughput of ``mapping`` normalised to the PPE-only mapping (§6.4)."""
    if reference is None:
        reference = Mapping.all_on_ppe(mapping.graph, mapping.platform)
    return throughput(mapping) / throughput(reference)


def assert_feasible(mapping: Mapping, **kwargs) -> PeriodAnalysis:
    """Analyse and raise :class:`InfeasibleMappingError` on any violation."""
    analysis = analyze(mapping, **kwargs)
    if not analysis.feasible:
        detail = "; ".join(str(v) for v in analysis.violations)
        raise InfeasibleMappingError(f"infeasible mapping: {detail}")
    return analysis
