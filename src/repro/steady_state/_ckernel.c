/* _ckernel.c — compiled kernel backend for DeltaAnalyzer.
 *
 * Native implementations of the paths the dense numpy kernels leave
 * scalar: per-candidate move scoring under the mapping-dependent buffer
 * models (including the incremental firstPeriod worklist), the
 * _apply/resync hot path, and the clone-pool state copy.  The module
 * keeps NO mirrored C state: every function operates directly on the
 * analyzer's own Python lists/dicts (single source of truth), so there
 * is nothing to invalidate or resynchronize.
 *
 * Exactness contract (same as backend_numpy): every float operation
 * mirrors the scalar kernel's accumulation order, so results are
 * bit-identical on integer-valued graphs and within one ulp otherwise.
 * The only ordering liberty taken is iterating the `dirty`-footprint
 * set of _buffer_deltas in discovery order instead of Python set order
 * — the per-task sums themselves keep buffer_requirements order, so
 * this only permutes commutative additions (exact on integer data).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ---------------------------------------------------------------- */
/* Interned attribute names                                          */

#define ATTRS(X)                                                        \
    X(_cg) X(_pe) X(_members) X(_need) X(_fp) X(_esize)                 \
    X(_compute) X(_in_bytes) X(_out_bytes) X(_peak)                     \
    X(_buffer) X(_dma_in) X(_dma_proxy) X(_link_bytes) X(_link_count)   \
    X(_app_compute) X(_app_in) X(_app_out) X(_app_peak)                 \
    X(_app_link_bytes) X(_app_link_count)                               \
    X(_is_ppe) X(_is_spe) X(_cell) X(_n_pes) X(_bw) X(_bif_bw)          \
    X(_budget) X(_in_slots) X(_proxy_slots) X(_multi)                   \
    X(_mapping_dependent) X(elide_local_comm) X(merge_same_pe_buffers)  \
    X(_n_violations) X(_state_version) X(platform) X(n_cells)           \
    X(spe_indices)                                                      \
    X(n) X(n_edges) X(n_apps) X(wppe) X(wspe) X(read) X(write) X(peek)  \
    X(in_ptr) X(in_src) X(in_data) X(in_eid)                            \
    X(out_ptr) X(out_dst) X(out_data) X(out_eid)                        \
    X(edge_src) X(edge_dst) X(edge_data) X(inc_ptr) X(inc_eid)          \
    X(topo_index) X(app_index)

#define DECL_NAME(name) static PyObject *S_##name;
ATTRS(DECL_NAME)
#undef DECL_NAME

static int
intern_names(void)
{
#define INTERN(name)                                    \
    S_##name = PyUnicode_InternFromString(#name);       \
    if (S_##name == NULL) return -1;
    ATTRS(INTERN)
#undef INTERN
    return 0;
}

/* ---------------------------------------------------------------- */
/* Conversion helpers (tolerate int-valued entries in float tables)  */

static inline double
as_d(PyObject *o)
{
    if (PyFloat_CheckExact(o))
        return PyFloat_AS_DOUBLE(o);
    return PyFloat_AsDouble(o);
}

static inline long
as_l(PyObject *o)
{
    return PyLong_AsLong(o);
}

#define GI(list, i) PyList_GET_ITEM((list), (i))
#define LD(list, i) as_d(GI((list), (i)))
#define LI(list, i) as_l(GI((list), (i)))

/* Replace list[i] with a new float/long (handles the old ref). */
static inline int
set_f(PyObject *list, Py_ssize_t i, double v)
{
    PyObject *o = PyFloat_FromDouble(v);
    if (o == NULL) return -1;
    return PyList_SetItem(list, i, o);
}

static inline int
set_l(PyObject *list, Py_ssize_t i, long v)
{
    PyObject *o = PyLong_FromLong(v);
    if (o == NULL) return -1;
    return PyList_SetItem(list, i, o);
}

/* ---------------------------------------------------------------- */
/* Analyzer context: borrowed view of the Python-side state          */

typedef struct {
    PyObject *az;
    /* new references, released by ctx_clear */
    PyObject *cg, *platform;
    PyObject *pe, *members, *need, *fp, *esize; /* fp/esize may be Py_None */
    PyObject *compute, *in_bytes, *out_bytes, *peak;
    PyObject *buffer, *dma_in, *dma_proxy, *link_bytes, *link_count;
    PyObject *app_compute, *app_in, *app_out, *app_peak;
    PyObject *app_link_bytes, *app_link_count;
    PyObject *wppe, *wspe, *read, *write, *peek;
    PyObject *in_ptr, *in_src, *in_data, *in_eid;
    PyObject *out_ptr, *out_dst, *out_data, *out_eid;
    PyObject *edge_src, *edge_dst, *edge_data, *inc_ptr, *inc_eid;
    PyObject *topo, *app_index; /* app_index may be Py_None */

    Py_ssize_t n, m, P, A, n_cells, CC;
    double bw, bif_bw, budget;
    long in_slots, proxy_slots, n_violations;
    int multi, mapping_dependent, elide, merge;

    /* dense per-PE / per-link snapshots (loaded once per call; the
     * apply path mutates the Python containers, never these) */
    int *is_ppe, *is_spe;
    long *cell;
    double *buf_d;
    long *dmain_d, *dproxy_d;
    double *lb_d;      /* link_bytes by c1*n_cells+c2 */
    unsigned char *lb_has;
    long *lb_list;
    Py_ssize_t lb_cnt;
    void *dense_block;
} Ctx;

static void
ctx_clear(Ctx *c)
{
    Py_CLEAR(c->cg); Py_CLEAR(c->platform);
    Py_CLEAR(c->pe); Py_CLEAR(c->members); Py_CLEAR(c->need);
    Py_CLEAR(c->fp); Py_CLEAR(c->esize);
    Py_CLEAR(c->compute); Py_CLEAR(c->in_bytes); Py_CLEAR(c->out_bytes);
    Py_CLEAR(c->peak);
    Py_CLEAR(c->buffer); Py_CLEAR(c->dma_in); Py_CLEAR(c->dma_proxy);
    Py_CLEAR(c->link_bytes); Py_CLEAR(c->link_count);
    Py_CLEAR(c->app_compute); Py_CLEAR(c->app_in); Py_CLEAR(c->app_out);
    Py_CLEAR(c->app_peak);
    Py_CLEAR(c->app_link_bytes); Py_CLEAR(c->app_link_count);
    Py_CLEAR(c->wppe); Py_CLEAR(c->wspe); Py_CLEAR(c->read);
    Py_CLEAR(c->write); Py_CLEAR(c->peek);
    Py_CLEAR(c->in_ptr); Py_CLEAR(c->in_src); Py_CLEAR(c->in_data);
    Py_CLEAR(c->in_eid);
    Py_CLEAR(c->out_ptr); Py_CLEAR(c->out_dst); Py_CLEAR(c->out_data);
    Py_CLEAR(c->out_eid);
    Py_CLEAR(c->edge_src); Py_CLEAR(c->edge_dst); Py_CLEAR(c->edge_data);
    Py_CLEAR(c->inc_ptr); Py_CLEAR(c->inc_eid);
    Py_CLEAR(c->topo); Py_CLEAR(c->app_index);
    if (c->dense_block) {
        PyMem_Free(c->dense_block);
        c->dense_block = NULL;
    }
}

static int
ctx_load(Ctx *c, PyObject *az)
{
    memset(c, 0, sizeof(*c));
    c->az = az;

    PyObject *tmp;
#define GET(dst, obj, name)                                   \
    do {                                                      \
        (dst) = PyObject_GetAttr((obj), S_##name);            \
        if ((dst) == NULL) goto fail;                         \
    } while (0)
#define GET_L(dst, obj, name)                                 \
    do {                                                      \
        GET(tmp, obj, name);                                  \
        (dst) = as_l(tmp);                                    \
        Py_DECREF(tmp);                                       \
        if ((dst) == -1 && PyErr_Occurred()) goto fail;       \
    } while (0)
#define GET_D(dst, obj, name)                                 \
    do {                                                      \
        GET(tmp, obj, name);                                  \
        (dst) = as_d(tmp);                                    \
        Py_DECREF(tmp);                                       \
        if ((dst) == -1.0 && PyErr_Occurred()) goto fail;     \
    } while (0)
#define GET_B(dst, obj, name)                                 \
    do {                                                      \
        GET(tmp, obj, name);                                  \
        (dst) = PyObject_IsTrue(tmp);                         \
        Py_DECREF(tmp);                                       \
        if ((dst) < 0) goto fail;                             \
    } while (0)

    GET(c->cg, az, _cg);
    GET(c->platform, az, platform);
    GET(c->pe, az, _pe);
    GET(c->members, az, _members);
    GET(c->need, az, _need);
    GET(c->fp, az, _fp);
    GET(c->esize, az, _esize);
    GET(c->compute, az, _compute);
    GET(c->in_bytes, az, _in_bytes);
    GET(c->out_bytes, az, _out_bytes);
    GET(c->peak, az, _peak);
    GET(c->buffer, az, _buffer);
    GET(c->dma_in, az, _dma_in);
    GET(c->dma_proxy, az, _dma_proxy);
    GET(c->link_bytes, az, _link_bytes);
    GET(c->link_count, az, _link_count);
    GET(c->app_compute, az, _app_compute);
    GET(c->app_in, az, _app_in);
    GET(c->app_out, az, _app_out);
    GET(c->app_peak, az, _app_peak);
    GET(c->app_link_bytes, az, _app_link_bytes);
    GET(c->app_link_count, az, _app_link_count);

    GET_L(c->P, az, _n_pes);
    GET_D(c->bw, az, _bw);
    GET_D(c->bif_bw, az, _bif_bw);
    GET_D(c->budget, az, _budget);
    GET_L(c->in_slots, az, _in_slots);
    GET_L(c->proxy_slots, az, _proxy_slots);
    GET_L(c->n_violations, az, _n_violations);
    GET_B(c->multi, az, _multi);
    GET_B(c->mapping_dependent, az, _mapping_dependent);
    GET_B(c->elide, az, elide_local_comm);
    GET_B(c->merge, az, merge_same_pe_buffers);
    GET_L(c->n_cells, c->platform, n_cells);

    GET_L(c->n, c->cg, n);
    GET_L(c->m, c->cg, n_edges);
    GET(c->wppe, c->cg, wppe);
    GET(c->wspe, c->cg, wspe);
    GET(c->read, c->cg, read);
    GET(c->write, c->cg, write);
    GET(c->peek, c->cg, peek);
    GET(c->in_ptr, c->cg, in_ptr);
    GET(c->in_src, c->cg, in_src);
    GET(c->in_data, c->cg, in_data);
    GET(c->in_eid, c->cg, in_eid);
    GET(c->out_ptr, c->cg, out_ptr);
    GET(c->out_dst, c->cg, out_dst);
    GET(c->out_data, c->cg, out_data);
    GET(c->out_eid, c->cg, out_eid);
    GET(c->edge_src, c->cg, edge_src);
    GET(c->edge_dst, c->cg, edge_dst);
    GET(c->edge_data, c->cg, edge_data);
    GET(c->inc_ptr, c->cg, inc_ptr);
    GET(c->inc_eid, c->cg, inc_eid);
    GET(c->topo, c->cg, topo_index);
    GET(c->app_index, c->cg, app_index);
    c->A = 0;
    if (c->app_index != Py_None)
        GET_L(c->A, c->cg, n_apps);
    c->CC = c->n_cells * c->n_cells;

    /* dense per-PE snapshots */
    {
        Py_ssize_t P = c->P, CC = c->CC;
        size_t bytes = (size_t)(P * (2 * sizeof(int) + 3 * sizeof(long) +
                                     sizeof(double)) +
                                CC * (sizeof(double) + sizeof(long) + 1));
        char *blk = PyMem_Malloc(bytes ? bytes : 1);
        if (blk == NULL) { PyErr_NoMemory(); goto fail; }
        c->dense_block = blk;
        c->buf_d = (double *)blk;            blk += P * sizeof(double);
        c->lb_d = (double *)blk;             blk += CC * sizeof(double);
        c->cell = (long *)blk;               blk += P * sizeof(long);
        c->dmain_d = (long *)blk;            blk += P * sizeof(long);
        c->dproxy_d = (long *)blk;           blk += P * sizeof(long);
        c->lb_list = (long *)blk;            blk += CC * sizeof(long);
        c->is_ppe = (int *)blk;              blk += P * sizeof(int);
        c->is_spe = (int *)blk;              blk += P * sizeof(int);
        c->lb_has = (unsigned char *)blk;
        memset(c->lb_has, 0, (size_t)CC);

        PyObject *isp, *iss, *cel;
        GET(isp, az, _is_ppe);
        GET(iss, az, _is_spe);
        GET(cel, az, _cell);
        for (Py_ssize_t i = 0; i < P; i++) {
            c->is_ppe[i] = PyObject_IsTrue(GI(isp, i));
            c->is_spe[i] = PyObject_IsTrue(GI(iss, i));
            c->cell[i] = LI(cel, i);
            c->buf_d[i] = 0.0;
            c->dmain_d[i] = 0;
            c->dproxy_d[i] = 0;
        }
        Py_DECREF(isp); Py_DECREF(iss); Py_DECREF(cel);

        PyObject *key, *value;
        Py_ssize_t pos = 0;
        while (PyDict_Next(c->buffer, &pos, &key, &value))
            c->buf_d[as_l(key)] = as_d(value);
        pos = 0;
        while (PyDict_Next(c->dma_in, &pos, &key, &value))
            c->dmain_d[as_l(key)] = as_l(value);
        pos = 0;
        while (PyDict_Next(c->dma_proxy, &pos, &key, &value))
            c->dproxy_d[as_l(key)] = as_l(value);
        c->lb_cnt = 0;
        pos = 0;
        while (PyDict_Next(c->link_bytes, &pos, &key, &value)) {
            long c1 = as_l(PyTuple_GET_ITEM(key, 0));
            long c2 = as_l(PyTuple_GET_ITEM(key, 1));
            long cc = c1 * c->n_cells + c2;
            c->lb_d[cc] = as_d(value);
            c->lb_has[cc] = 1;
            c->lb_list[c->lb_cnt++] = cc;
        }
    }
    if (PyErr_Occurred()) goto fail;
    return 0;
fail:
    ctx_clear(c);
    return -1;
#undef GET_B
#undef GET_D
#undef GET_L
}

/* ---------------------------------------------------------------- */
/* Scratch: stamped delta accumulators, reused across candidates     */

typedef struct {
    Py_ssize_t n, m, P, CC, A, AP, ACC;
    unsigned long gen;
    void *block;

    /* per-PE deltas + insertion-order key lists */
    double *dc, *di, *dout, *db;
    long *ddi, *ddp;
    long *dc_list, *di_list, *dout_list, *db_list, *ddi_list, *ddp_list;
    Py_ssize_t dc_cnt, di_cnt, dout_cnt, db_cnt, ddi_cnt, ddp_cnt;
    unsigned long *s_dc, *s_di, *s_dout, *s_db, *s_ddi, *s_ddp;
    /* touched = union(dc, di, dout) */
    long *t_list;
    Py_ssize_t t_cnt;
    unsigned long *s_t;
    /* link deltas, dense over (c1, c2) */
    double *dl;
    long *dln, *dl_list;
    Py_ssize_t dl_cnt;
    unsigned long *s_dl;
    /* per-app deltas, dense over a*P+pe and a*CC+cc */
    double *adc, *adi, *adout, *adl;
    long *adln;
    long *adc_list, *adi_list, *adout_list, *adl_list, *ta_list;
    Py_ssize_t adc_cnt, adi_cnt, adout_cnt, adl_cnt, ta_cnt;
    unsigned long *s_adc, *s_adi, *s_adout, *s_adl, *s_ta;
    /* edge dedup (insertion order mirrors the eids dict) */
    long *eid_list;
    Py_ssize_t eid_cnt;
    unsigned long *s_eid;
    /* moved set */
    long *mv_t, *mv_p, *mv_new;
    Py_ssize_t mv_cnt;
    unsigned long *s_mv;
    /* mapping-dependent buffer model */
    long *fp_new, *fp_list;
    Py_ssize_t fp_cnt;
    unsigned long *s_fp;
    double *esz_new;
    long *esz_list;
    Py_ssize_t esz_cnt;
    unsigned long *s_esz;
    double *need_new;
    long *need_list;
    Py_ssize_t need_cnt;
    unsigned long *s_need;
    long *dirty_list;
    Py_ssize_t dirty_cnt;
    unsigned long *s_dirty;
    unsigned long *s_queued;
    long *heap_topo, *heap_tid;
    Py_ssize_t heap_len;
} Scratch;

static int
scratch_alloc(Scratch *s, const Ctx *c)
{
    memset(s, 0, sizeof(*s));
    Py_ssize_t n = c->n, m = c->m, P = c->P, CC = c->CC, A = c->A;
    Py_ssize_t AP = A * P, ACC = A * CC;
    s->n = n; s->m = m; s->P = P; s->CC = CC; s->A = A;
    s->AP = AP; s->ACC = ACC;

    size_t nd = (size_t)(4 * P + CC + 3 * AP + ACC + m + n);   /* doubles */
    size_t nl = (size_t)(2 * P + CC + ACC                      /* ddi/ddp/dln/adln */
                         + 7 * P + CC + 4 * AP + ACC           /* key lists */
                         + m + 5 * n                           /* eid/mv lists */
                         + 2 * n + m + n                       /* fp/esz/need/dirty lists */
                         + 2 * (n + 1));                       /* heap */
    size_t ns = (size_t)(7 * P + CC + 5 * AP + ACC + 2 * m + 5 * n); /* stamps */
    s->block = PyMem_Calloc(nd + nl + ns, sizeof(double));
    if (s->block == NULL) { PyErr_NoMemory(); return -1; }

    double *dp = (double *)s->block;
    s->dc = dp; dp += P;
    s->di = dp; dp += P;
    s->dout = dp; dp += P;
    s->db = dp; dp += P;
    s->dl = dp; dp += CC;
    s->adc = dp; dp += AP;
    s->adi = dp; dp += AP;
    s->adout = dp; dp += AP;
    s->adl = dp; dp += ACC;
    s->esz_new = dp; dp += m;
    s->need_new = dp; dp += n;

    long *lp = (long *)dp;
    s->ddi = lp; lp += P;
    s->ddp = lp; lp += P;
    s->dln = lp; lp += CC;
    s->adln = lp; lp += ACC;
    s->dc_list = lp; lp += P;
    s->di_list = lp; lp += P;
    s->dout_list = lp; lp += P;
    s->db_list = lp; lp += P;
    s->ddi_list = lp; lp += P;
    s->ddp_list = lp; lp += P;
    s->t_list = lp; lp += P;
    s->dl_list = lp; lp += CC;
    s->adc_list = lp; lp += AP;
    s->adi_list = lp; lp += AP;
    s->adout_list = lp; lp += AP;
    s->adl_list = lp; lp += ACC;
    s->ta_list = lp; lp += AP;
    s->eid_list = lp; lp += m;
    s->mv_t = lp; lp += n;
    s->mv_p = lp; lp += n;
    s->mv_new = lp; lp += n;
    s->fp_new = lp; lp += n;
    s->fp_list = lp; lp += n;
    s->esz_list = lp; lp += m;
    s->need_list = lp; lp += n;
    s->dirty_list = lp; lp += n;
    s->heap_topo = lp; lp += n + 1;
    s->heap_tid = lp; lp += n + 1;

    unsigned long *sp = (unsigned long *)lp;
    s->s_dc = sp; sp += P;
    s->s_di = sp; sp += P;
    s->s_dout = sp; sp += P;
    s->s_db = sp; sp += P;
    s->s_ddi = sp; sp += P;
    s->s_ddp = sp; sp += P;
    s->s_t = sp; sp += P;
    s->s_dl = sp; sp += CC;
    s->s_adc = sp; sp += AP;
    s->s_adi = sp; sp += AP;
    s->s_adout = sp; sp += AP;
    s->s_adl = sp; sp += ACC;
    s->s_ta = sp; sp += AP;
    s->s_eid = sp; sp += m;
    s->s_mv = sp; sp += n;
    s->s_fp = sp; sp += n;
    s->s_esz = sp; sp += m;
    s->s_need = sp; sp += n;
    s->s_dirty = sp; sp += n;
    s->s_queued = sp;
    s->gen = 0;
    return 0;
}

static void
scratch_free(Scratch *s)
{
    if (s->block) {
        PyMem_Free(s->block);
        s->block = NULL;
    }
}

/* Delta accumulators: first touch zeroes + records the key. */
#define DADD_F(pref, key, val)                                          \
    do {                                                                \
        long _k = (long)(key);                                          \
        if (s->s_##pref[_k] != g) {                                     \
            s->s_##pref[_k] = g;                                        \
            s->pref[_k] = 0.0;                                          \
            s->pref##_list[s->pref##_cnt++] = _k;                       \
        }                                                               \
        s->pref[_k] += (val);                                           \
    } while (0)

#define DADD_L(pref, key, val)                                          \
    do {                                                                \
        long _k = (long)(key);                                          \
        if (s->s_##pref[_k] != g) {                                     \
            s->s_##pref[_k] = g;                                        \
            s->pref[_k] = 0;                                            \
            s->pref##_list[s->pref##_cnt++] = _k;                       \
        }                                                               \
        s->pref[_k] += (val);                                           \
    } while (0)

/* Link deltas keep a byte total and an edge count at the same key, so
 * the count array rides the byte array's stamp + key list. */
#define DADD_LINK(pref, cpref, key, bytes, cnt)                         \
    do {                                                                \
        long _k = (long)(key);                                          \
        if (s->s_##pref[_k] != g) {                                     \
            s->s_##pref[_k] = g;                                        \
            s->pref[_k] = 0.0;                                          \
            s->cpref[_k] = 0;                                           \
            s->pref##_list[s->pref##_cnt++] = _k;                       \
        }                                                               \
        s->pref[_k] += (bytes);                                         \
        s->cpref[_k] += (cnt);                                          \
    } while (0)

#define NEWPE(t) (s->s_mv[(t)] == g ? s->mv_new[(t)] : LI(c->pe, (t)))

/* ---------------------------------------------------------------- */
/* firstPeriod worklist (binary min-heap on topo index)              */

static void
heap_push(Scratch *s, long topo, long tid)
{
    Py_ssize_t i = s->heap_len++;
    while (i > 0) {
        Py_ssize_t par = (i - 1) / 2;
        if (s->heap_topo[par] <= topo)
            break;
        s->heap_topo[i] = s->heap_topo[par];
        s->heap_tid[i] = s->heap_tid[par];
        i = par;
    }
    s->heap_topo[i] = topo;
    s->heap_tid[i] = tid;
}

static long
heap_pop(Scratch *s)
{
    long out = s->heap_tid[0];
    Py_ssize_t len = --s->heap_len;
    if (len > 0) {
        long topo = s->heap_topo[len], tid = s->heap_tid[len];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t l = 2 * i + 1, r = l + 1, small = i;
            long best = topo;
            if (l < len && s->heap_topo[l] < best) {
                small = l;
                best = s->heap_topo[l];
            }
            if (r < len && s->heap_topo[r] < best)
                small = r;
            if (small == i)
                break;
            s->heap_topo[i] = s->heap_topo[small];
            s->heap_tid[i] = s->heap_tid[small];
            i = small;
        }
        s->heap_topo[i] = topo;
        s->heap_tid[i] = tid;
    }
    return out;
}

static inline void
push_task(const Ctx *c, Scratch *s, unsigned long g, long t)
{
    if (s->s_queued[t] == g)
        return;
    s->s_queued[t] = g;
    heap_push(s, LI(c->topo, t), t);
}

/* ---------------------------------------------------------------- */
/* _buffer_deltas: mapping-dependent buffer-model updates            */

static void
buffer_deltas(const Ctx *c, Scratch *s)
{
    unsigned long g = s->gen;

    /* 1. propagate firstPeriod changes (elision only) */
    if (c->elide) {
        s->heap_len = 0;
        for (Py_ssize_t i = 0; i < s->mv_cnt; i++) {
            long t = s->mv_t[i];
            push_task(c, s, g, t);
            long lo = LI(c->out_ptr, t), hi = LI(c->out_ptr, t + 1);
            for (long k = lo; k < hi; k++)
                push_task(c, s, g, LI(c->out_dst, k));
        }
        while (s->heap_len) {
            long t = heap_pop(s);
            long lo = LI(c->in_ptr, t), hi = LI(c->in_ptr, t + 1);
            long value;
            if (lo == hi) {
                value = 0;
            } else {
                long pe = NEWPE(t);
                long best = -1;
                for (long k = lo; k < hi; k++) {
                    long p = LI(c->in_src, k);
                    long fpp = (s->s_fp[p] == g) ? s->fp_new[p]
                                                 : LI(c->fp, p);
                    long cand = fpp + 1 + ((NEWPE(p) == pe) ? 0 : 1);
                    if (cand > best)
                        best = cand;
                }
                value = best + LI(c->peek, t);
            }
            if (value != LI(c->fp, t)) {
                if (s->s_fp[t] != g) {
                    s->s_fp[t] = g;
                    s->fp_list[s->fp_cnt++] = t;
                }
                s->fp_new[t] = value;
                long olo = LI(c->out_ptr, t), ohi = LI(c->out_ptr, t + 1);
                for (long k = olo; k < ohi; k++)
                    push_task(c, s, g, LI(c->out_dst, k));
            }
        }
    }

    /* 2. edge buffer sizes that change */
    for (Py_ssize_t i = 0; i < s->fp_cnt; i++) {
        long t = s->fp_list[i];
        long lo = LI(c->inc_ptr, t), hi = LI(c->inc_ptr, t + 1);
        for (long k = lo; k < hi; k++) {
            long e = LI(c->inc_eid, k);
            if (s->s_esz[e] == g)
                continue;
            long u = LI(c->edge_src, e), v = LI(c->edge_dst, e);
            long fpu = (s->s_fp[u] == g) ? s->fp_new[u] : LI(c->fp, u);
            long fpv = (s->s_fp[v] == g) ? s->fp_new[v] : LI(c->fp, v);
            double size = LD(c->edge_data, e) * (double)(fpv - fpu);
            if (size != LD(c->esize, e)) {
                s->s_esz[e] = g;
                s->esz_new[e] = size;
                s->esz_list[s->esz_cnt++] = e;
            }
        }
    }

    /* 3. per-task footprints to recompute */
#define DIRTY(tid)                                                      \
    do {                                                                \
        long _t = (tid);                                                \
        if (s->s_dirty[_t] != g) {                                      \
            s->s_dirty[_t] = g;                                         \
            s->dirty_list[s->dirty_cnt++] = _t;                         \
        }                                                               \
    } while (0)
    for (Py_ssize_t i = 0; i < s->esz_cnt; i++) {
        long e = s->esz_list[i];
        DIRTY(LI(c->edge_src, e));
        DIRTY(LI(c->edge_dst, e));
    }
    if (c->merge) {
        for (Py_ssize_t i = 0; i < s->mv_cnt; i++) {
            long t = s->mv_t[i];
            DIRTY(t);
            long lo = LI(c->out_ptr, t), hi = LI(c->out_ptr, t + 1);
            for (long k = lo; k < hi; k++)
                DIRTY(LI(c->out_dst, k));
        }
    }
#undef DIRTY
    for (Py_ssize_t i = 0; i < s->dirty_cnt; i++) {
        long t = s->dirty_list[i];
        /* buffer_requirements accumulation order: incident edges in
         * global edge order, producer side always counted, consumer
         * side skipped when merged. */
        double total = 0.0;
        long lo = LI(c->inc_ptr, t), hi = LI(c->inc_ptr, t + 1);
        for (long k = lo; k < hi; k++) {
            long e = LI(c->inc_eid, k);
            double size = (s->s_esz[e] == g) ? s->esz_new[e]
                                             : LD(c->esize, e);
            long u = LI(c->edge_src, e);
            if (t != u) {
                if (c->merge && NEWPE(u) == NEWPE(LI(c->edge_dst, e)))
                    continue;
            }
            total += size;
        }
        if (total != LD(c->need, t)) {
            s->s_need[t] = g;
            s->need_new[t] = total;
            s->need_list[s->need_cnt++] = t;
        }
    }

    /* 4. per-SPE buffer deltas */
    for (Py_ssize_t i = 0; i < s->mv_cnt; i++) {
        long t = s->mv_t[i], pe = s->mv_p[i];
        long old_pe = LI(c->pe, t);
        double old_need = LD(c->need, t);
        if (c->is_spe[old_pe])
            DADD_F(db, old_pe, -old_need);
        if (c->is_spe[pe]) {
            double nn = (s->s_need[t] == g) ? s->need_new[t] : old_need;
            DADD_F(db, pe, nn);
        }
    }
    for (Py_ssize_t i = 0; i < s->need_cnt; i++) {
        long t = s->need_list[i];
        if (s->s_mv[t] == g)
            continue;
        long pe = LI(c->pe, t);
        if (c->is_spe[pe])
            DADD_F(db, pe, s->need_new[t] - LD(c->need, t));
    }
}

/* ---------------------------------------------------------------- */
/* _deltas_ids: per-resource deltas for a validated move set         */

static void
compute_deltas(const Ctx *c, Scratch *s, Py_ssize_t nm,
               const long *mv_t, const long *mv_p)
{
    unsigned long g = ++s->gen;
    s->dc_cnt = s->di_cnt = s->dout_cnt = s->db_cnt = 0;
    s->ddi_cnt = s->ddp_cnt = s->t_cnt = s->dl_cnt = 0;
    s->adc_cnt = s->adi_cnt = s->adout_cnt = s->adl_cnt = s->ta_cnt = 0;
    s->eid_cnt = s->fp_cnt = s->esz_cnt = s->need_cnt = s->dirty_cnt = 0;
    s->mv_cnt = nm;
    int track_app = (c->app_index != Py_None);

    if (mv_t != s->mv_t) {
        memcpy(s->mv_t, mv_t, (size_t)nm * sizeof(long));
        memcpy(s->mv_p, mv_p, (size_t)nm * sizeof(long));
    }
    for (Py_ssize_t i = 0; i < nm; i++) {
        s->s_mv[s->mv_t[i]] = g;
        s->mv_new[s->mv_t[i]] = s->mv_p[i];
    }

    for (Py_ssize_t i = 0; i < nm; i++) {
        long t = s->mv_t[i], new_pe = s->mv_p[i];
        long old_pe = LI(c->pe, t);
        double old_cost = c->is_ppe[old_pe] ? LD(c->wppe, t)
                                            : LD(c->wspe, t);
        double new_cost = c->is_ppe[new_pe] ? LD(c->wppe, t)
                                            : LD(c->wspe, t);
        double rd = LD(c->read, t), wr = LD(c->write, t);
        DADD_F(dc, old_pe, -old_cost);
        DADD_F(dc, new_pe, new_cost);
        DADD_F(di, old_pe, -rd);
        DADD_F(di, new_pe, rd);
        DADD_F(dout, old_pe, -wr);
        DADD_F(dout, new_pe, wr);
        if (track_app) {
            long a = LI(c->app_index, t);
            DADD_F(adc, a * c->P + old_pe, -old_cost);
            DADD_F(adc, a * c->P + new_pe, new_cost);
            DADD_F(adi, a * c->P + old_pe, -rd);
            DADD_F(adi, a * c->P + new_pe, rd);
            DADD_F(adout, a * c->P + old_pe, -wr);
            DADD_F(adout, a * c->P + new_pe, wr);
        }
        if (!c->mapping_dependent) {
            double need = LD(c->need, t);
            if (c->is_spe[old_pe])
                DADD_F(db, old_pe, -need);
            if (c->is_spe[new_pe])
                DADD_F(db, new_pe, need);
        }
        long lo = LI(c->in_ptr, t), hi = LI(c->in_ptr, t + 1);
        for (long k = lo; k < hi; k++) {
            long e = LI(c->in_eid, k);
            if (s->s_eid[e] != g) {
                s->s_eid[e] = g;
                s->eid_list[s->eid_cnt++] = e;
            }
        }
        lo = LI(c->out_ptr, t);
        hi = LI(c->out_ptr, t + 1);
        for (long k = lo; k < hi; k++) {
            long e = LI(c->out_eid, k);
            if (s->s_eid[e] != g) {
                s->s_eid[e] = g;
                s->eid_list[s->eid_cnt++] = e;
            }
        }
    }

    for (Py_ssize_t i = 0; i < s->eid_cnt; i++) {
        long e = s->eid_list[i];
        long u = LI(c->edge_src, e), v = LI(c->edge_dst, e);
        double data = LD(c->edge_data, e);
        long old_u = LI(c->pe, u), old_v = LI(c->pe, v);
        long new_u = (s->s_mv[u] == g) ? s->mv_new[u] : old_u;
        long new_v = (s->s_mv[v] == g) ? s->mv_new[v] : old_v;
        long a = track_app ? LI(c->app_index, u) : 0;
        if (old_u != old_v) { /* retract the old cross-PE contribution */
            DADD_F(dout, old_u, -data);
            DADD_F(di, old_v, -data);
            if (track_app) {
                DADD_F(adout, a * c->P + old_u, -data);
                DADD_F(adi, a * c->P + old_v, -data);
            }
            if (c->is_spe[old_v])
                DADD_L(ddi, old_v, -1);
            if (c->is_spe[old_u] && c->is_ppe[old_v])
                DADD_L(ddp, old_u, -1);
            if (c->multi && c->cell[old_u] != c->cell[old_v]) {
                long cc = c->cell[old_u] * c->n_cells + c->cell[old_v];
                DADD_LINK(dl, dln, cc, -data, -1);
                if (track_app)
                    DADD_LINK(adl, adln, a * c->CC + cc, -data, -1);
            }
        }
        if (new_u != new_v) { /* add the new cross-PE contribution */
            DADD_F(dout, new_u, data);
            DADD_F(di, new_v, data);
            if (track_app) {
                DADD_F(adout, a * c->P + new_u, data);
                DADD_F(adi, a * c->P + new_v, data);
            }
            if (c->is_spe[new_v])
                DADD_L(ddi, new_v, 1);
            if (c->is_spe[new_u] && c->is_ppe[new_v])
                DADD_L(ddp, new_u, 1);
            if (c->multi && c->cell[new_u] != c->cell[new_v]) {
                long cc = c->cell[new_u] * c->n_cells + c->cell[new_v];
                DADD_LINK(dl, dln, cc, data, 1);
                if (track_app)
                    DADD_LINK(adl, adln, a * c->CC + cc, data, 1);
            }
        }
    }

    if (c->mapping_dependent)
        buffer_deltas(c, s);

    /* touched = union of the d_compute/d_in/d_out key sets */
    for (Py_ssize_t i = 0; i < s->dc_cnt; i++) {
        long pe = s->dc_list[i];
        if (s->s_t[pe] != g) { s->s_t[pe] = g; s->t_list[s->t_cnt++] = pe; }
    }
    for (Py_ssize_t i = 0; i < s->di_cnt; i++) {
        long pe = s->di_list[i];
        if (s->s_t[pe] != g) { s->s_t[pe] = g; s->t_list[s->t_cnt++] = pe; }
    }
    for (Py_ssize_t i = 0; i < s->dout_cnt; i++) {
        long pe = s->dout_list[i];
        if (s->s_t[pe] != g) { s->s_t[pe] = g; s->t_list[s->t_cnt++] = pe; }
    }
}

/* ---------------------------------------------------------------- */
/* _score / _violation_shift                                         */

static long
violation_shift(const Ctx *c, const Scratch *s)
{
    long shift = 0;
    for (Py_ssize_t i = 0; i < s->db_cnt; i++) {
        long spe = s->db_list[i];
        double old = c->buf_d[spe];
        shift += ((old + s->db[spe]) > c->budget) - (old > c->budget);
    }
    for (Py_ssize_t i = 0; i < s->ddi_cnt; i++) {
        long spe = s->ddi_list[i];
        long old = c->dmain_d[spe];
        shift += ((old + s->ddi[spe]) > c->in_slots) - (old > c->in_slots);
    }
    for (Py_ssize_t i = 0; i < s->ddp_cnt; i++) {
        long spe = s->ddp_list[i];
        long old = c->dproxy_d[spe];
        shift += ((old + s->ddp[spe]) > c->proxy_slots) -
                 (old > c->proxy_slots);
    }
    return shift;
}

static double
score_period(const Ctx *c, const Scratch *s)
{
    unsigned long g = s->gen;
    double bw = c->bw, worst = 0.0;
    for (Py_ssize_t pe = 0; pe < c->P; pe++) {
        double value;
        if (s->s_t[pe] == g) {
            value = LD(c->compute, pe) +
                    (s->s_dc[pe] == g ? s->dc[pe] : 0.0);
            double comm = (LD(c->in_bytes, pe) +
                           (s->s_di[pe] == g ? s->di[pe] : 0.0)) / bw;
            if (comm > value)
                value = comm;
            comm = (LD(c->out_bytes, pe) +
                    (s->s_dout[pe] == g ? s->dout[pe] : 0.0)) / bw;
            if (comm > value)
                value = comm;
        } else {
            value = LD(c->peak, pe);
        }
        if (value > worst)
            worst = value;
    }
    if (c->multi) {
        for (Py_ssize_t i = 0; i < s->dl_cnt; i++) {
            long cc = s->dl_list[i];
            double base = c->lb_has[cc] ? c->lb_d[cc] : 0.0;
            double time = (base + s->dl[cc]) / c->bif_bw;
            if (time > worst)
                worst = time;
        }
        for (Py_ssize_t i = 0; i < c->lb_cnt; i++) {
            long cc = c->lb_list[i];
            if (s->s_dl[cc] == g)
                continue;
            double time = c->lb_d[cc] / c->bif_bw;
            if (time > worst)
                worst = time;
        }
    }
    return worst;
}

/* period() of the unchanged state (origin candidates in a sweep) */
static double
current_period(const Ctx *c)
{
    double worst = LD(c->peak, 0);
    for (Py_ssize_t pe = 1; pe < c->P; pe++) {
        double v = LD(c->peak, pe);
        if (v > worst)
            worst = v;
    }
    if (c->multi) {
        for (Py_ssize_t i = 0; i < c->lb_cnt; i++) {
            double time = c->lb_d[c->lb_list[i]] / c->bif_bw;
            if (time > worst)
                worst = time;
        }
    }
    return worst;
}

/* ---------------------------------------------------------------- */
/* _apply                                                            */

static int
dict_add_f(PyObject *dict, PyObject *key, double dv)
{
    PyObject *old = PyDict_GetItemWithError(dict, key);
    if (old == NULL && PyErr_Occurred())
        return -1;
    PyObject *val = PyFloat_FromDouble((old ? as_d(old) : 0.0) + dv);
    if (val == NULL)
        return -1;
    int rc = PyDict_SetItem(dict, key, val);
    Py_DECREF(val);
    return rc;
}

static int
dict_add_l(PyObject *dict, PyObject *key, long dv)
{
    PyObject *old = PyDict_GetItemWithError(dict, key);
    if (old == NULL && PyErr_Occurred())
        return -1;
    PyObject *val = PyLong_FromLong((old ? as_l(old) : 0) + dv);
    if (val == NULL)
        return -1;
    int rc = PyDict_SetItem(dict, key, val);
    Py_DECREF(val);
    return rc;
}

static int
dict_pop(PyObject *dict, PyObject *key)
{
    int has = PyDict_Contains(dict, key);
    if (has < 0)
        return -1;
    if (has)
        return PyDict_DelItem(dict, key);
    return 0;
}

static int
apply_deltas(Ctx *c, Scratch *s, long shift)
{
    unsigned long g = s->gen;
    PyObject *az = c->az;

    /* _state_version += 1; _n_violations += shift */
    {
        PyObject *tmp = PyObject_GetAttr(az, S__state_version);
        if (tmp == NULL)
            return -1;
        long ver = as_l(tmp);
        Py_DECREF(tmp);
        tmp = PyLong_FromLong(ver + 1);
        if (tmp == NULL || PyObject_SetAttr(az, S__state_version, tmp) < 0) {
            Py_XDECREF(tmp);
            return -1;
        }
        Py_DECREF(tmp);
        c->n_violations += shift;
        tmp = PyLong_FromLong(c->n_violations);
        if (tmp == NULL || PyObject_SetAttr(az, S__n_violations, tmp) < 0) {
            Py_XDECREF(tmp);
            return -1;
        }
        Py_DECREF(tmp);
    }

    for (Py_ssize_t i = 0; i < s->mv_cnt; i++) {
        long t = s->mv_t[i], pe = s->mv_p[i];
        long old_pe = LI(c->pe, t);
        PyObject *tid = PyLong_FromLong(t);
        if (tid == NULL)
            return -1;
        if (PySet_Discard(GI(c->members, old_pe), tid) < 0 ||
            PySet_Add(GI(c->members, pe), tid) < 0) {
            Py_DECREF(tid);
            return -1;
        }
        Py_DECREF(tid);
        if (set_l(c->pe, t, pe) < 0)
            return -1;
    }

    if (c->mapping_dependent) {
        for (Py_ssize_t i = 0; i < s->fp_cnt; i++) {
            long t = s->fp_list[i];
            if (set_l(c->fp, t, s->fp_new[t]) < 0)
                return -1;
        }
        for (Py_ssize_t i = 0; i < s->esz_cnt; i++) {
            long e = s->esz_list[i];
            if (set_f(c->esize, e, s->esz_new[e]) < 0)
                return -1;
        }
        for (Py_ssize_t i = 0; i < s->need_cnt; i++) {
            long t = s->need_list[i];
            if (set_f(c->need, t, s->need_new[t]) < 0)
                return -1;
        }
    }

    for (Py_ssize_t i = 0; i < s->dc_cnt; i++) {
        long pe = s->dc_list[i];
        if (set_f(c->compute, pe, LD(c->compute, pe) + s->dc[pe]) < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->di_cnt; i++) {
        long pe = s->di_list[i];
        if (set_f(c->in_bytes, pe, LD(c->in_bytes, pe) + s->di[pe]) < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->dout_cnt; i++) {
        long pe = s->dout_list[i];
        if (set_f(c->out_bytes, pe, LD(c->out_bytes, pe) + s->dout[pe]) < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->db_cnt; i++) {
        long spe = s->db_list[i];
        PyObject *key = PyLong_FromLong(spe);
        if (key == NULL)
            return -1;
        int rc = dict_add_f(c->buffer, key, s->db[spe]);
        Py_DECREF(key);
        if (rc < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->ddi_cnt; i++) {
        long spe = s->ddi_list[i];
        PyObject *key = PyLong_FromLong(spe);
        if (key == NULL)
            return -1;
        int rc = dict_add_l(c->dma_in, key, s->ddi[spe]);
        Py_DECREF(key);
        if (rc < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->ddp_cnt; i++) {
        long spe = s->ddp_list[i];
        PyObject *key = PyLong_FromLong(spe);
        if (key == NULL)
            return -1;
        int rc = dict_add_l(c->dma_proxy, key, s->ddp[spe]);
        Py_DECREF(key);
        if (rc < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->dl_cnt; i++) {
        long cc = s->dl_list[i];
        PyObject *key = Py_BuildValue("(ll)", cc / c->n_cells,
                                      cc % c->n_cells);
        if (key == NULL)
            return -1;
        PyObject *old = PyDict_GetItemWithError(c->link_count, key);
        if (old == NULL && PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        long count = (old ? as_l(old) : 0) + s->dln[cc];
        int rc;
        if (count) {
            PyObject *val = PyLong_FromLong(count);
            rc = (val == NULL) ? -1
                               : PyDict_SetItem(c->link_count, key, val);
            Py_XDECREF(val);
            if (rc == 0)
                rc = dict_add_f(c->link_bytes, key, s->dl[cc]);
        } else { /* no cross-cell edge left on this link direction */
            rc = dict_pop(c->link_count, key);
            if (rc == 0)
                rc = dict_pop(c->link_bytes, key);
        }
        Py_DECREF(key);
        if (rc < 0)
            return -1;
    }
    for (Py_ssize_t i = 0; i < s->t_cnt; i++) {
        long pe = s->t_list[i];
        double v = LD(c->compute, pe);
        double comm = LD(c->in_bytes, pe) / c->bw;
        if (comm > v)
            v = comm;
        comm = LD(c->out_bytes, pe) / c->bw;
        if (comm > v)
            v = comm;
        if (set_f(c->peak, pe, v) < 0)
            return -1;
    }

    if (c->app_index != Py_None) {
        for (Py_ssize_t i = 0; i < s->adc_cnt; i++) {
            long idx = s->adc_list[i], a = idx / c->P, pe = idx % c->P;
            PyObject *row = GI(c->app_compute, a);
            if (set_f(row, pe, LD(row, pe) + s->adc[idx]) < 0)
                return -1;
        }
        for (Py_ssize_t i = 0; i < s->adi_cnt; i++) {
            long idx = s->adi_list[i], a = idx / c->P, pe = idx % c->P;
            PyObject *row = GI(c->app_in, a);
            if (set_f(row, pe, LD(row, pe) + s->adi[idx]) < 0)
                return -1;
        }
        for (Py_ssize_t i = 0; i < s->adout_cnt; i++) {
            long idx = s->adout_list[i], a = idx / c->P, pe = idx % c->P;
            PyObject *row = GI(c->app_out, a);
            if (set_f(row, pe, LD(row, pe) + s->adout[idx]) < 0)
                return -1;
        }
        for (Py_ssize_t i = 0; i < s->adl_cnt; i++) {
            long idx = s->adl_list[i], a = idx / c->CC, cc = idx % c->CC;
            PyObject *key = Py_BuildValue("(l(ll))", a, cc / c->n_cells,
                                          cc % c->n_cells);
            if (key == NULL)
                return -1;
            PyObject *old =
                PyDict_GetItemWithError(c->app_link_count, key);
            if (old == NULL && PyErr_Occurred()) {
                Py_DECREF(key);
                return -1;
            }
            long count = (old ? as_l(old) : 0) + s->adln[idx];
            int rc;
            if (count) {
                PyObject *val = PyLong_FromLong(count);
                rc = (val == NULL)
                         ? -1
                         : PyDict_SetItem(c->app_link_count, key, val);
                Py_XDECREF(val);
                if (rc == 0)
                    rc = dict_add_f(c->app_link_bytes, key, s->adl[idx]);
            } else {
                rc = dict_pop(c->app_link_count, key);
                if (rc == 0)
                    rc = dict_pop(c->app_link_bytes, key);
            }
            Py_DECREF(key);
            if (rc < 0)
                return -1;
        }
        /* touched (a, pe) pairs: union of the three app delta key sets */
        s->ta_cnt = 0;
        for (Py_ssize_t i = 0; i < s->adc_cnt; i++) {
            long idx = s->adc_list[i];
            if (s->s_ta[idx] != g) {
                s->s_ta[idx] = g;
                s->ta_list[s->ta_cnt++] = idx;
            }
        }
        for (Py_ssize_t i = 0; i < s->adi_cnt; i++) {
            long idx = s->adi_list[i];
            if (s->s_ta[idx] != g) {
                s->s_ta[idx] = g;
                s->ta_list[s->ta_cnt++] = idx;
            }
        }
        for (Py_ssize_t i = 0; i < s->adout_cnt; i++) {
            long idx = s->adout_list[i];
            if (s->s_ta[idx] != g) {
                s->s_ta[idx] = g;
                s->ta_list[s->ta_cnt++] = idx;
            }
        }
        for (Py_ssize_t i = 0; i < s->ta_cnt; i++) {
            long idx = s->ta_list[i], a = idx / c->P, pe = idx % c->P;
            double v = LD(GI(c->app_compute, a), pe);
            double comm = LD(GI(c->app_in, a), pe) / c->bw;
            if (comm > v)
                v = comm;
            comm = LD(GI(c->app_out, a), pe) / c->bw;
            if (comm > v)
                v = comm;
            if (set_f(GI(c->app_peak, a), pe, v) < 0)
                return -1;
        }
    }
    return 0;
}

/* ---------------------------------------------------------------- */
/* Entry points                                                      */

#define MODE_SCORE 1
#define MODE_APPLY 2
#define MODE_APPLY_IF_FEASIBLE 4

/* eval_changes(analyzer, moved, mode) -> (period | None, nviol, applied)
 *
 * `moved` is the non-empty, pre-validated tid -> PE dict _to_moved
 * builds (every entry changes PE).  MODE_SCORE computes the candidate
 * period; MODE_APPLY commits unconditionally; MODE_APPLY_IF_FEASIBLE
 * commits only when the candidate has zero violations. */
static PyObject *
ck_eval_changes(PyObject *self, PyObject *args)
{
    PyObject *az, *moved;
    int mode;
    if (!PyArg_ParseTuple(args, "OO!i", &az, &PyDict_Type, &moved, &mode))
        return NULL;

    Ctx c;
    Scratch s;
    if (ctx_load(&c, az) < 0)
        return NULL;
    if (scratch_alloc(&s, &c) < 0) {
        ctx_clear(&c);
        return NULL;
    }

    PyObject *result = NULL;
    Py_ssize_t nm = 0, pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(moved, &pos, &key, &value)) {
        s.mv_t[nm] = as_l(key);
        s.mv_p[nm] = as_l(value);
        nm++;
    }
    if (PyErr_Occurred() || nm == 0) {
        if (nm == 0)
            PyErr_SetString(PyExc_ValueError, "empty move set");
        goto done;
    }

    compute_deltas(&c, &s, nm, s.mv_t, s.mv_p);
    long shift = violation_shift(&c, &s);
    long nviol = c.n_violations + shift;
    double period = 0.0;
    int have_period = (mode & MODE_SCORE) != 0;
    if (have_period)
        period = score_period(&c, &s);

    int applied = 0;
    if ((mode & MODE_APPLY) ||
        ((mode & MODE_APPLY_IF_FEASIBLE) && nviol == 0)) {
        if (apply_deltas(&c, &s, shift) < 0)
            goto done;
        applied = 1;
    }

    if (have_period)
        result = Py_BuildValue("(dlO)", period, nviol,
                               applied ? Py_True : Py_False);
    else
        result = Py_BuildValue("(OlO)", Py_None, nviol,
                               applied ? Py_True : Py_False);
done:
    scratch_free(&s);
    ctx_clear(&c);
    return result;
}

/* sweep(analyzer, tid, pes) -> list[(period, nviol)]
 *
 * Mapping-dependent per-candidate move sweep: one (period, nviol)
 * verdict per target PE, entries whose target equals the task's
 * current PE holding the unchanged state's verdict — the native
 * _sweep_fallback. */
static PyObject *
ck_sweep(PyObject *self, PyObject *args)
{
    PyObject *az, *pes;
    long tid;
    if (!PyArg_ParseTuple(args, "OlO", &az, &tid, &pes))
        return NULL;

    Ctx c;
    Scratch s;
    if (ctx_load(&c, az) < 0)
        return NULL;
    if (scratch_alloc(&s, &c) < 0) {
        ctx_clear(&c);
        return NULL;
    }

    PyObject *result = NULL;
    PyObject *fast = PySequence_Fast(pes, "pes must be a sequence");
    if (fast == NULL)
        goto done;
    Py_ssize_t npes = PySequence_Fast_GET_SIZE(fast);
    result = PyList_New(npes);
    if (result == NULL)
        goto done_fast;

    long origin = LI(c.pe, tid);
    double cur_period = -1.0;
    for (Py_ssize_t j = 0; j < npes; j++) {
        long p = as_l(PySequence_Fast_GET_ITEM(fast, j));
        double period;
        long nviol;
        if (p == origin) {
            if (cur_period < 0.0)
                cur_period = current_period(&c);
            period = cur_period;
            nviol = c.n_violations;
        } else {
            long mv_t = tid, mv_p = p;
            compute_deltas(&c, &s, 1, &mv_t, &mv_p);
            period = score_period(&c, &s);
            nviol = c.n_violations + violation_shift(&c, &s);
        }
        PyObject *entry = Py_BuildValue("(dl)", period, nviol);
        if (entry == NULL) {
            Py_CLEAR(result);
            goto done_fast;
        }
        PyList_SET_ITEM(result, j, entry);
    }
    if (PyErr_Occurred())
        Py_CLEAR(result);
done_fast:
    Py_DECREF(fast);
done:
    scratch_free(&s);
    ctx_clear(&c);
    return result;
}

/* ---------------------------------------------------------------- */
/* rebuild(analyzer) -> None — native _rebuild accumulation.         */

static PyObject *
ck_rebuild(PyObject *self, PyObject *args)
{
    PyObject *az;
    if (!PyArg_ParseTuple(args, "O", &az))
        return NULL;

    Ctx c;
    if (ctx_load(&c, az) < 0)
        return NULL;

    PyObject *result = NULL;
    Py_ssize_t n = c.n, m = c.m, P = c.P, A = c.A, CC = c.CC;
    int track_app = (c.app_index != Py_None);

    PyObject *compute = NULL, *in_bytes = NULL, *out_bytes = NULL;
    PyObject *peak = NULL, *members = NULL;
    PyObject *buffer = NULL, *dma_in = NULL, *dma_proxy = NULL;
    PyObject *link_bytes = NULL, *link_count = NULL;
    PyObject *app_compute = NULL, *app_in = NULL, *app_out = NULL;
    PyObject *app_peak = NULL, *app_lb = NULL, *app_lc = NULL;
    PyObject *spes = NULL;

    size_t nd = (size_t)(3 * P + 3 * A * P + CC + A * CC + P);
    size_t nl = (size_t)(2 * P + 2 * CC + 2 * A * CC);
    double *blk = PyMem_Calloc(nd + nl, sizeof(double));
    if (blk == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    double *d_compute = blk;
    double *d_in = d_compute + P;
    double *d_out = d_in + P;
    double *d_buf = d_out + P;
    double *d_lb = d_buf + P;
    double *d_ac = d_lb + CC;
    double *d_ai = d_ac + A * P;
    double *d_ao = d_ai + A * P;
    double *d_alb = d_ao + A * P;
    long *l_dmain = (long *)(d_alb + A * CC);
    long *l_dproxy = l_dmain + P;
    long *l_lc = l_dproxy + P;
    long *l_lorder = l_lc + CC; /* first-touch order of link keys */
    long *l_alc = l_lorder + CC;
    long *l_alorder = l_alc + A * CC;
    Py_ssize_t lorder_cnt = 0, alorder_cnt = 0;

    members = PyList_New(P);
    if (members == NULL)
        goto fail;
    for (Py_ssize_t pe = 0; pe < P; pe++) {
        PyObject *st = PySet_New(NULL);
        if (st == NULL)
            goto fail;
        PyList_SET_ITEM(members, pe, st);
    }

    for (Py_ssize_t t = 0; t < n; t++) {
        long pe = LI(c.pe, t);
        PyObject *tid = PyLong_FromSsize_t(t);
        if (tid == NULL)
            goto fail;
        int rc = PySet_Add(GI(members, pe), tid);
        Py_DECREF(tid);
        if (rc < 0)
            goto fail;
        double cost = c.is_ppe[pe] ? LD(c.wppe, t) : LD(c.wspe, t);
        d_compute[pe] += cost;
        d_in[pe] += LD(c.read, t);
        d_out[pe] += LD(c.write, t);
        if (track_app) {
            long a = LI(c.app_index, t);
            d_ac[a * P + pe] += cost;
            d_ai[a * P + pe] += LD(c.read, t);
            d_ao[a * P + pe] += LD(c.write, t);
        }
    }

    for (Py_ssize_t e = 0; e < m; e++) {
        long u = LI(c.edge_src, e), v = LI(c.edge_dst, e);
        long src_pe = LI(c.pe, u), dst_pe = LI(c.pe, v);
        if (src_pe == dst_pe)
            continue;
        double data = LD(c.edge_data, e);
        d_out[src_pe] += data;
        d_in[dst_pe] += data;
        if (track_app) {
            long a = LI(c.app_index, u);
            d_ao[a * P + src_pe] += data;
            d_ai[a * P + dst_pe] += data;
        }
        if (c.is_spe[dst_pe])
            l_dmain[dst_pe] += 1;
        if (c.is_spe[src_pe] && c.is_ppe[dst_pe])
            l_dproxy[src_pe] += 1;
        if (c.multi && c.cell[src_pe] != c.cell[dst_pe]) {
            long cc = c.cell[src_pe] * c.n_cells + c.cell[dst_pe];
            if (l_lc[cc] == 0)
                l_lorder[lorder_cnt++] = cc;
            d_lb[cc] += data;
            l_lc[cc] += 1;
            if (track_app) {
                long a = LI(c.app_index, u);
                long acc = a * CC + cc;
                if (l_alc[acc] == 0)
                    l_alorder[alorder_cnt++] = acc;
                d_alb[acc] += data;
                l_alc[acc] += 1;
            }
        }
    }

    /* buffer bytes per SPE, in task order (same accumulation order) */
    for (Py_ssize_t t = 0; t < n; t++) {
        long pe = LI(c.pe, t);
        if (c.is_spe[pe])
            d_buf[pe] += LD(c.need, t);
    }

    compute = PyList_New(P);
    in_bytes = PyList_New(P);
    out_bytes = PyList_New(P);
    peak = PyList_New(P);
    if (!compute || !in_bytes || !out_bytes || !peak)
        goto fail;
    for (Py_ssize_t pe = 0; pe < P; pe++) {
        double v = d_compute[pe];
        double comm = d_in[pe] / c.bw;
        if (comm > v)
            v = comm;
        comm = d_out[pe] / c.bw;
        if (comm > v)
            v = comm;
        PyObject *o;
        o = PyFloat_FromDouble(d_compute[pe]);
        if (o == NULL) goto fail;
        PyList_SET_ITEM(compute, pe, o);
        o = PyFloat_FromDouble(d_in[pe]);
        if (o == NULL) goto fail;
        PyList_SET_ITEM(in_bytes, pe, o);
        o = PyFloat_FromDouble(d_out[pe]);
        if (o == NULL) goto fail;
        PyList_SET_ITEM(out_bytes, pe, o);
        o = PyFloat_FromDouble(v);
        if (o == NULL) goto fail;
        PyList_SET_ITEM(peak, pe, o);
    }

    /* dicts keyed by SPE index, insertion order == platform.spe_indices */
    buffer = PyDict_New();
    dma_in = PyDict_New();
    dma_proxy = PyDict_New();
    if (!buffer || !dma_in || !dma_proxy)
        goto fail;
    {
        PyObject *spe_obj = PyObject_GetAttr(c.platform, S_spe_indices);
        if (spe_obj == NULL)
            goto fail;
        spes = PySequence_List(spe_obj);
        Py_DECREF(spe_obj);
        if (spes == NULL)
            goto fail;
    }
    long violations = 0;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(spes); i++) {
        long spe = LI(spes, i);
        PyObject *key = GI(spes, i);
        PyObject *val = PyFloat_FromDouble(d_buf[spe]);
        if (val == NULL || PyDict_SetItem(buffer, key, val) < 0) {
            Py_XDECREF(val);
            goto fail;
        }
        Py_DECREF(val);
        val = PyLong_FromLong(l_dmain[spe]);
        if (val == NULL || PyDict_SetItem(dma_in, key, val) < 0) {
            Py_XDECREF(val);
            goto fail;
        }
        Py_DECREF(val);
        val = PyLong_FromLong(l_dproxy[spe]);
        if (val == NULL || PyDict_SetItem(dma_proxy, key, val) < 0) {
            Py_XDECREF(val);
            goto fail;
        }
        Py_DECREF(val);
        violations += d_buf[spe] > c.budget;
        violations += l_dmain[spe] > c.in_slots;
        violations += l_dproxy[spe] > c.proxy_slots;
    }

    link_bytes = PyDict_New();
    link_count = PyDict_New();
    if (!link_bytes || !link_count)
        goto fail;
    for (Py_ssize_t i = 0; i < lorder_cnt; i++) {
        long cc = l_lorder[i];
        PyObject *key = Py_BuildValue("(ll)", cc / c.n_cells,
                                      cc % c.n_cells);
        if (key == NULL)
            goto fail;
        PyObject *val = PyFloat_FromDouble(d_lb[cc]);
        int rc = (val == NULL) ? -1 : PyDict_SetItem(link_bytes, key, val);
        Py_XDECREF(val);
        if (rc == 0) {
            val = PyLong_FromLong(l_lc[cc]);
            rc = (val == NULL) ? -1 : PyDict_SetItem(link_count, key, val);
            Py_XDECREF(val);
        }
        Py_DECREF(key);
        if (rc < 0)
            goto fail;
    }

    if (track_app) {
        app_compute = PyList_New(A);
        app_in = PyList_New(A);
        app_out = PyList_New(A);
        app_peak = PyList_New(A);
        if (!app_compute || !app_in || !app_out || !app_peak)
            goto fail;
        for (Py_ssize_t a = 0; a < A; a++) {
            PyObject *rc_ = PyList_New(P), *ri = PyList_New(P);
            PyObject *ro = PyList_New(P), *rp = PyList_New(P);
            if (!rc_ || !ri || !ro || !rp) {
                Py_XDECREF(rc_); Py_XDECREF(ri);
                Py_XDECREF(ro); Py_XDECREF(rp);
                goto fail;
            }
            for (Py_ssize_t pe = 0; pe < P; pe++) {
                double ac = d_ac[a * P + pe];
                double ai = d_ai[a * P + pe];
                double ao = d_ao[a * P + pe];
                double v = ac;
                double comm = ai / c.bw;
                if (comm > v)
                    v = comm;
                comm = ao / c.bw;
                if (comm > v)
                    v = comm;
                PyList_SET_ITEM(rc_, pe, PyFloat_FromDouble(ac));
                PyList_SET_ITEM(ri, pe, PyFloat_FromDouble(ai));
                PyList_SET_ITEM(ro, pe, PyFloat_FromDouble(ao));
                PyList_SET_ITEM(rp, pe, PyFloat_FromDouble(v));
            }
            PyList_SET_ITEM(app_compute, a, rc_);
            PyList_SET_ITEM(app_in, a, ri);
            PyList_SET_ITEM(app_out, a, ro);
            PyList_SET_ITEM(app_peak, a, rp);
        }
        app_lb = PyDict_New();
        app_lc = PyDict_New();
        if (!app_lb || !app_lc)
            goto fail;
        for (Py_ssize_t i = 0; i < alorder_cnt; i++) {
            long acc = l_alorder[i], a = acc / CC, cc = acc % CC;
            PyObject *key = Py_BuildValue("(l(ll))", a, cc / c.n_cells,
                                          cc % c.n_cells);
            if (key == NULL)
                goto fail;
            PyObject *val = PyFloat_FromDouble(d_alb[acc]);
            int rc = (val == NULL) ? -1 : PyDict_SetItem(app_lb, key, val);
            Py_XDECREF(val);
            if (rc == 0) {
                val = PyLong_FromLong(l_alc[acc]);
                rc = (val == NULL) ? -1 : PyDict_SetItem(app_lc, key, val);
                Py_XDECREF(val);
            }
            Py_DECREF(key);
            if (rc < 0)
                goto fail;
        }
    }

    /* commit */
    if (PyObject_SetAttr(az, S__compute, compute) < 0 ||
        PyObject_SetAttr(az, S__in_bytes, in_bytes) < 0 ||
        PyObject_SetAttr(az, S__out_bytes, out_bytes) < 0 ||
        PyObject_SetAttr(az, S__peak, peak) < 0 ||
        PyObject_SetAttr(az, S__members, members) < 0 ||
        PyObject_SetAttr(az, S__buffer, buffer) < 0 ||
        PyObject_SetAttr(az, S__dma_in, dma_in) < 0 ||
        PyObject_SetAttr(az, S__dma_proxy, dma_proxy) < 0 ||
        PyObject_SetAttr(az, S__link_bytes, link_bytes) < 0 ||
        PyObject_SetAttr(az, S__link_count, link_count) < 0)
        goto fail;
    if (track_app) {
        if (PyObject_SetAttr(az, S__app_compute, app_compute) < 0 ||
            PyObject_SetAttr(az, S__app_in, app_in) < 0 ||
            PyObject_SetAttr(az, S__app_out, app_out) < 0 ||
            PyObject_SetAttr(az, S__app_peak, app_peak) < 0 ||
            PyObject_SetAttr(az, S__app_link_bytes, app_lb) < 0 ||
            PyObject_SetAttr(az, S__app_link_count, app_lc) < 0)
            goto fail;
    }
    {
        PyObject *nv = PyLong_FromLong(violations);
        if (nv == NULL || PyObject_SetAttr(az, S__n_violations, nv) < 0) {
            Py_XDECREF(nv);
            goto fail;
        }
        Py_DECREF(nv);
    }
    result = Py_None;
    Py_INCREF(result);
fail:
    Py_XDECREF(compute); Py_XDECREF(in_bytes); Py_XDECREF(out_bytes);
    Py_XDECREF(peak); Py_XDECREF(members);
    Py_XDECREF(buffer); Py_XDECREF(dma_in); Py_XDECREF(dma_proxy);
    Py_XDECREF(link_bytes); Py_XDECREF(link_count);
    Py_XDECREF(app_compute); Py_XDECREF(app_in); Py_XDECREF(app_out);
    Py_XDECREF(app_peak); Py_XDECREF(app_lb); Py_XDECREF(app_lc);
    Py_XDECREF(spes);
    if (blk)
        PyMem_Free(blk);
    ctx_clear(&c);
    return result;
}

/* ---------------------------------------------------------------- */
/* copy_state(dst, src) -> None — clone-pool in-place state copy.    */

static int
copy_list(PyObject *az_dst, PyObject *az_src, PyObject *name)
{
    PyObject *dst = PyObject_GetAttr(az_dst, name);
    PyObject *src = PyObject_GetAttr(az_src, name);
    int rc = -1;
    if (dst && src) {
        if (dst == Py_None && src == Py_None)
            rc = 0;
        else
            rc = PyList_SetSlice(dst, 0, PyList_GET_SIZE(dst), src);
    }
    Py_XDECREF(dst);
    Py_XDECREF(src);
    return rc;
}

static int
copy_dict(PyObject *az_dst, PyObject *az_src, PyObject *name)
{
    PyObject *dst = PyObject_GetAttr(az_dst, name);
    PyObject *src = PyObject_GetAttr(az_src, name);
    int rc = -1;
    if (dst && src) {
        PyDict_Clear(dst);
        rc = PyDict_Merge(dst, src, 1);
    }
    Py_XDECREF(dst);
    Py_XDECREF(src);
    return rc;
}

static PyObject *
ck_copy_state(PyObject *self, PyObject *args)
{
    PyObject *dst, *src;
    if (!PyArg_ParseTuple(args, "OO", &dst, &src))
        return NULL;

    if (copy_list(dst, src, S__pe) < 0 ||
        copy_list(dst, src, S__compute) < 0 ||
        copy_list(dst, src, S__in_bytes) < 0 ||
        copy_list(dst, src, S__out_bytes) < 0 ||
        copy_list(dst, src, S__peak) < 0 ||
        copy_list(dst, src, S__fp) < 0 ||
        copy_list(dst, src, S__esize) < 0)
        return NULL;

    /* _need is shared (read-only) in the default mode; private in the
     * mapping-dependent modes */
    {
        PyObject *md = PyObject_GetAttr(dst, S__mapping_dependent);
        if (md == NULL)
            return NULL;
        int is_md = PyObject_IsTrue(md);
        Py_DECREF(md);
        if (is_md < 0)
            return NULL;
        if (is_md && copy_list(dst, src, S__need) < 0)
            return NULL;
    }

    if (copy_dict(dst, src, S__buffer) < 0 ||
        copy_dict(dst, src, S__dma_in) < 0 ||
        copy_dict(dst, src, S__dma_proxy) < 0 ||
        copy_dict(dst, src, S__link_bytes) < 0 ||
        copy_dict(dst, src, S__link_count) < 0 ||
        copy_dict(dst, src, S__app_link_bytes) < 0 ||
        copy_dict(dst, src, S__app_link_count) < 0)
        return NULL;

    /* members: per-PE set clear + refill */
    {
        PyObject *dm = PyObject_GetAttr(dst, S__members);
        PyObject *sm = PyObject_GetAttr(src, S__members);
        if (dm == NULL || sm == NULL) {
            Py_XDECREF(dm);
            Py_XDECREF(sm);
            return NULL;
        }
        Py_ssize_t P = PyList_GET_SIZE(dm);
        for (Py_ssize_t pe = 0; pe < P; pe++) {
            PyObject *ds = GI(dm, pe), *ss = GI(sm, pe);
            if (PySet_Clear(ds) < 0) {
                Py_DECREF(dm);
                Py_DECREF(sm);
                return NULL;
            }
            PyObject *it = PyObject_GetIter(ss), *item;
            if (it == NULL) {
                Py_DECREF(dm);
                Py_DECREF(sm);
                return NULL;
            }
            while ((item = PyIter_Next(it)) != NULL) {
                int rc = PySet_Add(ds, item);
                Py_DECREF(item);
                if (rc < 0)
                    break;
            }
            Py_DECREF(it);
            if (PyErr_Occurred()) {
                Py_DECREF(dm);
                Py_DECREF(sm);
                return NULL;
            }
        }
        Py_DECREF(dm);
        Py_DECREF(sm);
    }

    /* per-app lists of lists */
    PyObject *app_attrs[4] = {S__app_compute, S__app_in, S__app_out,
                              S__app_peak};
    for (int i = 0; i < 4; i++) {
        PyObject *dl = PyObject_GetAttr(dst, app_attrs[i]);
        PyObject *sl = PyObject_GetAttr(src, app_attrs[i]);
        if (dl == NULL || sl == NULL) {
            Py_XDECREF(dl);
            Py_XDECREF(sl);
            return NULL;
        }
        Py_ssize_t A = PyList_GET_SIZE(dl);
        int rc = 0;
        for (Py_ssize_t a = 0; a < A && rc == 0; a++) {
            PyObject *drow = GI(dl, a);
            rc = PyList_SetSlice(drow, 0, PyList_GET_SIZE(drow),
                                 GI(sl, a));
        }
        Py_DECREF(dl);
        Py_DECREF(sl);
        if (rc < 0)
            return NULL;
    }

    /* violation count */
    {
        PyObject *nv = PyObject_GetAttr(src, S__n_violations);
        if (nv == NULL)
            return NULL;
        int rc = PyObject_SetAttr(dst, S__n_violations, nv);
        Py_DECREF(nv);
        if (rc < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

/* ---------------------------------------------------------------- */

static PyMethodDef ck_methods[] = {
    {"eval_changes", ck_eval_changes, METH_VARARGS,
     "eval_changes(analyzer, moved, mode) -> (period|None, nviol, applied)"},
    {"sweep", ck_sweep, METH_VARARGS,
     "sweep(analyzer, tid, pes) -> [(period, nviol), ...]"},
    {"rebuild", ck_rebuild, METH_VARARGS,
     "rebuild(analyzer) -> None (native _rebuild accumulation)"},
    {"copy_state", ck_copy_state, METH_VARARGS,
     "copy_state(dst, src) -> None (in-place clone-pool state copy)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ck_module = {
    PyModuleDef_HEAD_INIT,
    "repro.steady_state._ckernel",
    "Compiled kernel backend: native DeltaAnalyzer hot paths.",
    -1,
    ck_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (intern_names() < 0)
        return NULL;
    return PyModule_Create(&ck_module);
}
