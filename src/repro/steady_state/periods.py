"""Steady-state timing: ``firstPeriod`` and buffer sizes (paper §4.2).

In the periodic schedule induced by a mapping, the first instance of task
``T_k`` is processed in period ``firstPeriod(T_k)``:

* ``firstPeriod(T_k) = 0`` if ``T_k`` has no predecessor,
* ``firstPeriod(T_k) = max_pred firstPeriod(T_j) + peek_k + 2`` otherwise —
  one period for the predecessors to finish, ``peek_k`` periods to
  accumulate the look-ahead instances, and one period for communication.

The number of instances of data ``D(k,l)`` simultaneously alive is
``firstPeriod(l) - firstPeriod(k)``, hence the buffer of that edge occupies
``data[k,l] × (firstPeriod(l) - firstPeriod(k))`` bytes — allocated on
*both* endpoints' local stores (the paper duplicates buffers even for
same-PE neighbours; merging them is listed as future work and implemented
here behind ``merge_same_pe_buffers``).

Note: the paper's worked example (Fig. 3) states ``firstPeriod(3) = 4``
while its own formula yields 3; we implement the formula as printed, which
is also what the linear program's constant ``buff`` coefficients require
(they must not depend on the mapping).
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from ..graph.stream_graph import StreamGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mapping import Mapping

__all__ = [
    "first_periods",
    "buffer_sizes",
    "buffer_requirements",
    "spe_buffer_load",
]


def first_periods(
    graph: StreamGraph,
    mapping: Optional["Mapping"] = None,
    elide_local_comm: bool = False,
) -> Dict[str, int]:
    """``firstPeriod`` of every task.

    Parameters
    ----------
    graph:
        The streaming application.
    mapping, elide_local_comm:
        With ``elide_local_comm=True`` (requires ``mapping``), the extra
        communication period is skipped for edges whose endpoints share a
        PE — the optimisation the paper leaves as future work.  The default
        reproduces the paper exactly and is mapping-independent, which the
        MILP requires (buffer sizes appear as constants in constraint (1i)).
    """
    if elide_local_comm and mapping is None:
        raise ValueError("elide_local_comm=True requires a mapping")
    fp: Dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        if not preds:
            fp[name] = 0
            continue
        peek = graph.task(name).peek
        if not elide_local_comm:
            fp[name] = max(fp[p] for p in preds) + peek + 2
        else:
            assert mapping is not None
            pe = mapping.pe_of(name)
            fp[name] = (
                max(
                    fp[p] + 1 + (0 if mapping.pe_of(p) == pe else 1)
                    for p in preds
                )
                + peek
            )
    return fp


def buffer_sizes(
    graph: StreamGraph,
    mapping: Optional["Mapping"] = None,
    elide_local_comm: bool = False,
) -> Dict[Tuple[str, str], float]:
    """Bytes of buffer needed for every edge: ``data × window`` (§4.2)."""
    fp = first_periods(graph, mapping, elide_local_comm)
    return {
        edge.key: edge.data * (fp[edge.dst] - fp[edge.src])
        for edge in graph.edges()
    }


#: Memoized mapping-independent buffer requirements, keyed by ``id(graph)``
#: and validated against a weak reference (id reuse) and the graph's
#: mutation counter (staleness).  The default ``buffer_requirements`` call
#: is mapping-independent and recomputed by every heuristic and every
#: ``analyze()`` on the same graph, so caching it takes an O(V+E)
#: traversal off the hot path of neighbourhood search.
_REQUIREMENTS_CACHE: Dict[int, Tuple["weakref.ref", int, Dict[str, float]]] = {}


def _cached_requirements(graph: StreamGraph) -> Dict[str, float]:
    key = id(graph)
    entry = _REQUIREMENTS_CACHE.get(key)
    if entry is not None:
        ref, version, need = entry
        if ref() is graph and version == graph.version:
            return need
    need = _compute_requirements(graph, None, False, False)

    def _evict(_ref, key=key):
        _REQUIREMENTS_CACHE.pop(key, None)

    _REQUIREMENTS_CACHE[key] = (weakref.ref(graph, _evict), graph.version, need)
    return need


def buffer_requirements(
    graph: StreamGraph,
    mapping: Optional["Mapping"] = None,
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
) -> Dict[str, float]:
    """Per-task local-store footprint: input + output edge buffers.

    A PE hosting ``T_k`` allocates the buffers of all edges incident to
    ``T_k``.  With ``merge_same_pe_buffers=True`` (requires ``mapping``)
    the *input* buffer of an edge whose endpoints share a PE is not
    duplicated — the producer's output buffer is reused, saving memory (the
    paper's future-work optimisation).

    The default (mapping-independent) case is memoized per graph and
    invalidated by any graph mutation; callers get a private copy.
    """
    if merge_same_pe_buffers and mapping is None:
        raise ValueError("merge_same_pe_buffers=True requires a mapping")
    if mapping is None and not elide_local_comm and not merge_same_pe_buffers:
        return dict(_cached_requirements(graph))
    return _compute_requirements(
        graph, mapping, elide_local_comm, merge_same_pe_buffers
    )


def _compute_requirements(
    graph: StreamGraph,
    mapping: Optional["Mapping"],
    elide_local_comm: bool,
    merge_same_pe_buffers: bool,
) -> Dict[str, float]:
    buffers = buffer_sizes(graph, mapping, elide_local_comm)
    need: Dict[str, float] = {task.name: 0.0 for task in graph.tasks()}
    for edge in graph.edges():
        size = buffers[edge.key]
        need[edge.src] += size
        if merge_same_pe_buffers and mapping is not None and (
            mapping.pe_of(edge.src) == mapping.pe_of(edge.dst)
        ):
            continue  # consumer reads straight from the producer's buffer
        need[edge.dst] += size
    return need


def spe_buffer_load(
    mapping: "Mapping",
    elide_local_comm: bool = False,
    merge_same_pe_buffers: bool = False,
) -> Dict[int, float]:
    """Total buffer bytes hosted by each SPE under ``mapping``."""
    need = buffer_requirements(
        mapping.graph,
        mapping if (elide_local_comm or merge_same_pe_buffers) else None,
        elide_local_comm=elide_local_comm,
        merge_same_pe_buffers=merge_same_pe_buffers,
    )
    load: Dict[int, float] = {i: 0.0 for i in mapping.platform.spe_indices}
    for task_name, pe in mapping.items():
        if mapping.platform.is_spe(pe):
            load[pe] += need[task_name]
    return load
