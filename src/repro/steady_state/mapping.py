"""Task-to-PE mappings (paper §3.1).

The paper restricts schedules to *simple mappings*: every instance of a task
runs on the same processing element (general multi-PE mappings need flow
control and larger buffers that do not fit the Cell, see the discussion in
§3.1).  A mapping plus the periodic-schedule construction of §3.1 fully
determines the throughput, so the mapping is the sole optimisation object.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping as TMapping, Tuple

from ..errors import MappingError
from ..graph.edge import DataEdge
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform

__all__ = ["Mapping"]


class Mapping:
    """An assignment of every task of a graph to a PE of a platform."""

    def __init__(
        self,
        graph: StreamGraph,
        platform: CellPlatform,
        assignment: TMapping[str, int],
    ) -> None:
        self.graph = graph
        self.platform = platform
        self._assignment: Dict[str, int] = dict(assignment)
        self._validate()

    def _validate(self) -> None:
        for name in self.graph.task_names():
            if name not in self._assignment:
                raise MappingError(f"task {name!r} is not mapped")
        for name, pe in self._assignment.items():
            if name not in self.graph:
                raise MappingError(f"mapped task {name!r} is not in the graph")
            if not isinstance(pe, int) or not 0 <= pe < self.platform.n_pes:
                raise MappingError(
                    f"task {name!r} mapped to invalid PE {pe!r} "
                    f"(platform has {self.platform.n_pes} PEs)"
                )

    # ------------------------------------------------------------------ #
    # Constructors

    @classmethod
    def all_on_ppe(
        cls, graph: StreamGraph, platform: CellPlatform, ppe: int = 0
    ) -> "Mapping":
        """The reference mapping of §6.4: every task on one PPE."""
        if not platform.is_ppe(ppe):
            raise MappingError(f"PE {ppe} is not a PPE")
        return cls(graph, platform, {name: ppe for name in graph.task_names()})

    @classmethod
    def from_lists(
        cls,
        graph: StreamGraph,
        platform: CellPlatform,
        per_pe: Iterable[Iterable[str]],
    ) -> "Mapping":
        """Build from ``per_pe[i] = tasks hosted by PE i``."""
        assignment: Dict[str, int] = {}
        for pe, names in enumerate(per_pe):
            for name in names:
                if name in assignment:
                    raise MappingError(f"task {name!r} assigned twice")
                assignment[name] = pe
        return cls(graph, platform, assignment)

    def with_assignment(self, task: str, pe: int) -> "Mapping":
        """A copy with one task moved to another PE."""
        if task not in self.graph:
            raise MappingError(f"unknown task {task!r}")
        updated = dict(self._assignment)
        updated[task] = pe
        return Mapping(self.graph, self.platform, updated)

    def copy(self) -> "Mapping":
        return Mapping(self.graph, self.platform, self._assignment)

    # ------------------------------------------------------------------ #
    # Queries

    @classmethod
    def from_json(
        cls,
        graph: StreamGraph,
        platform: CellPlatform,
        text: str,
    ) -> "Mapping":
        """Rebuild a mapping from :meth:`to_json` output.

        The payload's graph/platform names are checked against the given
        objects to catch mix-ups early.
        """
        import json

        try:
            payload = json.loads(text)
            assignment = {k: int(v) for k, v in payload["assignment"].items()}
        except (ValueError, KeyError, TypeError) as exc:
            raise MappingError(f"malformed mapping payload: {exc}") from exc
        if payload.get("graph") not in (None, graph.name):
            raise MappingError(
                f"mapping was computed for graph {payload['graph']!r}, "
                f"not {graph.name!r}"
            )
        unknown = sorted(name for name in assignment if name not in graph)
        if unknown:
            raise MappingError(
                f"mapping payload names {len(unknown)} task(s) absent from "
                f"graph {graph.name!r}: {', '.join(map(repr, unknown[:5]))}"
                f"{', ...' if len(unknown) > 5 else ''}"
            )
        return cls(graph, platform, assignment)

    def to_json(self) -> str:
        """Serialise as JSON (round-trips through :meth:`from_json`)."""
        import json

        return json.dumps(
            {
                "graph": self.graph.name,
                "platform": self.platform.name,
                "assignment": self._assignment,
            },
            indent=2,
        )

    # ------------------------------------------------------------------ #

    def pe_of(self, task: str) -> int:
        try:
            return self._assignment[task]
        except KeyError:
            raise MappingError(f"task {task!r} is not mapped") from None

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._assignment.items())

    def to_dict(self) -> Dict[str, int]:
        return dict(self._assignment)

    def tasks_on(self, pe: int) -> List[str]:
        """Tasks hosted by PE ``pe``, in graph insertion order."""
        self.platform.pe(pe)  # index check
        return [t for t in self.graph.task_names() if self._assignment[t] == pe]

    def used_pes(self) -> List[int]:
        """Sorted list of PEs hosting at least one task."""
        return sorted(set(self._assignment.values()))

    def is_cross_edge(self, edge: DataEdge) -> bool:
        """True if the edge's endpoints sit on different PEs."""
        return self._assignment[edge.src] != self._assignment[edge.dst]

    def cross_edges(self) -> List[DataEdge]:
        """Edges requiring an actual inter-PE transfer."""
        return [e for e in self.graph.edges() if self.is_cross_edge(e)]

    def n_tasks_on_spes(self) -> int:
        return sum(
            1 for pe in self._assignment.values() if self.platform.is_spe(pe)
        )

    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self._assignment == other._assignment
            and self.platform == other.platform
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per_pe = {
            self.platform.pe_name(pe): len(self.tasks_on(pe))
            for pe in self.used_pes()
        }
        return f"Mapping({self.graph.name!r}, {per_pe})"

    def summary(self) -> str:
        """Multi-line human-readable description of the mapping."""
        lines = [f"Mapping of {self.graph.name!r} on {self.platform.name}:"]
        for pe in range(self.platform.n_pes):
            tasks = self.tasks_on(pe)
            if tasks:
                lines.append(
                    f"  {self.platform.pe_name(pe):>6}: {', '.join(tasks)}"
                )
        return "\n".join(lines)
