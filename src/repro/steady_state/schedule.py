"""Construction of the periodic steady-state schedule (paper §3.1, Fig. 3).

Once a mapping is fixed, the schedule is fully determined: during period
``p``, the PE in charge of task ``T_k`` processes instance
``p - firstPeriod(T_k)`` (when non-negative), sends the result of the
previous instance to every successor's PE and receives the next instance
from every predecessor's PE.  After ``max_k firstPeriod(T_k)`` warm-up
periods every PE is active and a new instance completes every ``T``
time-units, hence throughput ``1/T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .mapping import Mapping
from .periods import first_periods
from .throughput import analyze

__all__ = ["ComputeEvent", "TransferEvent", "PeriodicSchedule", "build_schedule"]


@dataclass(frozen=True)
class ComputeEvent:
    """Task ``task`` processes instance ``instance`` on PE ``pe``."""

    period: int
    pe: int
    task: str
    instance: int


@dataclass(frozen=True)
class TransferEvent:
    """Instance ``instance`` of ``D(src,dst)`` moves between PEs."""

    period: int
    src_pe: int
    dst_pe: int
    src: str
    dst: str
    instance: int


class PeriodicSchedule:
    """The periodic schedule induced by a mapping."""

    def __init__(self, mapping: Mapping, elide_local_comm: bool = False) -> None:
        self.mapping = mapping
        self.first_period: Dict[str, int] = first_periods(
            mapping.graph,
            mapping if elide_local_comm else None,
            elide_local_comm=elide_local_comm,
        )
        self.analysis = analyze(mapping, elide_local_comm=elide_local_comm)
        #: Duration of one period, in µs.
        self.period_length: float = self.analysis.period

    # ------------------------------------------------------------------ #
    # Instance arithmetic

    @property
    def warmup_periods(self) -> int:
        """Periods before every task is active (max ``firstPeriod``)."""
        return max(self.first_period.values(), default=0)

    def instance_of(self, task: str, period: int) -> Optional[int]:
        """Instance processed by ``task`` during ``period`` (None if idle)."""
        instance = period - self.first_period[task]
        return instance if instance >= 0 else None

    def period_of(self, task: str, instance: int) -> int:
        """Period in which ``task`` processes ``instance``."""
        if instance < 0:
            raise ValueError("instance must be non-negative")
        return self.first_period[task] + instance

    def completion_time(self, task: str, instance: int) -> float:
        """Upper bound (µs) on the completion of ``instance`` of ``task``."""
        return (self.period_of(task, instance) + 1) * self.period_length

    def stream_latency(self) -> float:
        """Time (µs) between an instance entering and leaving the pipeline."""
        last = max(self.first_period[s] for s in self.mapping.graph.sinks())
        return (last + 1) * self.period_length

    # ------------------------------------------------------------------ #
    # Event enumeration

    def compute_events(self, period: int) -> List[ComputeEvent]:
        """All task activations during ``period``, in topological order."""
        events: List[ComputeEvent] = []
        for task in self.mapping.graph.topological_order():
            instance = self.instance_of(task, period)
            if instance is not None:
                events.append(
                    ComputeEvent(period, self.mapping.pe_of(task), task, instance)
                )
        return events

    def transfer_events(self, period: int) -> List[TransferEvent]:
        """Cross-PE transfers occurring during ``period``.

        Instance ``i`` of ``D(k,l)`` is produced in period
        ``firstPeriod(k) + i`` and shipped during the following period.
        """
        events: List[TransferEvent] = []
        for edge in self.mapping.graph.edges():
            if not self.mapping.is_cross_edge(edge):
                continue
            instance = period - 1 - self.first_period[edge.src]
            if instance >= 0:
                events.append(
                    TransferEvent(
                        period,
                        self.mapping.pe_of(edge.src),
                        self.mapping.pe_of(edge.dst),
                        edge.src,
                        edge.dst,
                        instance,
                    )
                )
        return events

    def live_instances(self, src: str, dst: str, period: int) -> int:
        """Instances of ``D(src,dst)`` buffered at the start of ``period``.

        Instance ``i`` occupies the buffer from its production (end of
        period ``firstPeriod(src) + i``) until consumed by the consumer's
        instance ``i`` (end of period ``firstPeriod(dst) + i``).  The count
        is bounded by ``firstPeriod(dst) - firstPeriod(src)``, which is the
        window used to size buffers in §4.2.
        """
        fp_src, fp_dst = self.first_period[src], self.first_period[dst]
        produced = period - fp_src  # instances 0 .. produced-1 exist
        consumed = period - fp_dst  # instances 0 .. consumed-1 are gone
        return max(0, produced) - max(0, consumed)

    # ------------------------------------------------------------------ #
    # Rendering

    def gantt_text(self, n_periods: int = 8, width: int = 10) -> str:
        """ASCII rendering of the first ``n_periods`` periods (Fig. 3b)."""
        platform = self.mapping.platform
        header = "PE".ljust(8) + "".join(
            f"| p={p}".ljust(width) for p in range(n_periods)
        )
        lines = [header, "-" * len(header)]
        for pe in range(platform.n_pes):
            tasks = self.mapping.tasks_on(pe)
            if not tasks:
                continue
            row = platform.pe_name(pe).ljust(8)
            for p in range(n_periods):
                cell_parts = []
                for task in tasks:
                    instance = self.instance_of(task, p)
                    if instance is not None:
                        cell_parts.append(f"{task}#{instance}")
                cell = "|" + ",".join(cell_parts)
                row += cell[: width - 1].ljust(width)
            lines.append(row)
        return "\n".join(lines)


def build_schedule(
    mapping: Mapping, elide_local_comm: bool = False
) -> PeriodicSchedule:
    """Build the :class:`PeriodicSchedule` of ``mapping``."""
    return PeriodicSchedule(mapping, elide_local_comm=elide_local_comm)
