"""Dense numpy kernels for the delta engine (the ``numpy`` backend).

Where the scalar kernel (:meth:`DeltaAnalyzer._sweep` and friends) walks
the compiled CSR arrays in Python, these kernels score whole
*neighbourhoods* — every (task, target-PE) pair at once — plus the two
batched shapes PR 5 deferred: the pairwise swap neighbourhood and the
population-level "score K assignments at once" pass the GA uses.  The
idiom follows the masked cost-matrix/argmin pattern of SNIPPETS.md
Snippet 1: aggregate the incident-edge structure into dense per-task ×
per-PE matrices with order-preserving ``bincount`` passes, then express
each candidate's period and violation count as elementwise arithmetic
over broadcast matrices.

Exactness contract (enforced by the cross-check suites): identical
*verdicts* to the scalar kernel everywhere, **bit-identical** floats on
integer-valued cost graphs, and within the usual ulp contract otherwise
— the only divergence source is float summation order in the dense
aggregations, which is exact on integers.  Three properties keep the
vectorized formulas unconditionally valid where the scalar code
branches:

* ``x - 0.0 == x`` and ``x + 0.0 == x`` bitwise for every non-negative
  IEEE double, so "non-neighbour" candidates can run the neighbour
  formula with zero aggregates;
* ``np.bincount`` accumulates weights in input order, reproducing the
  scalar accumulation order along each edge slice;
* ``max`` is exact and order-free, so peak/period reductions match
  regardless of evaluation shape.

Only the **default buffer model** is vectorized; the mapping-dependent
modes (``elide_local_comm``/``merge_same_pe_buffers``) re-derive
per-task footprints per candidate and always take the scalar fallback
inside the public ``DeltaAnalyzer`` entry points (same convention as
PR 5's batched kernel).
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional, Sequence

import numpy as np

__all__ = ["NumpyKernel", "build_graph_arrays"]

_I64 = np.int64
_F64 = np.float64


def build_graph_arrays(cg) -> SimpleNamespace:
    """Mapping-independent numpy mirrors of a :class:`CompiledGraph`.

    Built once per graph version (cached on the compiled graph) and
    shared read-only by every numpy-backend analyzer: cost tables, edge
    endpoint/byte arrays, static per-task in/out totals, and the sorted
    direct-edge pair table (``pair_keys``/``pair_bytes``/``pair_counts``)
    the swap kernel resolves a↔b adjacency against.
    """
    n, m = cg.n, cg.n_edges
    g = SimpleNamespace()
    g.n, g.n_edges = n, m
    g.wppe = np.asarray(cg.wppe, _F64)
    g.wspe = np.asarray(cg.wspe, _F64)
    g.read = np.asarray(cg.read, _F64)
    g.write = np.asarray(cg.write, _F64)
    g.need_default = np.asarray(cg.need_default, _F64)
    g.edge_src = np.asarray(cg.edge_src, _I64)
    g.edge_dst = np.asarray(cg.edge_dst, _I64)
    g.edge_data = np.asarray(cg.edge_data, _F64)
    # Static per-task totals: bincount accumulates in edge order — the
    # exact order the scalar kernel's in/out-slice walks use.
    g.tin = np.bincount(g.edge_dst, weights=g.edge_data, minlength=n)
    g.tout = np.bincount(g.edge_src, weights=g.edge_data, minlength=n)
    g.cin = np.bincount(g.edge_dst, minlength=n).astype(_I64)
    g.cout = np.bincount(g.edge_src, minlength=n).astype(_I64)
    # Sorted direct-edge pair table: bytes/edge-count between each
    # ordered task pair with at least one edge (swap kernel lookups).
    if m:
        key = g.edge_src * n + g.edge_dst
        order = np.argsort(key, kind="stable")
        sorted_keys = key[order]
        uniq, start = np.unique(sorted_keys, return_index=True)
        g.pair_keys = uniq
        g.pair_bytes = np.add.reduceat(g.edge_data[order], start)
        g.pair_counts = np.diff(np.append(start, m)).astype(_I64)
    else:
        g.pair_keys = np.zeros(0, _I64)
        g.pair_bytes = np.zeros(0, _F64)
        g.pair_counts = np.zeros(0, _I64)
    if cg.app_index is not None:
        g.app_index = np.asarray(cg.app_index, _I64)
    else:
        g.app_index = None
    return g


def _shift(old, dv, limit):
    """Vectorized ``(old + dv > limit) - (old > limit)`` as int64."""
    return ((old + dv) > limit).astype(_I64) - (old > limit).astype(_I64)


def _top3_rows(vals):
    """Per-row top-3 ``(values, positions)`` with first-index tie wins.

    Padded with ``(0.0, -1)`` below three columns — matching the scalar
    scan's ``top = 0.0`` initialisation, so the "rest of the platform"
    maximum degenerates to 0.0 exactly like the reference loop.
    """
    r, nn = vals.shape
    idx = np.argsort(-vals, axis=1, kind="stable")[:, :3]
    rows = np.arange(r)[:, None]
    topv = vals[rows, idx]
    topp = idx.astype(_I64)
    if nn < 3:
        pad = 3 - nn
        topv = np.concatenate([topv, np.zeros((r, pad), _F64)], axis=1)
        topp = np.concatenate([topp, np.full((r, pad), -1, _I64)], axis=1)
    return topv, topp


def _rest_max(topv, topp, excl_a, excl_b):
    """Max of ``topv`` whose position is in neither exclusion (k×m).

    ``topv``/``topp`` are (rows, 3); ``excl_a`` broadcasts as (k, 1) and
    ``excl_b`` as (1, m) (or any compatible shapes).  At most two
    positions are excluded, so the answer is always within the top 3.
    """
    ok0 = (topp[:, 0:1] != excl_a) & (topp[:, 0:1] != excl_b)
    ok1 = (topp[:, 1:2] != excl_a) & (topp[:, 1:2] != excl_b)
    return np.where(
        ok0, topv[:, 0:1], np.where(ok1, topv[:, 1:2], topv[:, 2:3])
    )


class NumpyKernel:
    """Dense kernels bound to one :class:`DeltaAnalyzer`.

    The scalar ``apply`` path stays the single source of truth for
    mutations; the kernel mirrors the analyzer's flat-list load state
    into dense ndarrays on demand and memoizes the mirror against the
    analyzer's ``_state_version`` counter, so back-to-back passes over
    one state (the shape of every search loop) pay the O(V + E)
    conversion once.
    """

    def __init__(self, analyzer) -> None:
        self.an = analyzer
        cg = analyzer._cg
        self.cg = cg
        self.g = cg.arrays()
        self.n = cg.n
        self.n_pes = analyzer._n_pes
        self.is_ppe = np.asarray(analyzer._is_ppe, bool)
        self.is_spe = np.asarray(analyzer._is_spe, bool)
        self.cell = np.asarray(analyzer._cell, _I64)
        self.n_cells = int(self.cell.max()) + 1 if self.n_pes else 0
        self.multi = analyzer._multi
        self.bw = analyzer._bw
        self.bif_bw = analyzer._bif_bw
        self.budget = analyzer._budget
        self.in_slots = analyzer._in_slots
        self.proxy_slots = analyzer._proxy_slots
        self._ar = np.arange(max(self.n, self.n_pes) + 1)
        self._cache = None
        self._cache_version = -1
        # Static (mapping-independent) candidate-side tables.
        g = self.g
        self.cost_full = np.where(
            self.is_ppe[None, :], g.wppe[:, None], g.wspe[:, None]
        )
        self.rt_full = g.read + g.tin
        self.wt_full = g.write + g.tout

    # ------------------------------------------------------------------ #
    # State mirrors

    def _state(self):
        """The dense state mirror of the analyzer's *current* state.

        Besides the raw load arrays this precomputes every *origin-side*
        per-task term (after-removal loads, violation bases, proxy-flip
        sums) — pure functions of the state, the vectorized analogue of
        the per-PE loads the scalar engine keeps incrementally.  The
        candidate-side (task × target) matrices are computed per call.
        """
        version = self.an._state_version
        if self._cache is None or self._cache_version != version:
            s = self._loads()
            s.F, s.C, s.T, s.U, s.up = self._neighbour_mats(s)
            s.ft = s.F + s.T
            s.topv, s.topp = _top3_rows(s.peak[None, :])
            self._origin_terms(s)
            s.app = None  # lazy per-application mirror (_app_state)
            self._cache, self._cache_version = s, version
        return self._cache

    def _origin_terms(self, s) -> None:
        """Per-task origin-side terms of ``s``, all shaped (n,)."""
        g, bw, nn = self.g, self.bw, self.n_pes
        rows = self._ar[: self.n]
        o = s.pe
        o_is_ppe = self.is_ppe[o]
        o_is_spe = self.is_spe[o]
        s.o_is_ppe = o_is_ppe
        s.cost_o = np.where(o_is_ppe, g.wppe, g.wspe)
        F_o, T_o = s.F[rows, o], s.T[rows, o]
        C_o, U_o = s.C[rows, o], s.U[rows, o]
        s.F_o, s.T_o = F_o, T_o
        o_compute = s.compute[o] - s.cost_o
        o_in = s.in_bytes[o] - g.read - (g.tin - F_o) + T_o
        o_out = s.out_bytes[o] - g.write - (g.tout - T_o) + F_o
        s.val_o = np.maximum(o_compute, np.maximum(o_in / bw, o_out / bw))
        # Violation bases: the buffer and DMA-in origin shifts are
        # kind-independent; only the proxy-queue term differs between
        # same-kind and flipped targets.
        s_flip = 1 - 2 * o_is_ppe.astype(_I64)
        s.s_flip = s_flip
        sh_fixed = ((s.buffer[o] - s.need) > self.budget).astype(np.int8)
        sh_fixed -= s.viol_buf[o]
        sh_fixed += (
            (s.dma_in[o] + (C_o - g.cin + U_o)) > self.in_slots
        ).astype(np.int8)
        sh_fixed -= s.viol_in[o]
        dprox_o = s.dma_proxy[o]
        bp_o = s.viol_proxy[o]
        sh_same = sh_fixed + (
            ((dprox_o - s.up) > self.proxy_slots).astype(np.int8) - bp_o
        )
        sh_flip = sh_fixed + (
            ((dprox_o - s.up + s_flip * C_o) > self.proxy_slots).astype(
                np.int8
            )
            - bp_o
        )
        base_viol = self.an._n_violations
        s.base_same = base_viol + np.where(o_is_spe, sh_same, 0).astype(
            _I64
        )
        # Producer-hosting SPEs flip their proxy queues on a kind change.
        flip_terms = (
            (s.dma_proxy[None, :] + s_flip[:, None] * s.C)
            > self.proxy_slots
        ).astype(np.int8) - s.viol_proxy[None, :]
        flip_mask_q = self.is_spe[None, :] & (
            self._ar[None, :nn] != o[:, None]
        )
        s.base_flip = (
            base_viol
            + np.where(o_is_spe, sh_flip, 0).astype(_I64)
            + (flip_terms * flip_mask_q).sum(axis=1)
        )
        if self.multi:
            s.FCell, s.TCell = self._cell_aggregates(s.F, s.T)
            s.lm = self._link_max(s.link, s.FCell, s.TCell, self.cell[o])

    def _app_state(self, s):
        """Lazy per-application dense mirror (composites only)."""
        if s.app is None:
            an, g, bw = self.an, self.g, self.bw
            a = SimpleNamespace()
            a.compute = np.asarray(an._app_compute, _F64)
            a.in_bytes = np.asarray(an._app_in, _F64)
            a.out_bytes = np.asarray(an._app_out, _F64)
            apk = np.asarray(an._app_peak, _F64)
            a.topv, a.topp = _top3_rows(apk)
            a_idx, o = g.app_index, s.pe
            ao_compute = a.compute[a_idx, o] - s.cost_o
            ao_in = a.in_bytes[a_idx, o] - g.read - (g.tin - s.F_o) + s.T_o
            ao_out = (
                a.out_bytes[a_idx, o] - g.write - (g.tout - s.T_o) + s.F_o
            )
            a.val_o = np.maximum(
                ao_compute, np.maximum(ao_in / bw, ao_out / bw)
            )
            if self.multi:
                n_c = self.n_cells
                lapp = np.zeros((self.cg.n_apps, n_c, n_c), _F64)
                for (ai, (c1, c2)), v in an._app_link_bytes.items():
                    lapp[ai, c1, c2] = v
                a.lm = self._link_max(
                    lapp[a_idx], s.FCell, s.TCell, self.cell[o]
                )
            s.app = a
        return s.app

    def _loads(self):
        an = self.an
        nn = self.n_pes
        s = SimpleNamespace()
        s.pe = np.asarray(an._pe, _I64)
        s.compute = np.asarray(an._compute, _F64)
        s.in_bytes = np.asarray(an._in_bytes, _F64)
        s.out_bytes = np.asarray(an._out_bytes, _F64)
        s.peak = np.asarray(an._peak, _F64)
        buf = np.zeros(nn, _F64)
        for pe, v in an._buffer.items():
            buf[pe] = v
        dmain = np.zeros(nn, _I64)
        for pe, v in an._dma_in.items():
            dmain[pe] = v
        dproxy = np.zeros(nn, _I64)
        for pe, v in an._dma_proxy.items():
            dproxy[pe] = v
        s.buffer, s.dma_in, s.dma_proxy = buf, dmain, dproxy
        # Per-PE violation baselines: ``old > limit`` as int8, so each
        # threshold shift costs one fresh compare instead of two.
        s.viol_buf = (buf > self.budget).astype(np.int8)
        s.viol_in = (dmain > self.in_slots).astype(np.int8)
        s.viol_proxy = (dproxy > self.proxy_slots).astype(np.int8)
        need = an._need
        if need is self.cg.need_default:
            s.need = self.g.need_default
        else:  # pragma: no cover - kernels run in default mode only
            s.need = np.asarray(need, _F64)
        if self.multi:
            link = np.zeros((self.n_cells, self.n_cells), _F64)
            for (c1, c2), v in an._link_bytes.items():
                link[c1, c2] = v
            s.link = link
        return s

    def _neighbour_mats(self, s):
        """Dense (n, n_pes) incident-edge aggregates under mapping ``s.pe``.

        ``F``/``C``: bytes/edge-count into each task by producer PE;
        ``T``/``U``: bytes/edge-count out of each task by consumer PE;
        ``up``: out-edge count whose consumer sits on a PPE.  Bincount
        accumulates in global edge order — each task's in/out slice order.
        """
        g, nn = self.g, self.n_pes
        size = self.n * nn
        src_pe = s.pe[g.edge_src]
        dst_pe = s.pe[g.edge_dst]
        idx_in = g.edge_dst * nn + src_pe
        idx_out = g.edge_src * nn + dst_pe
        F = np.bincount(idx_in, weights=g.edge_data, minlength=size)
        C = np.bincount(idx_in, minlength=size).astype(_I64)
        T = np.bincount(idx_out, weights=g.edge_data, minlength=size)
        U = np.bincount(idx_out, minlength=size).astype(_I64)
        up = np.bincount(
            g.edge_src[self.is_ppe[dst_pe]], minlength=self.n
        ).astype(_I64)
        return (
            F.reshape(self.n, nn),
            C.reshape(self.n, nn),
            T.reshape(self.n, nn),
            U.reshape(self.n, nn),
            up,
        )

    # ------------------------------------------------------------------ #
    # Move-neighbourhood kernel

    def move_matrix(
        self,
        tids: Sequence[int],
        pes: Sequence[int],
        track_app: bool = False,
    ) -> SimpleNamespace:
        """Score moving every task in ``tids`` to every PE in ``pes``.

        One masked cost-matrix pass: returns ``worst`` (periods, k×m),
        ``nviol`` (violation counts, k×m), ``origin`` (mask of entries
        whose target equals the task's current PE — left for the caller
        to substitute the current score into, exactly as the scalar
        kernel does) and, with ``track_app``, ``aworst`` (the moved
        task's own-application period per candidate).  ``tids=None`` /
        ``pes=None`` mean "all tasks" / "all PEs" and skip the subset
        gathers entirely — the full-neighbourhood hot path.
        """
        g = self.g
        s = self._state()
        nn = self.n_pes
        bw = self.bw

        # Origin-side per-task terms: cached full, gathered on subsets.
        if tids is None:
            o = s.pe
            val_o, base_same, base_flip = s.val_o, s.base_same, s.base_flip
            o_is_ppe, s_flip = s.o_is_ppe, s.s_flip
            need_t, up_t, cin_t = s.need, s.up, g.cin
            ftt, Ct, Ut = s.ft, s.C, s.U
            rt, wt = self.rt_full, self.wt_full
            wppe_t, wspe_t = g.wppe, g.wspe
            cost_full = self.cost_full
        else:
            tids = np.asarray(tids, _I64)
            o = s.pe[tids]
            val_o = s.val_o[tids]
            base_same, base_flip = s.base_same[tids], s.base_flip[tids]
            o_is_ppe, s_flip = s.o_is_ppe[tids], s.s_flip[tids]
            need_t, up_t, cin_t = s.need[tids], s.up[tids], g.cin[tids]
            ftt, Ct, Ut = s.ft[tids], s.C[tids], s.U[tids]
            rt, wt = self.rt_full[tids], self.wt_full[tids]
            wppe_t, wspe_t = g.wppe[tids], g.wspe[tids]
            cost_full = self.cost_full[tids]
        o_col = o[:, None]

        # Candidate-side columns.
        if pes is None:
            pes_arr = None
            pe_row = self._ar[None, :nn]
            p_is_ppe = self.is_ppe
            p_spe = self.is_spe[None, :]
            in_p, out_p, comp_p = s.in_bytes, s.out_bytes, s.compute
            buf_p, dmain_p, dproxy_p = s.buffer, s.dma_in, s.dma_proxy
            bb_p = s.viol_buf[None, :]
            bi_p = s.viol_in[None, :]
            bp_p = s.viol_proxy[None, :]
            ft, Cp, Up = ftt, Ct, Ut
            cost_p = cost_full
        else:
            pes_arr = np.asarray(pes, _I64)
            pe_row = pes_arr[None, :]
            p_is_ppe = self.is_ppe[pes_arr]
            p_spe = self.is_spe[pes_arr][None, :]
            in_p, out_p = s.in_bytes[pes_arr], s.out_bytes[pes_arr]
            comp_p = s.compute[pes_arr]
            buf_p, dmain_p = s.buffer[pes_arr], s.dma_in[pes_arr]
            dproxy_p = s.dma_proxy[pes_arr]
            bb_p = s.viol_buf[pes_arr][None, :]
            bi_p = s.viol_in[pes_arr][None, :]
            bp_p = s.viol_proxy[pes_arr][None, :]
            ft = ftt[:, pes_arr]
            Cp, Up = Ct[:, pes_arr], Ut[:, pes_arr]
            cost_p = np.where(
                p_is_ppe[None, :], wppe_t[:, None], wspe_t[:, None]
            )

        # "Rest of the platform" peaks: global top-3 (first-index ties),
        # excluding the origin and the candidate per entry.  The
        # neighbour formula below holds for non-neighbours too (their
        # aggregates are exactly 0.0).
        rest = _rest_max(s.topv, s.topp, o_col, pe_row)
        p_in = in_p[None, :] + rt[:, None] - ft
        p_out = out_p[None, :] + wt[:, None] - ft
        val_p = np.maximum(
            comp_p[None, :] + cost_p, np.maximum(p_in / bw, p_out / bw)
        )
        worst = np.maximum(rest, np.maximum(val_o[:, None], val_p))
        if self.multi:
            lm = s.lm if tids is None else s.lm[tids]
            cells = self.cell if pes_arr is None else self.cell[pes_arr]
            worst = np.maximum(worst, lm[:, cells])

        # Violation shifts — integer arithmetic, dictionary-free, on top
        # of the cached origin-side bases.
        flip = p_is_ppe[None, :] != o_is_ppe[:, None]
        nviol = np.where(flip, base_flip[:, None], base_same[:, None])
        t_buf = (
            (buf_p[None, :] + need_t[:, None]) > self.budget
        ).astype(np.int8) - bb_p
        dv_in = cin_t[:, None] - Cp - Up
        t_in = ((dmain_p[None, :] + dv_in) > self.in_slots).astype(
            np.int8
        ) - bi_p
        sc = s_flip[:, None] * Cp
        dv_proxy = up_t[:, None] + np.where(flip, sc, 0)
        t_proxy = (
            (dproxy_p[None, :] + dv_proxy) > self.proxy_slots
        ).astype(np.int8) - bp_p
        # base_flip already counted the target's standalone flip term;
        # the combined term above replaces it (a no-op where Cp == 0).
        corr = np.where(
            flip,
            ((dproxy_p[None, :] + sc) > self.proxy_slots).astype(np.int8)
            - bp_p,
            np.int8(0),
        )
        nviol = nviol + np.where(
            p_spe, t_buf + t_in + t_proxy - corr, np.int8(0)
        )

        out = SimpleNamespace(
            worst=worst,
            nviol=nviol,
            origin=pe_row == o_col,
            aworst=None,
        )
        if not track_app:
            return out

        a = self._app_state(s)
        if tids is None:
            a_idx = g.app_index
            aval_o = a.val_o
        else:
            a_idx = g.app_index[tids]
            aval_o = a.val_o[tids]
        arest = _rest_max(a.topv[a_idx], a.topp[a_idx], o_col, pe_row)
        ac_t = a.compute[a_idx]
        ai_t = a.in_bytes[a_idx]
        ao_t = a.out_bytes[a_idx]
        if pes_arr is not None:
            ac_t, ai_t, ao_t = (
                ac_t[:, pes_arr], ai_t[:, pes_arr], ao_t[:, pes_arr],
            )
        ap_in = ai_t + rt[:, None] - ft
        ap_out = ao_t + wt[:, None] - ft
        aval_p = np.maximum(
            ac_t + cost_p, np.maximum(ap_in / bw, ap_out / bw)
        )
        aworst = np.maximum(arest, np.maximum(aval_o[:, None], aval_p))
        if self.multi:
            alm = a.lm if tids is None else a.lm[tids]
            cells = self.cell if pes_arr is None else self.cell[pes_arr]
            aworst = np.maximum(aworst, alm[:, cells])
        out.aworst = aworst
        return out

    def _cell_aggregates(self, Ft, Tt):
        """Per-task inbound/outbound bytes aggregated by neighbour cell."""
        n_c = self.n_cells
        k = Ft.shape[0]
        FCell = np.zeros((k, n_c), _F64)
        TCell = np.zeros((k, n_c), _F64)
        for c in range(n_c):
            mask = self.cell == c
            FCell[:, c] = Ft[:, mask].sum(axis=1)
            TCell[:, c] = Tt[:, mask].sum(axis=1)
        return FCell, TCell

    def _link_max(self, link, FCell, TCell, cell_o):
        """Worst BIF-link time per (task, target cell): (k, n_cells).

        ``link`` is either the global (C, C) matrix or a per-task
        (k, C, C) stack (app links).  Dense max over every directed cell
        pair — zero entries are harmless because the caller maxes the
        result into an already-non-negative period.
        """
        n_c = self.n_cells
        k = FCell.shape[0]
        per_task = link.ndim == 3
        lm = np.empty((k, n_c), _F64)
        for cp in range(n_c):
            best = np.full(k, -np.inf)
            for c1 in range(n_c):
                for c2 in range(n_c):
                    if c1 == c2:
                        continue
                    dv = np.zeros(k, _F64)
                    dv -= np.where(cell_o == c2, FCell[:, c1], 0.0)
                    if c2 == cp:
                        dv += FCell[:, c1]
                    dv -= np.where(cell_o == c1, TCell[:, c2], 0.0)
                    if c1 == cp:
                        dv += TCell[:, c2]
                    base = link[:, c1, c2] if per_task else link[c1, c2]
                    best = np.maximum(best, base + dv)
            lm[:, cp] = best / self.bif_bw
        return lm

    # ------------------------------------------------------------------ #
    # Pairwise swap kernel

    def _pair_lookup(self, ta, tb):
        """Direct-edge bytes/count from ``ta[i]`` to ``tb[i]`` per pair."""
        g = self.g
        if g.pair_keys.size == 0:
            zeros_f = np.zeros(ta.shape[0], _F64)
            return zeros_f, np.zeros(ta.shape[0], _I64)
        key = ta * self.n + tb
        idx = np.searchsorted(g.pair_keys, key)
        idx = np.minimum(idx, g.pair_keys.size - 1)
        found = g.pair_keys[idx] == key
        return (
            np.where(found, g.pair_bytes[idx], 0.0),
            np.where(found, g.pair_counts[idx], 0),
        )

    def swap_matrix(self, ta: Sequence[int], tb: Sequence[int]):
        """Score exchanging the PEs of task pairs ``(ta[i], tb[i])``.

        Returns ``(worst, nviol, same)`` — ``same`` marks pairs already
        sharing a PE (the caller substitutes the current score, as the
        scalar ``score_swap`` does).  Single-cell platforms only; the
        caller falls back to the scalar path on multi-cell platforms.
        """
        g, bw = self.g, self.bw
        s = self._state()
        ta = np.asarray(ta, _I64)
        tb = np.asarray(tb, _I64)
        F, C, T, U, up_full = s.F, s.C, s.T, s.U, s.up

        pa, pb = s.pe[ta], s.pe[tb]
        same = pa == pb
        d_ab, n_ab = self._pair_lookup(ta, tb)
        d_ba, n_ba = self._pair_lookup(tb, ta)

        read_a, write_a = g.read[ta], g.write[ta]
        read_b, write_b = g.read[tb], g.write[tb]
        tin_a, tout_a = g.tin[ta], g.tout[ta]
        tin_b, tout_b = g.tin[tb], g.tout[tb]
        kind_a, kind_b = self.is_ppe[pa], self.is_ppe[pb]
        ca_pa = np.where(kind_a, g.wppe[ta], g.wspe[ta])
        ca_pb = np.where(kind_b, g.wppe[ta], g.wspe[ta])
        cb_pa = np.where(kind_a, g.wppe[tb], g.wspe[tb])
        cb_pb = np.where(kind_b, g.wppe[tb], g.wspe[tb])

        Fa_pa, Fa_pb = F[ta, pa], F[ta, pb]
        Fb_pa, Fb_pb = F[tb, pa], F[tb, pb]
        Ta_pa, Ta_pb = T[ta, pa], T[ta, pb]
        Tb_pa, Tb_pb = T[tb, pa], T[tb, pb]

        din_pa = (
            read_b - read_a
            - (tin_a - Fa_pa) + Ta_pa + d_ab
            + (tin_b - Fb_pa) - (Tb_pa - d_ba)
        )
        dout_pa = (
            write_b - write_a
            - (tout_a - Ta_pa) + Fa_pa + d_ba
            + (tout_b - Tb_pa) - (Fb_pa - d_ab)
        )
        din_pb = (
            read_a - read_b
            - (tin_b - Fb_pb) + Tb_pb + d_ba
            + (tin_a - Fa_pb) - (Ta_pb - d_ab)
        )
        dout_pb = (
            write_a - write_b
            - (tout_b - Tb_pb) + Fb_pb + d_ab
            + (tout_a - Ta_pb) - (Fa_pb - d_ba)
        )

        val_pa = np.maximum(
            s.compute[pa] + (cb_pa - ca_pa),
            np.maximum(
                (s.in_bytes[pa] + din_pa) / bw,
                (s.out_bytes[pa] + dout_pa) / bw,
            ),
        )
        val_pb = np.maximum(
            s.compute[pb] + (ca_pb - cb_pb),
            np.maximum(
                (s.in_bytes[pb] + din_pb) / bw,
                (s.out_bytes[pb] + dout_pb) / bw,
            ),
        )
        rest = _rest_max(s.topv, s.topp, pa[:, None], pb[:, None])[:, 0]
        worst = np.maximum(rest, np.maximum(val_pa, val_pb))

        # Violation shift: buffers/queues change at the two endpoints,
        # plus proxy flips at producer-hosting SPEs on a kind exchange.
        need_a, need_b = s.need[ta], s.need[tb]
        up_a, up_b = up_full[ta], up_full[tb]
        Ca_pa, Ca_pb = C[ta, pa], C[ta, pb]
        Cb_pa, Cb_pb = C[tb, pa], C[tb, pb]
        Ua_pa, Ub_pa = U[ta, pa], U[tb, pa]
        Ua_pb, Ub_pb = U[ta, pb], U[tb, pb]
        cin_a, cin_b = g.cin[ta], g.cin[tb]
        kp_a = kind_a.astype(_I64)
        kp_b = kind_b.astype(_I64)

        ddma_pa = (
            -(cin_a - Ca_pa) + Ua_pa + n_ab + (cin_b - Cb_pa) - (Ub_pa - n_ba)
        )
        ddma_pb = (
            -(cin_b - Cb_pb) + Ub_pb + n_ba + (cin_a - Ca_pb) - (Ua_pb - n_ab)
        )
        dproxy_pa = up_b - up_a + kp_b * (n_ba + Ca_pa - Cb_pa + n_ab)
        dproxy_pb = up_a - up_b + kp_a * (n_ab + Cb_pb - Ca_pb + n_ba)

        spe_a = self.is_spe[pa]
        spe_b = self.is_spe[pb]
        shift = np.where(
            spe_a,
            _shift(s.buffer[pa], need_b - need_a, self.budget)
            + _shift(s.dma_in[pa], ddma_pa, self.in_slots)
            + _shift(s.dma_proxy[pa], dproxy_pa, self.proxy_slots),
            0,
        )
        shift += np.where(
            spe_b,
            _shift(s.buffer[pb], need_a - need_b, self.budget)
            + _shift(s.dma_in[pb], ddma_pb, self.in_slots)
            + _shift(s.dma_proxy[pb], dproxy_pb, self.proxy_slots),
            0,
        )
        kd = kp_b - kp_a
        all_pes = self._ar[: self.n_pes]
        third = _shift(
            s.dma_proxy[None, :],
            kd[:, None] * (C[ta] - C[tb]),
            self.proxy_slots,
        )
        mask_q = (
            self.is_spe[None, :]
            & (all_pes[None, :] != pa[:, None])
            & (all_pes[None, :] != pb[:, None])
        )
        shift += np.where(mask_q, third, 0).sum(axis=1)

        nviol = self.an._n_violations + shift
        return worst, nviol, same

    # ------------------------------------------------------------------ #
    # Population (assignment) kernel

    def assignment_matrix(self, P, want_apps: bool = False):
        """Score ``K`` full assignments from scratch in one pass.

        ``P`` is a (K, n) int matrix of task → PE assignments over the
        analyzer's platform.  Returns ``(period, nviol, app_periods)``
        with ``app_periods`` a (K, n_apps) matrix (or ``None``).  The
        from-scratch sums follow ``_rebuild``'s accumulation order
        (tasks, then edges) per row — bit-identical on integer graphs.
        """
        g, nn, bw = self.g, self.n_pes, self.bw
        P = np.asarray(P, _I64)
        K, n = P.shape
        size = K * nn
        off = (np.arange(K) * nn)[:, None]
        pbins = P + off

        cost = np.where(self.is_ppe[P], g.wppe[None, :], g.wspe[None, :])
        src_pe = P[:, g.edge_src]
        dst_pe = P[:, g.edge_dst]
        cross = src_pe != dst_pe
        src_bins = (src_pe + off)[cross]
        dst_bins = (dst_pe + off)[cross]
        edge_w = np.broadcast_to(g.edge_data, (K, g.n_edges))[cross]

        compute = np.bincount(
            pbins.ravel(), weights=cost.ravel(), minlength=size
        ).reshape(K, nn)
        # Tasks first, then edges — one bincount keeps the scalar
        # accumulation order (reads, then cross-edge bytes) per bin.
        in_bytes = np.bincount(
            np.concatenate([pbins.ravel(), dst_bins]),
            weights=np.concatenate(
                [np.broadcast_to(g.read, (K, n)).ravel(), edge_w]
            ),
            minlength=size,
        ).reshape(K, nn)
        out_bytes = np.bincount(
            np.concatenate([pbins.ravel(), src_bins]),
            weights=np.concatenate(
                [np.broadcast_to(g.write, (K, n)).ravel(), edge_w]
            ),
            minlength=size,
        ).reshape(K, nn)
        peaks = np.maximum(
            compute, np.maximum(in_bytes / bw, out_bytes / bw)
        )
        period = peaks.max(axis=1)

        spe_dst = self.is_spe[dst_pe] & cross
        dma_in = np.bincount(
            (dst_pe + off)[spe_dst], minlength=size
        ).reshape(K, nn)
        proxy_mask = self.is_spe[src_pe] & self.is_ppe[dst_pe]
        dma_proxy = np.bincount(
            (src_pe + off)[proxy_mask], minlength=size
        ).reshape(K, nn)
        buffer = np.bincount(
            pbins.ravel(),
            weights=np.broadcast_to(self.g.need_default, (K, n)).ravel(),
            minlength=size,
        ).reshape(K, nn)
        spe_row = self.is_spe[None, :]
        nviol = (
            ((buffer > self.budget) & spe_row).sum(axis=1)
            + ((dma_in > self.in_slots) & spe_row).sum(axis=1)
            + ((dma_proxy > self.proxy_slots) & spe_row).sum(axis=1)
        ).astype(_I64)

        link_cells = None
        if self.multi:
            n_c = self.n_cells
            cs, cd = self.cell[src_pe], self.cell[dst_pe]
            lmask = cross & (cs != cd)
            loff = (np.arange(K) * n_c * n_c)[:, None]
            lbins = (cs * n_c + cd + loff)[lmask]
            lw = np.broadcast_to(g.edge_data, (K, g.n_edges))[lmask]
            link_cells = np.bincount(
                lbins, weights=lw, minlength=K * n_c * n_c
            ).reshape(K, n_c * n_c)
            period = np.maximum(
                period, link_cells.max(axis=1) / self.bif_bw
            )

        app_periods = None
        if want_apps and g.app_index is not None:
            n_apps = self.cg.n_apps
            asize = K * n_apps * nn
            aoff = (np.arange(K) * n_apps * nn)[:, None]
            a_compute = np.bincount(
                (g.app_index[None, :] * nn + P + aoff).ravel(),
                weights=cost.ravel(),
                minlength=asize,
            ).reshape(K, n_apps, nn)
            ea = g.app_index[g.edge_src]  # endpoints share the app
            edst_bins = (ea[None, :] * nn + dst_pe + aoff)[cross]
            esrc_bins = (ea[None, :] * nn + src_pe + aoff)[cross]
            a_in = np.bincount(
                np.concatenate(
                    [
                        (g.app_index[None, :] * nn + P + aoff).ravel(),
                        edst_bins,
                    ]
                ),
                weights=np.concatenate(
                    [np.broadcast_to(g.read, (K, n)).ravel(), edge_w]
                ),
                minlength=asize,
            ).reshape(K, n_apps, nn)
            a_out = np.bincount(
                np.concatenate(
                    [
                        (g.app_index[None, :] * nn + P + aoff).ravel(),
                        esrc_bins,
                    ]
                ),
                weights=np.concatenate(
                    [np.broadcast_to(g.write, (K, n)).ravel(), edge_w]
                ),
                minlength=asize,
            ).reshape(K, n_apps, nn)
            a_peaks = np.maximum(
                a_compute, np.maximum(a_in / bw, a_out / bw)
            )
            app_periods = a_peaks.max(axis=2)
            if self.multi:
                n_c = self.n_cells
                cs, cd = self.cell[src_pe], self.cell[dst_pe]
                lmask = cross & (cs != cd)
                aloff = (np.arange(K) * n_apps * n_c * n_c)[:, None]
                albins = (
                    ea[None, :] * (n_c * n_c) + cs * n_c + cd + aloff
                )[lmask]
                alw = np.broadcast_to(g.edge_data, (K, g.n_edges))[lmask]
                a_link = np.bincount(
                    albins, weights=alw, minlength=K * n_apps * n_c * n_c
                ).reshape(K, n_apps, n_c * n_c)
                app_periods = np.maximum(
                    app_periods, a_link.max(axis=2) / self.bif_bw
                )
        return period, nviol, app_periods
