"""Incremental (delta) steady-state evaluation of mapping moves.

``throughput.analyze()`` walks the whole graph — O(V+E) — for every
candidate mapping, which makes a neighbourhood search round
O(n²·n_pes·(V+E)).  :class:`DeltaAnalyzer` holds the mutable load state of
one mapping and re-evaluates a single-task move (or a task-pair swap) in
O(deg(task) + n_pes), which is what lets ``local_search`` and the
metaheuristics (`simulated_annealing`, `tabu_search`) scale past toy graph
sizes.

Each cached quantity corresponds to one family of constraints of the
paper's program (1):

===================  ====================================================
cached state         paper constraint
===================  ====================================================
``compute[pe]``      (1e)/(1f) — compute occupation of each PPE/SPE
``in_bytes[pe]``     (1g) — incoming interface occupation (reads + cross
                     edges landing on the PE)
``out_bytes[pe]``    (1h) — outgoing interface occupation (writes + cross
                     edges leaving the PE)
``buffer[spe]``      (1i) — §4.2 stream-buffer bytes hosted by the SPE's
                     local store
``dma_in[spe]``      (1j) — distinct data received per period (MFC queue)
``dma_proxy[spe]``   (1k) — distinct data pushed to PPEs per period
                     (proxy queue)
``link_bytes``       the bounded-multiport extension of (1g)/(1h) to the
                     inter-Cell BIF link of multi-Cell platforms
===================  ====================================================

The period is ``max`` occupation over all resources, exactly as in
``analyze``; :meth:`DeltaAnalyzer.snapshot` rebuilds a full
:class:`PeriodAnalysis` from the cached state, using the same accumulation
order as ``analyze`` so the two agree bit-for-bit (for graphs whose costs
and payloads are integer-valued floats the incremental updates are exact;
otherwise agreement is within one ulp per update — call :meth:`resync`
to squash any accumulated drift with one O(V+E) rebuild).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..errors import MappingError
from .mapping import Mapping
from .periods import buffer_requirements
from .throughput import LinkLoad, PeriodAnalysis, ResourceLoad, Violation

__all__ = ["DeltaAnalyzer", "MoveScore"]


class MoveScore(NamedTuple):
    """Cheap verdict on a candidate mapping (current or hypothetical)."""

    period: float
    feasible: bool
    n_violations: int


#: Internal bundle of per-resource deltas for a set of simultaneous moves:
#: (moved, d_compute, d_in, d_out, d_buf, d_dma_in, d_dma_proxy,
#:  d_link_bytes, d_link_count).
_Deltas = Tuple[
    Dict[str, int],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, int],
    Dict[int, int],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], int],
]


class DeltaAnalyzer:
    """Mutable load state of a mapping with O(deg) move evaluation.

    Matches ``analyze(mapping)`` with its default flags (no local-comm
    elision, no same-PE buffer merging): buffer sizes are the
    mapping-independent §4.2 constants, so a move only shifts which local
    store hosts them.
    """

    def __init__(self, mapping: Mapping) -> None:
        self.graph = mapping.graph
        self.platform = mapping.platform
        platform = self.platform
        n = platform.n_pes
        self._n_pes = n
        self._bw = platform.bw
        self._bif_bw = platform.bif_bw
        self._budget = platform.buffer_budget
        self._in_slots = platform.dma_in_slots
        self._proxy_slots = platform.dma_proxy_slots
        self._is_ppe: List[bool] = [platform.is_ppe(i) for i in range(n)]
        self._is_spe: List[bool] = [not p for p in self._is_ppe]
        self._cell: List[int] = [platform.cell_of(i) for i in range(n)]
        self._multi = platform.n_cells > 1

        self._assign: Dict[str, int] = mapping.to_dict()
        # Per-task constants: (wppe, wspe, read, write).
        self._tinfo: Dict[str, Tuple[float, float, float, float]] = {
            t.name: (t.wppe, t.wspe, t.read, t.write)
            for t in self.graph.tasks()
        }
        # Adjacency as (neighbour, payload) pairs for O(deg) edge walks.
        self._in_adj: Dict[str, List[Tuple[str, float]]] = {
            name: [(e.src, e.data) for e in self.graph.in_edges(name)]
            for name in self._assign
        }
        self._out_adj: Dict[str, List[Tuple[str, float]]] = {
            name: [(e.dst, e.data) for e in self.graph.out_edges(name)]
            for name in self._assign
        }
        self._need: Dict[str, float] = buffer_requirements(self.graph)

        # Mutable load state, filled by _rebuild().
        self._compute: List[float] = []
        self._in_bytes: List[float] = []
        self._out_bytes: List[float] = []
        self._peak: List[float] = []
        self._buffer: Dict[int, float] = {}
        self._dma_in: Dict[int, int] = {}
        self._dma_proxy: Dict[int, int] = {}
        self._link_bytes: Dict[Tuple[int, int], float] = {}
        self._link_count: Dict[Tuple[int, int], int] = {}
        self._n_violations = 0
        self._rebuild()

    # ------------------------------------------------------------------ #
    # State construction

    def _rebuild(self) -> None:
        """Recompute all cached loads from scratch (same order as analyze)."""
        platform = self.platform
        assign = self._assign
        n = self._n_pes
        compute = [0.0] * n
        in_bytes = [0.0] * n
        out_bytes = [0.0] * n
        for task in self.graph.tasks():
            pe = assign[task.name]
            compute[pe] += task.cost_on(platform.kind(pe))
            in_bytes[pe] += task.read
            out_bytes[pe] += task.write

        dma_in = {i: 0 for i in platform.spe_indices}
        dma_proxy = {i: 0 for i in platform.spe_indices}
        link_bytes: Dict[Tuple[int, int], float] = {}
        link_count: Dict[Tuple[int, int], int] = {}
        is_spe, is_ppe, cell = self._is_spe, self._is_ppe, self._cell
        for edge in self.graph.edges():
            src_pe = assign[edge.src]
            dst_pe = assign[edge.dst]
            if src_pe == dst_pe:
                continue
            out_bytes[src_pe] += edge.data
            in_bytes[dst_pe] += edge.data
            if is_spe[dst_pe]:
                dma_in[dst_pe] += 1
            if is_spe[src_pe] and is_ppe[dst_pe]:
                dma_proxy[src_pe] += 1
            if self._multi and cell[src_pe] != cell[dst_pe]:
                key = (cell[src_pe], cell[dst_pe])
                link_bytes[key] = link_bytes.get(key, 0.0) + edge.data
                link_count[key] = link_count.get(key, 0) + 1

        buffer = {i: 0.0 for i in platform.spe_indices}
        need = self._need
        for name, pe in assign.items():
            if is_spe[pe]:
                buffer[pe] += need[name]

        self._compute, self._in_bytes, self._out_bytes = compute, in_bytes, out_bytes
        self._dma_in, self._dma_proxy = dma_in, dma_proxy
        self._link_bytes, self._link_count = link_bytes, link_count
        self._buffer = buffer
        bw = self._bw
        self._peak = [
            max(compute[i], in_bytes[i] / bw, out_bytes[i] / bw)
            for i in range(n)
        ]
        violations = 0
        for spe in platform.spe_indices:
            violations += buffer[spe] > self._budget
            violations += dma_in[spe] > self._in_slots
            violations += dma_proxy[spe] > self._proxy_slots
        self._n_violations = violations

    def resync(self) -> None:
        """One O(V+E) rebuild, re-anchoring the incremental state exactly."""
        self._rebuild()

    # ------------------------------------------------------------------ #
    # Queries

    def pe_of(self, task: str) -> int:
        try:
            return self._assign[task]
        except KeyError:
            raise MappingError(f"task {task!r} is not mapped") from None

    def assignment(self) -> Dict[str, int]:
        """A copy of the current task → PE assignment."""
        return dict(self._assign)

    def mapping(self) -> Mapping:
        """The current state as an immutable :class:`Mapping`."""
        return Mapping(self.graph, self.platform, self._assign)

    def period(self) -> float:
        """Current period ``T`` (same value as ``analyze(...).period``)."""
        worst = max(self._peak)
        if self._multi:
            for value in self._link_bytes.values():
                time = value / self._bif_bw
                if time > worst:
                    worst = time
        return worst

    @property
    def feasible(self) -> bool:
        return self._n_violations == 0

    def score(self) -> MoveScore:
        """Score of the *current* state (no hypothetical move)."""
        return MoveScore(
            period=self.period(),
            feasible=self._n_violations == 0,
            n_violations=self._n_violations,
        )

    # ------------------------------------------------------------------ #
    # Delta machinery

    def _deltas(self, changes: Dict[str, int]) -> Optional[_Deltas]:
        """Per-resource deltas for applying ``changes`` simultaneously.

        O(sum of degrees of the moved tasks).  Returns ``None`` when no
        task actually changes PE.
        """
        assign = self._assign
        n = self._n_pes
        moved: Dict[str, int] = {}
        for name, pe in changes.items():
            if name not in assign:
                raise MappingError(f"task {name!r} is not mapped")
            if not 0 <= pe < n:
                raise MappingError(
                    f"task {name!r} moved to invalid PE {pe!r} "
                    f"(platform has {n} PEs)"
                )
            if assign[name] != pe:
                moved[name] = pe
        if not moved:
            return None

        is_ppe, is_spe, cell = self._is_ppe, self._is_spe, self._cell
        d_compute: Dict[int, float] = {}
        d_in: Dict[int, float] = {}
        d_out: Dict[int, float] = {}
        d_buf: Dict[int, float] = {}
        d_dma_in: Dict[int, int] = {}
        d_dma_proxy: Dict[int, int] = {}
        d_link: Dict[Tuple[int, int], float] = {}
        d_link_n: Dict[Tuple[int, int], int] = {}
        edges: Dict[Tuple[str, str], float] = {}

        for name, new_pe in moved.items():
            old_pe = assign[name]
            wppe, wspe, read, write = self._tinfo[name]
            d_compute[old_pe] = d_compute.get(old_pe, 0.0) - (
                wppe if is_ppe[old_pe] else wspe
            )
            d_compute[new_pe] = d_compute.get(new_pe, 0.0) + (
                wppe if is_ppe[new_pe] else wspe
            )
            d_in[old_pe] = d_in.get(old_pe, 0.0) - read
            d_in[new_pe] = d_in.get(new_pe, 0.0) + read
            d_out[old_pe] = d_out.get(old_pe, 0.0) - write
            d_out[new_pe] = d_out.get(new_pe, 0.0) + write
            need = self._need[name]
            if is_spe[old_pe]:
                d_buf[old_pe] = d_buf.get(old_pe, 0.0) - need
            if is_spe[new_pe]:
                d_buf[new_pe] = d_buf.get(new_pe, 0.0) + need
            for src, data in self._in_adj[name]:
                edges[(src, name)] = data
            for dst, data in self._out_adj[name]:
                edges[(name, dst)] = data

        for (u, v), data in edges.items():
            old_u, old_v = assign[u], assign[v]
            new_u, new_v = moved.get(u, old_u), moved.get(v, old_v)
            if old_u != old_v:  # retract the old cross-PE contribution
                d_out[old_u] = d_out.get(old_u, 0.0) - data
                d_in[old_v] = d_in.get(old_v, 0.0) - data
                if is_spe[old_v]:
                    d_dma_in[old_v] = d_dma_in.get(old_v, 0) - 1
                if is_spe[old_u] and is_ppe[old_v]:
                    d_dma_proxy[old_u] = d_dma_proxy.get(old_u, 0) - 1
                if self._multi and cell[old_u] != cell[old_v]:
                    key = (cell[old_u], cell[old_v])
                    d_link[key] = d_link.get(key, 0.0) - data
                    d_link_n[key] = d_link_n.get(key, 0) - 1
            if new_u != new_v:  # add the new cross-PE contribution
                d_out[new_u] = d_out.get(new_u, 0.0) + data
                d_in[new_v] = d_in.get(new_v, 0.0) + data
                if is_spe[new_v]:
                    d_dma_in[new_v] = d_dma_in.get(new_v, 0) + 1
                if is_spe[new_u] and is_ppe[new_v]:
                    d_dma_proxy[new_u] = d_dma_proxy.get(new_u, 0) + 1
                if self._multi and cell[new_u] != cell[new_v]:
                    key = (cell[new_u], cell[new_v])
                    d_link[key] = d_link.get(key, 0.0) + data
                    d_link_n[key] = d_link_n.get(key, 0) + 1

        return (
            moved, d_compute, d_in, d_out, d_buf,
            d_dma_in, d_dma_proxy, d_link, d_link_n,
        )

    def _violation_shift(
        self,
        d_buf: Dict[int, float],
        d_dma_in: Dict[int, int],
        d_dma_proxy: Dict[int, int],
    ) -> int:
        """Net change in the number of violated (1i)–(1k) constraints."""
        shift = 0
        budget, in_slots, proxy_slots = (
            self._budget, self._in_slots, self._proxy_slots,
        )
        for spe, dv in d_buf.items():
            old = self._buffer[spe]
            shift += (old + dv > budget) - (old > budget)
        for spe, dv in d_dma_in.items():
            old = self._dma_in[spe]
            shift += (old + dv > in_slots) - (old > in_slots)
        for spe, dv in d_dma_proxy.items():
            old = self._dma_proxy[spe]
            shift += (old + dv > proxy_slots) - (old > proxy_slots)
        return shift

    def _score(self, deltas: Optional[_Deltas]) -> MoveScore:
        if deltas is None:
            return self.score()
        (_moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, _d_link_n) = deltas

        bw = self._bw
        compute, in_bytes, out_bytes = self._compute, self._in_bytes, self._out_bytes
        peak = self._peak
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        worst = 0.0
        for pe in range(self._n_pes):
            if pe in touched:
                value = compute[pe] + d_compute.get(pe, 0.0)
                comm = (in_bytes[pe] + d_in.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
                comm = (out_bytes[pe] + d_out.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
            else:
                value = peak[pe]
            if value > worst:
                worst = value
        if self._multi:
            link = self._link_bytes
            keys = set(link)
            keys.update(d_link)
            for key in keys:
                time = (link.get(key, 0.0) + d_link.get(key, 0.0)) / self._bif_bw
                if time > worst:
                    worst = time

        n_violations = self._n_violations + self._violation_shift(
            d_buf, d_dma_in, d_dma_proxy
        )
        return MoveScore(
            period=worst, feasible=n_violations == 0, n_violations=n_violations
        )

    def _apply(self, deltas: Optional[_Deltas]) -> None:
        if deltas is None:
            return
        (moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, d_link_n) = deltas

        self._n_violations += self._violation_shift(d_buf, d_dma_in, d_dma_proxy)
        for name, pe in moved.items():
            self._assign[name] = pe
        for pe, dv in d_compute.items():
            self._compute[pe] += dv
        for pe, dv in d_in.items():
            self._in_bytes[pe] += dv
        for pe, dv in d_out.items():
            self._out_bytes[pe] += dv
        for spe, dv in d_buf.items():
            self._buffer[spe] += dv
        for spe, dv in d_dma_in.items():
            self._dma_in[spe] += dv
        for spe, dv in d_dma_proxy.items():
            self._dma_proxy[spe] += dv
        for key, dv in d_link.items():
            count = self._link_count.get(key, 0) + d_link_n[key]
            if count:
                self._link_count[key] = count
                self._link_bytes[key] = self._link_bytes.get(key, 0.0) + dv
            else:  # no cross-cell edge left on this link direction
                self._link_count.pop(key, None)
                self._link_bytes.pop(key, None)
        bw = self._bw
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        for pe in touched:
            self._peak[pe] = max(
                self._compute[pe],
                self._in_bytes[pe] / bw,
                self._out_bytes[pe] / bw,
            )

    # ------------------------------------------------------------------ #
    # Public move/swap API

    def score_move(self, task: str, pe: int) -> MoveScore:
        """Score of the mapping with ``task`` moved to ``pe`` — O(deg(task))."""
        return self._score(self._deltas({task: pe}))

    def score_swap(self, a: str, b: str) -> MoveScore:
        """Score of the mapping with tasks ``a`` and ``b`` exchanging PEs."""
        return self._score(self._deltas({a: self.pe_of(b), b: self.pe_of(a)}))

    def apply_move(self, task: str, pe: int) -> None:
        """Commit a single-task move into the cached state — O(deg(task))."""
        self._apply(self._deltas({task: pe}))

    def apply_swap(self, a: str, b: str) -> None:
        """Commit a task-pair PE exchange into the cached state."""
        self._apply(self._deltas({a: self.pe_of(b), b: self.pe_of(a)}))

    # ------------------------------------------------------------------ #
    # Full analysis

    def snapshot(self) -> PeriodAnalysis:
        """A full :class:`PeriodAnalysis` of the current state.

        Field-for-field identical to ``analyze(self.mapping())`` (see the
        module docstring for the exactness guarantee), built in O(V + n_pes)
        without re-walking the edges.
        """
        platform = self.platform
        bw = self._bw
        loads = [
            ResourceLoad(
                pe=i,
                pe_name=platform.pe_name(i),
                compute=self._compute[i],
                comm_in=self._in_bytes[i] / bw,
                comm_out=self._out_bytes[i] / bw,
            )
            for i in range(self._n_pes)
        ]
        buffer_bytes = {i: self._buffer[i] for i in platform.spe_indices}
        dma_in = {i: self._dma_in[i] for i in platform.spe_indices}
        dma_proxy = {i: self._dma_proxy[i] for i in platform.spe_indices}
        violations: List[Violation] = []
        for spe in platform.spe_indices:
            pe_name = platform.pe_name(spe)
            if buffer_bytes[spe] > self._budget:
                violations.append(
                    Violation("memory", spe, pe_name, buffer_bytes[spe], self._budget)
                )
            if dma_in[spe] > self._in_slots:
                violations.append(
                    Violation("dma_in", spe, pe_name, dma_in[spe], self._in_slots)
                )
            if dma_proxy[spe] > self._proxy_slots:
                violations.append(
                    Violation("dma_proxy", spe, pe_name, dma_proxy[spe], self._proxy_slots)
                )
        link_loads = [
            LinkLoad(src_cell=src, dst_cell=dst, time=bytes_ / self._bif_bw)
            for (src, dst), bytes_ in sorted(self._link_bytes.items())
        ]
        return PeriodAnalysis(
            mapping=self.mapping(),
            loads=loads,
            buffer_bytes=buffer_bytes,
            dma_in=dma_in,
            dma_proxy=dma_proxy,
            violations=violations,
            link_loads=link_loads,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaAnalyzer({self.graph.name!r}, period={self.period():.3f}, "
            f"violations={self._n_violations})"
        )
